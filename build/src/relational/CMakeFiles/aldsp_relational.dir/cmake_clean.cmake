file(REMOVE_RECURSE
  "CMakeFiles/aldsp_relational.dir/catalog.cpp.o"
  "CMakeFiles/aldsp_relational.dir/catalog.cpp.o.d"
  "CMakeFiles/aldsp_relational.dir/cell.cpp.o"
  "CMakeFiles/aldsp_relational.dir/cell.cpp.o.d"
  "CMakeFiles/aldsp_relational.dir/engine.cpp.o"
  "CMakeFiles/aldsp_relational.dir/engine.cpp.o.d"
  "CMakeFiles/aldsp_relational.dir/sql_ast.cpp.o"
  "CMakeFiles/aldsp_relational.dir/sql_ast.cpp.o.d"
  "libaldsp_relational.a"
  "libaldsp_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
