# Empty dependencies file for aldsp_relational.
# This may be replaced when dependencies are built.
