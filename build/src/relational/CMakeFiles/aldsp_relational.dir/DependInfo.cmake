
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/catalog.cpp" "src/relational/CMakeFiles/aldsp_relational.dir/catalog.cpp.o" "gcc" "src/relational/CMakeFiles/aldsp_relational.dir/catalog.cpp.o.d"
  "/root/repo/src/relational/cell.cpp" "src/relational/CMakeFiles/aldsp_relational.dir/cell.cpp.o" "gcc" "src/relational/CMakeFiles/aldsp_relational.dir/cell.cpp.o.d"
  "/root/repo/src/relational/engine.cpp" "src/relational/CMakeFiles/aldsp_relational.dir/engine.cpp.o" "gcc" "src/relational/CMakeFiles/aldsp_relational.dir/engine.cpp.o.d"
  "/root/repo/src/relational/sql_ast.cpp" "src/relational/CMakeFiles/aldsp_relational.dir/sql_ast.cpp.o" "gcc" "src/relational/CMakeFiles/aldsp_relational.dir/sql_ast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/aldsp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aldsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
