file(REMOVE_RECURSE
  "libaldsp_relational.a"
)
