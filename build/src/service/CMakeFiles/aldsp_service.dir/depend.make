# Empty dependencies file for aldsp_service.
# This may be replaced when dependencies are built.
