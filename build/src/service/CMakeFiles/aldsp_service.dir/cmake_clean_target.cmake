file(REMOVE_RECURSE
  "libaldsp_service.a"
)
