file(REMOVE_RECURSE
  "CMakeFiles/aldsp_service.dir/data_service.cpp.o"
  "CMakeFiles/aldsp_service.dir/data_service.cpp.o.d"
  "CMakeFiles/aldsp_service.dir/introspect.cpp.o"
  "CMakeFiles/aldsp_service.dir/introspect.cpp.o.d"
  "libaldsp_service.a"
  "libaldsp_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
