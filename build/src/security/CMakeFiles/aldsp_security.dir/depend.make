# Empty dependencies file for aldsp_security.
# This may be replaced when dependencies are built.
