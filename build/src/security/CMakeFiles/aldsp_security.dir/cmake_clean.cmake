file(REMOVE_RECURSE
  "CMakeFiles/aldsp_security.dir/security.cpp.o"
  "CMakeFiles/aldsp_security.dir/security.cpp.o.d"
  "libaldsp_security.a"
  "libaldsp_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
