file(REMOVE_RECURSE
  "libaldsp_security.a"
)
