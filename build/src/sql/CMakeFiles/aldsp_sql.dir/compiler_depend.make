# Empty compiler generated dependencies file for aldsp_sql.
# This may be replaced when dependencies are built.
