file(REMOVE_RECURSE
  "libaldsp_sql.a"
)
