file(REMOVE_RECURSE
  "CMakeFiles/aldsp_sql.dir/dialect.cpp.o"
  "CMakeFiles/aldsp_sql.dir/dialect.cpp.o.d"
  "CMakeFiles/aldsp_sql.dir/pushdown.cpp.o"
  "CMakeFiles/aldsp_sql.dir/pushdown.cpp.o.d"
  "libaldsp_sql.a"
  "libaldsp_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
