file(REMOVE_RECURSE
  "libaldsp_adaptors.a"
)
