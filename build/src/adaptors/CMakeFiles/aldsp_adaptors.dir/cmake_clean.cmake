file(REMOVE_RECURSE
  "CMakeFiles/aldsp_adaptors.dir/directory_adaptor.cpp.o"
  "CMakeFiles/aldsp_adaptors.dir/directory_adaptor.cpp.o.d"
  "CMakeFiles/aldsp_adaptors.dir/external_function_adaptor.cpp.o"
  "CMakeFiles/aldsp_adaptors.dir/external_function_adaptor.cpp.o.d"
  "CMakeFiles/aldsp_adaptors.dir/file_adaptor.cpp.o"
  "CMakeFiles/aldsp_adaptors.dir/file_adaptor.cpp.o.d"
  "CMakeFiles/aldsp_adaptors.dir/relational_adaptor.cpp.o"
  "CMakeFiles/aldsp_adaptors.dir/relational_adaptor.cpp.o.d"
  "CMakeFiles/aldsp_adaptors.dir/webservice_adaptor.cpp.o"
  "CMakeFiles/aldsp_adaptors.dir/webservice_adaptor.cpp.o.d"
  "libaldsp_adaptors.a"
  "libaldsp_adaptors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_adaptors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
