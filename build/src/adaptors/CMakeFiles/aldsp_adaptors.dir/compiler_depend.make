# Empty compiler generated dependencies file for aldsp_adaptors.
# This may be replaced when dependencies are built.
