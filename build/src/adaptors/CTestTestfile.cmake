# CMake generated Testfile for 
# Source directory: /root/repo/src/adaptors
# Build directory: /root/repo/build/src/adaptors
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
