# Empty compiler generated dependencies file for aldsp_xquery.
# This may be replaced when dependencies are built.
