file(REMOVE_RECURSE
  "CMakeFiles/aldsp_xquery.dir/ast.cpp.o"
  "CMakeFiles/aldsp_xquery.dir/ast.cpp.o.d"
  "CMakeFiles/aldsp_xquery.dir/parser.cpp.o"
  "CMakeFiles/aldsp_xquery.dir/parser.cpp.o.d"
  "libaldsp_xquery.a"
  "libaldsp_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
