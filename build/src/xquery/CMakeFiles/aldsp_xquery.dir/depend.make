# Empty dependencies file for aldsp_xquery.
# This may be replaced when dependencies are built.
