file(REMOVE_RECURSE
  "libaldsp_xquery.a"
)
