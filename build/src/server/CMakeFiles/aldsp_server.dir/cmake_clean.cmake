file(REMOVE_RECURSE
  "CMakeFiles/aldsp_server.dir/server.cpp.o"
  "CMakeFiles/aldsp_server.dir/server.cpp.o.d"
  "libaldsp_server.a"
  "libaldsp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
