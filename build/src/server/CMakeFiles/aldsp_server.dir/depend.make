# Empty dependencies file for aldsp_server.
# This may be replaced when dependencies are built.
