file(REMOVE_RECURSE
  "libaldsp_server.a"
)
