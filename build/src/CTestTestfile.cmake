# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("xsd")
subdirs("relational")
subdirs("xquery")
subdirs("compiler")
subdirs("runtime")
subdirs("optimizer")
subdirs("sql")
subdirs("adaptors")
subdirs("cache")
subdirs("service")
subdirs("update")
subdirs("security")
subdirs("server")
