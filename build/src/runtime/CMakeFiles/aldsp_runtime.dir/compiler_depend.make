# Empty compiler generated dependencies file for aldsp_runtime.
# This may be replaced when dependencies are built.
