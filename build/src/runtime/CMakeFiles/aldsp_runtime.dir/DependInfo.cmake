
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/adaptor.cpp" "src/runtime/CMakeFiles/aldsp_runtime.dir/adaptor.cpp.o" "gcc" "src/runtime/CMakeFiles/aldsp_runtime.dir/adaptor.cpp.o.d"
  "/root/repo/src/runtime/evaluator.cpp" "src/runtime/CMakeFiles/aldsp_runtime.dir/evaluator.cpp.o" "gcc" "src/runtime/CMakeFiles/aldsp_runtime.dir/evaluator.cpp.o.d"
  "/root/repo/src/runtime/function_cache.cpp" "src/runtime/CMakeFiles/aldsp_runtime.dir/function_cache.cpp.o" "gcc" "src/runtime/CMakeFiles/aldsp_runtime.dir/function_cache.cpp.o.d"
  "/root/repo/src/runtime/observed_cost.cpp" "src/runtime/CMakeFiles/aldsp_runtime.dir/observed_cost.cpp.o" "gcc" "src/runtime/CMakeFiles/aldsp_runtime.dir/observed_cost.cpp.o.d"
  "/root/repo/src/runtime/tuple_repr.cpp" "src/runtime/CMakeFiles/aldsp_runtime.dir/tuple_repr.cpp.o" "gcc" "src/runtime/CMakeFiles/aldsp_runtime.dir/tuple_repr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/aldsp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/aldsp_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/aldsp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/aldsp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aldsp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/aldsp_xsd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
