file(REMOVE_RECURSE
  "CMakeFiles/aldsp_runtime.dir/adaptor.cpp.o"
  "CMakeFiles/aldsp_runtime.dir/adaptor.cpp.o.d"
  "CMakeFiles/aldsp_runtime.dir/evaluator.cpp.o"
  "CMakeFiles/aldsp_runtime.dir/evaluator.cpp.o.d"
  "CMakeFiles/aldsp_runtime.dir/function_cache.cpp.o"
  "CMakeFiles/aldsp_runtime.dir/function_cache.cpp.o.d"
  "CMakeFiles/aldsp_runtime.dir/observed_cost.cpp.o"
  "CMakeFiles/aldsp_runtime.dir/observed_cost.cpp.o.d"
  "CMakeFiles/aldsp_runtime.dir/tuple_repr.cpp.o"
  "CMakeFiles/aldsp_runtime.dir/tuple_repr.cpp.o.d"
  "libaldsp_runtime.a"
  "libaldsp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
