file(REMOVE_RECURSE
  "libaldsp_runtime.a"
)
