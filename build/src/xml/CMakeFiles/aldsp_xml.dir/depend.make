# Empty dependencies file for aldsp_xml.
# This may be replaced when dependencies are built.
