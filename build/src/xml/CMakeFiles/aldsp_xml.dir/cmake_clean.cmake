file(REMOVE_RECURSE
  "CMakeFiles/aldsp_xml.dir/item.cpp.o"
  "CMakeFiles/aldsp_xml.dir/item.cpp.o.d"
  "CMakeFiles/aldsp_xml.dir/node.cpp.o"
  "CMakeFiles/aldsp_xml.dir/node.cpp.o.d"
  "CMakeFiles/aldsp_xml.dir/parser.cpp.o"
  "CMakeFiles/aldsp_xml.dir/parser.cpp.o.d"
  "CMakeFiles/aldsp_xml.dir/serializer.cpp.o"
  "CMakeFiles/aldsp_xml.dir/serializer.cpp.o.d"
  "CMakeFiles/aldsp_xml.dir/token.cpp.o"
  "CMakeFiles/aldsp_xml.dir/token.cpp.o.d"
  "CMakeFiles/aldsp_xml.dir/value.cpp.o"
  "CMakeFiles/aldsp_xml.dir/value.cpp.o.d"
  "libaldsp_xml.a"
  "libaldsp_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
