file(REMOVE_RECURSE
  "libaldsp_xml.a"
)
