# Empty dependencies file for aldsp_update.
# This may be replaced when dependencies are built.
