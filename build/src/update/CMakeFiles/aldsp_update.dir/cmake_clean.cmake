file(REMOVE_RECURSE
  "CMakeFiles/aldsp_update.dir/engine.cpp.o"
  "CMakeFiles/aldsp_update.dir/engine.cpp.o.d"
  "CMakeFiles/aldsp_update.dir/lineage.cpp.o"
  "CMakeFiles/aldsp_update.dir/lineage.cpp.o.d"
  "CMakeFiles/aldsp_update.dir/sdo.cpp.o"
  "CMakeFiles/aldsp_update.dir/sdo.cpp.o.d"
  "libaldsp_update.a"
  "libaldsp_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
