file(REMOVE_RECURSE
  "libaldsp_update.a"
)
