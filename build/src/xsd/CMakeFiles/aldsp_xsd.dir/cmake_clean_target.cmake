file(REMOVE_RECURSE
  "libaldsp_xsd.a"
)
