file(REMOVE_RECURSE
  "CMakeFiles/aldsp_xsd.dir/types.cpp.o"
  "CMakeFiles/aldsp_xsd.dir/types.cpp.o.d"
  "CMakeFiles/aldsp_xsd.dir/validate.cpp.o"
  "CMakeFiles/aldsp_xsd.dir/validate.cpp.o.d"
  "libaldsp_xsd.a"
  "libaldsp_xsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_xsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
