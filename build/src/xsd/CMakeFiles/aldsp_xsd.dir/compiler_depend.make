# Empty compiler generated dependencies file for aldsp_xsd.
# This may be replaced when dependencies are built.
