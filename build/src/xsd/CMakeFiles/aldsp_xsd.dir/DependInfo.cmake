
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsd/types.cpp" "src/xsd/CMakeFiles/aldsp_xsd.dir/types.cpp.o" "gcc" "src/xsd/CMakeFiles/aldsp_xsd.dir/types.cpp.o.d"
  "/root/repo/src/xsd/validate.cpp" "src/xsd/CMakeFiles/aldsp_xsd.dir/validate.cpp.o" "gcc" "src/xsd/CMakeFiles/aldsp_xsd.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/aldsp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aldsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
