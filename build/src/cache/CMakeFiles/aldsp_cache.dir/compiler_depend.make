# Empty compiler generated dependencies file for aldsp_cache.
# This may be replaced when dependencies are built.
