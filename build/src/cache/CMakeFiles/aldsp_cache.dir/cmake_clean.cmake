file(REMOVE_RECURSE
  "CMakeFiles/aldsp_cache.dir/persistent_store.cpp.o"
  "CMakeFiles/aldsp_cache.dir/persistent_store.cpp.o.d"
  "CMakeFiles/aldsp_cache.dir/typed_codec.cpp.o"
  "CMakeFiles/aldsp_cache.dir/typed_codec.cpp.o.d"
  "libaldsp_cache.a"
  "libaldsp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
