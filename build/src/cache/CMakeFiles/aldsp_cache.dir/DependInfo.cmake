
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/persistent_store.cpp" "src/cache/CMakeFiles/aldsp_cache.dir/persistent_store.cpp.o" "gcc" "src/cache/CMakeFiles/aldsp_cache.dir/persistent_store.cpp.o.d"
  "/root/repo/src/cache/typed_codec.cpp" "src/cache/CMakeFiles/aldsp_cache.dir/typed_codec.cpp.o" "gcc" "src/cache/CMakeFiles/aldsp_cache.dir/typed_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/aldsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/aldsp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/aldsp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aldsp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/aldsp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/aldsp_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/aldsp_xsd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
