file(REMOVE_RECURSE
  "libaldsp_cache.a"
)
