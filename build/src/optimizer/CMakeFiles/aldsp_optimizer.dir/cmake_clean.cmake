file(REMOVE_RECURSE
  "CMakeFiles/aldsp_optimizer.dir/expr_utils.cpp.o"
  "CMakeFiles/aldsp_optimizer.dir/expr_utils.cpp.o.d"
  "CMakeFiles/aldsp_optimizer.dir/optimizer.cpp.o"
  "CMakeFiles/aldsp_optimizer.dir/optimizer.cpp.o.d"
  "libaldsp_optimizer.a"
  "libaldsp_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
