file(REMOVE_RECURSE
  "libaldsp_optimizer.a"
)
