# Empty dependencies file for aldsp_optimizer.
# This may be replaced when dependencies are built.
