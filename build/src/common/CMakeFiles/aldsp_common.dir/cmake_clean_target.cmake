file(REMOVE_RECURSE
  "libaldsp_common.a"
)
