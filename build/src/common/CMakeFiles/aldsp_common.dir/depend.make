# Empty dependencies file for aldsp_common.
# This may be replaced when dependencies are built.
