file(REMOVE_RECURSE
  "CMakeFiles/aldsp_common.dir/diagnostics.cpp.o"
  "CMakeFiles/aldsp_common.dir/diagnostics.cpp.o.d"
  "CMakeFiles/aldsp_common.dir/status.cpp.o"
  "CMakeFiles/aldsp_common.dir/status.cpp.o.d"
  "CMakeFiles/aldsp_common.dir/string_util.cpp.o"
  "CMakeFiles/aldsp_common.dir/string_util.cpp.o.d"
  "libaldsp_common.a"
  "libaldsp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
