# Empty compiler generated dependencies file for aldsp_compiler.
# This may be replaced when dependencies are built.
