file(REMOVE_RECURSE
  "libaldsp_compiler.a"
)
