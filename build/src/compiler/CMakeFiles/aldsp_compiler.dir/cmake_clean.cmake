file(REMOVE_RECURSE
  "CMakeFiles/aldsp_compiler.dir/analyzer.cpp.o"
  "CMakeFiles/aldsp_compiler.dir/analyzer.cpp.o.d"
  "CMakeFiles/aldsp_compiler.dir/builtins.cpp.o"
  "CMakeFiles/aldsp_compiler.dir/builtins.cpp.o.d"
  "CMakeFiles/aldsp_compiler.dir/function_table.cpp.o"
  "CMakeFiles/aldsp_compiler.dir/function_table.cpp.o.d"
  "libaldsp_compiler.a"
  "libaldsp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aldsp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
