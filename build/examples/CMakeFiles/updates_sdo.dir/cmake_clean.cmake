file(REMOVE_RECURSE
  "CMakeFiles/updates_sdo.dir/updates_sdo.cpp.o"
  "CMakeFiles/updates_sdo.dir/updates_sdo.cpp.o.d"
  "updates_sdo"
  "updates_sdo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updates_sdo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
