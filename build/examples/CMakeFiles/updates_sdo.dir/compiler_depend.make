# Empty compiler generated dependencies file for updates_sdo.
# This may be replaced when dependencies are built.
