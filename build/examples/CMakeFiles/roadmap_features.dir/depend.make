# Empty dependencies file for roadmap_features.
# This may be replaced when dependencies are built.
