file(REMOVE_RECURSE
  "CMakeFiles/roadmap_features.dir/roadmap_features.cpp.o"
  "CMakeFiles/roadmap_features.dir/roadmap_features.cpp.o.d"
  "roadmap_features"
  "roadmap_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadmap_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
