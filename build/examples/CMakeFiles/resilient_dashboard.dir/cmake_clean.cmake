file(REMOVE_RECURSE
  "CMakeFiles/resilient_dashboard.dir/resilient_dashboard.cpp.o"
  "CMakeFiles/resilient_dashboard.dir/resilient_dashboard.cpp.o.d"
  "resilient_dashboard"
  "resilient_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
