# Empty dependencies file for resilient_dashboard.
# This may be replaced when dependencies are built.
