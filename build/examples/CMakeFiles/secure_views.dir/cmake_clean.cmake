file(REMOVE_RECURSE
  "CMakeFiles/secure_views.dir/secure_views.cpp.o"
  "CMakeFiles/secure_views.dir/secure_views.cpp.o.d"
  "secure_views"
  "secure_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
