# Empty compiler generated dependencies file for secure_views.
# This may be replaced when dependencies are built.
