# Empty dependencies file for customer_profile.
# This may be replaced when dependencies are built.
