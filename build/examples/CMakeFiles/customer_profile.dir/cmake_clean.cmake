file(REMOVE_RECURSE
  "CMakeFiles/customer_profile.dir/customer_profile.cpp.o"
  "CMakeFiles/customer_profile.dir/customer_profile.cpp.o.d"
  "customer_profile"
  "customer_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/customer_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
