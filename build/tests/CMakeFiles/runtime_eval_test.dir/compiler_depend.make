# Empty compiler generated dependencies file for runtime_eval_test.
# This may be replaced when dependencies are built.
