file(REMOVE_RECURSE
  "CMakeFiles/observed_cost_test.dir/observed_cost_test.cpp.o"
  "CMakeFiles/observed_cost_test.dir/observed_cost_test.cpp.o.d"
  "observed_cost_test"
  "observed_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observed_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
