# Empty dependencies file for observed_cost_test.
# This may be replaced when dependencies are built.
