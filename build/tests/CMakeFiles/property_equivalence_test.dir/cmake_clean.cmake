file(REMOVE_RECURSE
  "CMakeFiles/property_equivalence_test.dir/property_equivalence_test.cpp.o"
  "CMakeFiles/property_equivalence_test.dir/property_equivalence_test.cpp.o.d"
  "property_equivalence_test"
  "property_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
