file(REMOVE_RECURSE
  "CMakeFiles/xml_value_test.dir/xml_value_test.cpp.o"
  "CMakeFiles/xml_value_test.dir/xml_value_test.cpp.o.d"
  "xml_value_test"
  "xml_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
