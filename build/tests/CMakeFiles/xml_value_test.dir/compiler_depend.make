# Empty compiler generated dependencies file for xml_value_test.
# This may be replaced when dependencies are built.
