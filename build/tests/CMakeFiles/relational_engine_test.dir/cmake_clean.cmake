file(REMOVE_RECURSE
  "CMakeFiles/relational_engine_test.dir/relational_engine_test.cpp.o"
  "CMakeFiles/relational_engine_test.dir/relational_engine_test.cpp.o.d"
  "relational_engine_test"
  "relational_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
