# Empty dependencies file for tuple_repr_test.
# This may be replaced when dependencies are built.
