file(REMOVE_RECURSE
  "CMakeFiles/tuple_repr_test.dir/tuple_repr_test.cpp.o"
  "CMakeFiles/tuple_repr_test.dir/tuple_repr_test.cpp.o.d"
  "tuple_repr_test"
  "tuple_repr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_repr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
