# Empty compiler generated dependencies file for adaptors_test.
# This may be replaced when dependencies are built.
