file(REMOVE_RECURSE
  "CMakeFiles/adaptors_test.dir/adaptors_test.cpp.o"
  "CMakeFiles/adaptors_test.dir/adaptors_test.cpp.o.d"
  "adaptors_test"
  "adaptors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
