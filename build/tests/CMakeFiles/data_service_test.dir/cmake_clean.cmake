file(REMOVE_RECURSE
  "CMakeFiles/data_service_test.dir/data_service_test.cpp.o"
  "CMakeFiles/data_service_test.dir/data_service_test.cpp.o.d"
  "data_service_test"
  "data_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
