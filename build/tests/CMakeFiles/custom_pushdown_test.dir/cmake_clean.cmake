file(REMOVE_RECURSE
  "CMakeFiles/custom_pushdown_test.dir/custom_pushdown_test.cpp.o"
  "CMakeFiles/custom_pushdown_test.dir/custom_pushdown_test.cpp.o.d"
  "custom_pushdown_test"
  "custom_pushdown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_pushdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
