# Empty compiler generated dependencies file for custom_pushdown_test.
# This may be replaced when dependencies are built.
