# Empty compiler generated dependencies file for xsd_types_test.
# This may be replaced when dependencies are built.
