file(REMOVE_RECURSE
  "CMakeFiles/join_methods_test.dir/join_methods_test.cpp.o"
  "CMakeFiles/join_methods_test.dir/join_methods_test.cpp.o.d"
  "join_methods_test"
  "join_methods_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
