# Empty dependencies file for sql_patterns_test.
# This may be replaced when dependencies are built.
