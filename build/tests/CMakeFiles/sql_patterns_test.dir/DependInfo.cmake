
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql_patterns_test.cpp" "tests/CMakeFiles/sql_patterns_test.dir/sql_patterns_test.cpp.o" "gcc" "tests/CMakeFiles/sql_patterns_test.dir/sql_patterns_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/aldsp_server.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/aldsp_security.dir/DependInfo.cmake"
  "/root/repo/build/src/update/CMakeFiles/aldsp_update.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/aldsp_service.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/aldsp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptors/CMakeFiles/aldsp_adaptors.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/aldsp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/aldsp_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aldsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/aldsp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/aldsp_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/aldsp_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/aldsp_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/aldsp_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aldsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
