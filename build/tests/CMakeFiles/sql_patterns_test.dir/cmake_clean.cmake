file(REMOVE_RECURSE
  "CMakeFiles/sql_patterns_test.dir/sql_patterns_test.cpp.o"
  "CMakeFiles/sql_patterns_test.dir/sql_patterns_test.cpp.o.d"
  "sql_patterns_test"
  "sql_patterns_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
