# Empty dependencies file for bench_inverse_functions.
# This may be replaced when dependencies are built.
