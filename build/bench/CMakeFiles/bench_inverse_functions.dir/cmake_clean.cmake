file(REMOVE_RECURSE
  "CMakeFiles/bench_inverse_functions.dir/bench_inverse_functions.cpp.o"
  "CMakeFiles/bench_inverse_functions.dir/bench_inverse_functions.cpp.o.d"
  "bench_inverse_functions"
  "bench_inverse_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inverse_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
