file(REMOVE_RECURSE
  "CMakeFiles/bench_ppk_join.dir/bench_ppk_join.cpp.o"
  "CMakeFiles/bench_ppk_join.dir/bench_ppk_join.cpp.o.d"
  "bench_ppk_join"
  "bench_ppk_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ppk_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
