file(REMOVE_RECURSE
  "CMakeFiles/bench_view_unfolding.dir/bench_view_unfolding.cpp.o"
  "CMakeFiles/bench_view_unfolding.dir/bench_view_unfolding.cpp.o.d"
  "bench_view_unfolding"
  "bench_view_unfolding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_unfolding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
