# Empty dependencies file for bench_view_unfolding.
# This may be replaced when dependencies are built.
