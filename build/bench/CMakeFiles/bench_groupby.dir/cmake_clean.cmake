file(REMOVE_RECURSE
  "CMakeFiles/bench_groupby.dir/bench_groupby.cpp.o"
  "CMakeFiles/bench_groupby.dir/bench_groupby.cpp.o.d"
  "bench_groupby"
  "bench_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
