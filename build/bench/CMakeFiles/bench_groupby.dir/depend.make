# Empty dependencies file for bench_groupby.
# This may be replaced when dependencies are built.
