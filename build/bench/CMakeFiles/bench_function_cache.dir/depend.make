# Empty dependencies file for bench_function_cache.
# This may be replaced when dependencies are built.
