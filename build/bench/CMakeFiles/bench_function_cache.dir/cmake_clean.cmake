file(REMOVE_RECURSE
  "CMakeFiles/bench_function_cache.dir/bench_function_cache.cpp.o"
  "CMakeFiles/bench_function_cache.dir/bench_function_cache.cpp.o.d"
  "bench_function_cache"
  "bench_function_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_function_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
