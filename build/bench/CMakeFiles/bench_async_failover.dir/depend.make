# Empty dependencies file for bench_async_failover.
# This may be replaced when dependencies are built.
