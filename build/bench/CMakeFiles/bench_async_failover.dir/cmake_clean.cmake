file(REMOVE_RECURSE
  "CMakeFiles/bench_async_failover.dir/bench_async_failover.cpp.o"
  "CMakeFiles/bench_async_failover.dir/bench_async_failover.cpp.o.d"
  "bench_async_failover"
  "bench_async_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
