# Empty compiler generated dependencies file for bench_pushdown_patterns.
# This may be replaced when dependencies are built.
