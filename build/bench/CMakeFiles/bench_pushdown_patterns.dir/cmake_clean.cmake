file(REMOVE_RECURSE
  "CMakeFiles/bench_pushdown_patterns.dir/bench_pushdown_patterns.cpp.o"
  "CMakeFiles/bench_pushdown_patterns.dir/bench_pushdown_patterns.cpp.o.d"
  "bench_pushdown_patterns"
  "bench_pushdown_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pushdown_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
