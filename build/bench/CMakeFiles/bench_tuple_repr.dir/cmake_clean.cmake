file(REMOVE_RECURSE
  "CMakeFiles/bench_tuple_repr.dir/bench_tuple_repr.cpp.o"
  "CMakeFiles/bench_tuple_repr.dir/bench_tuple_repr.cpp.o.d"
  "bench_tuple_repr"
  "bench_tuple_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tuple_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
