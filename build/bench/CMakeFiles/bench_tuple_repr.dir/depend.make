# Empty dependencies file for bench_tuple_repr.
# This may be replaced when dependencies are built.
