#include "relational/cell.h"

namespace aldsp::relational {

Tribool TriAnd(Tribool a, Tribool b) {
  if (a == Tribool::kFalse || b == Tribool::kFalse) return Tribool::kFalse;
  if (a == Tribool::kUnknown || b == Tribool::kUnknown) return Tribool::kUnknown;
  return Tribool::kTrue;
}

Tribool TriOr(Tribool a, Tribool b) {
  if (a == Tribool::kTrue || b == Tribool::kTrue) return Tribool::kTrue;
  if (a == Tribool::kUnknown || b == Tribool::kUnknown) return Tribool::kUnknown;
  return Tribool::kFalse;
}

Tribool TriNot(Tribool a) {
  switch (a) {
    case Tribool::kTrue:
      return Tribool::kFalse;
    case Tribool::kFalse:
      return Tribool::kTrue;
    case Tribool::kUnknown:
      return Tribool::kUnknown;
  }
  return Tribool::kUnknown;
}

Result<Tribool> CompareCells(const Cell& a, const Cell& b,
                             const std::string& op) {
  if (a.is_null || b.is_null) return Tribool::kUnknown;
  ALDSP_ASSIGN_OR_RETURN(int c, a.value.Compare(b.value));
  bool result;
  if (op == "=") {
    result = c == 0;
  } else if (op == "<>") {
    result = c != 0;
  } else if (op == "<") {
    result = c < 0;
  } else if (op == "<=") {
    result = c <= 0;
  } else if (op == ">") {
    result = c > 0;
  } else if (op == ">=") {
    result = c >= 0;
  } else {
    return Status::InvalidArgument("unknown comparison operator: " + op);
  }
  return ToTribool(result);
}

bool GroupingEquals(const Cell& a, const Cell& b) {
  if (a.is_null && b.is_null) return true;
  if (a.is_null != b.is_null) return false;
  auto cmp = a.value.Compare(b.value);
  return cmp.ok() && cmp.value() == 0;
}

int OrderCompare(const Cell& a, const Cell& b) {
  if (a.is_null && b.is_null) return 0;
  if (a.is_null) return 1;   // NULLs last
  if (b.is_null) return -1;
  auto cmp = a.value.Compare(b.value);
  if (!cmp.ok()) {
    // Incomparable types: order by type id to keep the sort total.
    return static_cast<int>(a.value.type()) - static_cast<int>(b.value.type());
  }
  return cmp.value();
}

}  // namespace aldsp::relational
