#ifndef ALDSP_RELATIONAL_ENGINE_H_
#define ALDSP_RELATIONAL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"
#include "relational/cell.h"
#include "relational/sql_ast.h"

namespace aldsp::relational {

/// Cost model for talking to this (simulated) backend over the network.
/// The PP-k tradeoff in the paper is round-trips vs middleware memory;
/// these knobs let benchmarks reproduce it: every statement costs one
/// round-trip, every shipped result row costs transfer time.
struct LatencyModel {
  int64_t roundtrip_micros = 0;
  int64_t per_row_micros = 0;
  /// If false, latency is only accounted in stats (virtual time), letting
  /// large sweeps run fast; if true the engine really sleeps.
  bool sleep = true;
};

/// Counters a benchmark or the observed-cost optimizer can read.
struct SourceStats {
  std::atomic<int64_t> statements{0};
  std::atomic<int64_t> rows_shipped{0};
  std::atomic<int64_t> rows_scanned{0};
  std::atomic<int64_t> simulated_latency_micros{0};

  void Reset() {
    statements = 0;
    rows_shipped = 0;
    rows_scanned = 0;
    simulated_latency_micros = 0;
  }
};

/// A materialized query result.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
};

/// An in-memory relational database with a SQL-AST executor. One Database
/// instance models one backend RDBMS (the paper's examples use two: one
/// holding CUSTOMER/ORDER and one holding CREDIT_CARD).
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }
  const Catalog& catalog() const { return catalog_; }

  Status CreateTable(TableDef def);
  /// Bulk load; validates arity and column types, enforcing NOT NULL.
  Status InsertRow(const std::string& table, Row row);

  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt,
                                  const std::vector<Cell>& params = {});
  Result<int64_t> ExecuteUpdate(const UpdateStmt& stmt,
                                const std::vector<Cell>& params = {});
  Result<int64_t> ExecuteInsert(const InsertStmt& stmt,
                                const std::vector<Cell>& params = {});
  Result<int64_t> ExecuteDelete(const DeleteStmt& stmt,
                                const std::vector<Cell>& params = {});

  /// XA-style transaction simulation (paper §6: submit executes as an
  /// atomic transaction across the affected sources when they support 2PC).
  Status Begin();
  Status Prepare();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return in_transaction_; }

  /// Fault injection for fail-over tests: the next `n` statements fail.
  void FailNextStatements(int n) { fail_next_ = n; }
  /// Fault injection for 2PC tests.
  void FailNextPrepare(bool fail) { fail_prepare_ = fail; }

  LatencyModel& latency_model() { return latency_; }
  SourceStats& stats() { return stats_; }

  /// Direct table access for tests.
  Result<std::vector<Row>> TableData(const std::string& table) const;

 private:
  struct TableStorage {
    TableDef def;
    std::vector<Row> rows;
  };

  TableStorage* FindStorage(const std::string& name);
  const TableStorage* FindStorage(const std::string& name) const;
  /// Accounts the round-trip / per-row transfer cost in stats and adds the
  /// micros to sleep to *sleep_micros. The caller sleeps AFTER releasing
  /// mutex_ (see SimulateLatency) so that concurrent statements against the
  /// same backend overlap their simulated wire time, the way independent
  /// connections to a real RDBMS would.
  Status ChargeStatement(int64_t* sleep_micros);
  void ChargeRows(size_t n, int64_t* sleep_micros);
  void SimulateLatency(int64_t sleep_micros) const;
  Status CheckRow(const TableDef& def, const Row& row) const;

  std::string name_;
  Catalog catalog_;
  std::vector<std::unique_ptr<TableStorage>> tables_;
  LatencyModel latency_;
  SourceStats stats_;
  mutable std::mutex mutex_;

  bool in_transaction_ = false;
  bool prepared_ = false;
  std::vector<std::pair<std::string, std::vector<Row>>> snapshot_;
  std::atomic<int> fail_next_{0};
  bool fail_prepare_ = false;
};

}  // namespace aldsp::relational

#endif  // ALDSP_RELATIONAL_ENGINE_H_
