#ifndef ALDSP_RELATIONAL_SQL_AST_H_
#define ALDSP_RELATIONAL_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/cell.h"

namespace aldsp::relational {

struct SqlExpr;
struct SelectStmt;
using SqlExprPtr = std::shared_ptr<SqlExpr>;
using SelectPtr = std::shared_ptr<SelectStmt>;

/// Scalar SQL functions pushable by ALDSP (paper §4.4 lists string
/// functions, numeric/date arithmetic, comparisons, aggregates, ...).
enum class SqlFunc {
  kUpper,
  kLower,
  kSubstr,   // SUBSTR(s, start[, len]) — 1-based
  kLength,
  kConcat,
  kAbs,
  kMod,
};

enum class SqlAgg { kCountStar, kCount, kSum, kAvg, kMin, kMax };

/// A scalar SQL expression.
struct SqlExpr {
  enum class Kind {
    kColumn,     // alias.column
    kLiteral,    // constant (possibly NULL)
    kParam,      // ? parameter, bound at execution time (PP-k, ext. vars)
    kBinary,     // op in {=,<>,<,<=,>,>=,+,-,*,/,AND,OR}
    kNot,
    kIsNull,     // IS [NOT] NULL via `negated`
    kCase,       // searched CASE
    kFunc,       // scalar function
    kAggregate,  // aggregate (only valid in grouped selects)
    kInList,     // expr IN (e1, e2, ...) — the PP-k disjunctive form
    kExists,     // EXISTS (subquery), possibly correlated
    kLike,       // expr LIKE 'pattern' ESCAPE '\'
  };

  Kind kind;

  // kColumn
  std::string table_alias;
  std::string column;

  // kLiteral
  Cell literal;

  // kParam
  int param_index = -1;

  // kBinary / kNot / kIsNull / kFunc / kInList arguments
  std::string op;  // binary operator token; LIKE pattern for kLike
  std::vector<SqlExprPtr> args;
  bool negated = false;  // IS NOT NULL, NOT IN

  // kCase: whens[i] is (condition, result); args holds else at the end if
  // `has_else`.
  std::vector<std::pair<SqlExprPtr, SqlExprPtr>> whens;
  SqlExprPtr else_expr;

  // kFunc / kAggregate
  SqlFunc func = SqlFunc::kUpper;
  SqlAgg agg = SqlAgg::kCountStar;
  bool distinct = false;

  // kExists
  SelectPtr subquery;

  static SqlExprPtr Column(std::string alias, std::string column);
  static SqlExprPtr Literal(Cell value);
  static SqlExprPtr Param(int index);
  static SqlExprPtr Binary(std::string op, SqlExprPtr lhs, SqlExprPtr rhs);
  static SqlExprPtr Not(SqlExprPtr arg);
  static SqlExprPtr IsNull(SqlExprPtr arg, bool negated = false);
  static SqlExprPtr Case(std::vector<std::pair<SqlExprPtr, SqlExprPtr>> whens,
                         SqlExprPtr else_expr);
  static SqlExprPtr Func(SqlFunc f, std::vector<SqlExprPtr> args);
  static SqlExprPtr Aggregate(SqlAgg agg, SqlExprPtr arg, bool distinct = false);
  static SqlExprPtr InList(SqlExprPtr probe, std::vector<SqlExprPtr> values,
                           bool negated = false);
  static SqlExprPtr Exists(SelectPtr subquery);
  /// `pattern` uses SQL wildcards (% and _) with '\' as escape.
  static SqlExprPtr Like(SqlExprPtr input, std::string pattern);

  /// Deep copy.
  SqlExprPtr Clone() const;
};

/// FROM-clause item: a base table or a derived table (subselect).
struct TableRef {
  std::string table_name;  // empty if derived
  SelectPtr derived;       // non-null if derived table
  std::string alias;
};

enum class JoinKind { kInner, kLeftOuter };

struct JoinClause {
  JoinKind kind = JoinKind::kInner;
  TableRef right;
  SqlExprPtr condition;
};

struct SelectItem {
  SqlExprPtr expr;
  std::string output_name;  // "c1", "c2", ... in generated SQL
};

struct OrderItem {
  SqlExprPtr expr;
  bool descending = false;
};

/// A (single-block) SELECT statement, rich enough for the paper's pushdown
/// patterns (a)-(i): joins, outer joins, CASE, GROUP BY + aggregates,
/// DISTINCT, EXISTS, ORDER BY and row-range pagination.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;
  std::vector<OrderItem> order_by;
  /// Row range [start, start+count) with 1-based start; -1 means unbounded.
  /// Rendered per-dialect (Oracle ROWNUM nesting per Table 2(i)).
  int64_t range_start = -1;
  int64_t range_count = -1;

  SelectPtr Clone() const;
};

/// UPDATE t SET col = expr, ... WHERE cond — produced by the update
/// decomposition (paper §6); optimistic-concurrency checks land in `where`.
struct UpdateStmt {
  std::string table_name;
  std::vector<std::pair<std::string, SqlExprPtr>> assignments;
  SqlExprPtr where;
};

struct InsertStmt {
  std::string table_name;
  std::vector<std::string> columns;
  std::vector<SqlExprPtr> values;
};

struct DeleteStmt {
  std::string table_name;
  SqlExprPtr where;
};

/// Debug rendering (dialect-neutral); the per-vendor writers live in
/// src/sql/dialect.h.
std::string DebugString(const SqlExpr& expr);
std::string DebugString(const SelectStmt& stmt);

}  // namespace aldsp::relational

#endif  // ALDSP_RELATIONAL_SQL_AST_H_
