#include "relational/catalog.h"

namespace aldsp::relational {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInteger:
      return "INTEGER";
    case ColumnType::kBigInt:
      return "BIGINT";
    case ColumnType::kDecimal:
      return "DECIMAL";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kVarchar:
      return "VARCHAR";
    case ColumnType::kBoolean:
      return "BOOLEAN";
    case ColumnType::kTimestamp:
      return "TIMESTAMP";
  }
  return "?";
}

xml::AtomicType ToAtomicType(ColumnType t) {
  switch (t) {
    case ColumnType::kInteger:
    case ColumnType::kBigInt:
      return xml::AtomicType::kInteger;
    case ColumnType::kDecimal:
      return xml::AtomicType::kDecimal;
    case ColumnType::kDouble:
      return xml::AtomicType::kDouble;
    case ColumnType::kVarchar:
      return xml::AtomicType::kString;
    case ColumnType::kBoolean:
      return xml::AtomicType::kBoolean;
    case ColumnType::kTimestamp:
      return xml::AtomicType::kDateTime;
  }
  return xml::AtomicType::kString;
}

int TableDef::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

const ColumnDef* TableDef::FindColumn(const std::string& column) const {
  int idx = ColumnIndex(column);
  return idx < 0 ? nullptr : &columns[static_cast<size_t>(idx)];
}

Status Catalog::AddTable(TableDef def) {
  if (FindTable(def.name) != nullptr) {
    return Status::InvalidArgument("table already exists: " + def.name);
  }
  tables_.push_back(std::move(def));
  return Status::OK();
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace aldsp::relational
