#ifndef ALDSP_RELATIONAL_CELL_H_
#define ALDSP_RELATIONAL_CELL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/value.h"

namespace aldsp::relational {

/// A nullable SQL value. NULLs are modeled explicitly here and become
/// *missing elements* when rows cross into XML (paper §4.4: "NULLs are
/// modeled as missing column elements, so the rows can be 'ragged'").
struct Cell {
  bool is_null = true;
  xml::AtomicValue value;

  static Cell Null() { return {}; }
  static Cell Of(xml::AtomicValue v) { return {false, std::move(v)}; }
  static Cell Int(int64_t v) { return Of(xml::AtomicValue::Integer(v)); }
  static Cell Str(std::string v) {
    return Of(xml::AtomicValue::String(std::move(v)));
  }
  static Cell Dbl(double v) { return Of(xml::AtomicValue::Double(v)); }
  static Cell Bool(bool v) { return Of(xml::AtomicValue::Boolean(v)); }
  static Cell Ts(int64_t epoch_seconds) {
    return Of(xml::AtomicValue::DateTime(epoch_seconds));
  }

  std::string ToString() const { return is_null ? "NULL" : value.Lexical(); }
};

using Row = std::vector<Cell>;

/// SQL three-valued logic.
enum class Tribool { kFalse, kTrue, kUnknown };

inline Tribool ToTribool(bool b) { return b ? Tribool::kTrue : Tribool::kFalse; }
Tribool TriAnd(Tribool a, Tribool b);
Tribool TriOr(Tribool a, Tribool b);
Tribool TriNot(Tribool a);

/// SQL comparison with NULL propagation; `op` is one of =,<>,<,<=,>,>=.
Result<Tribool> CompareCells(const Cell& a, const Cell& b,
                             const std::string& op);

/// Equality used by GROUP BY / DISTINCT (NULLs group together).
bool GroupingEquals(const Cell& a, const Cell& b);
/// Ordering used by ORDER BY (NULLs sort last, as Oracle defaults).
int OrderCompare(const Cell& a, const Cell& b);

}  // namespace aldsp::relational

#endif  // ALDSP_RELATIONAL_CELL_H_
