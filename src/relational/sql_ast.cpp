#include "relational/sql_ast.h"

#include <sstream>

namespace aldsp::relational {

SqlExprPtr SqlExpr::Column(std::string alias, std::string column) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kColumn;
  e->table_alias = std::move(alias);
  e->column = std::move(column);
  return e;
}

SqlExprPtr SqlExpr::Literal(Cell value) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(value);
  return e;
}

SqlExprPtr SqlExpr::Param(int index) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kParam;
  e->param_index = index;
  return e;
}

SqlExprPtr SqlExpr::Binary(std::string op, SqlExprPtr lhs, SqlExprPtr rhs) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kBinary;
  e->op = std::move(op);
  e->args = {std::move(lhs), std::move(rhs)};
  return e;
}

SqlExprPtr SqlExpr::Not(SqlExprPtr arg) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kNot;
  e->args = {std::move(arg)};
  return e;
}

SqlExprPtr SqlExpr::IsNull(SqlExprPtr arg, bool negated) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kIsNull;
  e->args = {std::move(arg)};
  e->negated = negated;
  return e;
}

SqlExprPtr SqlExpr::Case(std::vector<std::pair<SqlExprPtr, SqlExprPtr>> whens,
                         SqlExprPtr else_expr) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kCase;
  e->whens = std::move(whens);
  e->else_expr = std::move(else_expr);
  return e;
}

SqlExprPtr SqlExpr::Func(SqlFunc f, std::vector<SqlExprPtr> args) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kFunc;
  e->func = f;
  e->args = std::move(args);
  return e;
}

SqlExprPtr SqlExpr::Aggregate(SqlAgg agg, SqlExprPtr arg, bool distinct) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kAggregate;
  e->agg = agg;
  if (arg) e->args = {std::move(arg)};
  e->distinct = distinct;
  return e;
}

SqlExprPtr SqlExpr::InList(SqlExprPtr probe, std::vector<SqlExprPtr> values,
                           bool negated) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kInList;
  e->args.push_back(std::move(probe));
  for (auto& v : values) e->args.push_back(std::move(v));
  e->negated = negated;
  return e;
}

SqlExprPtr SqlExpr::Exists(SelectPtr subquery) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kExists;
  e->subquery = std::move(subquery);
  return e;
}

SqlExprPtr SqlExpr::Like(SqlExprPtr input, std::string pattern) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = Kind::kLike;
  e->args = {std::move(input)};
  e->op = std::move(pattern);
  return e;
}

SqlExprPtr SqlExpr::Clone() const {
  auto e = std::make_shared<SqlExpr>(*this);
  e->args.clear();
  for (const auto& a : args) e->args.push_back(a ? a->Clone() : nullptr);
  e->whens.clear();
  for (const auto& [c, r] : whens) {
    e->whens.emplace_back(c ? c->Clone() : nullptr, r ? r->Clone() : nullptr);
  }
  if (else_expr) e->else_expr = else_expr->Clone();
  if (subquery) e->subquery = subquery->Clone();
  return e;
}

SelectPtr SelectStmt::Clone() const {
  auto s = std::make_shared<SelectStmt>();
  s->distinct = distinct;
  for (const auto& item : items) {
    s->items.push_back({item.expr ? item.expr->Clone() : nullptr,
                        item.output_name});
  }
  s->from = from;
  if (from.derived) s->from.derived = from.derived->Clone();
  for (const auto& j : joins) {
    JoinClause jc = j;
    if (j.right.derived) jc.right.derived = j.right.derived->Clone();
    if (j.condition) jc.condition = j.condition->Clone();
    s->joins.push_back(std::move(jc));
  }
  if (where) s->where = where->Clone();
  for (const auto& g : group_by) s->group_by.push_back(g->Clone());
  if (having) s->having = having->Clone();
  for (const auto& o : order_by) {
    s->order_by.push_back({o.expr->Clone(), o.descending});
  }
  s->range_start = range_start;
  s->range_count = range_count;
  return s;
}

namespace {

const char* AggName(SqlAgg a) {
  switch (a) {
    case SqlAgg::kCountStar:
    case SqlAgg::kCount:
      return "COUNT";
    case SqlAgg::kSum:
      return "SUM";
    case SqlAgg::kAvg:
      return "AVG";
    case SqlAgg::kMin:
      return "MIN";
    case SqlAgg::kMax:
      return "MAX";
  }
  return "?";
}

const char* FuncName(SqlFunc f) {
  switch (f) {
    case SqlFunc::kUpper:
      return "UPPER";
    case SqlFunc::kLower:
      return "LOWER";
    case SqlFunc::kSubstr:
      return "SUBSTR";
    case SqlFunc::kLength:
      return "LENGTH";
    case SqlFunc::kConcat:
      return "CONCAT";
    case SqlFunc::kAbs:
      return "ABS";
    case SqlFunc::kMod:
      return "MOD";
  }
  return "?";
}

void WriteExpr(const SqlExpr& e, std::ostringstream& os);

void WriteSelect(const SelectStmt& s, std::ostringstream& os) {
  os << "SELECT ";
  if (s.distinct) os << "DISTINCT ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i > 0) os << ", ";
    WriteExpr(*s.items[i].expr, os);
    if (!s.items[i].output_name.empty()) os << " AS " << s.items[i].output_name;
  }
  os << " FROM ";
  if (s.from.derived) {
    os << "(";
    WriteSelect(*s.from.derived, os);
    os << ")";
  } else {
    os << "\"" << s.from.table_name << "\"";
  }
  if (!s.from.alias.empty()) os << " " << s.from.alias;
  for (const auto& j : s.joins) {
    os << (j.kind == JoinKind::kInner ? " JOIN " : " LEFT OUTER JOIN ");
    if (j.right.derived) {
      os << "(";
      WriteSelect(*j.right.derived, os);
      os << ")";
    } else {
      os << "\"" << j.right.table_name << "\"";
    }
    if (!j.right.alias.empty()) os << " " << j.right.alias;
    if (j.condition) {
      os << " ON ";
      WriteExpr(*j.condition, os);
    }
  }
  if (s.where) {
    os << " WHERE ";
    WriteExpr(*s.where, os);
  }
  if (!s.group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) os << ", ";
      WriteExpr(*s.group_by[i], os);
    }
  }
  if (s.having) {
    os << " HAVING ";
    WriteExpr(*s.having, os);
  }
  if (!s.order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i > 0) os << ", ";
      WriteExpr(*s.order_by[i].expr, os);
      if (s.order_by[i].descending) os << " DESC";
    }
  }
  if (s.range_start >= 0 || s.range_count >= 0) {
    os << " RANGE(" << s.range_start << "," << s.range_count << ")";
  }
}

void WriteExpr(const SqlExpr& e, std::ostringstream& os) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn:
      if (!e.table_alias.empty()) os << e.table_alias << ".";
      os << "\"" << e.column << "\"";
      break;
    case SqlExpr::Kind::kLiteral:
      if (e.literal.is_null) {
        os << "NULL";
      } else if (e.literal.value.is_string()) {
        os << "'" << e.literal.value.Lexical() << "'";
      } else {
        os << e.literal.ToString();
      }
      break;
    case SqlExpr::Kind::kParam:
      os << "?";
      break;
    case SqlExpr::Kind::kBinary:
      os << "(";
      WriteExpr(*e.args[0], os);
      os << " " << e.op << " ";
      WriteExpr(*e.args[1], os);
      os << ")";
      break;
    case SqlExpr::Kind::kNot:
      os << "NOT (";
      WriteExpr(*e.args[0], os);
      os << ")";
      break;
    case SqlExpr::Kind::kIsNull:
      WriteExpr(*e.args[0], os);
      os << (e.negated ? " IS NOT NULL" : " IS NULL");
      break;
    case SqlExpr::Kind::kCase:
      os << "CASE";
      for (const auto& [c, r] : e.whens) {
        os << " WHEN ";
        WriteExpr(*c, os);
        os << " THEN ";
        WriteExpr(*r, os);
      }
      if (e.else_expr) {
        os << " ELSE ";
        WriteExpr(*e.else_expr, os);
      }
      os << " END";
      break;
    case SqlExpr::Kind::kFunc:
      os << FuncName(e.func) << "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ", ";
        WriteExpr(*e.args[i], os);
      }
      os << ")";
      break;
    case SqlExpr::Kind::kAggregate:
      os << AggName(e.agg) << "(";
      if (e.agg == SqlAgg::kCountStar) {
        os << "*";
      } else {
        if (e.distinct) os << "DISTINCT ";
        WriteExpr(*e.args[0], os);
      }
      os << ")";
      break;
    case SqlExpr::Kind::kInList:
      WriteExpr(*e.args[0], os);
      os << (e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < e.args.size(); ++i) {
        if (i > 1) os << ", ";
        WriteExpr(*e.args[i], os);
      }
      os << ")";
      break;
    case SqlExpr::Kind::kExists:
      os << "EXISTS(";
      WriteSelect(*e.subquery, os);
      os << ")";
      break;
    case SqlExpr::Kind::kLike:
      WriteExpr(*e.args[0], os);
      os << " LIKE '" << e.op << "'";
      break;
  }
}

}  // namespace

std::string DebugString(const SqlExpr& expr) {
  std::ostringstream os;
  WriteExpr(expr, os);
  return os.str();
}

std::string DebugString(const SelectStmt& stmt) {
  std::ostringstream os;
  WriteSelect(stmt, os);
  return os.str();
}

}  // namespace aldsp::relational
