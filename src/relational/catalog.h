#ifndef ALDSP_RELATIONAL_CATALOG_H_
#define ALDSP_RELATIONAL_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xml/value.h"

namespace aldsp::relational {

/// SQL column types of the substrate. Each maps to an XML atomic type via
/// the "well-defined set of SQL to XML data type mappings" (paper §4.4).
enum class ColumnType {
  kInteger,    // -> xs:integer
  kBigInt,     // -> xs:integer
  kDecimal,    // -> xs:decimal
  kDouble,     // -> xs:double
  kVarchar,    // -> xs:string
  kBoolean,    // -> xs:boolean
  kTimestamp,  // -> xs:dateTime
};

const char* ColumnTypeName(ColumnType t);
xml::AtomicType ToAtomicType(ColumnType t);

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kVarchar;
  bool nullable = true;
};

/// A foreign key: `columns` of this table reference `ref_columns` of
/// `ref_table`. Introspection turns these into navigation functions
/// (paper §2.1).
struct ForeignKey {
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKey> foreign_keys;

  /// Index of a column by name, or -1.
  int ColumnIndex(const std::string& column) const;
  const ColumnDef* FindColumn(const std::string& column) const;
};

/// Schema metadata of one database, introspectable by the adaptor layer.
class Catalog {
 public:
  Status AddTable(TableDef def);
  const TableDef* FindTable(const std::string& name) const;
  const std::vector<TableDef>& tables() const { return tables_; }

 private:
  std::vector<TableDef> tables_;
};

}  // namespace aldsp::relational

#endif  // ALDSP_RELATIONAL_CATALOG_H_
