#include "relational/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>
#include <unordered_map>

#include "common/string_util.h"

namespace aldsp::relational {

namespace {

/// A flat working relation during execution: the concatenation of all
/// joined tables' columns, with a scope mapping aliases to offsets.
struct ScopeEntry {
  std::string alias;
  size_t offset;
  std::vector<std::string> cols;
};

struct Scope {
  std::vector<ScopeEntry> entries;

  // Returns (found, column offset in flat row).
  bool Resolve(const std::string& alias, const std::string& column,
               size_t* index) const {
    for (const auto& e : entries) {
      if (!alias.empty() && e.alias != alias) continue;
      for (size_t i = 0; i < e.cols.size(); ++i) {
        if (e.cols[i] == column) {
          *index = e.offset + i;
          return true;
        }
      }
      if (!alias.empty()) return false;  // alias matched but column missing
    }
    return false;
  }

  size_t Width() const {
    if (entries.empty()) return 0;
    const auto& last = entries.back();
    return last.offset + last.cols.size();
  }
};

/// Evaluation frame: a scope + current flat row, an optional group of
/// member rows (for aggregates), and a link to the enclosing frame for
/// correlated subqueries.
struct Frame {
  const Scope* scope = nullptr;
  const Row* row = nullptr;
  const std::vector<const Row*>* group = nullptr;
  const Frame* outer = nullptr;
};

struct Relation {
  Scope scope;
  std::vector<Row> rows;
};

// Canonical encoding of a cell for hashing/grouping. NULL encodes to a
// distinguished tag (used by GROUP BY, where NULLs group together); join
// code must skip NULL keys itself.
std::string EncodeCell(const Cell& c) {
  if (c.is_null) return std::string("\x01N", 2);
  const xml::AtomicValue& v = c.value;
  char buf[64];
  switch (v.type()) {
    case xml::AtomicType::kInteger:
    case xml::AtomicType::kDateTime: {
      int64_t n = v.type() == xml::AtomicType::kInteger ? v.AsInteger()
                                                        : v.AsDateTime();
      std::snprintf(buf, sizeof(buf), "n%.17g", static_cast<double>(n));
      return buf;
    }
    case xml::AtomicType::kDecimal:
    case xml::AtomicType::kDouble:
      std::snprintf(buf, sizeof(buf), "n%.17g", v.AsDouble());
      return buf;
    case xml::AtomicType::kBoolean:
      return v.AsBoolean() ? "b1" : "b0";
    case xml::AtomicType::kString:
    case xml::AtomicType::kUntyped:
      return "s" + v.AsString();
  }
  return "?";
}

// SQL LIKE with % (any run), _ (any one char) and '\' escaping.
bool LikeMatch(const std::string& text, const std::string& pattern, size_t ti,
               size_t pi) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive % and try every suffix.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t t = ti; t <= text.size(); ++t) {
        if (LikeMatch(text, pattern, t, pi)) return true;
      }
      return false;
    }
    if (pc == '\\' && pi + 1 < pattern.size()) {
      pc = pattern[++pi];
      if (ti >= text.size() || text[ti] != pc) return false;
    } else if (pc == '_') {
      if (ti >= text.size()) return false;
    } else {
      if (ti >= text.size() || text[ti] != pc) return false;
    }
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

std::string EncodeCells(const std::vector<Cell>& cells) {
  std::string out;
  for (const auto& c : cells) {
    std::string e = EncodeCell(c);
    out += std::to_string(e.size());
    out += ':';
    out += e;
  }
  return out;
}

class Executor {
 public:
  using TableLookup =
      std::function<Status(const std::string&, const TableDef**,
                           const std::vector<Row>**)>;

  Executor(TableLookup lookup, const std::vector<Cell>* params,
           SourceStats* stats)
      : lookup_(std::move(lookup)), params_(params), stats_(stats) {}

  Result<ResultSet> Run(const SelectStmt& stmt) {
    ALDSP_ASSIGN_OR_RETURN(Relation rel, ExecSelect(stmt, nullptr));
    ResultSet rs;
    rs.column_names = rel.scope.entries.empty()
                          ? std::vector<std::string>{}
                          : rel.scope.entries.front().cols;
    rs.rows = std::move(rel.rows);
    return rs;
  }

  Result<Cell> EvalPublic(const SqlExpr& e, const Frame& f) { return Eval(e, f); }

  Result<Relation> ExecSelect(const SelectStmt& s, const Frame* outer) {
    // ----- FROM + JOINs -----
    ALDSP_ASSIGN_OR_RETURN(Relation working, EvalTableRef(s.from, outer));
    for (const auto& join : s.joins) {
      ALDSP_ASSIGN_OR_RETURN(Relation right, EvalTableRef(join.right, outer));
      ALDSP_ASSIGN_OR_RETURN(working,
                             ExecJoin(std::move(working), std::move(right),
                                      join, outer));
    }

    // ----- WHERE -----
    if (s.where) {
      std::vector<Row> kept;
      for (auto& row : working.rows) {
        Frame f{&working.scope, &row, nullptr, outer};
        ALDSP_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*s.where, f));
        if (keep) kept.push_back(std::move(row));
      }
      working.rows = std::move(kept);
    }

    bool grouped = !s.group_by.empty() || s.having != nullptr ||
                   AnyAggregate(s.items) || AnyAggregateInOrderBy(s.order_by);

    struct OutRow {
      std::vector<Cell> order_keys;
      Row cells;
    };
    std::vector<OutRow> out;

    if (grouped) {
      // ----- GROUP BY -----
      struct Group {
        std::vector<const Row*> members;
      };
      std::vector<Group> groups;
      std::unordered_map<std::string, size_t> index;
      if (s.group_by.empty()) {
        // Global aggregate: exactly one group (possibly empty).
        groups.emplace_back();
        for (const auto& row : working.rows) {
          groups[0].members.push_back(&row);
        }
      } else {
        for (const auto& row : working.rows) {
          Frame f{&working.scope, &row, nullptr, outer};
          std::vector<Cell> key;
          for (const auto& g : s.group_by) {
            ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(*g, f));
            key.push_back(std::move(c));
          }
          std::string enc = EncodeCells(key);
          auto it = index.find(enc);
          if (it == index.end()) {
            index.emplace(enc, groups.size());
            groups.emplace_back();
            it = index.find(enc);
          }
          groups[it->second].members.push_back(&row);
        }
      }
      Row null_row(working.scope.Width(), Cell::Null());
      for (const auto& g : groups) {
        const Row* rep = g.members.empty() ? &null_row : g.members.front();
        Frame f{&working.scope, rep, &g.members, outer};
        if (s.having) {
          ALDSP_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*s.having, f));
          if (!keep) continue;
        }
        OutRow orow;
        for (const auto& item : s.items) {
          ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(*item.expr, f));
          orow.cells.push_back(std::move(c));
        }
        for (const auto& o : s.order_by) {
          ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(*o.expr, f));
          orow.order_keys.push_back(std::move(c));
        }
        out.push_back(std::move(orow));
      }
    } else {
      for (const auto& row : working.rows) {
        Frame f{&working.scope, &row, nullptr, outer};
        OutRow orow;
        for (const auto& item : s.items) {
          ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(*item.expr, f));
          orow.cells.push_back(std::move(c));
        }
        for (const auto& o : s.order_by) {
          ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(*o.expr, f));
          orow.order_keys.push_back(std::move(c));
        }
        out.push_back(std::move(orow));
      }
    }

    // ----- ORDER BY -----
    if (!s.order_by.empty()) {
      std::stable_sort(out.begin(), out.end(),
                       [&](const OutRow& a, const OutRow& b) {
                         for (size_t i = 0; i < s.order_by.size(); ++i) {
                           int c = OrderCompare(a.order_keys[i], b.order_keys[i]);
                           if (c != 0) {
                             return s.order_by[i].descending ? c > 0 : c < 0;
                           }
                         }
                         return false;
                       });
    }

    // ----- DISTINCT -----
    std::vector<Row> rows;
    rows.reserve(out.size());
    if (s.distinct) {
      std::unordered_map<std::string, bool> seen;
      for (auto& o : out) {
        std::string enc = EncodeCells(o.cells);
        if (seen.emplace(enc, true).second) rows.push_back(std::move(o.cells));
      }
    } else {
      for (auto& o : out) rows.push_back(std::move(o.cells));
    }

    // ----- Row range (pagination / subsequence pushdown) -----
    if (s.range_start >= 0 || s.range_count >= 0) {
      int64_t start = std::max<int64_t>(s.range_start, 1) - 1;  // to 0-based
      int64_t count = s.range_count >= 0
                          ? s.range_count
                          : static_cast<int64_t>(rows.size());
      if (start >= static_cast<int64_t>(rows.size())) {
        rows.clear();
      } else {
        int64_t end = std::min<int64_t>(start + count,
                                        static_cast<int64_t>(rows.size()));
        rows = std::vector<Row>(rows.begin() + start, rows.begin() + end);
      }
    }

    // Result relation: single scope entry with output column names.
    Relation result;
    std::vector<std::string> names;
    for (size_t i = 0; i < s.items.size(); ++i) {
      names.push_back(s.items[i].output_name.empty()
                          ? "c" + std::to_string(i + 1)
                          : s.items[i].output_name);
    }
    result.scope.entries.push_back({"", 0, std::move(names)});
    result.rows = std::move(rows);
    return result;
  }

 private:
  static bool ExprHasAggregate(const SqlExpr& e) {
    if (e.kind == SqlExpr::Kind::kAggregate) return true;
    for (const auto& a : e.args) {
      if (a && ExprHasAggregate(*a)) return true;
    }
    for (const auto& [c, r] : e.whens) {
      if ((c && ExprHasAggregate(*c)) || (r && ExprHasAggregate(*r))) return true;
    }
    if (e.else_expr && ExprHasAggregate(*e.else_expr)) return true;
    return false;
  }

  static bool AnyAggregate(const std::vector<SelectItem>& items) {
    for (const auto& i : items) {
      if (i.expr && ExprHasAggregate(*i.expr)) return true;
    }
    return false;
  }

  static bool AnyAggregateInOrderBy(const std::vector<OrderItem>& items) {
    for (const auto& i : items) {
      if (i.expr && ExprHasAggregate(*i.expr)) return true;
    }
    return false;
  }

  Result<Relation> EvalTableRef(const TableRef& ref, const Frame* outer) {
    Relation rel;
    if (ref.derived) {
      ALDSP_ASSIGN_OR_RETURN(Relation sub, ExecSelect(*ref.derived, outer));
      rel.scope.entries.push_back(
          {ref.alias, 0, sub.scope.entries.front().cols});
      rel.rows = std::move(sub.rows);
      return rel;
    }
    const TableDef* def = nullptr;
    const std::vector<Row>* rows = nullptr;
    ALDSP_RETURN_NOT_OK(lookup_(ref.table_name, &def, &rows));
    std::vector<std::string> cols;
    for (const auto& c : def->columns) cols.push_back(c.name);
    rel.scope.entries.push_back(
        {ref.alias.empty() ? ref.table_name : ref.alias, 0, std::move(cols)});
    rel.rows = *rows;
    if (stats_ != nullptr) stats_->rows_scanned += rel.rows.size();
    return rel;
  }

  // Extracts conjuncts of a condition (flattening AND).
  static void CollectConjuncts(const SqlExprPtr& e,
                               std::vector<SqlExprPtr>* out) {
    if (e && e->kind == SqlExpr::Kind::kBinary && e->op == "AND") {
      CollectConjuncts(e->args[0], out);
      CollectConjuncts(e->args[1], out);
    } else if (e) {
      out->push_back(e);
    }
  }

  // True if every column reference in `e` resolves within `scope`.
  static bool ResolvesIn(const SqlExpr& e, const Scope& scope) {
    if (e.kind == SqlExpr::Kind::kColumn) {
      size_t idx;
      return scope.Resolve(e.table_alias, e.column, &idx);
    }
    if (e.kind == SqlExpr::Kind::kExists) return false;  // be conservative
    for (const auto& a : e.args) {
      if (a && !ResolvesIn(*a, scope)) return false;
    }
    for (const auto& [c, r] : e.whens) {
      if ((c && !ResolvesIn(*c, scope)) || (r && !ResolvesIn(*r, scope))) {
        return false;
      }
    }
    if (e.else_expr && !ResolvesIn(*e.else_expr, scope)) return false;
    return true;
  }

  Result<Relation> ExecJoin(Relation left, Relation right,
                            const JoinClause& join, const Frame* outer) {
    // Combined scope: left entries + right entries shifted.
    Relation combined;
    combined.scope = left.scope;
    size_t left_width = left.scope.Width();
    for (auto e : right.scope.entries) {
      e.offset += left_width;
      combined.scope.entries.push_back(std::move(e));
    }
    size_t right_width = right.scope.Width();

    // Split the ON condition into hashable equi pairs and residual.
    std::vector<SqlExprPtr> conjuncts;
    CollectConjuncts(join.condition, &conjuncts);
    std::vector<std::pair<SqlExprPtr, SqlExprPtr>> equi;  // (left, right)
    std::vector<SqlExprPtr> residual;
    for (const auto& c : conjuncts) {
      bool added = false;
      if (c->kind == SqlExpr::Kind::kBinary && c->op == "=") {
        const SqlExprPtr& a = c->args[0];
        const SqlExprPtr& b = c->args[1];
        if (ResolvesIn(*a, left.scope) && ResolvesIn(*b, right.scope)) {
          equi.emplace_back(a, b);
          added = true;
        } else if (ResolvesIn(*b, left.scope) && ResolvesIn(*a, right.scope)) {
          equi.emplace_back(b, a);
          added = true;
        }
      }
      if (!added) residual.push_back(c);
    }

    auto eval_residual = [&](const Row& row) -> Result<bool> {
      Frame f{&combined.scope, &row, nullptr, outer};
      for (const auto& r : residual) {
        ALDSP_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*r, f));
        if (!ok) return false;
      }
      return true;
    };

    if (!equi.empty()) {
      // Hash join: build on right, probe with left.
      std::unordered_map<std::string, std::vector<size_t>> build;
      for (size_t ri = 0; ri < right.rows.size(); ++ri) {
        Frame f{&right.scope, &right.rows[ri], nullptr, outer};
        std::vector<Cell> key;
        bool has_null = false;
        for (const auto& [le, re] : equi) {
          ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(*re, f));
          if (c.is_null) has_null = true;
          key.push_back(std::move(c));
        }
        if (has_null) continue;  // NULL keys never join
        build[EncodeCells(key)].push_back(ri);
      }
      for (const auto& lrow : left.rows) {
        Frame f{&left.scope, &lrow, nullptr, outer};
        std::vector<Cell> key;
        bool has_null = false;
        for (const auto& [le, re] : equi) {
          ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(*le, f));
          if (c.is_null) has_null = true;
          key.push_back(std::move(c));
        }
        bool matched = false;
        if (!has_null) {
          auto it = build.find(EncodeCells(key));
          if (it != build.end()) {
            for (size_t ri : it->second) {
              Row merged = lrow;
              merged.insert(merged.end(), right.rows[ri].begin(),
                            right.rows[ri].end());
              ALDSP_ASSIGN_OR_RETURN(bool ok, eval_residual(merged));
              if (ok) {
                matched = true;
                combined.rows.push_back(std::move(merged));
              }
            }
          }
        }
        if (!matched && join.kind == JoinKind::kLeftOuter) {
          Row merged = lrow;
          merged.insert(merged.end(), right_width, Cell::Null());
          combined.rows.push_back(std::move(merged));
        }
      }
    } else {
      // Nested loop.
      for (const auto& lrow : left.rows) {
        bool matched = false;
        for (const auto& rrow : right.rows) {
          Row merged = lrow;
          merged.insert(merged.end(), rrow.begin(), rrow.end());
          bool ok = true;
          if (join.condition) {
            Frame f{&combined.scope, &merged, nullptr, outer};
            ALDSP_ASSIGN_OR_RETURN(ok, EvalPredicate(*join.condition, f));
          }
          if (ok) {
            matched = true;
            combined.rows.push_back(std::move(merged));
          }
        }
        if (!matched && join.kind == JoinKind::kLeftOuter) {
          Row merged = lrow;
          merged.insert(merged.end(), right_width, Cell::Null());
          combined.rows.push_back(std::move(merged));
        }
      }
    }
    return combined;
  }

  Result<bool> EvalPredicate(const SqlExpr& e, const Frame& f) {
    ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(e, f));
    if (c.is_null) return false;  // unknown is not true
    if (c.value.type() != xml::AtomicType::kBoolean) {
      return Status::RuntimeError("predicate did not evaluate to boolean");
    }
    return c.value.AsBoolean();
  }

  Result<Cell> Eval(const SqlExpr& e, const Frame& f) {
    switch (e.kind) {
      case SqlExpr::Kind::kColumn: {
        const Frame* cur = &f;
        while (cur != nullptr) {
          size_t idx;
          if (cur->scope != nullptr && cur->row != nullptr &&
              cur->scope->Resolve(e.table_alias, e.column, &idx)) {
            return (*cur->row)[idx];
          }
          cur = cur->outer;
        }
        return Status::RuntimeError("unresolved column " + e.table_alias +
                                    ".\"" + e.column + "\"");
      }
      case SqlExpr::Kind::kLiteral:
        return e.literal;
      case SqlExpr::Kind::kParam: {
        if (params_ == nullptr || e.param_index < 0 ||
            e.param_index >= static_cast<int>(params_->size())) {
          return Status::RuntimeError("unbound SQL parameter ?" +
                                      std::to_string(e.param_index));
        }
        return (*params_)[static_cast<size_t>(e.param_index)];
      }
      case SqlExpr::Kind::kBinary:
        return EvalBinary(e, f);
      case SqlExpr::Kind::kNot: {
        ALDSP_ASSIGN_OR_RETURN(Cell a, Eval(*e.args[0], f));
        if (a.is_null) return Cell::Null();
        return Cell::Bool(!a.value.AsBoolean());
      }
      case SqlExpr::Kind::kIsNull: {
        ALDSP_ASSIGN_OR_RETURN(Cell a, Eval(*e.args[0], f));
        return Cell::Bool(e.negated ? !a.is_null : a.is_null);
      }
      case SqlExpr::Kind::kCase: {
        for (const auto& [cond, res] : e.whens) {
          ALDSP_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*cond, f));
          if (ok) return Eval(*res, f);
        }
        if (e.else_expr) return Eval(*e.else_expr, f);
        return Cell::Null();
      }
      case SqlExpr::Kind::kFunc:
        return EvalFunc(e, f);
      case SqlExpr::Kind::kAggregate:
        return EvalAggregate(e, f);
      case SqlExpr::Kind::kInList: {
        ALDSP_ASSIGN_OR_RETURN(Cell probe, Eval(*e.args[0], f));
        if (probe.is_null) return Cell::Null();
        bool saw_null = false;
        for (size_t i = 1; i < e.args.size(); ++i) {
          ALDSP_ASSIGN_OR_RETURN(Cell v, Eval(*e.args[i], f));
          if (v.is_null) {
            saw_null = true;
            continue;
          }
          ALDSP_ASSIGN_OR_RETURN(Tribool t, CompareCells(probe, v, "="));
          if (t == Tribool::kTrue) return Cell::Bool(!e.negated);
        }
        if (saw_null) return Cell::Null();
        return Cell::Bool(e.negated);
      }
      case SqlExpr::Kind::kExists: {
        Executor sub(lookup_, params_, stats_);
        ALDSP_ASSIGN_OR_RETURN(Relation rel,
                               sub.ExecSelect(*e.subquery, &f));
        return Cell::Bool(!rel.rows.empty());
      }
      case SqlExpr::Kind::kLike: {
        ALDSP_ASSIGN_OR_RETURN(Cell v, Eval(*e.args[0], f));
        if (v.is_null) return Cell::Null();
        return Cell::Bool(LikeMatch(v.value.Lexical(), e.op, 0, 0));
      }
    }
    return Status::Internal("unhandled SQL expression kind");
  }

  Result<Cell> EvalBinary(const SqlExpr& e, const Frame& f) {
    const std::string& op = e.op;
    if (op == "AND" || op == "OR") {
      ALDSP_ASSIGN_OR_RETURN(Cell a, Eval(*e.args[0], f));
      // Short-circuit where 3VL permits.
      Tribool ta = a.is_null ? Tribool::kUnknown : ToTribool(a.value.AsBoolean());
      if (op == "AND" && ta == Tribool::kFalse) return Cell::Bool(false);
      if (op == "OR" && ta == Tribool::kTrue) return Cell::Bool(true);
      ALDSP_ASSIGN_OR_RETURN(Cell b, Eval(*e.args[1], f));
      Tribool tb = b.is_null ? Tribool::kUnknown : ToTribool(b.value.AsBoolean());
      Tribool r = op == "AND" ? TriAnd(ta, tb) : TriOr(ta, tb);
      if (r == Tribool::kUnknown) return Cell::Null();
      return Cell::Bool(r == Tribool::kTrue);
    }
    ALDSP_ASSIGN_OR_RETURN(Cell a, Eval(*e.args[0], f));
    ALDSP_ASSIGN_OR_RETURN(Cell b, Eval(*e.args[1], f));
    if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      ALDSP_ASSIGN_OR_RETURN(Tribool t, CompareCells(a, b, op));
      if (t == Tribool::kUnknown) return Cell::Null();
      return Cell::Bool(t == Tribool::kTrue);
    }
    // Arithmetic with NULL propagation.
    if (a.is_null || b.is_null) return Cell::Null();
    if (!a.value.is_numeric() || !b.value.is_numeric()) {
      return Status::RuntimeError("arithmetic on non-numeric values");
    }
    bool both_int = a.value.type() == xml::AtomicType::kInteger &&
                    b.value.type() == xml::AtomicType::kInteger;
    if (op == "+" || op == "-" || op == "*") {
      if (both_int) {
        int64_t x = a.value.AsInteger();
        int64_t y = b.value.AsInteger();
        int64_t r = op == "+" ? x + y : (op == "-" ? x - y : x * y);
        return Cell::Int(r);
      }
      double x = a.value.NumericAsDouble();
      double y = b.value.NumericAsDouble();
      double r = op == "+" ? x + y : (op == "-" ? x - y : x * y);
      return Cell::Dbl(r);
    }
    if (op == "/") {
      double y = b.value.NumericAsDouble();
      if (y == 0.0) return Status::RuntimeError("division by zero");
      return Cell::Dbl(a.value.NumericAsDouble() / y);
    }
    return Status::InvalidArgument("unknown binary SQL operator: " + op);
  }

  Result<Cell> EvalFunc(const SqlExpr& e, const Frame& f) {
    std::vector<Cell> args;
    for (const auto& a : e.args) {
      ALDSP_ASSIGN_OR_RETURN(Cell c, Eval(*a, f));
      args.push_back(std::move(c));
    }
    for (const auto& a : args) {
      if (a.is_null) return Cell::Null();
    }
    switch (e.func) {
      case SqlFunc::kUpper:
        return Cell::Str(ToUpper(args[0].value.Lexical()));
      case SqlFunc::kLower:
        return Cell::Str(ToLower(args[0].value.Lexical()));
      case SqlFunc::kSubstr: {
        std::string s = args[0].value.Lexical();
        int64_t start = args[1].value.AsInteger();
        int64_t len = args.size() > 2 ? args[2].value.AsInteger()
                                      : static_cast<int64_t>(s.size());
        if (start < 1) start = 1;
        if (start > static_cast<int64_t>(s.size())) return Cell::Str("");
        return Cell::Str(s.substr(static_cast<size_t>(start - 1),
                                  static_cast<size_t>(std::max<int64_t>(len, 0))));
      }
      case SqlFunc::kLength:
        return Cell::Int(static_cast<int64_t>(args[0].value.Lexical().size()));
      case SqlFunc::kConcat: {
        std::string s;
        for (const auto& a : args) s += a.value.Lexical();
        return Cell::Str(std::move(s));
      }
      case SqlFunc::kAbs: {
        if (args[0].value.type() == xml::AtomicType::kInteger) {
          return Cell::Int(std::llabs(args[0].value.AsInteger()));
        }
        return Cell::Dbl(std::fabs(args[0].value.NumericAsDouble()));
      }
      case SqlFunc::kMod: {
        int64_t y = args[1].value.AsInteger();
        if (y == 0) return Status::RuntimeError("MOD by zero");
        return Cell::Int(args[0].value.AsInteger() % y);
      }
    }
    return Status::Internal("unhandled SQL function");
  }

  Result<Cell> EvalAggregate(const SqlExpr& e, const Frame& f) {
    if (f.group == nullptr) {
      return Status::RuntimeError("aggregate outside a grouped context");
    }
    if (e.agg == SqlAgg::kCountStar) {
      return Cell::Int(static_cast<int64_t>(f.group->size()));
    }
    int64_t count = 0;
    double sum = 0;
    bool sum_is_int = true;
    int64_t isum = 0;
    Cell min = Cell::Null();
    Cell max = Cell::Null();
    std::unordered_map<std::string, bool> distinct_seen;
    for (const Row* member : *f.group) {
      Frame mf{f.scope, member, nullptr, f.outer};
      ALDSP_ASSIGN_OR_RETURN(Cell v, Eval(*e.args[0], mf));
      if (v.is_null) continue;
      if (e.distinct && !distinct_seen.emplace(EncodeCell(v), true).second) {
        continue;
      }
      ++count;
      if (e.agg == SqlAgg::kSum || e.agg == SqlAgg::kAvg) {
        if (v.value.type() != xml::AtomicType::kInteger) sum_is_int = false;
        sum += v.value.NumericAsDouble();
        if (v.value.type() == xml::AtomicType::kInteger) {
          isum += v.value.AsInteger();
        }
      }
      if (e.agg == SqlAgg::kMin &&
          (min.is_null || OrderCompare(v, min) < 0)) {
        min = v;
      }
      if (e.agg == SqlAgg::kMax &&
          (max.is_null || OrderCompare(v, max) > 0)) {
        max = v;
      }
    }
    switch (e.agg) {
      case SqlAgg::kCount:
        return Cell::Int(count);
      case SqlAgg::kSum:
        if (count == 0) return Cell::Null();
        return sum_is_int ? Cell::Int(isum) : Cell::Dbl(sum);
      case SqlAgg::kAvg:
        if (count == 0) return Cell::Null();
        return Cell::Dbl(sum / static_cast<double>(count));
      case SqlAgg::kMin:
        return min;
      case SqlAgg::kMax:
        return max;
      case SqlAgg::kCountStar:
        break;
    }
    return Status::Internal("unhandled aggregate");
  }

  TableLookup lookup_;
  const std::vector<Cell>* params_;
  SourceStats* stats_;
};

}  // namespace

Status Database::CreateTable(TableDef def) {
  std::lock_guard<std::mutex> lock(mutex_);
  ALDSP_RETURN_NOT_OK(catalog_.AddTable(def));
  auto storage = std::make_unique<TableStorage>();
  storage->def = std::move(def);
  tables_.push_back(std::move(storage));
  return Status::OK();
}

Status Database::CheckRow(const TableDef& def, const Row& row) const {
  if (row.size() != def.columns.size()) {
    return Status::InvalidArgument(
        "row arity mismatch for " + def.name + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(def.columns.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null && !def.columns[i].nullable) {
      return Status::InvalidArgument("NULL in NOT NULL column " +
                                     def.columns[i].name);
    }
  }
  return Status::OK();
}

Status Database::InsertRow(const std::string& table, Row row) {
  std::lock_guard<std::mutex> lock(mutex_);
  TableStorage* storage = FindStorage(table);
  if (storage == nullptr) return Status::NotFound("no such table: " + table);
  ALDSP_RETURN_NOT_OK(CheckRow(storage->def, row));
  storage->rows.push_back(std::move(row));
  return Status::OK();
}

Database::TableStorage* Database::FindStorage(const std::string& name) {
  for (auto& t : tables_) {
    if (t->def.name == name) return t.get();
  }
  return nullptr;
}

const Database::TableStorage* Database::FindStorage(
    const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->def.name == name) return t.get();
  }
  return nullptr;
}

Status Database::ChargeStatement(int64_t* sleep_micros) {
  int expected = fail_next_.load();
  while (expected > 0) {
    if (fail_next_.compare_exchange_weak(expected, expected - 1)) {
      return Status::SourceError("injected failure in database " + name_);
    }
  }
  stats_.statements += 1;
  stats_.simulated_latency_micros += latency_.roundtrip_micros;
  if (latency_.sleep && latency_.roundtrip_micros > 0) {
    *sleep_micros += latency_.roundtrip_micros;
  }
  return Status::OK();
}

void Database::ChargeRows(size_t n, int64_t* sleep_micros) {
  stats_.rows_shipped += static_cast<int64_t>(n);
  int64_t cost = latency_.per_row_micros * static_cast<int64_t>(n);
  stats_.simulated_latency_micros += cost;
  if (latency_.sleep && cost > 0) {
    *sleep_micros += cost;
  }
}

void Database::SimulateLatency(int64_t sleep_micros) const {
  if (sleep_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
  }
}

Result<ResultSet> Database::ExecuteSelect(const SelectStmt& stmt,
                                          const std::vector<Cell>& params) {
  int64_t sleep_micros = 0;
  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    std::lock_guard<std::mutex> lock(mutex_);
    ALDSP_RETURN_NOT_OK(ChargeStatement(&sleep_micros));
    auto lookup = [this](const std::string& name, const TableDef** def,
                         const std::vector<Row>** rows) -> Status {
      const TableStorage* s = FindStorage(name);
      if (s == nullptr) {
        return Status::NotFound("no such table in " + name_ + ": " + name);
      }
      *def = &s->def;
      *rows = &s->rows;
      return Status::OK();
    };
    Executor exec(lookup, &params, &stats_);
    ALDSP_ASSIGN_OR_RETURN(ResultSet rs, exec.Run(stmt));
    ChargeRows(rs.rows.size(), &sleep_micros);
    return rs;
  }();
  SimulateLatency(sleep_micros);
  return result;
}

Result<int64_t> Database::ExecuteUpdate(const UpdateStmt& stmt,
                                        const std::vector<Cell>& params) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t sleep_micros = 0;
  ALDSP_RETURN_NOT_OK(ChargeStatement(&sleep_micros));
  SimulateLatency(sleep_micros);
  TableStorage* storage = FindStorage(stmt.table_name);
  if (storage == nullptr) {
    return Status::NotFound("no such table: " + stmt.table_name);
  }
  auto lookup = [this](const std::string& name, const TableDef** def,
                       const std::vector<Row>** rows) -> Status {
    const TableStorage* s = FindStorage(name);
    if (s == nullptr) return Status::NotFound("no such table: " + name);
    *def = &s->def;
    *rows = &s->rows;
    return Status::OK();
  };
  Executor exec(lookup, &params, &stats_);
  Scope scope;
  std::vector<std::string> cols;
  for (const auto& c : storage->def.columns) cols.push_back(c.name);
  scope.entries.push_back({stmt.table_name, 0, cols});

  int64_t affected = 0;
  for (auto& row : storage->rows) {
    Frame f{&scope, &row, nullptr, nullptr};
    if (stmt.where) {
      ALDSP_ASSIGN_OR_RETURN(Cell c, exec.EvalPublic(*stmt.where, f));
      if (c.is_null || !c.value.AsBoolean()) continue;
    }
    // Evaluate all assignments against the pre-update row, then apply.
    std::vector<std::pair<int, Cell>> updates;
    for (const auto& [col, expr] : stmt.assignments) {
      int idx = storage->def.ColumnIndex(col);
      if (idx < 0) {
        return Status::NotFound("no such column: " + col + " in " +
                                stmt.table_name);
      }
      ALDSP_ASSIGN_OR_RETURN(Cell v, exec.EvalPublic(*expr, f));
      updates.emplace_back(idx, std::move(v));
    }
    for (auto& [idx, v] : updates) row[static_cast<size_t>(idx)] = std::move(v);
    ++affected;
  }
  return affected;
}

Result<int64_t> Database::ExecuteInsert(const InsertStmt& stmt,
                                        const std::vector<Cell>& params) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t sleep_micros = 0;
  ALDSP_RETURN_NOT_OK(ChargeStatement(&sleep_micros));
  SimulateLatency(sleep_micros);
  TableStorage* storage = FindStorage(stmt.table_name);
  if (storage == nullptr) {
    return Status::NotFound("no such table: " + stmt.table_name);
  }
  auto lookup = [](const std::string& name, const TableDef**,
                   const std::vector<Row>**) -> Status {
    return Status::NotFound("table scans not allowed in INSERT: " + name);
  };
  Executor exec(lookup, &params, &stats_);
  Row row(storage->def.columns.size(), Cell::Null());
  Frame f{nullptr, nullptr, nullptr, nullptr};
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    int idx = storage->def.ColumnIndex(stmt.columns[i]);
    if (idx < 0) {
      return Status::NotFound("no such column: " + stmt.columns[i]);
    }
    ALDSP_ASSIGN_OR_RETURN(Cell v, exec.EvalPublic(*stmt.values[i], f));
    row[static_cast<size_t>(idx)] = std::move(v);
  }
  ALDSP_RETURN_NOT_OK(CheckRow(storage->def, row));
  storage->rows.push_back(std::move(row));
  return 1;
}

Result<int64_t> Database::ExecuteDelete(const DeleteStmt& stmt,
                                        const std::vector<Cell>& params) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t sleep_micros = 0;
  ALDSP_RETURN_NOT_OK(ChargeStatement(&sleep_micros));
  SimulateLatency(sleep_micros);
  TableStorage* storage = FindStorage(stmt.table_name);
  if (storage == nullptr) {
    return Status::NotFound("no such table: " + stmt.table_name);
  }
  auto lookup = [this](const std::string& name, const TableDef** def,
                       const std::vector<Row>** rows) -> Status {
    const TableStorage* s = FindStorage(name);
    if (s == nullptr) return Status::NotFound("no such table: " + name);
    *def = &s->def;
    *rows = &s->rows;
    return Status::OK();
  };
  Executor exec(lookup, &params, &stats_);
  Scope scope;
  std::vector<std::string> cols;
  for (const auto& c : storage->def.columns) cols.push_back(c.name);
  scope.entries.push_back({stmt.table_name, 0, cols});

  std::vector<Row> kept;
  int64_t removed = 0;
  for (auto& row : storage->rows) {
    bool remove = true;
    if (stmt.where) {
      Frame f{&scope, &row, nullptr, nullptr};
      ALDSP_ASSIGN_OR_RETURN(Cell c, exec.EvalPublic(*stmt.where, f));
      remove = !c.is_null && c.value.AsBoolean();
    }
    if (remove) {
      ++removed;
    } else {
      kept.push_back(std::move(row));
    }
  }
  storage->rows = std::move(kept);
  return removed;
}

Status Database::Begin() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_transaction_) {
    return Status::InvalidArgument("transaction already open on " + name_);
  }
  snapshot_.clear();
  for (const auto& t : tables_) snapshot_.emplace_back(t->def.name, t->rows);
  in_transaction_ = true;
  prepared_ = false;
  return Status::OK();
}

Status Database::Prepare() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!in_transaction_) {
    return Status::InvalidArgument("no open transaction on " + name_);
  }
  if (fail_prepare_) {
    fail_prepare_ = false;
    return Status::SourceError("injected prepare failure on " + name_);
  }
  prepared_ = true;
  return Status::OK();
}

Status Database::Commit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!in_transaction_) {
    return Status::InvalidArgument("no open transaction on " + name_);
  }
  snapshot_.clear();
  in_transaction_ = false;
  prepared_ = false;
  return Status::OK();
}

Status Database::Rollback() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!in_transaction_) {
    return Status::InvalidArgument("no open transaction on " + name_);
  }
  for (auto& [name, rows] : snapshot_) {
    TableStorage* s = FindStorage(name);
    if (s != nullptr) s->rows = std::move(rows);
  }
  snapshot_.clear();
  in_transaction_ = false;
  prepared_ = false;
  return Status::OK();
}

Result<std::vector<Row>> Database::TableData(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const TableStorage* s = FindStorage(table);
  if (s == nullptr) return Status::NotFound("no such table: " + table);
  return s->rows;
}

}  // namespace aldsp::relational
