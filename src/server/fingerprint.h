#ifndef ALDSP_SERVER_FINGERPRINT_H_
#define ALDSP_SERVER_FINGERPRINT_H_

#include <cstdint>

#include "xquery/ast.h"

namespace aldsp::server {

/// Statement identity is split from plan version (pg_stat_statements
/// crossed with a plan-change log):
///
///  - StatementFingerprint answers "which statement is this?". It hashes
///    the normalized *pre-optimization* AST — clause structure, bound
///    variables, path steps, function names, comparison/arith operators —
///    with literal values stripped to "?". Two executions of the same
///    statement with different literals share it, and it stays stable
///    when the optimizer picks a different join method, pushdown shape,
///    or PP-k configuration for the same source text.
///
///  - PlanFingerprint answers "which plan shape did this compile pick?".
///    It hashes the *optimized* expression tree, with FLWOR subtrees
///    hashed through the same serial physical lowering EXPLAIN renders —
///    so it covers operator kinds, join methods, sources, pushed SQL
///    structure and PP-k fetch shapes (literals still stripped). Changing
///    the join method, a source, or the pushdown shape changes it.
///
/// One statement fingerprint therefore maps to a history of plan
/// fingerprints over time as the ObservedCostModel adapts; PlanHistory
/// (src/observability/plan_history.h) records that mapping. Both hashes
/// are computed once at Compile and stored in CompiledPlan, so a
/// plan-cache round trip trivially preserves them.
uint64_t PlanFingerprint(const xquery::Expr& root);

/// FNV-1a over the normalized pre-optimization AST (see above). Must be
/// computed before the optimizer rewrites the tree (join-clause
/// introduction, SQL pushdown), or plan decisions leak into identity.
uint64_t StatementFingerprint(const xquery::Expr& root);

}  // namespace aldsp::server

#endif  // ALDSP_SERVER_FINGERPRINT_H_
