#ifndef ALDSP_SERVER_FINGERPRINT_H_
#define ALDSP_SERVER_FINGERPRINT_H_

#include <cstdint>

#include "xquery/ast.h"

namespace aldsp::server {

/// Stable fingerprint of a compiled statement's normalized physical plan
/// shape (pg_stat_statements-style): FNV-1a over a canonical walk of the
/// optimized expression tree, with FLWOR subtrees hashed through the same
/// serial physical lowering EXPLAIN renders — so the fingerprint covers
/// operator kinds, join methods, sources, pushed SQL structure and PP-k
/// fetch shapes, while literal values (XQuery constants, SQL literals,
/// row-range bounds) are stripped. Two executions of the same statement
/// with different literals share a fingerprint; changing the join method,
/// a source, or the pushdown shape changes it.
///
/// The hash is computed from the *optimized* tree stored in CompiledPlan,
/// so a plan-cache round trip trivially preserves it.
uint64_t PlanFingerprint(const xquery::Expr& root);

}  // namespace aldsp::server

#endif  // ALDSP_SERVER_FINGERPRINT_H_
