#ifndef ALDSP_SERVER_EXPLAIN_H_
#define ALDSP_SERVER_EXPLAIN_H_

#include <string>
#include <vector>

#include "observability/source_health.h"
#include "runtime/physical/builder.h"
#include "runtime/query_trace.h"
#include "server/server.h"

namespace aldsp::server {

/// EXPLAIN: the compiled operator tree annotated with everything the
/// compiler knows — per-phase compile micros, pushdown statistics, called
/// functions, join methods with their PP-k parameters, and the SQL text
/// of every pushed-down region (the paper's §4.1 query-plan view).
///
/// The BuildOptions overloads describe the plan the server would actually
/// run under those parallelism knobs — exchange scatter/gather pairs and
/// their DOP appear as plan nodes. The plain overloads describe the
/// serial plan.
std::string RenderPlanText(const CompiledPlan& plan,
                           const runtime::physical::BuildOptions& opts);
std::string RenderPlanText(const CompiledPlan& plan);
std::string RenderPlanJson(const CompiledPlan& plan,
                           const runtime::physical::BuildOptions& opts);
std::string RenderPlanJson(const CompiledPlan& plan);

/// EXPLAIN ANALYZE: the executed span tree of one profiled run — rows,
/// inclusive wall micros and materialized bytes per operator instance —
/// with every source interaction (SQL issued, PP-k fetches, invocations,
/// cache hits, timeouts, fail-overs) nested under the operator it fired
/// in.
std::string RenderProfileText(const CompiledPlan& plan,
                              const runtime::QueryTrace& trace);
std::string RenderProfileJson(const CompiledPlan& plan,
                              const runtime::QueryTrace& trace);

/// Chrome/Perfetto trace_event JSON of one profiled run: one lane per
/// engine thread, spans and source round trips as complete ("X") slices,
/// queue waits nested under their task slices. Open in chrome://tracing
/// or ui.perfetto.dev. Meaningful for timeline-mode traces; other traces
/// degrade to a flat ts=0 layout.
std::string RenderChromeTrace(const runtime::QueryTrace& trace);

/// The deterministic subset of the serial EXPLAIN — query text, pushdown
/// statistics, called functions and the operator tree, without the
/// per-compile phase timings. This is what the plan-version history
/// retains per version: two compiles of the same plan shape render
/// byte-identical snapshots, so a structural diff shows only real
/// plan changes.
std::string RenderPlanSnapshotText(const CompiledPlan& plan);

/// Structural diff of two rendered EXPLAIN texts, for plan-regression
/// reports: unchanged lines print with two leading spaces, lines only in
/// `before` with "- ", lines only in `after` with "+ ". An LCS alignment
/// keeps shared plan structure matched up, so a join-method flip shows as
/// one -/+ pair instead of resynchronizing the whole tree.
std::string RenderExplainDiff(const std::string& before,
                              const std::string& after);

/// The source-health scoreboard section EXPLAIN appends once the server
/// has observed any source: per-source breaker state, EWMA latency and
/// error/timeout tallies, so a plan reading a tripped source is visible
/// at plan-inspection time.
std::string RenderSourceHealthText(
    const std::vector<observability::SourceHealthSnapshot>& health);

}  // namespace aldsp::server

#endif  // ALDSP_SERVER_EXPLAIN_H_
