#ifndef ALDSP_SERVER_ADMISSION_H_
#define ALDSP_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "observability/histogram.h"
#include "observability/query_registry.h"

namespace aldsp::server {

/// Priority class of one execution at the admission gate. Interactive
/// (point-lookup-shaped) work takes any free slot; analytics
/// (scan/join-shaped) work is additionally capped so a burst of long
/// queries can never occupy every slot and starve millisecond lookups.
/// The server classifies from the statement's observed cost history
/// (stat_statements / plan-history baselines keyed by statement
/// fingerprint); statements with no history default to interactive and
/// are reclassified once their first executions land.
enum class QueryClass : int { kInteractive = 0, kAnalytics = 1 };

const char* QueryClassName(QueryClass cls);

struct AdmissionOptions {
  /// Executions allowed to run concurrently; arrivals beyond this queue
  /// in per-tenant weighted-fair lanes. <= 0 disables admission control
  /// entirely (every Admit returns immediately, the pre-admission
  /// behavior).
  int max_concurrent_queries = 0;
  /// Of the concurrent slots, how many analytics-class executions may
  /// hold at once. 0 auto-sizes to max(1, max_concurrent_queries - 1):
  /// at least one slot always stays reachable for interactive work.
  int max_concurrent_analytics = 0;
  /// Queued executions (across all lanes) beyond which new arrivals are
  /// shed immediately with kResourceExhausted instead of queueing.
  int max_queue_depth = 1024;
  /// Longest a query waits in its lane before it is shed with
  /// kResourceExhausted. <= 0 waits without a deadline.
  int64_t queue_timeout_micros = 2'000'000;
  /// Statements whose observed mean wall time is at least this are
  /// classified as analytics (the server consults stat_statements, then
  /// the plan-history baseline).
  int64_t analytics_threshold_micros = 25'000;
  /// Relative lane weights (share of admissions under contention);
  /// absent tenants weigh 1.0. Weights <= 0 are treated as 1.0.
  std::map<std::string, double> tenant_weights;
};

/// Point-in-time admission statistics for metrics export and benches.
struct AdmissionSnapshot {
  bool enabled = false;
  int max_concurrent_queries = 0;
  int max_concurrent_analytics = 0;
  // Gauges.
  int64_t running = 0;
  int64_t analytics_running = 0;
  int64_t queue_depth = 0;
  // Cumulative counters.
  int64_t admitted = 0;
  int64_t admitted_interactive = 0;
  int64_t admitted_analytics = 0;
  int64_t queued = 0;  // admissions that waited in a lane first
  int64_t shed_queue_full = 0;
  int64_t shed_timeout = 0;
  int64_t cancelled_while_queued = 0;
  /// Queue-wait latency of every admitted execution (0 for fast-path
  /// admissions), bucket-estimated percentiles via PercentileUpperMicros.
  observability::LatencyHistogram wait;
  struct TenantCounters {
    int64_t admitted = 0;
    int64_t queued = 0;
    int64_t shed = 0;
    double weight = 1.0;
  };
  std::map<std::string, TenantCounters> tenants;

  std::string RenderText() const;
  std::string RenderJson() const;
};

/// The server's execution front door (the concurrent serving plane): at
/// most `max_concurrent_queries` executions hold a slot; the rest wait
/// in per-tenant FIFO lanes scheduled by start-time-fair queueing (each
/// admission charges its lane 1/weight of virtual time; the nonempty
/// lane with the smallest virtual time dispatches next, and a lane that
/// went idle re-enters at the global virtual clock so it cannot hoard
/// credit). Within a lane, interactive arrivals dispatch before
/// analytics; across lanes the analytics cap bounds how many long
/// queries hold slots at once. Queue overflow and queue-wait timeout
/// shed with kResourceExhausted — a shed execution never starts, so it
/// can never return partial results.
///
/// Threading: Admit blocks the calling client thread (not a WorkerPool
/// thread — pool workers execute *inside* admitted queries, so parking
/// them here would deadlock the very pool admission protects). Waiters
/// poll their live-query control block while parked, so a CancelQuery
/// against a queued execution returns kCancelled within one poll slice.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  bool enabled() const { return options_.max_concurrent_queries > 0; }
  const AdmissionOptions& options() const { return options_; }
  int analytics_cap() const;

  struct Ticket {
    Status status;  // OK, kResourceExhausted (shed) or kCancelled
    int64_t wait_micros = 0;
    bool queued = false;  // waited in a lane before the verdict
    QueryClass cls = QueryClass::kInteractive;
  };

  /// Blocks until a slot is granted, the queue verdict is a shed, or the
  /// control block (optional, may be null) is cancelled. An OK ticket
  /// MUST be paired with exactly one Release(cls) when the execution
  /// finishes; non-OK tickets hold no slot.
  Ticket Admit(const std::string& tenant, QueryClass cls,
               const observability::QueryControl* ctl = nullptr);
  void Release(QueryClass cls);

  AdmissionSnapshot Snapshot() const;
  /// Zeroes the cumulative counters and the wait histogram (gauges and
  /// queued state are untouched). Benches use this to report per-level
  /// wait percentiles.
  void ResetStats();

 private:
  struct Waiter {
    enum class State { kWaiting, kAdmitted, kShed };
    State state = State::kWaiting;
    QueryClass cls = QueryClass::kInteractive;
    std::condition_variable cv;
  };
  struct Lane {
    double vtime = 0.0;
    /// One FIFO per class, indexed by QueryClass. Entries a timeout or
    /// cancel already shed stay queued (marked) until they surface.
    std::deque<std::shared_ptr<Waiter>> q[2];
  };

  double WeightFor(const std::string& tenant) const;
  /// Drops shed markers off the front of both class queues.
  static void PurgeLane(Lane* lane);
  /// Class of the lane's dispatchable head under the analytics cap, or
  /// -1 when the lane has nothing eligible. Call after PurgeLane.
  int EligibleHeadLocked(const Lane& lane) const;
  /// Grants slots to waiters while capacity and eligible heads remain.
  void DispatchLocked();
  void AdmitSlotLocked(QueryClass cls, const std::string& tenant,
                       bool queued, int64_t wait_micros);

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Lane> lanes_;
  double virtual_time_ = 0.0;
  int64_t running_ = 0;
  int64_t analytics_running_ = 0;
  int64_t waiting_ = 0;
  int64_t admitted_ = 0;
  int64_t admitted_by_class_[2] = {0, 0};
  int64_t queued_total_ = 0;
  int64_t shed_queue_full_ = 0;
  int64_t shed_timeout_ = 0;
  int64_t cancelled_while_queued_ = 0;
  observability::LatencyHistogram wait_;
  std::map<std::string, AdmissionSnapshot::TenantCounters> tenant_counters_;
};

}  // namespace aldsp::server

#endif  // ALDSP_SERVER_ADMISSION_H_
