#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>

#include "observability/critical_path.h"
#include "server/explain.h"
#include "server/fingerprint.h"
#include "xml/item.h"

namespace aldsp::server {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Collects every function the query can reach, transitively through the
// bodies of user-defined functions: access control must see indirect
// calls (tns:getProfileByID calls tns:getProfile) even though the
// optimizer later unfolds them all.
void CollectCalledFunctions(const xquery::ExprPtr& e,
                            const compiler::FunctionTable& functions,
                            std::vector<std::string>* out) {
  if (e->kind == xquery::ExprKind::kFunctionCall) {
    bool seen = false;
    for (const auto& f : *out) {
      if (f == e->fn_name) seen = true;
    }
    if (!seen) {
      out->push_back(e->fn_name);
      const compiler::UserFunction* fn = functions.FindUser(e->fn_name);
      if (fn != nullptr && fn->body != nullptr) {
        CollectCalledFunctions(fn->body, functions, out);
      }
    }
  }
  xquery::ForEachChildSlot(*e, [&](xquery::ExprPtr& c) {
    if (c) CollectCalledFunctions(c, functions, out);
  });
}

}  // namespace

DataServicePlatform::DataServicePlatform(ServerOptions options)
    : options_(std::move(options)),
      view_cache_(options_.view_plan_cache_size),
      health_(options_.circuit_breaker),
      exec_audit_(options_.audit_log_capacity),
      slow_queries_(options_.slow_query_log_capacity),
      stat_statements_(options_.stat_statements_capacity),
      plan_history_(observability::PlanHistoryOptions{
          options_.plan_history_statements, options_.plan_history_versions,
          options_.plan_regression_min_calls, options_.plan_regression_ratio,
          options_.plan_regression_capacity}),
      workload_journal_(options_.workload_journal_capacity),
      workload_capture_(options_.workload_capture),
      admission_(AdmissionOptions{
          options_.max_concurrent_queries, options_.max_concurrent_analytics,
          options_.admission_queue_depth,
          options_.admission_queue_timeout_micros,
          options_.analytics_threshold_micros, options_.tenant_weights}),
      pool_(options_.worker_pool_size) {
  ctx_.functions = &functions_;
  ctx_.adaptors = &adaptors_;
  ctx_.function_cache = &function_cache_;
  ctx_.stats = &stats_;
  // Observed-cost feedback loop (§9 roadmap): the runtime records source
  // behaviour; the optimizer consults it on the next compilation.
  ctx_.observed = &observed_;
  ctx_.metrics = &metrics_;
  ctx_.health = &health_;
  ctx_.pool = &pool_;
  // Intra-query parallelism knobs. pool_ is the last member, so its
  // size() is valid here in the constructor body.
  ctx_.max_query_dop = options_.max_query_dop > 0
                           ? options_.max_query_dop
                           : static_cast<int>(pool_.size());
  ctx_.ppk_prefetch_depth = options_.ppk_prefetch_depth;
  ctx_.batch_size = options_.batch_size;
  options_.optimizer.observed = &observed_;
}

Status DataServicePlatform::RegisterRelationalSource(
    const std::string& fn_prefix, std::shared_ptr<relational::Database> db,
    const std::string& vendor) {
  auto adaptor =
      std::make_shared<adaptors::RelationalAdaptor>(db->name(), db);
  ALDSP_RETURN_NOT_OK(service::IntrospectRelationalSource(
      fn_prefix, db, adaptor.get(), &functions_, &schemas_, vendor));
  return adaptors_.Register(std::move(adaptor));
}

Status DataServicePlatform::RegisterAdaptor(
    std::shared_ptr<runtime::Adaptor> adaptor) {
  return adaptors_.Register(std::move(adaptor));
}

Status DataServicePlatform::RegisterFunctionalSource(
    const std::string& function_name, const std::string& source_id,
    const std::string& kind, std::vector<xsd::SequenceType> param_types,
    xsd::SequenceType return_type,
    std::map<std::string, std::string> extra_properties) {
  return service::RegisterFunctionalSource(
      function_name, source_id, kind, std::move(param_types),
      std::move(return_type), &functions_, std::move(extra_properties));
}

Status DataServicePlatform::RegisterXmlSource(const std::string& function_name,
                                              const std::string& xml_text,
                                              const xsd::TypePtr& item_schema) {
  if (file_adaptor_ == nullptr) {
    file_adaptor_ = std::make_shared<adaptors::FileAdaptor>("files");
    ALDSP_RETURN_NOT_OK(adaptors_.Register(file_adaptor_));
  }
  ALDSP_RETURN_NOT_OK(
      file_adaptor_->RegisterXmlContent(function_name, xml_text, item_schema));
  if (item_schema != nullptr) {
    schemas_.Register(item_schema->name(), item_schema);
  }
  return service::RegisterFunctionalSource(
      function_name, "files", "file", {},
      item_schema != nullptr ? xsd::Star(item_schema)
                             : xsd::AnySequence(),
      &functions_);
}

Status DataServicePlatform::RegisterCsvSource(
    const std::string& function_name, const std::string& csv_text,
    const std::string& row_name, const std::vector<std::string>& column_names,
    const std::vector<xml::AtomicType>& column_types) {
  if (file_adaptor_ == nullptr) {
    file_adaptor_ = std::make_shared<adaptors::FileAdaptor>("files");
    ALDSP_RETURN_NOT_OK(adaptors_.Register(file_adaptor_));
  }
  ALDSP_RETURN_NOT_OK(file_adaptor_->RegisterCsvContent(
      function_name, csv_text, row_name, column_types));
  if (column_names.size() != column_types.size()) {
    return Status::InvalidArgument("column names/types size mismatch");
  }
  std::vector<xsd::ElementField> fields;
  for (size_t i = 0; i < column_names.size(); ++i) {
    fields.push_back(
        {column_names[i],
         xsd::Opt(xsd::XType::SimpleElement(column_names[i],
                                            column_types[i]))});
  }
  xsd::TypePtr row_type =
      xsd::XType::ComplexElement(row_name, std::move(fields));
  schemas_.Register(row_name, row_type);
  return service::RegisterFunctionalSource(function_name, "files", "file", {},
                                           xsd::Star(row_type), &functions_);
}

Status DataServicePlatform::LoadDataService(const std::string& xquery_text) {
  ALDSP_ASSIGN_OR_RETURN(xquery::Module module,
                         xquery::ParseModule(xquery_text));
  DiagnosticBag bag;
  compiler::Analyzer analyzer(&functions_, &schemas_, &bag);
  ALDSP_RETURN_NOT_OK(analyzer.AnalyzeModule(module, &functions_));
  if (bag.has_errors()) return bag.FirstError();
  // Register the file's functions as data services, one per namespace
  // prefix (paper §2.1).
  std::set<std::string> prefixes;
  for (const auto& fn : module.functions) {
    size_t colon = fn.name.find(':');
    if (colon != std::string::npos) prefixes.insert(fn.name.substr(0, colon));
  }
  for (const auto& prefix : prefixes) {
    auto svc = services_.BuildService(functions_, prefix);
    if (svc.ok()) ALDSP_RETURN_NOT_OK(services_.Register(std::move(*svc)));
  }
  ClearPlanCache();
  view_cache_.Clear();
  return Status::OK();
}

Result<update::LineageMap> DataServicePlatform::LineageFor(
    const std::string& service_name) {
  const service::DataService* svc = services_.Find(service_name);
  if (svc == nullptr) {
    return Status::NotFound("no such data service: " + service_name);
  }
  if (svc->lineage_provider.empty()) {
    return Status::UpdateError("data service " + service_name +
                               " has no lineage provider (no read method)");
  }
  return update::ComputeLineage(svc->lineage_provider, functions_);
}

Result<update::SubmitReport> DataServicePlatform::Submit(
    const std::string& service_name, const update::DataObject& object,
    const update::SubmitOptions& options) {
  ALDSP_ASSIGN_OR_RETURN(update::LineageMap lineage, LineageFor(service_name));
  update::UpdateEngine engine(&functions_, &adaptors_);
  auto report = engine.Submit(object, lineage, options);
  if (report.ok() && !report->statements.empty()) {
    audit_.Record("update", "", "submit to " + service_name + " touched " +
                                    std::to_string(report->sources_touched.size()) +
                                    " source(s)");
  }
  return report;
}

Status DataServicePlatform::LoadDataServiceWithRecovery(
    const std::string& xquery_text, DiagnosticBag* bag) {
  ALDSP_ASSIGN_OR_RETURN(xquery::Module module,
                         xquery::ParseModule(xquery_text, bag, true));
  compiler::AnalyzeOptions opts;
  opts.recover = true;
  compiler::Analyzer analyzer(&functions_, &schemas_, bag, opts);
  ALDSP_RETURN_NOT_OK(analyzer.AnalyzeModule(module, &functions_));
  ClearPlanCache();
  view_cache_.Clear();
  return Status::OK();
}

Result<std::shared_ptr<const CompiledPlan>> DataServicePlatform::Compile(
    const std::string& query) {
  auto plan = std::make_shared<CompiledPlan>();
  plan->text = query;

  int64_t t0 = NowMicros();
  ALDSP_ASSIGN_OR_RETURN(xquery::ExprPtr expr, xquery::ParseExpression(query));
  int64_t t1 = NowMicros();
  plan->parse_micros = t1 - t0;

  DiagnosticBag bag;
  compiler::Analyzer analyzer(&functions_, &schemas_, &bag);
  ALDSP_RETURN_NOT_OK(analyzer.Analyze(expr, {}));
  CollectCalledFunctions(expr, functions_, &plan->called_functions);
  // Statement identity hashes the analyzed, *pre-optimization* tree:
  // computed here, before the optimizer's join-clause introduction and
  // SQL pushdown can leak plan decisions into it.
  plan->statement_fingerprint = StatementFingerprint(*expr);
  int64_t t2 = NowMicros();
  plan->analyze_micros = t2 - t1;

  if (options_.enable_optimizer) {
    optimizer::Optimizer opt(&functions_, &schemas_, &view_cache_,
                             options_.optimizer);
    ALDSP_RETURN_NOT_OK(opt.Optimize(expr));
  }
  int64_t t3 = NowMicros();
  plan->optimize_micros = t3 - t2;

  if (options_.enable_pushdown) {
    ALDSP_RETURN_NOT_OK(
        sql::PushdownRewrite(expr, &functions_, &plan->pushdown));
    DiagnosticBag bag2;
    compiler::Analyzer reanalyzer(&functions_, &schemas_, &bag2);
    ALDSP_RETURN_NOT_OK(reanalyzer.Analyze(expr, {}));
  }
  plan->pushdown_micros = NowMicros() - t3;

  plan->plan = std::move(expr);
  // Fingerprint the optimized tree: join methods and pushdown regions are
  // settled by now, so the hash captures the final plan shape.
  plan->fingerprint = PlanFingerprint(*plan->plan);
  return std::shared_ptr<const CompiledPlan>(plan);
}

Result<std::shared_ptr<const CompiledPlan>> DataServicePlatform::Prepare(
    const std::string& query, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  {
    std::lock_guard<std::mutex> lock(plan_cache_mutex_);
    auto it = plan_cache_.find(query);
    if (it != plan_cache_.end()) {
      ++plan_cache_hits_;
      plan_lru_.remove(query);
      plan_lru_.push_front(query);
      if (cache_hit != nullptr) *cache_hit = true;
      metrics_.AddWindowedCounter("plan_cache.hits");
      return it->second;
    }
    ++plan_cache_misses_;
  }
  metrics_.AddWindowedCounter("plan_cache.misses");
  ALDSP_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                         Compile(query));
  // Compile-phase micros feed the rolling windows so a compile-time
  // regression shows up in the metrics snapshot without a bench run.
  metrics_.RecordWindowed("compile.parse_micros", plan->parse_micros);
  metrics_.RecordWindowed("compile.analyze_micros", plan->analyze_micros);
  metrics_.RecordWindowed("compile.optimize_micros", plan->optimize_micros);
  metrics_.RecordWindowed("compile.pushdown_micros", plan->pushdown_micros);
  metrics_.RecordWindowed("compile.total_micros",
                          plan->parse_micros + plan->analyze_micros +
                              plan->optimize_micros + plan->pushdown_micros);
  if (options_.always_on_observability) {
    // Plan lifecycle plane: record the (statement, plan-version) pair
    // with the cost-model advice inputs the optimizer just consulted and
    // an EXPLAIN snapshot, so a later regression report can show what
    // changed and why the plan flipped.
    plan_history_.RecordCompile(plan->statement_fingerprint,
                                plan->fingerprint, plan->text.substr(0, 120),
                                observed_.AdviceSnapshot(),
                                RenderPlanSnapshotText(*plan));
  }
  {
    std::lock_guard<std::mutex> lock(plan_cache_mutex_);
    while (plan_cache_.size() >= options_.plan_cache_size &&
           !plan_lru_.empty()) {
      plan_cache_.erase(plan_lru_.back());
      plan_lru_.pop_back();
    }
    plan_cache_[query] = plan;
    plan_lru_.push_front(query);
  }
  return plan;
}

Result<xml::Sequence> DataServicePlatform::Execute(const std::string& query) {
  bool cache_hit = false;
  ALDSP_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                         Prepare(query, &cache_hit));
  return ExecuteObserved(*plan, cache_hit, nullptr);
}

Result<xml::Sequence> DataServicePlatform::ExecutePlan(
    const CompiledPlan& plan) {
  return ExecuteObserved(plan, /*plan_cache_hit=*/false, nullptr);
}

std::shared_ptr<runtime::QueryTrace> DataServicePlatform::MakeObservedTrace(
    const CompiledPlan& plan) const {
  if (!options_.always_on_observability) return nullptr;
  // A query an earlier slow run promoted re-executes under a timeline
  // trace so its rendered profile and an openable Chrome trace can be
  // captured; everything else pays only the counters-mode cost.
  if (options_.slow_query_threshold_micros > 0 &&
      slow_queries_.IsPromoted(
          observability::ExecutionAuditLog::HashQuery(plan.text))) {
    return std::make_shared<runtime::QueryTrace>(
        runtime::QueryTrace::Mode::kTimeline);
  }
  return std::make_shared<runtime::QueryTrace>(
      runtime::QueryTrace::Mode::kCounters);
}

void DataServicePlatform::FinishObservation(
    const CompiledPlan& plan, bool plan_cache_hit,
    const runtime::QueryTrace& trace, const Status& outcome, int64_t rows,
    int64_t bytes, int64_t wall_micros, const std::string& principal,
    int64_t security_denials, const observability::QueryControl* ctl) {
  using EventKind = runtime::QueryTrace::EventKind;
  metrics_.RecordWindowed("query.latency_micros", wall_micros);
  metrics_.AddWindowedCounter(outcome.ok() ? "query.ok" : "query.error");

  const uint64_t hash =
      observability::ExecutionAuditLog::HashQuery(plan.text);
  const int64_t sql_pushdowns = trace.CountEvents(EventKind::kSql) +
                                trace.CountEvents(EventKind::kPPkFetch) +
                                trace.CountEvents(EventKind::kCustomPushdown);

  // Wall-time split. Timeline traces yield the exact critical-path
  // attribution; counters mode approximates from the O(1) event-micros
  // tallies (queue wait needs task spans, so it reads 0 there).
  int64_t source_wait = 0, compute = 0, queue_wait = 0;
  if (trace.has_timeline()) {
    observability::CriticalPathReport cp =
        observability::AnalyzeCriticalPath(trace.BuildTimeline());
    source_wait = cp.source_wait_micros;
    compute = cp.compute_micros;
    queue_wait = cp.queue_wait_micros;
  } else {
    source_wait = trace.SumEventMicros(EventKind::kSql) +
                  trace.SumEventMicros(EventKind::kPPkFetch) +
                  trace.SumEventMicros(EventKind::kSourceInvoke) +
                  trace.SumEventMicros(EventKind::kCustomPushdown);
    queue_wait = trace.SumEventMicros(EventKind::kTaskWait);
    compute = std::max<int64_t>(0, wall_micros - source_wait - queue_wait);
  }

  const bool cancelled = outcome.code() == StatusCode::kCancelled;
  // Shed by admission control or stopped by a memory budget: tracked as
  // its own outcome everywhere — overload protection is not a bug.
  const bool shed = outcome.code() == StatusCode::kResourceExhausted;
  const int64_t peak_bytes =
      ctl == nullptr ? 0 : ctl->peak_bytes.load(std::memory_order_relaxed);

  // Per-fingerprint cumulative statistics (pg_stat_statements-style).
  observability::StatementSample sample;
  sample.fingerprint = plan.fingerprint;
  sample.statement_fingerprint = plan.statement_fingerprint;
  sample.query_head = plan.text.substr(0, 120);
  sample.error = !outcome.ok() && !cancelled && !shed;
  sample.cancelled = cancelled;
  sample.shed = shed;
  sample.wall_micros = wall_micros;
  sample.rows_returned = rows;
  sample.peak_bytes = peak_bytes;
  sample.source_wait_micros = source_wait;
  sample.compute_micros = compute;
  sample.queue_wait_micros = queue_wait;
  sample.plan_cache_hit = plan_cache_hit;
  sample.function_cache_hits = trace.CountEvents(EventKind::kCacheHit);
  sample.function_cache_misses = trace.CountEvents(EventKind::kCacheMiss);
  stat_statements_.Record(sample);

  // Plan lifecycle plane: feed the per-(statement, plan-version) latency
  // baseline. Only clean executions count — errors and cancels truncate
  // the run and would poison the baseline comparison. When the latest
  // version's baseline breaches its predecessor's, the sentinel hands
  // back both EXPLAIN snapshots; the server renders the structural diff,
  // publishes the completed event, and audits it.
  if (outcome.ok() && plan.statement_fingerprint != 0) {
    std::optional<observability::PlanRegressionEvent> regression =
        plan_history_.RecordExecution(plan.statement_fingerprint,
                                      plan.fingerprint, wall_micros);
    if (regression.has_value()) {
      regression->explain_diff = RenderExplainDiff(
          regression->baseline_explain, regression->regressed_explain);
      char detail[256];
      std::snprintf(detail, sizeof(detail),
                    "stmt_fp=%llu plan_fp %llu -> %llu (%s) "
                    "mean %lldus -> %lldus (%.2fx)",
                    static_cast<unsigned long long>(
                        regression->statement_fingerprint),
                    static_cast<unsigned long long>(
                        regression->baseline_plan_fingerprint),
                    static_cast<unsigned long long>(
                        regression->regressed_plan_fingerprint),
                    observability::CompileTriggerName(regression->trigger),
                    static_cast<long long>(regression->baseline_mean_micros),
                    static_cast<long long>(regression->regressed_mean_micros),
                    regression->ratio);
      plan_history_.PublishRegression(std::move(*regression));
      metrics_.AddWindowedCounter("plan_regression.events");
      audit_.Record("plan_regression", principal, detail);
    }
  }

  // Per-tenant resource attribution: the same deltas rolled into 1m/5m
  // windows keyed by principal, the admission-control substrate.
  const std::string tenant = principal.empty() ? "(anonymous)" : principal;
  metrics_.AddWindowedCounter("tenant." + tenant + ".queries");
  if (sample.error) metrics_.AddWindowedCounter("tenant." + tenant + ".errors");
  if (cancelled) metrics_.AddWindowedCounter("tenant." + tenant + ".cancels");
  if (shed) metrics_.AddWindowedCounter("tenant." + tenant + ".sheds");
  metrics_.RecordWindowed("tenant." + tenant + ".wall_micros", wall_micros);
  metrics_.RecordWindowed("tenant." + tenant + ".source_wait_micros",
                          source_wait);
  metrics_.RecordWindowed(
      "tenant." + tenant + ".source_roundtrips",
      sql_pushdowns + trace.CountEvents(EventKind::kSourceInvoke));
  metrics_.RecordWindowed("tenant." + tenant + ".rows", rows);
  if (peak_bytes > 0) {
    metrics_.RecordWindowed("tenant." + tenant + ".peak_bytes", peak_bytes);
  }

  observability::AuditRecord record;
  record.query_hash = hash;
  record.fingerprint = plan.fingerprint;
  record.statement_fingerprint = plan.statement_fingerprint;
  record.query_head = plan.text.substr(0, 80);
  record.principal = principal;
  record.outcome = outcome.ok() ? "ok" : StatusCodeName(outcome.code());
  record.sources = trace.SourcesTouched();
  record.sql_pushdowns = sql_pushdowns;
  record.rows_returned = rows;
  record.bytes_returned = bytes;
  record.wall_micros = wall_micros;
  record.compile_micros =
      plan_cache_hit ? 0
                     : plan.parse_micros + plan.analyze_micros +
                           plan.optimize_micros + plan.pushdown_micros;
  record.plan_cache_hit = plan_cache_hit;
  record.function_cache_hits = trace.CountEvents(EventKind::kCacheHit);
  record.function_cache_misses = trace.CountEvents(EventKind::kCacheMiss);
  record.timeouts = trace.CountEvents(EventKind::kTimeout);
  record.failovers = trace.CountEvents(EventKind::kFailOver);
  record.security_denials = security_denials;
  exec_audit_.Append(std::move(record));

  // Workload capture: the replay driver needs the verbatim text plus the
  // identity fingerprints; everything else is the comparison baseline.
  if (workload_capture_.load(std::memory_order_relaxed)) {
    observability::WorkloadJournalEntry capture;
    capture.statement_fingerprint = plan.statement_fingerprint;
    capture.plan_fingerprint = plan.fingerprint;
    capture.text = plan.text;
    capture.principal = principal;
    capture.outcome = outcome.ok() ? "ok" : StatusCodeName(outcome.code());
    capture.wall_micros = wall_micros;
    capture.rows = rows;
    capture.peak_bytes = peak_bytes;
    workload_journal_.Append(std::move(capture));
  }

  if (options_.slow_query_threshold_micros <= 0 ||
      wall_micros < options_.slow_query_threshold_micros) {
    return;
  }
  observability::SlowQueryRecord slow;
  slow.query_hash = hash;
  slow.fingerprint = plan.fingerprint;
  slow.statement_fingerprint = plan.statement_fingerprint;
  slow.query_head = plan.text.substr(0, 80);
  slow.wall_micros = wall_micros;
  slow.threshold_micros = options_.slow_query_threshold_micros;
  if (trace.keeps_events()) {
    slow.full_trace = true;
    slow.profile_text = RenderProfileText(plan, trace);
    slow.profile_json = RenderProfileJson(plan, trace);
    // The timeline makes the slow run openable in Perfetto; the second
    // slow run of a promoted query always has one.
    if (trace.has_timeline()) slow.trace_json = RenderChromeTrace(trace);
  } else {
    // First slow sighting: keep the cheap counter summary and promote
    // the hash so the next run executes under a full trace.
    std::ostringstream os;
    os << "counters: rows=" << rows << " sql_pushdowns=" << sql_pushdowns
       << " cache_hits=" << trace.CountEvents(EventKind::kCacheHit)
       << " cache_misses=" << trace.CountEvents(EventKind::kCacheMiss)
       << " timeouts=" << trace.CountEvents(EventKind::kTimeout)
       << " failovers=" << trace.CountEvents(EventKind::kFailOver)
       << " sources=";
    bool first = true;
    for (const auto& s : trace.SourcesTouched()) {
      if (!first) os << ",";
      first = false;
      os << s;
    }
    slow.profile_text = os.str();
    slow_queries_.Promote(hash);
  }
  slow_queries_.Append(std::move(slow));
}

std::shared_ptr<observability::QueryControl>
DataServicePlatform::RegisterExecution(const CompiledPlan& plan,
                                       const security::Principal* principal) {
  if (!options_.always_on_observability) return nullptr;
  std::shared_ptr<observability::QueryControl> ctl = query_registry_.Register(
      plan.fingerprint, plan.statement_fingerprint,
      principal != nullptr && !principal->user.empty() ? principal->user
                                                       : "(anonymous)",
      plan.text.substr(0, 120));
  ctl->SetMemoryBudget(options_.query_memory_budget_bytes);
  ctl->SetPhase(observability::QueryPhase::kExecuting);
  return ctl;
}

QueryClass DataServicePlatform::ClassifyStatement(
    const CompiledPlan& plan) const {
  const uint64_t key = plan.statement_fingerprint != 0
                           ? plan.statement_fingerprint
                           : plan.fingerprint;
  int64_t mean = stat_statements_.MeanWallMicrosFor(key);
  if (mean < 0 && plan.statement_fingerprint != 0) {
    // No cumulative stats yet (fresh server, or the entry was evicted):
    // fall back to the plan-history latency baseline of the active
    // version.
    std::optional<observability::StatementHistory> history =
        plan_history_.Statement(plan.statement_fingerprint);
    if (history.has_value() && !history->versions.empty()) {
      const observability::PlanVersion& v = history->versions.back();
      if (v.calls > 0) mean = static_cast<int64_t>(v.wall.MeanMicros());
    }
  }
  return mean >= admission_.options().analytics_threshold_micros
             ? QueryClass::kAnalytics
             : QueryClass::kInteractive;
}

AdmissionController::Ticket DataServicePlatform::AdmitExecution(
    const CompiledPlan& plan, const security::Principal* principal,
    observability::QueryControl* ctl) {
  AdmissionController::Ticket ticket;
  if (!admission_.enabled()) return ticket;
  const std::string tenant =
      principal != nullptr && !principal->user.empty() ? principal->user
                                                       : "(anonymous)";
  const QueryClass cls = ClassifyStatement(plan);
  // Queued queries are already registered: they show in LiveQueries* with
  // phase "queued" and a CancelQuery against them unblocks the wait.
  if (ctl != nullptr) ctl->SetPhase(observability::QueryPhase::kQueued);
  ticket = admission_.Admit(tenant, cls, ctl);
  if (ticket.status.ok() && ctl != nullptr) {
    ctl->SetPhase(observability::QueryPhase::kExecuting);
  }
  return ticket;
}

void DataServicePlatform::RecordRefusal(const CompiledPlan& plan,
                                        bool plan_cache_hit,
                                        const Status& refusal,
                                        const security::Principal* principal,
                                        int64_t wait_micros) {
  const std::string user = principal != nullptr ? principal->user : "";
  audit_.Record("admission", user,
                std::string(StatusCodeName(refusal.code())) + ": " +
                    refusal.message());
  if (!options_.always_on_observability) return;
  // Mirror the function-ACL denial path: the refused execution still gets
  // an audit record, a (shed-aware) statement sample and a journal entry,
  // with zero rows and the queue wait as its wall time.
  runtime::QueryTrace none(runtime::QueryTrace::Mode::kCounters);
  FinishObservation(plan, plan_cache_hit, none, refusal, /*rows=*/0,
                    /*bytes=*/0, wait_micros, user, /*security_denials=*/0);
}

Result<xml::Sequence> DataServicePlatform::ExecuteObserved(
    const CompiledPlan& plan, bool plan_cache_hit,
    const security::Principal* principal) {
  const int64_t arrival_micros = NowMicros();
  std::shared_ptr<runtime::QueryTrace> trace = MakeObservedTrace(plan);
  if (trace == nullptr) {
    // Observability disabled: the bare execution path still passes the
    // admission gate (without a registry control block, so queued waits
    // are not cancellable and budgets are not enforced here).
    AdmissionController::Ticket bare_ticket =
        AdmitExecution(plan, principal, nullptr);
    if (!bare_ticket.status.ok()) return bare_ticket.status;
    Result<xml::Sequence> bare = runtime::Evaluate(*plan.plan, ctx_);
    admission_.Release(bare_ticket.cls);
    if (!bare.ok() || principal == nullptr) return bare;
    return access_control_.FilterResult(*principal, *bare, &audit_);
  }
  std::shared_ptr<observability::QueryControl> ctl =
      RegisterExecution(plan, principal);
  // The concurrent serving plane's front door: classify against the
  // statement's cost history and wait for a slot in this tenant's
  // weighted-fair lane. A shed (queue full / queue timeout) or a cancel
  // while queued refuses the execution before it holds any runtime
  // resources — kResourceExhausted / kCancelled, never partial results.
  AdmissionController::Ticket ticket =
      AdmitExecution(plan, principal, ctl.get());
  if (!ticket.status.ok()) {
    RecordRefusal(plan, plan_cache_hit, ticket.status, principal,
                  ticket.wait_micros);
    if (ctl) query_registry_.Unregister(ctl->query_id);
    return ticket.status;
  }
  // A context copy carries the trace; trace_owner keeps it alive for any
  // evaluation a fn-bea:timeout abandons on a pool thread. The control
  // block rides along the same way (exec/exec_owner).
  runtime::RuntimeContext ctx = ctx_;
  ctx.trace = trace.get();
  ctx.trace_owner = trace;
  ctx.exec = ctl.get();
  ctx.exec_owner = ctl;
  int64_t t0 = NowMicros();
  // Admission wait: arrival at the execution surface to evaluation start.
  // With admission control off this is registration/trace setup only
  // (near zero); with it on, time queued in the fair lanes lands here, so
  // dashboards built on this window needed no change when queueing
  // appeared.
  metrics_.RecordWindowed("admission.wait_micros",
                          std::max<int64_t>(0, t0 - arrival_micros));
  Result<xml::Sequence> result = runtime::Evaluate(*plan.plan, ctx);
  admission_.Release(ticket.cls);
  int64_t security_denials = 0;
  if (result.ok() && principal != nullptr) {
    if (ctl) ctl->SetPhase(observability::QueryPhase::kSecurityFilter);
    // Fine-grained filtering happens last so cached plans and cached
    // function results remain user-agnostic (paper §7).
    xml::Sequence filtered = access_control_.FilterResult(
        *principal, *result, &audit_, &security_denials);
    result = std::move(filtered);
  }
  int64_t wall = NowMicros() - t0;
  int64_t rows = result.ok() ? static_cast<int64_t>(result->size()) : 0;
  int64_t bytes = result.ok() ? xml::SequenceMemoryBytes(*result) : 0;
  if (ctl) ctl->SetPhase(observability::QueryPhase::kFinishing);
  if (trace->keeps_events()) {
    trace->FeedObservedCost(&observed_);
  }
  FinishObservation(plan, plan_cache_hit, *trace,
                    result.ok() ? Status::OK() : result.status(), rows, bytes,
                    wall, principal != nullptr ? principal->user : "",
                    security_denials, ctl.get());
  if (ctl) query_registry_.Unregister(ctl->query_id);
  return result;
}

Result<xml::Sequence> DataServicePlatform::CallMethod(
    const std::string& function, const std::vector<std::string>& args,
    const MethodCriteria& criteria) {
  // The method call composes into XQuery text, so the plan cache and the
  // whole compilation pipeline apply to it.
  std::string call = function + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) call += ", ";
    call += args[i];
  }
  call += ")";
  std::string query;
  if (criteria.filter_child.empty() && criteria.sort_child.empty()) {
    query = call;
  } else {
    query = "for $mc_item in " + call + " ";
    if (!criteria.filter_child.empty()) {
      std::string value = criteria.filter_is_string
                              ? "\"" + criteria.filter_value + "\""
                              : criteria.filter_value;
      query += "where $mc_item/" + criteria.filter_child + " " +
               criteria.filter_op + " " + value + " ";
    }
    if (!criteria.sort_child.empty()) {
      query += "order by $mc_item/" + criteria.sort_child +
               (criteria.sort_descending ? " descending " : " ");
    }
    query += "return $mc_item";
  }
  return Execute(query);
}

Result<xml::Sequence> DataServicePlatform::ExecuteAs(
    const std::string& query, const security::Principal& principal) {
  bool cache_hit = false;
  ALDSP_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                         Prepare(query, &cache_hit));
  Status acl = access_control_.CheckFunctionAccess(
      principal, plan->called_functions, &audit_);
  if (!acl.ok()) {
    // A function-ACL denial is an execution outcome worth auditing too:
    // the record shows who was refused which query, with zero rows.
    if (options_.always_on_observability) {
      runtime::QueryTrace none(runtime::QueryTrace::Mode::kCounters);
      FinishObservation(*plan, cache_hit, none, acl, 0, 0, 0, principal.user,
                        /*security_denials=*/1);
    }
    return acl;
  }
  return ExecuteObserved(*plan, cache_hit, &principal);
}

Status DataServicePlatform::ExecuteStream(
    const std::string& query,
    const std::function<Status(const xml::Item&)>& sink) {
  bool cache_hit = false;
  ALDSP_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                         Prepare(query, &cache_hit));
  // FLWOR plans pipeline tuple by tuple: items reach the sink as they
  // are produced, without materializing the whole result (the paper's
  // server-side streaming API; remote client APIs stay materialized to
  // keep them stateless).
  std::shared_ptr<runtime::QueryTrace> trace = MakeObservedTrace(*plan);
  if (trace == nullptr) {
    AdmissionController::Ticket bare_ticket =
        AdmitExecution(*plan, nullptr, nullptr);
    if (!bare_ticket.status.ok()) return bare_ticket.status;
    Status bare = runtime::EvaluateStream(*plan->plan, ctx_, sink);
    admission_.Release(bare_ticket.cls);
    return bare;
  }
  std::shared_ptr<observability::QueryControl> ctl =
      RegisterExecution(*plan, nullptr);
  AdmissionController::Ticket ticket = AdmitExecution(*plan, nullptr, ctl.get());
  if (!ticket.status.ok()) {
    RecordRefusal(*plan, cache_hit, ticket.status, nullptr,
                  ticket.wait_micros);
    if (ctl) query_registry_.Unregister(ctl->query_id);
    return ticket.status;
  }
  runtime::RuntimeContext ctx = ctx_;
  ctx.trace = trace.get();
  ctx.trace_owner = trace;
  ctx.exec = ctl.get();
  ctx.exec_owner = ctl;
  int64_t rows = 0;
  auto counting_sink = [&](const xml::Item& item) -> Status {
    ++rows;
    return sink(item);
  };
  int64_t t0 = NowMicros();
  Status st = runtime::EvaluateStream(*plan->plan, ctx, counting_sink);
  int64_t wall = NowMicros() - t0;
  admission_.Release(ticket.cls);
  if (ctl) ctl->SetPhase(observability::QueryPhase::kFinishing);
  if (trace->keeps_events()) {
    trace->FeedObservedCost(&observed_);
  }
  // Streamed items are not retained, so bytes_returned stays 0.
  FinishObservation(*plan, cache_hit, *trace, st, rows, /*bytes=*/0, wall,
                    /*principal=*/"", /*security_denials=*/0, ctl.get());
  if (ctl) query_registry_.Unregister(ctl->query_id);
  return st;
}

// EXPLAIN describes the plan the evaluator would actually run, so the
// renderer gets the same parallelism knobs the runtime context carries.
static runtime::physical::BuildOptions PlanBuildOptions(
    const runtime::RuntimeContext& ctx) {
  runtime::physical::BuildOptions opts;
  opts.max_dop = ctx.max_query_dop;
  opts.parallel_row_threshold = ctx.parallel_row_threshold;
  opts.exchange_chunk_size = ctx.exchange_chunk_size;
  opts.ordered = ctx.exchange_ordered;
  opts.batch_size = ctx.batch_size;
  return opts;
}

Result<std::string> DataServicePlatform::Explain(const std::string& query) {
  ALDSP_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                         Prepare(query));
  std::string out = RenderPlanText(*plan, PlanBuildOptions(ctx_));
  // Serving-plane line: what the admission gate would do with this
  // statement right now, and the memory budget the execution runs under.
  if (admission_.enabled() || options_.query_memory_budget_bytes > 0) {
    out += "admission:";
    if (admission_.enabled()) {
      out += " class=";
      out += QueryClassName(ClassifyStatement(*plan));
      out += " max_concurrent=" +
             std::to_string(admission_.options().max_concurrent_queries);
    }
    if (options_.query_memory_budget_bytes > 0) {
      out += " memory_budget_bytes=" +
             std::to_string(options_.query_memory_budget_bytes);
    }
    out += "\n";
  }
  std::vector<observability::SourceHealthSnapshot> health =
      health_.GetSnapshot(NowMicros());
  if (!health.empty()) out += RenderSourceHealthText(health);
  return out;
}

Result<std::string> DataServicePlatform::ExplainJson(const std::string& query) {
  ALDSP_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                         Prepare(query));
  std::string json = RenderPlanJson(*plan, PlanBuildOptions(ctx_));
  std::vector<observability::SourceHealthSnapshot> health =
      health_.GetSnapshot(NowMicros());
  if (!health.empty() && !json.empty() && json.back() == '}') {
    json.pop_back();
    json += ",\"source_health\":";
    json += observability::SourceHealthBoard::RenderJson(health);
    json += "}";
  }
  return json;
}

Result<ProfiledExecution> DataServicePlatform::ExecuteProfiled(
    const std::string& query) {
  bool cache_hit = false;
  ALDSP_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                         Prepare(query, &cache_hit));
  ProfiledExecution out;
  out.plan = plan;
  out.trace = std::make_shared<runtime::QueryTrace>(
      runtime::QueryTrace::Mode::kTimeline);
  // A context copy carries the trace so concurrent unprofiled executions
  // through ctx_ stay untraced; trace_owner keeps the trace alive for
  // any evaluation a fn-bea:timeout abandons on a pool thread.
  std::shared_ptr<observability::QueryControl> ctl =
      RegisterExecution(*plan, nullptr);
  AdmissionController::Ticket ticket =
      AdmitExecution(*plan, nullptr, ctl.get());
  if (!ticket.status.ok()) {
    RecordRefusal(*plan, cache_hit, ticket.status, nullptr,
                  ticket.wait_micros);
    if (ctl) query_registry_.Unregister(ctl->query_id);
    return ticket.status;
  }
  runtime::RuntimeContext ctx = ctx_;
  ctx.trace = out.trace.get();
  ctx.trace_owner = out.trace;
  ctx.exec = ctl.get();
  ctx.exec_owner = ctl;
  int root = out.trace->BeginSpan("query", plan->text);
  auto t0 = std::chrono::steady_clock::now();
  Result<xml::Sequence> result = [&]() {
    runtime::QueryTrace::Scope scope(out.trace.get(), root);
    return runtime::Evaluate(*plan->plan, ctx);
  }();
  int64_t micros = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  admission_.Release(ticket.cls);
  int64_t rows = result.ok() ? static_cast<int64_t>(result->size()) : 0;
  out.trace->AddSpanMetrics(root, rows, micros);
  out.trace->EndSpan(root);
  // Even a failed run made real source observations worth keeping.
  out.trace->FeedObservedCost(&observed_);
  if (options_.always_on_observability) {
    if (ctl) ctl->SetPhase(observability::QueryPhase::kFinishing);
    int64_t bytes = result.ok() ? xml::SequenceMemoryBytes(*result) : 0;
    FinishObservation(*plan, cache_hit, *out.trace,
                      result.ok() ? Status::OK() : result.status(), rows,
                      bytes, micros, /*principal=*/"",
                      /*security_denials=*/0, ctl.get());
  }
  if (ctl) query_registry_.Unregister(ctl->query_id);
  if (!result.ok()) return result.status();
  out.result = std::move(result).value();
  return out;
}

Result<std::string> DataServicePlatform::ChromeTraceJson(
    const std::string& query) {
  ALDSP_ASSIGN_OR_RETURN(ProfiledExecution run, ExecuteProfiled(query));
  return RenderChromeTrace(*run.trace);
}

runtime::MetricsRegistry::Snapshot DataServicePlatform::MetricsSnapshot() {
  metrics_.SetCounter("runtime.source_invocations",
                      stats_.source_invocations.load());
  metrics_.SetCounter("runtime.sql_pushdowns", stats_.sql_pushdowns.load());
  metrics_.SetCounter("runtime.join_probe_rows",
                      stats_.join_probe_rows.load());
  metrics_.SetCounter("runtime.ppk_blocks", stats_.ppk_blocks.load());
  metrics_.SetCounter("runtime.async_tasks", stats_.async_tasks.load());
  metrics_.SetCounter("runtime.timeouts_fired", stats_.timeouts_fired.load());
  metrics_.SetCounter("runtime.failovers_fired",
                      stats_.failovers_fired.load());
  metrics_.SetCounter("runtime.group_sort_fallbacks",
                      stats_.group_sort_fallbacks.load());
  metrics_.SetCounter("runtime.streaming_groups",
                      stats_.streaming_groups.load());
  metrics_.SetCounter("runtime.peak_operator_bytes",
                      stats_.peak_operator_bytes.load());
  {
    std::lock_guard<std::mutex> lock(plan_cache_mutex_);
    metrics_.SetCounter("plan_cache.hits", plan_cache_hits_);
    metrics_.SetCounter("plan_cache.misses", plan_cache_misses_);
    metrics_.SetCounter("plan_cache.entries",
                        static_cast<int64_t>(plan_cache_.size()));
  }
  metrics_.SetCounter("view_plan_cache.hits", view_cache_.hits());
  metrics_.SetCounter("view_plan_cache.misses", view_cache_.misses());
  metrics_.SetCounter("view_plan_cache.entries",
                      static_cast<int64_t>(view_cache_.size()));
  metrics_.SetCounter("function_cache.hits",
                      function_cache_.stats().hits.load());
  metrics_.SetCounter("function_cache.misses",
                      function_cache_.stats().misses.load());
  metrics_.SetCounter("function_cache.expirations",
                      function_cache_.stats().expirations.load());
  metrics_.SetCounter("function_cache.entries",
                      static_cast<int64_t>(function_cache_.size()));
  metrics_.SetCounter("worker_pool.size", pool_.size());
  metrics_.SetCounter("worker_pool.queue_depth", pool_.queue_depth());
  metrics_.SetCounter("worker_pool.running", pool_.running_tasks());
  // Saturation: running tasks as a percentage of pool threads, clamped to
  // [0, 100] so it reads as a utilization gauge. Inline-stealing waiters
  // running tasks on their own threads can push raw occupancy past the
  // pool size — that overload signal is reported separately as
  // oversubscription_pct (the share *beyond* 100).
  {
    const int64_t raw_pct = pool_.size() > 0
                                ? 100 * pool_.running_tasks() / pool_.size()
                                : 0;
    metrics_.SetCounter("worker_pool.saturation_pct",
                        std::min<int64_t>(100, raw_pct));
    metrics_.SetCounter("worker_pool.oversubscription_pct",
                        std::max<int64_t>(0, raw_pct - 100));
  }
  metrics_.SetCounter("worker_pool.tasks_completed", pool_.tasks_completed());
  metrics_.SetCounter("worker_pool.queue_wait_micros",
                      pool_.total_queue_wait_micros());
  metrics_.SetCounter("worker_pool.run_micros", pool_.total_run_micros());
  metrics_.SetCounter("audit_log.records", exec_audit_.total_appended());
  metrics_.SetCounter("slow_query_log.records",
                      slow_queries_.total_appended());
  metrics_.SetCounter("query_registry.live", query_registry_.live_count());
  metrics_.SetCounter("query_registry.started",
                      query_registry_.total_started());
  metrics_.SetCounter("query_registry.cancel_requests",
                      query_registry_.total_cancel_requests());
  // Concurrency plane: server-wide and per-tenant in-flight gauges with
  // high-water marks, fed by the live-query registry.
  metrics_.SetCounter("server.in_flight", query_registry_.live_count());
  metrics_.SetCounter("server.peak_in_flight", query_registry_.peak_live());
  for (const auto& [tenant, gauge] : query_registry_.TenantGauges()) {
    metrics_.SetCounter("tenant." + tenant + ".in_flight", gauge.in_flight);
    metrics_.SetCounter("tenant." + tenant + ".peak_in_flight",
                        gauge.peak_in_flight);
  }
  // Concurrent serving plane: the admission gate's gauges and shed
  // counters, plus per-tenant quota counters (admitted/queued/shed per
  // lane). Exported even when disabled so dashboards see zeros, not
  // missing series.
  {
    AdmissionSnapshot adm = admission_.Snapshot();
    metrics_.SetCounter("admission.enabled", adm.enabled ? 1 : 0);
    metrics_.SetCounter("admission.max_concurrent",
                        adm.max_concurrent_queries);
    metrics_.SetCounter("admission.running", adm.running);
    metrics_.SetCounter("admission.analytics_running", adm.analytics_running);
    metrics_.SetCounter("admission.depth", adm.queue_depth);
    metrics_.SetCounter("admission.admitted", adm.admitted);
    metrics_.SetCounter("admission.admitted_interactive",
                        adm.admitted_interactive);
    metrics_.SetCounter("admission.admitted_analytics",
                        adm.admitted_analytics);
    metrics_.SetCounter("admission.queued", adm.queued);
    metrics_.SetCounter("admission.shed",
                        adm.shed_queue_full + adm.shed_timeout);
    metrics_.SetCounter("admission.shed_queue_full", adm.shed_queue_full);
    metrics_.SetCounter("admission.shed_timeout", adm.shed_timeout);
    metrics_.SetCounter("admission.cancelled_while_queued",
                        adm.cancelled_while_queued);
    for (const auto& [tenant, t] : adm.tenants) {
      metrics_.SetCounter("tenant." + tenant + ".admitted", t.admitted);
      metrics_.SetCounter("tenant." + tenant + ".admission_queued", t.queued);
      metrics_.SetCounter("tenant." + tenant + ".admission_shed", t.shed);
    }
  }
  metrics_.SetCounter("workload_journal.records",
                      workload_journal_.total_appended());
  metrics_.SetCounter("stat_statements.entries",
                      stat_statements_.entry_count());
  metrics_.SetCounter("stat_statements.evictions",
                      stat_statements_.evictions());
  metrics_.SetCounter("plan_history.statements",
                      plan_history_.statement_count());
  metrics_.SetCounter("plan_history.evictions",
                      plan_history_.statement_evictions());
  metrics_.SetCounter("plan_history.plan_changes",
                      plan_history_.plan_changes_total());
  metrics_.SetCounter("plan_history.regressions",
                      plan_history_.regressions_total());
  return metrics_.GetSnapshot();
}

std::string DataServicePlatform::StatStatementsText(int top_k) {
  return stat_statements_.RenderText(top_k);
}

std::string DataServicePlatform::StatStatementsJson(int top_k) {
  return stat_statements_.RenderJson(top_k);
}

void DataServicePlatform::ResetStatStatements() { stat_statements_.Reset(); }

std::string DataServicePlatform::LiveQueriesText() {
  return query_registry_.RenderText();
}

std::string DataServicePlatform::LiveQueriesJson() {
  return query_registry_.RenderJson();
}

std::string DataServicePlatform::PlanHistoryText(uint64_t statement_fp) {
  return plan_history_.RenderHistoryText(statement_fp);
}

std::string DataServicePlatform::PlanHistoryJson(uint64_t statement_fp) {
  return plan_history_.RenderHistoryJson(statement_fp);
}

std::string DataServicePlatform::PlanRegressionsText() {
  return plan_history_.RenderRegressionsText();
}

std::string DataServicePlatform::PlanRegressionsJson() {
  return plan_history_.RenderRegressionsJson();
}

bool DataServicePlatform::CancelQuery(uint64_t query_id) {
  const bool found = query_registry_.Cancel(query_id);
  audit_.Record("cancel", "",
                "query #" + std::to_string(query_id) +
                    (found ? "" : " (not running)"));
  return found;
}

std::string DataServicePlatform::WorkloadJournalText() {
  return observability::WorkloadJournal::RenderText(
      workload_journal_.Records());
}

std::string DataServicePlatform::WorkloadJournalJson() {
  return observability::WorkloadJournal::RenderJson(
      workload_journal_.Records(), workload_journal_.total_appended(),
      workload_journal_.capacity());
}

std::string DataServicePlatform::WorkloadJournalJsonl() {
  return observability::WorkloadJournal::RenderJsonl(
      workload_journal_.Records());
}

observability::ReplayReport DataServicePlatform::ReplayWorkload(
    const std::vector<observability::WorkloadJournalEntry>& entries,
    const observability::ReplayOptions& options) {
  // Suspend capture for the duration: a replay measuring the server must
  // not also append itself to the journal it may be replayed from.
  const bool was_capturing = workload_capture();
  SetWorkloadCapture(false);
  observability::ReplayDriver driver(
      entries, [this](const observability::WorkloadJournalEntry& entry) {
        observability::ReplayExecution exec;
        bool cache_hit = false;
        Result<std::shared_ptr<const CompiledPlan>> plan =
            Prepare(entry.text, &cache_hit);
        if (!plan.ok()) {
          exec.outcome = StatusCodeName(plan.status().code());
          return exec;
        }
        exec.statement_fingerprint = (*plan)->statement_fingerprint;
        exec.plan_fingerprint = (*plan)->fingerprint;
        // Replay under the captured principal so per-tenant attribution
        // and element-level security behave as they did at capture time
        // (roles are not captured, so function ACLs — which key on roles
        // — may refuse what the original run was allowed).
        security::Principal principal;
        principal.user = entry.principal;
        const bool as_principal =
            !entry.principal.empty() && entry.principal != "(anonymous)";
        Result<xml::Sequence> result = ExecuteObserved(
            **plan, cache_hit, as_principal ? &principal : nullptr);
        exec.ok = result.ok();
        exec.shed = !result.ok() &&
                    result.status().code() == StatusCode::kResourceExhausted;
        exec.outcome =
            result.ok() ? "ok" : StatusCodeName(result.status().code());
        exec.rows = result.ok() ? static_cast<int64_t>(result->size()) : 0;
        return exec;
      });
  observability::ReplayReport report = driver.Run(options);
  SetWorkloadCapture(was_capturing);
  audit_.Record("workload_replay", "",
                "ops=" + std::to_string(report.ops) +
                    " errors=" + std::to_string(report.errors) +
                    " sheds=" + std::to_string(report.sheds) +
                    " stmt_mismatches=" +
                    std::to_string(report.fingerprint_mismatches));
  return report;
}

std::string DataServicePlatform::AuditLog() {
  return observability::ExecutionAuditLog::RenderJsonl(exec_audit_.Records());
}

std::string DataServicePlatform::SlowQueries() {
  return observability::SlowQueryLog::RenderJson(slow_queries_.Records());
}

std::string DataServicePlatform::RenderSlowQueryText(int64_t seq) {
  std::ostringstream os;
  for (const auto& r : slow_queries_.Records()) {
    if (seq >= 0 && r.seq != seq) continue;
    char hash[24];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(r.query_hash));
    os << "-- slow query #" << r.seq << " hash=" << hash
       << " wall=" << r.wall_micros << "us threshold=" << r.threshold_micros
       << "us " << (r.full_trace ? "[full trace]" : "[counters]") << "\n";
    os << r.query_head << "\n";
    os << r.profile_text;
    if (!r.profile_text.empty() && r.profile_text.back() != '\n') os << "\n";
  }
  return os.str();
}

std::string DataServicePlatform::SlowQueryChromeTrace(int64_t seq) {
  for (const auto& r : slow_queries_.Records()) {
    if (r.seq == seq) return r.trace_json;
  }
  return "";
}

std::string DataServicePlatform::SourceHealthJson() {
  return observability::SourceHealthBoard::RenderJson(
      health_.GetSnapshot(NowMicros()));
}

std::string DataServicePlatform::MetricsText() {
  return runtime::MetricsRegistry::RenderText(MetricsSnapshot());
}

std::string DataServicePlatform::MetricsJson() {
  return runtime::MetricsRegistry::RenderJson(MetricsSnapshot());
}

std::string DataServicePlatform::MetricsPrometheusText() {
  return runtime::MetricsRegistry::RenderPrometheusText(MetricsSnapshot());
}

void DataServicePlatform::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(plan_cache_mutex_);
  plan_cache_.clear();
  plan_lru_.clear();
}

std::string DataServicePlatform::Describe() const {
  std::ostringstream os;
  os << "=== ALDSP server ===\n";
  os << "external functions (physical data services):\n";
  for (const auto& fn : functions_.external_functions()) {
    os << "  " << fn.name << "  [" << fn.kind() << " @ "
       << fn.Property("source") << "]";
    if (!fn.Property("table").empty()) os << " table=" << fn.Property("table");
    os << "\n";
  }
  os << "user functions (logical data services):\n";
  for (const auto& fn : functions_.user_functions()) {
    os << "  " << fn.name << "  kind=" << fn.pragma_kind
       << (fn.valid ? "" : "  [INVALID]")
       << (fn.is_primary ? "  [lineage provider]" : "") << "\n";
  }
  os << "deployed data services:\n";
  for (const auto& svc : services_.services()) {
    os << "  " << svc.name << ": " << svc.read_methods.size() << " read, "
       << svc.navigate_methods.size() << " navigate; lineage provider "
       << (svc.lineage_provider.empty() ? "<none>" : svc.lineage_provider)
       << "\n";
  }
  os << "caches: plan " << plan_cache_.size() << " entries ("
     << plan_cache_hits_ << " hits / " << plan_cache_misses_
     << " misses), view plans " << view_cache_.size() << ", function cache "
     << function_cache_.size() << " entries ("
     << function_cache_.stats().hits.load() << " hits)\n";
  os << "runtime: " << stats_.source_invocations.load()
     << " source invocations, " << stats_.sql_pushdowns.load()
     << " pushed SQL executions, " << stats_.ppk_blocks.load()
     << " PP-k blocks, " << stats_.async_tasks.load() << " async tasks, "
     << stats_.timeouts_fired.load() << " timeouts, "
     << stats_.failovers_fired.load() << " failovers\n";
  os << "audit events: " << audit_.size() << "\n";
  return os.str();
}

}  // namespace aldsp::server
