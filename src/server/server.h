#ifndef ALDSP_SERVER_SERVER_H_
#define ALDSP_SERVER_SERVER_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "adaptors/file_adaptor.h"
#include "adaptors/relational_adaptor.h"
#include "compiler/analyzer.h"
#include "compiler/function_table.h"
#include "observability/audit_log.h"
#include "observability/plan_history.h"
#include "observability/query_registry.h"
#include "observability/replay.h"
#include "observability/slow_query_log.h"
#include "observability/source_health.h"
#include "observability/stat_statements.h"
#include "observability/workload_journal.h"
#include "optimizer/optimizer.h"
#include "runtime/context.h"
#include "runtime/evaluator.h"
#include "runtime/worker_pool.h"
#include "security/security.h"
#include "server/admission.h"
#include "service/data_service.h"
#include "service/introspect.h"
#include "sql/pushdown.h"
#include "update/engine.h"
#include "xquery/parser.h"

namespace aldsp::server {

/// A compiled, executable query plan (the output of code generation,
/// paper §3.3 step 6). Plans are immutable after compilation and safe to
/// share across executions and threads.
struct CompiledPlan {
  std::string text;
  xquery::ExprPtr plan;
  sql::PushdownStats pushdown;
  /// User/data-service functions the original query calls — recorded
  /// before view unfolding so function-level access control still sees
  /// them (paper §7).
  std::vector<std::string> called_functions;
  /// Stable fingerprint of the normalized plan shape (literals stripped):
  /// which plan *version* this compile produced. Computed once at
  /// compilation, so it survives plan-cache round trips by construction.
  uint64_t fingerprint = 0;
  /// Stable fingerprint of the normalized pre-optimization AST (literals
  /// stripped): which *statement* this is, independent of the plan the
  /// optimizer picked. One statement fingerprint maps to a history of
  /// plan fingerprints as the cost model adapts (see PlanHistory).
  uint64_t statement_fingerprint = 0;
  /// Microseconds spent in each compilation phase, for the §3.3 bench.
  int64_t parse_micros = 0;
  int64_t analyze_micros = 0;
  int64_t optimize_micros = 0;
  int64_t pushdown_micros = 0;
};

struct ServerOptions {
  optimizer::OptimizerOptions optimizer;
  bool enable_optimizer = true;
  bool enable_pushdown = true;
  size_t plan_cache_size = 256;
  size_t view_plan_cache_size = 256;
  /// Threads in the shared runtime worker pool (fn-bea:async, timeout
  /// evaluation, PP-k prefetch); <= 0 means hardware_concurrency.
  int worker_pool_size = 0;
  /// Maximum intra-query degree of parallelism: the planner may insert
  /// exchange operators running up to this many probe/scan partitions
  /// concurrently. 0 sizes it to the worker pool; 1 forces serial plans.
  int max_query_dop = 0;
  /// PP-k prefetch pipeline depth: 0 adapts per source from observed
  /// round-trip/transfer times (capped at 8); >= 1 forces that depth
  /// (1 reproduces the classic double-buffered overlap).
  int ppk_prefetch_depth = 0;
  /// Rows per TupleBatch in the vectorized runtime (clamped to
  /// [1, 16384] at operator Open). 1 degenerates to row-at-a-time
  /// execution — useful for isolating batch-effects in benchmarks.
  int batch_size = 1024;

  // ----- Always-on observability plane ---------------------------------

  /// Run every execution under a counters-mode QueryTrace that feeds the
  /// execution audit log, rolling metrics and slow-query capture.
  /// Disabling reverts to the bare pre-observability execution path
  /// (profiling via ExecuteProfiled still works).
  bool always_on_observability = true;
  /// Retained execution audit records (bounded ring).
  size_t audit_log_capacity = 1024;
  /// Retained slow-query captures (bounded ring).
  size_t slow_query_log_capacity = 64;
  /// Executions at least this slow are captured: the first slow run of a
  /// query stores its counter summary and promotes the query hash; later
  /// runs of a promoted hash execute under a full trace whose rendered
  /// profile is stored. <= 0 disables capture.
  int64_t slow_query_threshold_micros = 250'000;
  /// Circuit-breaker tuning for the per-source health scoreboard.
  observability::BreakerOptions circuit_breaker;
  /// Distinct statements tracked by the cumulative statement statistics;
  /// the least expensive entry is evicted on overflow.
  size_t stat_statements_capacity = 512;
  /// Retained workload-journal entries (bounded ring): every observed
  /// Execute* is recorded for later JSONL export and replay.
  size_t workload_journal_capacity = 4096;
  /// Capture executions into the workload journal. Flipped off during
  /// ReplayWorkload so a replay does not journal itself; also togglable
  /// at runtime via SetWorkloadCapture.
  bool workload_capture = true;

  // ----- Plan lifecycle plane ------------------------------------------

  /// Distinct statements tracked by the plan-version history; the least
  /// recently seen statement is evicted on overflow.
  size_t plan_history_statements = 256;
  /// Plan versions retained per statement (oldest roll off).
  size_t plan_history_versions = 8;
  /// Executions a new plan version and its predecessor must each
  /// accumulate before the regression sentinel compares their latency
  /// baselines. <= 0 disables the sentinel.
  int64_t plan_regression_min_calls = 8;
  /// Sentinel breach threshold: new mean (or p95 upper bound) at least
  /// this multiple of the prior version's fires a plan_regression event.
  double plan_regression_ratio = 1.5;
  /// Retained plan_regression events (bounded ring).
  size_t plan_regression_capacity = 64;

  // ----- Concurrent serving plane (admission control) -------------------

  /// Executions allowed to run concurrently; arrivals beyond this wait in
  /// per-tenant weighted-fair lanes at the execution front door. 0 (the
  /// default) disables admission control entirely — every Execute* runs
  /// immediately, the pre-admission behavior. On a machine with few cores
  /// a small value (~4) tames the tail: 256 clients queue at the door in
  /// microsecond-cheap lanes instead of oversubscribing the scheduler.
  int max_concurrent_queries = 0;
  /// Of those slots, how many analytics-class executions may hold at
  /// once; 0 auto-sizes to max(1, max_concurrent_queries - 1) so one slot
  /// always stays reachable for point lookups.
  int max_concurrent_analytics = 0;
  /// Queued executions beyond which arrivals are shed immediately with
  /// kResourceExhausted.
  int admission_queue_depth = 1024;
  /// Longest an execution waits in its lane before being shed with
  /// kResourceExhausted; <= 0 waits without a deadline.
  int64_t admission_queue_timeout_micros = 2'000'000;
  /// Statements whose observed mean wall time (stat_statements, falling
  /// back to the plan-history baseline) reaches this are classified as
  /// analytics at the admission gate; unknown statements default to
  /// interactive.
  int64_t analytics_threshold_micros = 25'000;
  /// Relative admission shares per tenant under contention (absent = 1.0).
  std::map<std::string, double> tenant_weights;
  /// Per-query memory budget: a single blocking operator materializing
  /// more than this many bytes fails the query fast with
  /// kResourceExhausted at the next cooperative poll. 0 = unlimited.
  /// Enforced through the existing QueryControl::NotePeakBytes watermark,
  /// surfaced in EXPLAIN and the live-query registry.
  int64_t query_memory_budget_bytes = 0;
};

/// The result of ExecuteProfiled: the materialized result plus the plan
/// and the per-execution trace that RenderProfileText/Json merge into an
/// EXPLAIN ANALYZE-style tree. The trace must outlive any evaluation a
/// fn-bea:timeout abandoned (holding this struct does).
struct ProfiledExecution {
  xml::Sequence result;
  std::shared_ptr<const CompiledPlan> plan;
  std::shared_ptr<runtime::QueryTrace> trace;
};

/// The ALDSP server (paper Fig. 2): data service metadata, the query
/// compiler (analysis, optimization, SQL pushdown), the plan cache, the
/// runtime with its adaptor framework, and the mid-tier function cache.
/// Client results are fully materialized (the paper's client APIs are
/// stateless); `ExecuteStream` exposes the server-side incremental API.
class DataServicePlatform {
 public:
  explicit DataServicePlatform(ServerOptions options = {});

  // ----- Source registration (design-time) ----------------------------

  /// Introspects a relational database and registers its physical data
  /// services under `fn_prefix` (one read function per table, navigation
  /// functions from foreign keys).
  Status RegisterRelationalSource(const std::string& fn_prefix,
                                  std::shared_ptr<relational::Database> db,
                                  const std::string& vendor = "base-sql92");

  /// Registers a functional/file source adaptor; its functions must be
  /// declared separately via RegisterFunctionalSource.
  Status RegisterAdaptor(std::shared_ptr<runtime::Adaptor> adaptor);

  Status RegisterFunctionalSource(
      const std::string& function_name, const std::string& source_id,
      const std::string& kind, std::vector<xsd::SequenceType> param_types,
      xsd::SequenceType return_type,
      std::map<std::string, std::string> extra_properties = {});

  /// Registers a non-queryable XML document source (paper §2.2): the
  /// content is parsed, validated against `item_schema` (which is also
  /// added to the schema registry), and surfaced as the zero-argument
  /// function `function_name`.
  Status RegisterXmlSource(const std::string& function_name,
                           const std::string& xml_text,
                           const xsd::TypePtr& item_schema);

  /// Registers a delimited-file source: records become <row_name>
  /// elements with header-named, typed children.
  Status RegisterCsvSource(const std::string& function_name,
                           const std::string& csv_text,
                           const std::string& row_name,
                           const std::vector<std::string>& column_names,
                           const std::vector<xml::AtomicType>& column_types);

  /// Loads a data service file (XQuery module) in fail-fast mode.
  Status LoadDataService(const std::string& xquery_text);
  /// Design-time load (paper §4.1): collects all diagnostics, keeps valid
  /// functions.
  Status LoadDataServiceWithRecovery(const std::string& xquery_text,
                                     DiagnosticBag* bag);

  // ----- Data services and updates (paper §2.1 / §6) -------------------

  /// Deployed data services (populated by LoadDataService: the functions
  /// of each namespace prefix form one service, with methods classified
  /// by pragma kind and a designated lineage provider).
  const service::ServiceCatalog& services() const { return services_; }

  /// Lineage of a data service, computed from its lineage provider.
  Result<update::LineageMap> LineageFor(const std::string& service_name);

  /// Submits a changed SDO back through the service's lineage: the unit
  /// of update execution, run as one (simulated) XA transaction across
  /// the affected sources.
  Result<update::SubmitReport> Submit(const std::string& service_name,
                                      const update::DataObject& object,
                                      const update::SubmitOptions& options = {});

  // ----- Query API ------------------------------------------------------

  /// Compiles a query through every phase; plans are cached by query text
  /// (the paper's query plan cache). `cache_hit`, when non-null, reports
  /// whether the plan came from the cache.
  Result<std::shared_ptr<const CompiledPlan>> Prepare(const std::string& query,
                                                     bool* cache_hit = nullptr);

  /// Prepares (or reuses) a plan and executes it, returning the fully
  /// materialized result.
  Result<xml::Sequence> Execute(const std::string& query);

  /// Filtering and sorting criteria a mediator-API client may attach to a
  /// data service method call (paper §2.2: "the mediator API permits
  /// clients to include result filtering and sorting criteria along with
  /// their request"). The criteria compose into the generated query, so
  /// they benefit from view unfolding and SQL pushdown like any
  /// hand-written predicate.
  struct MethodCriteria {
    /// Child element of each result item to filter on (empty = none).
    std::string filter_child;
    std::string filter_op = "eq";  // eq, ne, lt, le, gt, ge
    std::string filter_value;      // literal, quoted per `filter_is_string`
    bool filter_is_string = true;
    /// Child element to sort by (empty = source order).
    std::string sort_child;
    bool sort_descending = false;
  };

  /// Invokes a data service method with literal arguments and optional
  /// client criteria.
  Result<xml::Sequence> CallMethod(const std::string& function,
                                   const std::vector<std::string>& args,
                                   const MethodCriteria& criteria);
  Result<xml::Sequence> CallMethod(const std::string& function,
                                   const std::vector<std::string>& args) {
    return CallMethod(function, args, MethodCriteria());
  }

  Result<xml::Sequence> ExecutePlan(const CompiledPlan& plan);

  /// Executes on behalf of a principal: function ACLs are enforced
  /// against the query's (pre-unfolding) function calls, and
  /// element-level policies filter the result at the last stage, after
  /// plan and function caches, so those stay shared across users
  /// (paper §7).
  Result<xml::Sequence> ExecuteAs(const std::string& query,
                                  const security::Principal& principal);

  /// Server-side streaming API: invokes `sink` per result item without
  /// materializing the full sequence in one buffer first.
  Status ExecuteStream(const std::string& query,
                       const std::function<Status(const xml::Item&)>& sink);

  // ----- Observability (EXPLAIN / PROFILE / metrics) -------------------

  /// Compiles (or reuses) the plan and renders the annotated operator
  /// tree: compile-phase micros, pushdown SQL, join methods. No execution.
  Result<std::string> Explain(const std::string& query);
  Result<std::string> ExplainJson(const std::string& query);

  /// Executes with a per-execution QueryTrace attached: every operator
  /// instance gets a span (rows, micros, bytes) and every source
  /// interaction an event. The completed trace feeds the observed-cost
  /// model, closing the §9 observe -> optimize loop; ordinary Execute
  /// runs with a null trace and pays no instrumentation cost.
  Result<ProfiledExecution> ExecuteProfiled(const std::string& query);

  /// Runs `query` under a timeline trace and renders it as Chrome
  /// trace_event JSON (one lane per engine thread; spans, queue waits
  /// and source round trips as slices). Open in chrome://tracing or
  /// ui.perfetto.dev.
  Result<std::string> ChromeTraceJson(const std::string& query);

  /// Server-wide metrics: per-source latency histograms and rolling
  /// 1m/5m windows recorded by the runtime and the execution wrapper,
  /// with runtime/cache counters and pool gauges folded in at snapshot
  /// time.
  runtime::MetricsRegistry& metrics() { return metrics_; }
  runtime::MetricsRegistry::Snapshot MetricsSnapshot();
  std::string MetricsText();
  std::string MetricsJson();
  /// The always-on metrics export API (counters, source histograms,
  /// rolling windows, windowed cache-hit counters, pool gauges).
  std::string MetricsSnapshotJson() { return MetricsJson(); }
  /// The same snapshot in Prometheus text exposition format, for scrape
  /// endpoints (per-tenant gauges as labelled families, source latency
  /// as cumulative `le` buckets).
  std::string MetricsPrometheusText();

  // ----- Always-on observability plane ---------------------------------

  /// JSONL rendering of the retained execution audit records (one JSON
  /// object per line, oldest first).
  std::string AuditLog();
  /// JSON array of the retained slow-query captures.
  std::string SlowQueries();
  /// Rendered profile of the slow-query record with sequence number
  /// `seq`, or of every retained record when `seq` < 0.
  std::string RenderSlowQueryText(int64_t seq = -1);
  /// JSON snapshot of the per-source health scoreboard.
  std::string SourceHealthJson();
  /// Chrome trace_event JSON stored with the slow-query capture `seq`
  /// (promoted runs execute under a timeline trace whose exported
  /// timeline is retained), or "" when the record is absent or was a
  /// counters-only first offense.
  std::string SlowQueryChromeTrace(int64_t seq);

  observability::ExecutionAuditLog& execution_audit() { return exec_audit_; }
  observability::SlowQueryLog& slow_query_log() { return slow_queries_; }
  observability::SourceHealthBoard& source_health() { return health_; }

  // ----- Statement-level insight plane ---------------------------------

  /// Cumulative per-fingerprint statement statistics (pg_stat_statements
  /// style), ordered by total wall time; top_k <= 0 renders every entry.
  std::string StatStatementsText(int top_k = 20);
  std::string StatStatementsJson(int top_k = 20);
  void ResetStatStatements();

  /// The queries running right now: id, fingerprint, tenant, phase, rows
  /// produced so far, peak bytes, elapsed time.
  std::string LiveQueriesText();
  std::string LiveQueriesJson();

  /// Requests cooperative cancellation of an in-flight query (ids appear
  /// in LiveQueries*). The query fails with StatusCode::kCancelled within
  /// one operator scheduling quantum; prefetch and exchange tasks drain
  /// through their normal Close/CancelAndWait paths. Returns false when
  /// the id is not (or no longer) running. Audited either way it lands:
  /// the cancel request in the security audit log, the cancelled
  /// execution in the execution audit log.
  bool CancelQuery(uint64_t query_id);

  observability::StatStatements& stat_statements() { return stat_statements_; }
  observability::QueryRegistry& query_registry() { return query_registry_; }

  // ----- Concurrent serving plane (admission control) ------------------

  /// Admission gate state: slots, lanes, shed counters, wait histogram.
  std::string AdmissionText() { return admission_.Snapshot().RenderText(); }
  std::string AdmissionJson() { return admission_.Snapshot().RenderJson(); }
  AdmissionController& admission() { return admission_; }

  // ----- Plan lifecycle plane ------------------------------------------

  /// Per-statement plan-version history: every plan fingerprint a
  /// statement has compiled into, with its compile trigger (cold compile,
  /// cache eviction, cost-model-advice change), per-version latency
  /// baseline and retained EXPLAIN snapshot. statement_fp == 0 renders
  /// every tracked statement.
  std::string PlanHistoryText(uint64_t statement_fp = 0);
  std::string PlanHistoryJson(uint64_t statement_fp = 0);

  /// Regression-sentinel events: a new plan version whose latency
  /// baseline breached the prior version's, with a structural EXPLAIN
  /// diff between the two plans.
  std::string PlanRegressionsText();
  std::string PlanRegressionsJson();

  observability::PlanHistory& plan_history() { return plan_history_; }

  // ----- Workload capture & replay plane --------------------------------

  /// The captured workload: every observed Execute* lands in a bounded
  /// journal (statement + plan fingerprint, text, principal, arrival
  /// offset, wall micros, rows, peak bytes, outcome). Text / JSON
  /// renderings, and the JSONL export that WorkloadJournal::ParseJsonl
  /// round-trips for capture-on-one-server, replay-on-another.
  std::string WorkloadJournalText();
  std::string WorkloadJournalJson();
  std::string WorkloadJournalJsonl();

  /// Re-runs a captured workload against this server in open loop
  /// (recorded arrival offsets, scaled by options.speed) or closed loop
  /// (options.clients simulated clients). Capture is suspended for the
  /// duration so the replay does not journal itself. The report carries
  /// throughput, exact p50/p99/p999 latency, and the per-statement
  /// comparison vs the captured baseline with fingerprint verification.
  observability::ReplayReport ReplayWorkload(
      const std::vector<observability::WorkloadJournalEntry>& entries,
      const observability::ReplayOptions& options);

  /// Runtime toggle for journal capture (see options().workload_capture).
  void SetWorkloadCapture(bool on) {
    workload_capture_.store(on, std::memory_order_relaxed);
  }
  bool workload_capture() const {
    return workload_capture_.load(std::memory_order_relaxed);
  }

  observability::WorkloadJournal& workload_journal() {
    return workload_journal_;
  }

  // ----- Introspection of internals (tests, benchmarks, console) ------

  compiler::FunctionTable& functions() { return functions_; }
  xsd::SchemaRegistry& schemas() { return schemas_; }
  runtime::AdaptorRegistry& adaptors() { return adaptors_; }
  runtime::FunctionCache& function_cache() { return function_cache_; }
  runtime::RuntimeStats& stats() { return stats_; }
  runtime::RuntimeContext& runtime_context() { return ctx_; }
  runtime::WorkerPool& worker_pool() { return pool_; }
  optimizer::ViewPlanCache& view_plan_cache() { return view_cache_; }
  security::AccessControl& access_control() { return access_control_; }
  security::AuditLog& audit_log() { return audit_; }
  runtime::ObservedCostModel& observed_cost() { return observed_; }
  ServerOptions& options() { return options_; }

  int64_t plan_cache_hits() const { return plan_cache_hits_; }
  int64_t plan_cache_misses() const { return plan_cache_misses_; }
  void ClearPlanCache();

  /// The administration console's view of the server (paper Fig. 2): a
  /// human-readable report of registered sources and functions, deployed
  /// data services, cache and runtime statistics.
  std::string Describe() const;

 private:
  Result<std::shared_ptr<const CompiledPlan>> Compile(const std::string& query);

  /// Creates the per-execution trace for the always-on plane: cheap
  /// counters normally, a full trace when an earlier slow run promoted
  /// this query's hash. Null when the plane is disabled.
  std::shared_ptr<runtime::QueryTrace> MakeObservedTrace(
      const CompiledPlan& plan) const;

  /// Closes out one observed execution: rolling metrics, the audit
  /// record, per-fingerprint statement statistics, per-tenant resource
  /// windows, and slow-query capture/promotion. `ctl` is the execution's
  /// live-registry control block (null when the plane is disabled or the
  /// execution was refused before it started).
  void FinishObservation(const CompiledPlan& plan, bool plan_cache_hit,
                         const runtime::QueryTrace& trace,
                         const Status& outcome, int64_t rows, int64_t bytes,
                         int64_t wall_micros, const std::string& principal,
                         int64_t security_denials,
                         const observability::QueryControl* ctl = nullptr);

  /// Registers an execution with the live query registry (null when the
  /// observability plane is off) and stamps the initial phase.
  std::shared_ptr<observability::QueryControl> RegisterExecution(
      const CompiledPlan& plan, const security::Principal* principal);

  /// Priority class for the admission gate, from the statement's observed
  /// cost history: stat_statements mean wall time first, plan-history
  /// latency baseline as fallback. No history => interactive (a statement
  /// earns the analytics class with its first slow executions).
  QueryClass ClassifyStatement(const CompiledPlan& plan) const;

  /// Front-door gate shared by every execution surface: classifies,
  /// admits (possibly queueing in the caller's lane, possibly shedding
  /// with kResourceExhausted), stamps phases/budget on `ctl`, and records
  /// the real admission wait into the admission.wait_micros window. An OK
  /// ticket holds a slot the caller must Release via the returned ticket.
  AdmissionController::Ticket AdmitExecution(
      const CompiledPlan& plan, const security::Principal* principal,
      observability::QueryControl* ctl);

  /// Observability bookkeeping for a refused execution (admission shed or
  /// cancel-while-queued): audit record, shed-aware statement sample,
  /// journal capture — all with zero rows and a counters-mode dummy
  /// trace, mirroring the function-ACL denial path.
  void RecordRefusal(const CompiledPlan& plan, bool plan_cache_hit,
                     const Status& refusal,
                     const security::Principal* principal,
                     int64_t wait_micros);

  /// The shared materialized execution path: attaches the observability
  /// plane, evaluates, applies element-level security when `principal`
  /// is non-null, and records the audit record.
  Result<xml::Sequence> ExecuteObserved(const CompiledPlan& plan,
                                        bool plan_cache_hit,
                                        const security::Principal* principal);

  ServerOptions options_;
  compiler::FunctionTable functions_;
  xsd::SchemaRegistry schemas_;
  runtime::AdaptorRegistry adaptors_;
  runtime::FunctionCache function_cache_;
  runtime::RuntimeStats stats_;
  runtime::MetricsRegistry metrics_;
  runtime::RuntimeContext ctx_;
  optimizer::ViewPlanCache view_cache_;
  security::AccessControl access_control_;
  security::AuditLog audit_;
  runtime::ObservedCostModel observed_;
  observability::SourceHealthBoard health_;
  observability::ExecutionAuditLog exec_audit_;
  observability::SlowQueryLog slow_queries_;
  observability::QueryRegistry query_registry_;
  observability::StatStatements stat_statements_;
  observability::PlanHistory plan_history_;
  observability::WorkloadJournal workload_journal_;
  std::atomic<bool> workload_capture_{true};
  AdmissionController admission_;
  service::ServiceCatalog services_;
  std::shared_ptr<adaptors::FileAdaptor> file_adaptor_;  // lazily created

  std::mutex plan_cache_mutex_;
  std::map<std::string, std::shared_ptr<const CompiledPlan>> plan_cache_;
  std::list<std::string> plan_lru_;
  int64_t plan_cache_hits_ = 0;
  int64_t plan_cache_misses_ = 0;

  /// Declared last so it is destroyed first: the destructor joins any
  /// evaluation a fn-bea:timeout abandoned while the adaptors, function
  /// table and caches those tasks reference are still alive.
  runtime::WorkerPool pool_;
};

}  // namespace aldsp::server

#endif  // ALDSP_SERVER_SERVER_H_
