#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "observability/json_util.h"

namespace aldsp::server {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// How long a queued waiter sleeps between checks of its cancel flag and
/// queue deadline. A CancelQuery against a queued execution is observed
/// within one slice; dispatch itself is cv-signalled, not polled, so the
/// slice only bounds cancel/timeout latency. Every slice wakeup takes the
/// controller mutex, so with hundreds of parked clients on a small host
/// the slice must stay coarse: at 100ms, 256 waiters cost ~2.5k wakeups/s
/// in aggregate instead of the 25k/s a 10ms slice would burn — measurably
/// real throughput on a single-CPU container.
constexpr int64_t kWaitSliceMicros = 100'000;

}  // namespace

const char* QueryClassName(QueryClass cls) {
  return cls == QueryClass::kAnalytics ? "analytics" : "interactive";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {}

int AdmissionController::analytics_cap() const {
  if (options_.max_concurrent_analytics > 0) {
    return std::min(options_.max_concurrent_analytics,
                    options_.max_concurrent_queries);
  }
  return std::max(1, options_.max_concurrent_queries - 1);
}

double AdmissionController::WeightFor(const std::string& tenant) const {
  auto it = options_.tenant_weights.find(tenant);
  if (it == options_.tenant_weights.end() || it->second <= 0.0) return 1.0;
  return it->second;
}

void AdmissionController::PurgeLane(Lane* lane) {
  for (auto& q : lane->q) {
    while (!q.empty() && q.front()->state == Waiter::State::kShed) {
      q.pop_front();
    }
  }
}

int AdmissionController::EligibleHeadLocked(const Lane& lane) const {
  if (!lane.q[0].empty()) return 0;  // interactive dispatches first
  if (!lane.q[1].empty() && analytics_running_ < analytics_cap()) return 1;
  return -1;
}

void AdmissionController::AdmitSlotLocked(QueryClass cls,
                                          const std::string& tenant,
                                          bool queued, int64_t wait_micros) {
  ++running_;
  if (cls == QueryClass::kAnalytics) ++analytics_running_;
  ++admitted_;
  ++admitted_by_class_[static_cast<int>(cls)];
  if (queued) ++queued_total_;
  wait_.Record(wait_micros);
  auto& t = tenant_counters_[tenant];
  t.weight = WeightFor(tenant);
  ++t.admitted;
  if (queued) ++t.queued;
}

void AdmissionController::DispatchLocked() {
  while (running_ < options_.max_concurrent_queries) {
    // Pick the lane with the smallest virtual time among lanes whose head
    // is dispatchable. O(active tenants) per grant — lanes exist only
    // while a tenant has waiters.
    Lane* best = nullptr;
    const std::string* best_tenant = nullptr;
    int best_cls = -1;
    for (auto it = lanes_.begin(); it != lanes_.end();) {
      PurgeLane(&it->second);
      if (it->second.q[0].empty() && it->second.q[1].empty()) {
        it = lanes_.erase(it);
        continue;
      }
      int cls = EligibleHeadLocked(it->second);
      if (cls >= 0 && (best == nullptr || it->second.vtime < best->vtime)) {
        best = &it->second;
        best_tenant = &it->first;
        best_cls = cls;
      }
      ++it;
    }
    if (best == nullptr) return;  // empty, or analytics-capped heads only
    std::shared_ptr<Waiter> w = best->q[best_cls].front();
    best->q[best_cls].pop_front();
    best->vtime += 1.0 / WeightFor(*best_tenant);
    virtual_time_ = std::max(virtual_time_, best->vtime);
    --waiting_;
    w->state = Waiter::State::kAdmitted;
    // Slot accounting (incl. the wait histogram) happens in Admit when the
    // waiter wakes and knows its own wait; reserve the slot here so this
    // loop and concurrent fast-path admits see consistent occupancy.
    ++running_;
    if (w->cls == QueryClass::kAnalytics) ++analytics_running_;
    w->cv.notify_one();
  }
}

AdmissionController::Ticket AdmissionController::Admit(
    const std::string& tenant, QueryClass cls,
    const observability::QueryControl* ctl) {
  Ticket ticket;
  ticket.cls = cls;
  if (!enabled()) return ticket;

  std::unique_lock<std::mutex> lock(mu_);
  const bool class_has_room =
      cls == QueryClass::kInteractive || analytics_running_ < analytics_cap();
  if (waiting_ == 0 && running_ < options_.max_concurrent_queries &&
      class_has_room) {
    // Uncontended fast path: nobody is queued, so granting immediately
    // cannot reorder anyone. Fairness accounting is moot with an empty
    // queue; lane virtual times only matter while waiters exist.
    AdmitSlotLocked(cls, tenant, /*queued=*/false, /*wait_micros=*/0);
    return ticket;
  }

  if (waiting_ >= options_.max_queue_depth) {
    ++shed_queue_full_;
    auto& t = tenant_counters_[tenant];
    t.weight = WeightFor(tenant);
    ++t.shed;
    ticket.status = Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiting_) + " waiting, " +
        "max_queue_depth=" + std::to_string(options_.max_queue_depth) + ")");
    return ticket;
  }

  auto w = std::make_shared<Waiter>();
  w->cls = cls;
  Lane& lane = lanes_[tenant];
  if (lane.q[0].empty() && lane.q[1].empty()) {
    // (Re-)activating lane starts at the global virtual clock: an idle
    // tenant must not bank credit and then burst past active ones.
    lane.vtime = std::max(lane.vtime, virtual_time_);
  }
  lane.q[static_cast<int>(cls)].push_back(w);
  ++waiting_;
  const int64_t enqueued_at = NowMicros();
  const int64_t deadline =
      options_.queue_timeout_micros > 0
          ? enqueued_at + options_.queue_timeout_micros
          : 0;
  DispatchLocked();  // a free slot may make us dispatchable right away

  while (w->state == Waiter::State::kWaiting) {
    const int64_t now = NowMicros();
    if (ctl != nullptr && ctl->IsCancelled()) {
      w->state = Waiter::State::kShed;  // lazy-removal marker
      --waiting_;
      ++cancelled_while_queued_;
      ticket.queued = true;
      ticket.wait_micros = now - enqueued_at;
      ticket.status = Status::Cancelled("cancelled while queued for admission");
      return ticket;
    }
    if (deadline != 0 && now >= deadline) {
      w->state = Waiter::State::kShed;
      --waiting_;
      ++shed_timeout_;
      ++tenant_counters_[tenant].shed;
      ticket.queued = true;
      ticket.wait_micros = now - enqueued_at;
      ticket.status = Status::ResourceExhausted(
          "admission queue timeout after " +
          std::to_string(ticket.wait_micros / 1000) + " ms (queue_timeout=" +
          std::to_string(options_.queue_timeout_micros / 1000) + " ms)");
      return ticket;
    }
    int64_t sleep = kWaitSliceMicros;
    if (deadline != 0) sleep = std::min(sleep, deadline - now);
    w->cv.wait_for(lock, std::chrono::microseconds(std::max<int64_t>(sleep, 1)));
  }

  // Admitted by DispatchLocked (slot already reserved there).
  ticket.queued = true;
  ticket.wait_micros = NowMicros() - enqueued_at;
  --running_;  // AdmitSlotLocked re-adds; avoid double-counting the reserve
  if (cls == QueryClass::kAnalytics) --analytics_running_;
  AdmitSlotLocked(cls, tenant, /*queued=*/true, ticket.wait_micros);
  return ticket;
}

void AdmissionController::Release(QueryClass cls) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  if (cls == QueryClass::kAnalytics) --analytics_running_;
  DispatchLocked();
}

AdmissionSnapshot AdmissionController::Snapshot() const {
  AdmissionSnapshot snap;
  snap.enabled = enabled();
  snap.max_concurrent_queries = options_.max_concurrent_queries;
  snap.max_concurrent_analytics = enabled() ? analytics_cap() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  snap.running = running_;
  snap.analytics_running = analytics_running_;
  snap.queue_depth = waiting_;
  snap.admitted = admitted_;
  snap.admitted_interactive = admitted_by_class_[0];
  snap.admitted_analytics = admitted_by_class_[1];
  snap.queued = queued_total_;
  snap.shed_queue_full = shed_queue_full_;
  snap.shed_timeout = shed_timeout_;
  snap.cancelled_while_queued = cancelled_while_queued_;
  snap.wait = wait_;
  snap.tenants = tenant_counters_;
  return snap;
}

void AdmissionController::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  admitted_ = 0;
  admitted_by_class_[0] = 0;
  admitted_by_class_[1] = 0;
  queued_total_ = 0;
  shed_queue_full_ = 0;
  shed_timeout_ = 0;
  cancelled_while_queued_ = 0;
  wait_.Reset();
  tenant_counters_.clear();
}

std::string AdmissionSnapshot::RenderText() const {
  if (!enabled) return "admission control: disabled\n";
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "admission control: max_concurrent=%d analytics_cap=%d\n",
                max_concurrent_queries, max_concurrent_analytics);
  out += line;
  std::snprintf(line, sizeof(line),
                "  running=%lld (analytics=%lld) queue_depth=%lld\n",
                static_cast<long long>(running),
                static_cast<long long>(analytics_running),
                static_cast<long long>(queue_depth));
  out += line;
  std::snprintf(line, sizeof(line),
                "  admitted=%lld (interactive=%lld analytics=%lld "
                "queued_first=%lld)\n",
                static_cast<long long>(admitted),
                static_cast<long long>(admitted_interactive),
                static_cast<long long>(admitted_analytics),
                static_cast<long long>(queued));
  out += line;
  std::snprintf(line, sizeof(line),
                "  shed: queue_full=%lld timeout=%lld "
                "cancelled_while_queued=%lld\n",
                static_cast<long long>(shed_queue_full),
                static_cast<long long>(shed_timeout),
                static_cast<long long>(cancelled_while_queued));
  out += line;
  std::snprintf(line, sizeof(line),
                "  wait: mean=%.2fms p95<=%.1fms p99<=%.1fms max=%.1fms\n",
                wait.MeanMicros() / 1000.0,
                wait.PercentileUpperMicros(0.95) / 1000.0,
                wait.PercentileUpperMicros(0.99) / 1000.0,
                wait.max_micros / 1000.0);
  out += line;
  for (const auto& [tenant, t] : tenants) {
    std::snprintf(line, sizeof(line),
                  "  tenant %s: weight=%.1f admitted=%lld queued=%lld "
                  "shed=%lld\n",
                  tenant.c_str(), t.weight, static_cast<long long>(t.admitted),
                  static_cast<long long>(t.queued),
                  static_cast<long long>(t.shed));
    out += line;
  }
  return out;
}

std::string AdmissionSnapshot::RenderJson() const {
  std::string out = "{\"enabled\":";
  out += enabled ? "true" : "false";
  out += ",\"max_concurrent_queries\":" + std::to_string(max_concurrent_queries);
  out += ",\"max_concurrent_analytics\":" +
         std::to_string(max_concurrent_analytics);
  out += ",\"running\":" + std::to_string(running);
  out += ",\"analytics_running\":" + std::to_string(analytics_running);
  out += ",\"queue_depth\":" + std::to_string(queue_depth);
  out += ",\"admitted\":" + std::to_string(admitted);
  out += ",\"admitted_interactive\":" + std::to_string(admitted_interactive);
  out += ",\"admitted_analytics\":" + std::to_string(admitted_analytics);
  out += ",\"queued\":" + std::to_string(queued);
  out += ",\"shed_queue_full\":" + std::to_string(shed_queue_full);
  out += ",\"shed_timeout\":" + std::to_string(shed_timeout);
  out += ",\"cancelled_while_queued\":" +
         std::to_string(cancelled_while_queued);
  out += ",\"wait\":{\"count\":" + std::to_string(wait.count);
  out += ",\"mean_micros\":" +
         std::to_string(static_cast<int64_t>(wait.MeanMicros()));
  out += ",\"p95_micros_upper\":" +
         std::to_string(wait.PercentileUpperMicros(0.95));
  out += ",\"p99_micros_upper\":" +
         std::to_string(wait.PercentileUpperMicros(0.99));
  out += ",\"max_micros\":" + std::to_string(wait.max_micros);
  out += "}";
  out += ",\"tenants\":[";
  bool first = true;
  for (const auto& [tenant, t] : tenants) {
    if (!first) out += ",";
    first = false;
    out += "{\"tenant\":";
    observability::AppendJsonString(&out, tenant);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", t.weight);
    out += ",\"weight\":";
    out += buf;
    out += ",\"admitted\":" + std::to_string(t.admitted);
    out += ",\"queued\":" + std::to_string(t.queued);
    out += ",\"shed\":" + std::to_string(t.shed);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace aldsp::server
