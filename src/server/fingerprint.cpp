#include "server/fingerprint.h"

#include <string_view>
#include <vector>

#include "relational/sql_ast.h"
#include "runtime/physical/builder.h"
#include "runtime/physical/operator.h"

namespace aldsp::server {

namespace {

using xquery::Expr;
using xquery::ExprKind;

// FNV-1a, same constants as ExecutionAuditLog::HashQuery. The running
// hash is threaded explicitly so the walk order is the canonical form.
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void Mix(uint64_t* h, std::string_view s) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= kFnvPrime;
  }
  // Separator so {"ab","c"} and {"a","bc"} differ.
  *h ^= 0xff;
  *h *= kFnvPrime;
}

void Mix(uint64_t* h, int64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= static_cast<unsigned char>(v >> (i * 8));
    *h *= kFnvPrime;
  }
}

void MixSql(uint64_t* h, const relational::SqlExpr& e);

void MixSqlSelect(uint64_t* h, const relational::SelectStmt& s) {
  Mix(h, "select");
  Mix(h, static_cast<int64_t>(s.distinct));
  for (const auto& item : s.items) {
    Mix(h, "item");
    if (item.expr) MixSql(h, *item.expr);
  }
  Mix(h, "from");
  Mix(h, s.from.table_name);
  Mix(h, s.from.alias);
  if (s.from.derived) MixSqlSelect(h, *s.from.derived);
  for (const auto& j : s.joins) {
    Mix(h, j.kind == relational::JoinKind::kLeftOuter ? "left-join" : "join");
    Mix(h, j.right.table_name);
    Mix(h, j.right.alias);
    if (j.right.derived) MixSqlSelect(h, *j.right.derived);
    if (j.condition) MixSql(h, *j.condition);
  }
  if (s.where) {
    Mix(h, "where");
    MixSql(h, *s.where);
  }
  for (const auto& g : s.group_by) {
    Mix(h, "group");
    if (g) MixSql(h, *g);
  }
  if (s.having) {
    Mix(h, "having");
    MixSql(h, *s.having);
  }
  for (const auto& o : s.order_by) {
    Mix(h, o.descending ? "order-desc" : "order");
    if (o.expr) MixSql(h, *o.expr);
  }
  // Row-range bounds are literals (fn:subsequence arguments): hash only
  // their presence so paging through a result keeps one fingerprint.
  Mix(h, static_cast<int64_t>(s.range_start >= 0));
  Mix(h, static_cast<int64_t>(s.range_count >= 0));
}

void MixSql(uint64_t* h, const relational::SqlExpr& e) {
  using Kind = relational::SqlExpr::Kind;
  Mix(h, static_cast<int64_t>(e.kind));
  switch (e.kind) {
    case Kind::kColumn:
      Mix(h, e.table_alias);
      Mix(h, e.column);
      return;
    case Kind::kLiteral:
      Mix(h, "?");  // value stripped
      return;
    case Kind::kParam:
      Mix(h, "?");  // position-independent, like a literal
      return;
    default:
      break;
  }
  Mix(h, e.op);
  Mix(h, static_cast<int64_t>(e.negated));
  if (e.kind == Kind::kFunc) Mix(h, static_cast<int64_t>(e.func));
  if (e.kind == Kind::kAggregate) {
    Mix(h, static_cast<int64_t>(e.agg));
    Mix(h, static_cast<int64_t>(e.distinct));
  }
  for (const auto& a : e.args) {
    if (a) MixSql(h, *a);
  }
  for (const auto& [cond, result] : e.whens) {
    Mix(h, "when");
    if (cond) MixSql(h, *cond);
    if (result) MixSql(h, *result);
  }
  if (e.else_expr) {
    Mix(h, "else");
    MixSql(h, *e.else_expr);
  }
  if (e.subquery) MixSqlSelect(h, *e.subquery);
}

void MixExpr(uint64_t* h, const Expr& e);

/// FLWOR subtrees hash through the serial physical lowering — the same
/// descriptors EXPLAIN renders, so the operator labels already carry the
/// join method ("join[ppk-inl] $o"), streaming-vs-sort grouping, and the
/// bound variable. Node details are skipped: they hold tuning values
/// (k=20, prefetch depth) that are configuration, not statement shape.
/// Serial BuildOptions keep the fingerprint independent of the server's
/// DOP knobs — exchange placement is deployment, not statement.
void MixFLWOR(uint64_t* h, const Expr& e) {
  std::vector<runtime::physical::ExplainNode> nodes;
  runtime::physical::BuildPlan(e)->Describe(&nodes);
  for (const auto& n : nodes) {
    Mix(h, n.label);
    if (n.expr != nullptr) MixExpr(h, *n.expr);
    if (n.condition != nullptr) {
      Mix(h, "on");
      MixExpr(h, *n.condition);
    }
    if (n.ppk != nullptr) {
      Mix(h, "ppk-fetch");
      Mix(h, n.ppk->source);
      Mix(h, n.ppk->in_alias);
      Mix(h, n.ppk->in_column);
      if (n.ppk->select_template) MixSqlSelect(h, *n.ppk->select_template);
    }
  }
}

void MixExpr(uint64_t* h, const Expr& e) {
  if (e.kind == ExprKind::kFLWOR) {
    Mix(h, "flwor");
    MixFLWOR(h, e);
    return;
  }
  Mix(h, xquery::ExprKindName(e.kind));
  switch (e.kind) {
    case ExprKind::kLiteral:
      Mix(h, "?");  // value stripped
      return;       // literals have no children
    case ExprKind::kVarRef:
      Mix(h, e.var_name);
      break;
    case ExprKind::kFunctionCall:
      Mix(h, e.fn_name);
      break;
    case ExprKind::kPathStep:
      Mix(h, e.step_name);
      Mix(h, static_cast<int64_t>(e.is_attribute_step));
      break;
    case ExprKind::kElementCtor:
    case ExprKind::kAttributeCtor:
      Mix(h, e.ctor_name);
      break;
    case ExprKind::kComparison:
    case ExprKind::kArith:
    case ExprKind::kLogical:
      Mix(h, e.op);
      break;
    case ExprKind::kQuantified:
      Mix(h, e.var_name);
      break;
    case ExprKind::kSqlQuery:
      if (e.sql) {
        Mix(h, e.sql->source);
        if (e.sql->select) MixSqlSelect(h, *e.sql->select);
      }
      break;
    case ExprKind::kCustomQuery:
      if (e.custom) {
        Mix(h, e.custom->source);
        Mix(h, e.custom->function);
        for (const auto& c : e.custom->conjuncts) {
          Mix(h, c.attribute);
          Mix(h, c.op);
        }
      }
      break;
    default:
      break;
  }
  // Children: parameter expressions for pushdown regions, operands
  // everywhere else. Literals inside strip to "?" above.
  for (const auto& c : e.children) {
    if (c) MixExpr(h, *c);
  }
}

// --- Statement identity: structural walk, no physical lowering ---------

void MixStmtExpr(uint64_t* h, const Expr& e);

/// FLWOR clauses hash by their logical structure only: clause kinds,
/// bound variables, grouping/ordering keys and the clause expressions.
/// Join methods, PP-k shapes, pre-clustering and pushdown regions are
/// optimizer output — deliberately excluded so the statement fingerprint
/// survives plan flips. (kJoin/kSqlQuery normally never appear in the
/// pre-optimization tree this hash is computed from; they are handled
/// structurally anyway so the function is total.)
void MixStmtFLWOR(uint64_t* h, const Expr& e) {
  using CK = xquery::Clause::Kind;
  for (const auto& c : e.clauses) {
    switch (c.kind) {
      case CK::kFor:
        Mix(h, "for");
        Mix(h, c.var);
        Mix(h, c.positional_var);
        if (c.expr) MixStmtExpr(h, *c.expr);
        break;
      case CK::kLet:
        Mix(h, "let");
        Mix(h, c.var);
        if (c.expr) MixStmtExpr(h, *c.expr);
        break;
      case CK::kWhere:
        Mix(h, "where");
        if (c.expr) MixStmtExpr(h, *c.expr);
        break;
      case CK::kGroupBy:
        Mix(h, "group");
        for (const auto& gv : c.group_vars) {
          Mix(h, gv.in_var);
          Mix(h, gv.out_var);
        }
        for (const auto& gk : c.group_keys) {
          Mix(h, gk.as_var);
          if (gk.expr) MixStmtExpr(h, *gk.expr);
        }
        break;
      case CK::kOrderBy:
        Mix(h, "order");
        for (const auto& ok : c.order_keys) {
          Mix(h, static_cast<int64_t>(ok.descending));
          if (ok.expr) MixStmtExpr(h, *ok.expr);
        }
        break;
      case CK::kJoin:
        Mix(h, "join");
        Mix(h, c.var);
        if (c.expr) MixStmtExpr(h, *c.expr);
        if (c.condition) MixStmtExpr(h, *c.condition);
        break;
    }
  }
  Mix(h, "return");
  for (const auto& child : e.children) {
    if (child) MixStmtExpr(h, *child);
  }
}

void MixStmtExpr(uint64_t* h, const Expr& e) {
  Mix(h, xquery::ExprKindName(e.kind));
  switch (e.kind) {
    case ExprKind::kLiteral:
      Mix(h, "?");  // value stripped
      return;       // literals have no children
    case ExprKind::kFLWOR:
      MixStmtFLWOR(h, e);
      return;  // clauses + return already walked
    case ExprKind::kVarRef:
      Mix(h, e.var_name);
      break;
    case ExprKind::kFunctionCall:
      Mix(h, e.fn_name);
      break;
    case ExprKind::kPathStep:
      Mix(h, e.step_name);
      Mix(h, static_cast<int64_t>(e.is_attribute_step));
      break;
    case ExprKind::kElementCtor:
    case ExprKind::kAttributeCtor:
      Mix(h, e.ctor_name);
      break;
    case ExprKind::kComparison:
    case ExprKind::kArith:
    case ExprKind::kLogical:
      Mix(h, e.op);
      break;
    case ExprKind::kQuantified:
      Mix(h, e.var_name);
      break;
    case ExprKind::kSqlQuery:
      if (e.sql) {
        Mix(h, e.sql->source);
        if (e.sql->select) MixSqlSelect(h, *e.sql->select);
      }
      break;
    case ExprKind::kCustomQuery:
      if (e.custom) {
        Mix(h, e.custom->source);
        Mix(h, e.custom->function);
      }
      break;
    default:
      break;
  }
  for (const auto& c : e.children) {
    if (c) MixStmtExpr(h, *c);
  }
}

}  // namespace

uint64_t PlanFingerprint(const Expr& root) {
  uint64_t h = kFnvOffset;
  MixExpr(&h, root);
  return h;
}

uint64_t StatementFingerprint(const Expr& root) {
  // Different offset basis (one extra round over a tag) so a statement
  // fingerprint and a plan fingerprint of the same tree never collide by
  // construction — the two id spaces are distinguishable in logs.
  uint64_t h = kFnvOffset;
  Mix(&h, "stmt");
  MixStmtExpr(&h, root);
  return h;
}

}  // namespace aldsp::server
