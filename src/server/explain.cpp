#include "server/explain.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "observability/critical_path.h"
#include "observability/json_util.h"
#include "observability/trace_export.h"
#include "relational/sql_ast.h"
#include "runtime/physical/builder.h"
#include "runtime/physical/operator.h"
#include "xquery/ast.h"

namespace aldsp::server {

namespace {

using runtime::QueryTrace;
using xquery::Expr;
using xquery::ExprKind;

// The one JSON string escaper (observability/json_util) behind the
// ostream interface this renderer uses throughout.
void AppendJsonString(std::ostream& os, const std::string& s) {
  std::string buf;
  observability::AppendJsonString(&buf, s);
  os << buf;
}

/// EXPLAIN and execution see the same operator tree: a FLWOR is lowered
/// through physical::BuildPlan (the lowering the evaluator runs) and the
/// resulting descriptors are rendered in pipeline order.
std::string PlanNodeLabel(const runtime::physical::ExplainNode& n) {
  std::string label = n.detail.empty() ? n.label : n.label + " " + n.detail;
  // Batch-native operators are marked so plans show which pipeline
  // stages run vectorized (plan fingerprints hash labels only, so the
  // suffix never perturbs them).
  if (n.batch) label += " [batch]";
  return label;
}

std::vector<runtime::physical::ExplainNode> DescribeFLWOR(
    const Expr& e, const runtime::physical::BuildOptions& opts) {
  std::vector<runtime::physical::ExplainNode> nodes;
  runtime::physical::BuildPlan(e, opts)->Describe(&nodes);
  return nodes;
}

std::string ExprLabel(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kSqlQuery:
      return "sql[" + e.sql->source + "] " +
             relational::DebugString(*e.sql->select);
    case ExprKind::kCustomQuery: {
      std::string label =
          "custom-pushdown[" + e.custom->source + "] " + e.custom->function;
      for (const auto& c : e.custom->conjuncts) {
        label += " [" + c.attribute + " " + c.op + " ?]";
      }
      return label;
    }
    case ExprKind::kFunctionCall:
      return "call " + e.fn_name;
    case ExprKind::kVarRef:
      return "$" + e.var_name;
    case ExprKind::kLiteral:
      return "literal " + e.literal.Lexical();
    case ExprKind::kElementCtor:
      return "element <" + e.ctor_name + ">";
    case ExprKind::kAttributeCtor:
      return "attribute " + e.ctor_name;
    case ExprKind::kPathStep:
      return std::string("step ") + (e.is_attribute_step ? "@" : "") +
             e.step_name;
    case ExprKind::kComparison:
    case ExprKind::kArith:
    case ExprKind::kLogical:
      return std::string(xquery::ExprKindName(e.kind)) + " " + e.op;
    default:
      return xquery::ExprKindName(e.kind);
  }
}

void RenderExprText(const Expr& e, const std::string& indent,
                    const runtime::physical::BuildOptions& opts,
                    std::ostream& os) {
  os << indent << ExprLabel(e) << "\n";
  if (e.kind == ExprKind::kFLWOR) {
    for (const auto& n : DescribeFLWOR(e, opts)) {
      os << indent << "  " << PlanNodeLabel(n) << "\n";
      if (n.expr != nullptr) {
        RenderExprText(*n.expr, indent + "    ", opts, os);
      }
      if (n.condition != nullptr) {
        os << indent << "    on\n";
        RenderExprText(*n.condition, indent + "      ", opts, os);
      }
      if (n.ppk != nullptr) {
        os << indent << "    ppk-fetch[" << n.ppk->source << "] "
           << relational::DebugString(*n.ppk->select_template) << " + "
           << n.ppk->in_alias << "." << n.ppk->in_column << " IN (...)\n";
      }
    }
    return;
  }
  for (const auto& c : e.children) {
    if (c) RenderExprText(*c, indent + "  ", opts, os);
  }
}

void RenderExprJson(const Expr& e,
                    const runtime::physical::BuildOptions& opts,
                    std::ostream& os) {
  os << "{\"label\":";
  AppendJsonString(os, ExprLabel(e));
  os << ",\"kind\":";
  AppendJsonString(os, xquery::ExprKindName(e.kind));
  os << ",\"children\":[";
  bool first = true;
  auto emit_labeled = [&](const std::string& label, const Expr* child) {
    if (!first) os << ",";
    first = false;
    os << "{\"label\":";
    AppendJsonString(os, label);
    os << ",\"children\":[";
    if (child != nullptr) RenderExprJson(*child, opts, os);
    os << "]}";
  };
  if (e.kind == ExprKind::kFLWOR) {
    for (const auto& n : DescribeFLWOR(e, opts)) {
      emit_labeled(PlanNodeLabel(n), n.expr);
    }
  } else {
    for (const auto& c : e.children) {
      if (!c) continue;
      if (!first) os << ",";
      first = false;
      RenderExprJson(*c, opts, os);
    }
  }
  os << "]}";
}

void RenderCompileHeader(const CompiledPlan& plan, std::ostream& os) {
  os << "compile: parse=" << plan.parse_micros
     << "us analyze=" << plan.analyze_micros
     << "us optimize=" << plan.optimize_micros
     << "us pushdown=" << plan.pushdown_micros << "us\n";
  os << "pushdown: " << plan.pushdown.regions_pushed << " region(s), "
     << plan.pushdown.bare_scans_pushed << " bare scan(s), "
     << plan.pushdown.outer_joins_pushed << " outer join(s), "
     << plan.pushdown.custom_filters_pushed << " custom filter(s)\n";
  if (!plan.called_functions.empty()) {
    os << "calls:";
    for (const auto& f : plan.called_functions) os << " " << f;
    os << "\n";
  }
}

void RenderCompileJson(const CompiledPlan& plan, std::ostream& os) {
  os << "\"compile\":{\"parse_micros\":" << plan.parse_micros
     << ",\"analyze_micros\":" << plan.analyze_micros
     << ",\"optimize_micros\":" << plan.optimize_micros
     << ",\"pushdown_micros\":" << plan.pushdown_micros
     << "},\"pushdown\":{\"regions\":" << plan.pushdown.regions_pushed
     << ",\"bare_scans\":" << plan.pushdown.bare_scans_pushed
     << ",\"outer_joins\":" << plan.pushdown.outer_joins_pushed
     << ",\"exists\":" << plan.pushdown.exists_pushed
     << ",\"ranges\":" << plan.pushdown.ranges_pushed
     << ",\"custom_filters\":" << plan.pushdown.custom_filters_pushed
     << "}";
}

// ----- Profile rendering -------------------------------------------------

std::string SpanLine(const QueryTrace::Span& span) {
  std::ostringstream os;
  os << span.kind;
  if (!span.detail.empty()) os << " (" << span.detail << ")";
  os << "  rows=" << span.rows << " time=" << span.micros << "us";
  if (span.bytes > 0) os << " bytes=" << span.bytes;
  // Timeline annotations ride after the legacy fields (the prefix is a
  // compatibility surface for profile-text consumers).
  if (span.begin_micros >= 0 && span.end_micros >= 0) {
    os << " @[" << span.begin_micros << ".." << span.end_micros << "]us";
  }
  if (span.lane > 0) os << " lane=" << span.lane;
  if (span.queue_micros >= 0) os << " queue=" << span.queue_micros << "us";
  if (span.first_row_micros >= 0) {
    os << " first-row=@" << span.first_row_micros << "us last-row=@"
       << span.last_row_micros << "us";
  }
  if (!span.finished) os << " [unfinished]";
  return os.str();
}

std::string EventLine(const QueryTrace::Event& event) {
  std::ostringstream os;
  os << "* " << QueryTrace::EventKindName(event.kind);
  if (!event.source.empty()) os << "[" << event.source << "]";
  if (!event.detail.empty()) os << " " << event.detail;
  os << "  rows=" << event.rows << " time=" << event.micros << "us";
  if (event.roundtrip_micros >= 0) {
    os << " (roundtrip=" << event.roundtrip_micros
       << "us transfer=" << event.transfer_micros << "us)";
  }
  return os.str();
}

struct ProfileIndex {
  std::map<int, std::vector<int>> span_children;   // parent -> span ids
  std::map<int, std::vector<size_t>> span_events;  // span id -> event idx
  std::vector<QueryTrace::Span> spans;
  std::vector<QueryTrace::Event> events;

  explicit ProfileIndex(const QueryTrace& trace)
      : spans(trace.spans()), events(trace.events()) {
    for (const auto& span : spans) {
      span_children[span.parent].push_back(span.id);
    }
    for (size_t i = 0; i < events.size(); ++i) {
      span_events[events[i].span].push_back(i);
    }
  }
};

void RenderSpanText(const ProfileIndex& index, int id,
                    const std::string& indent, std::ostream& os) {
  os << indent << SpanLine(index.spans[id]) << "\n";
  auto ev = index.span_events.find(id);
  if (ev != index.span_events.end()) {
    for (size_t i : ev->second) {
      os << indent << "  " << EventLine(index.events[i]) << "\n";
    }
  }
  auto children = index.span_children.find(id);
  if (children != index.span_children.end()) {
    for (int child : children->second) {
      RenderSpanText(index, child, indent + "  ", os);
    }
  }
}

void RenderEventJson(const QueryTrace::Event& event, std::ostream& os) {
  os << "{\"kind\":";
  AppendJsonString(os, QueryTrace::EventKindName(event.kind));
  os << ",\"source\":";
  AppendJsonString(os, event.source);
  os << ",\"detail\":";
  AppendJsonString(os, event.detail);
  if (!event.table.empty()) {
    os << ",\"table\":";
    AppendJsonString(os, event.table);
  }
  os << ",\"rows\":" << event.rows << ",\"micros\":" << event.micros;
  if (event.at_micros >= 0) {
    os << ",\"at_micros\":" << event.at_micros << ",\"lane\":" << event.lane;
  }
  if (event.roundtrip_micros >= 0) {
    os << ",\"roundtrip_micros\":" << event.roundtrip_micros
       << ",\"transfer_micros\":" << event.transfer_micros;
  }
  if (event.ref_span >= 0) os << ",\"awaited_span\":" << event.ref_span;
  os << "}";
}

void RenderSpanJson(const ProfileIndex& index, int id, std::ostream& os) {
  const QueryTrace::Span& span = index.spans[id];
  os << "{\"kind\":";
  AppendJsonString(os, span.kind);
  os << ",\"detail\":";
  AppendJsonString(os, span.detail);
  os << ",\"rows\":" << span.rows << ",\"micros\":" << span.micros
     << ",\"bytes\":" << span.bytes
     << ",\"finished\":" << (span.finished ? "true" : "false");
  if (span.begin_micros >= 0) {
    os << ",\"begin_micros\":" << span.begin_micros
       << ",\"end_micros\":" << span.end_micros << ",\"lane\":" << span.lane;
    if (span.queue_micros >= 0) {
      os << ",\"queue_micros\":" << span.queue_micros;
    }
    if (span.first_row_micros >= 0) {
      os << ",\"first_row_micros\":" << span.first_row_micros
         << ",\"last_row_micros\":" << span.last_row_micros;
    }
  }
  os << ",\"events\":[";
  bool first = true;
  auto ev = index.span_events.find(id);
  if (ev != index.span_events.end()) {
    for (size_t i : ev->second) {
      if (!first) os << ",";
      first = false;
      RenderEventJson(index.events[i], os);
    }
  }
  os << "],\"children\":[";
  first = true;
  auto children = index.span_children.find(id);
  if (children != index.span_children.end()) {
    for (int child : children->second) {
      if (!first) os << ",";
      first = false;
      RenderSpanJson(index, child, os);
    }
  }
  os << "]}";
}

}  // namespace

std::string RenderPlanText(const CompiledPlan& plan,
                           const runtime::physical::BuildOptions& opts) {
  std::ostringstream os;
  os << "=== plan ===\n";
  os << "query: " << plan.text << "\n";
  RenderCompileHeader(plan, os);
  if (plan.plan != nullptr) RenderExprText(*plan.plan, "", opts, os);
  return os.str();
}

std::string RenderPlanText(const CompiledPlan& plan) {
  return RenderPlanText(plan, runtime::physical::BuildOptions{});
}

std::string RenderPlanSnapshotText(const CompiledPlan& plan) {
  std::ostringstream os;
  os << "query: " << plan.text << "\n";
  os << "pushdown: " << plan.pushdown.regions_pushed << " region(s), "
     << plan.pushdown.bare_scans_pushed << " bare scan(s), "
     << plan.pushdown.outer_joins_pushed << " outer join(s), "
     << plan.pushdown.custom_filters_pushed << " custom filter(s)\n";
  if (!plan.called_functions.empty()) {
    os << "calls:";
    for (const auto& f : plan.called_functions) os << " " << f;
    os << "\n";
  }
  if (plan.plan != nullptr) {
    RenderExprText(*plan.plan, "", runtime::physical::BuildOptions{}, os);
  }
  return os.str();
}

std::string RenderPlanJson(const CompiledPlan& plan,
                           const runtime::physical::BuildOptions& opts) {
  std::ostringstream os;
  os << "{\"query\":";
  AppendJsonString(os, plan.text);
  os << ",";
  RenderCompileJson(plan, os);
  os << ",\"plan\":";
  if (plan.plan != nullptr) {
    RenderExprJson(*plan.plan, opts, os);
  } else {
    os << "null";
  }
  os << "}";
  return os.str();
}

std::string RenderPlanJson(const CompiledPlan& plan) {
  return RenderPlanJson(plan, runtime::physical::BuildOptions{});
}

std::string RenderProfileText(const CompiledPlan& plan,
                              const runtime::QueryTrace& trace) {
  std::ostringstream os;
  os << "=== profile ===\n";
  os << "query: " << plan.text << "\n";
  RenderCompileHeader(plan, os);
  ProfileIndex index(trace);
  auto roots = index.span_children.find(-1);
  if (roots != index.span_children.end()) {
    for (int id : roots->second) {
      RenderSpanText(index, id, "", os);
    }
  }
  // Events fired outside any span (e.g. from a plan without a FLWOR).
  auto loose = index.span_events.find(-1);
  if (loose != index.span_events.end()) {
    for (size_t i : loose->second) {
      os << EventLine(index.events[i]) << "\n";
    }
  }
  // Timeline traces get the wall-time attribution appended, EXPLAIN
  // ANALYZE style.
  if (trace.has_timeline()) {
    os << observability::RenderCriticalPathText(
        observability::AnalyzeCriticalPath(trace.BuildTimeline()));
  }
  return os.str();
}

std::string RenderSourceHealthText(
    const std::vector<observability::SourceHealthSnapshot>& health) {
  std::ostringstream os;
  os << "=== source health ===\n";
  for (const auto& s : health) {
    char ewma[32];
    std::snprintf(ewma, sizeof(ewma), "%.1f", s.ewma_latency_micros);
    os << s.source << ": " << observability::BreakerStateName(s.state)
       << "  ewma=" << ewma << "us ok=" << s.successes
       << " err=" << s.failures << " timeout=" << s.timeouts
       << " trips=" << s.trips << "\n";
  }
  return os.str();
}

std::string RenderProfileJson(const CompiledPlan& plan,
                              const runtime::QueryTrace& trace) {
  std::ostringstream os;
  os << "{\"query\":";
  AppendJsonString(os, plan.text);
  os << ",";
  RenderCompileJson(plan, os);
  ProfileIndex index(trace);
  os << ",\"spans\":[";
  bool first = true;
  auto roots = index.span_children.find(-1);
  if (roots != index.span_children.end()) {
    for (int id : roots->second) {
      if (!first) os << ",";
      first = false;
      RenderSpanJson(index, id, os);
    }
  }
  os << "],\"unattached_events\":[";
  first = true;
  auto loose = index.span_events.find(-1);
  if (loose != index.span_events.end()) {
    for (size_t i : loose->second) {
      if (!first) os << ",";
      first = false;
      RenderEventJson(index.events[i], os);
    }
  }
  os << "]";
  if (trace.has_timeline()) {
    os << ",\"critical_path\":"
       << observability::RenderCriticalPathJson(
              observability::AnalyzeCriticalPath(trace.BuildTimeline()));
  }
  os << "}";
  return os.str();
}

std::string RenderChromeTrace(const runtime::QueryTrace& trace) {
  return observability::ChromeTraceJson(trace.BuildTimeline());
}

namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string RenderExplainDiff(const std::string& before,
                              const std::string& after) {
  const std::vector<std::string> a = SplitLines(before);
  const std::vector<std::string> b = SplitLines(after);
  // Classic O(n*m) LCS table — EXPLAIN outputs are tens of lines, so the
  // quadratic table is trivially cheap and keeps the alignment optimal.
  const size_t n = a.size(), m = b.size();
  std::vector<std::vector<int>> lcs(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      lcs[i][j] = (a[i] == b[j])
                      ? lcs[i + 1][j + 1] + 1
                      : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  std::string out;
  size_t i = 0, j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      out += "  " + a[i] + "\n";
      ++i, ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      out += "- " + a[i] + "\n";
      ++i;
    } else {
      out += "+ " + b[j] + "\n";
      ++j;
    }
  }
  for (; i < n; ++i) out += "- " + a[i] + "\n";
  for (; j < m; ++j) out += "+ " + b[j] + "\n";
  return out;
}

}  // namespace aldsp::server
