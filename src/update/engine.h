#ifndef ALDSP_UPDATE_ENGINE_H_
#define ALDSP_UPDATE_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compiler/function_table.h"
#include "runtime/adaptor.h"
#include "runtime/context.h"
#include "update/lineage.h"
#include "update/sdo.h"

namespace aldsp::update {

/// Optimistic concurrency options a data service designer can choose
/// from (paper §6).
enum class ConcurrencyPolicy {
  /// All values read must still match their original values.
  kAllReadValues,
  /// Only the updated columns must still match their original values.
  kUpdatedValues,
  /// A designated subset (e.g. a timestamp field) must still match.
  kDesignatedFields,
};

struct SubmitOptions {
  ConcurrencyPolicy policy = ConcurrencyPolicy::kUpdatedValues;
  /// Index-free shape paths checked under kDesignatedFields.
  std::vector<std::string> designated_paths;
};

/// What a submit did: per-statement SQL (for inspection/auditing) and the
/// set of sources touched. Unaffected sources are never contacted
/// (paper §6).
struct SubmitReport {
  struct StatementInfo {
    std::string source_id;
    std::string sql;  // rendered vendor-neutral text
    int64_t rows_affected = 0;
  };
  std::vector<StatementInfo> statements;
  std::vector<std::string> sources_touched;
};

/// The update decomposition and propagation engine (paper §6). A submit
/// call is the unit of update execution: changes in the SDO's change log
/// are mapped through lineage to source columns (applying registered
/// inverse functions to transformed values), grouped into one UPDATE per
/// affected row, guarded by the chosen optimistic-concurrency condition,
/// and executed under a simulated XA two-phase commit across all
/// affected relational sources.
class UpdateEngine {
 public:
  UpdateEngine(const compiler::FunctionTable* functions,
               const runtime::AdaptorRegistry* adaptors)
      : functions_(functions), adaptors_(adaptors) {}

  Result<SubmitReport> Submit(const DataObject& object,
                              const LineageMap& lineage,
                              const SubmitOptions& options = {});

 private:
  const compiler::FunctionTable* functions_;
  const runtime::AdaptorRegistry* adaptors_;
};

}  // namespace aldsp::update

#endif  // ALDSP_UPDATE_ENGINE_H_
