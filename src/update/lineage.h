#ifndef ALDSP_UPDATE_LINEAGE_H_
#define ALDSP_UPDATE_LINEAGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compiler/function_table.h"

namespace aldsp::update {

/// Lineage of one field of a data service's shape: which source column
/// it was read from, which key identifies its row, and any value
/// transformation applied on the way out (whose registered inverse is
/// applied on the way back in, paper §4.5/§6).
struct FieldLineage {
  std::string shape_path;  // index-free path in the shape ("LAST_NAME",
                           // "ORDERS/ORDER/AMOUNT")
  std::string source_id;
  std::string table;
  std::string column;
  std::string key_column;      // primary-key column of `table`
  std::string key_shape_path;  // where the key value appears in the shape
  /// External functions applied source->shape, outermost last; each must
  /// have a registered inverse for the field to be updatable.
  std::vector<std::string> transforms;
  bool updatable = true;

  std::string RowPathPrefix() const;  // shape path of the enclosing row
};

struct LineageMap {
  std::vector<FieldLineage> fields;

  const FieldLineage* Find(const std::string& index_free_path) const;
};

/// Computes the lineage of a data service from its designated lineage
/// provider function (paper §6: by default the first read function — the
/// "get all" function). The analysis is rule-driven over the function's
/// analyzed body: the top-level iteration identifies the primary source
/// rows; constructed shape elements map columns (through inverse-capable
/// transformations); navigation functions and nested per-row FLWORs map
/// child tables. Fields fed by web services or computations carry no
/// lineage and are read-only.
Result<LineageMap> ComputeLineage(const std::string& function_name,
                                  const compiler::FunctionTable& functions);

}  // namespace aldsp::update

#endif  // ALDSP_UPDATE_LINEAGE_H_
