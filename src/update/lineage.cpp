#include "update/lineage.h"

#include "compiler/builtins.h"
#include "xml/node.h"

namespace aldsp::update {

using compiler::Builtin;
using compiler::ExternalFunction;
using compiler::LookupBuiltin;
using compiler::UserFunction;
using xquery::Clause;
using xquery::Expr;
using xquery::ExprKind;
using xquery::ExprPtr;

std::string FieldLineage::RowPathPrefix() const {
  size_t slash = shape_path.rfind('/');
  return slash == std::string::npos ? "" : shape_path.substr(0, slash);
}

const FieldLineage* LineageMap::Find(const std::string& path) const {
  for (const auto& f : fields) {
    if (f.shape_path == path) return &f;
  }
  return nullptr;
}

namespace {

struct RowCtx {
  std::string var;     // FLWOR variable bound to a row of `table`
  std::string source;
  std::string table;
  std::string pk;      // primary-key column (may be empty)
  int ctx_id = 0;
};

class LineageAnalysis {
 public:
  explicit LineageAnalysis(const compiler::FunctionTable& functions)
      : functions_(functions) {}

  Result<LineageMap> Run(const UserFunction& fn) {
    if (fn.body == nullptr || fn.body->kind != ExprKind::kFLWOR ||
        fn.body->clauses.empty()) {
      return Status::UpdateError(
          "lineage provider must be a FLWOR over a physical source: " +
          fn.name);
    }
    const Clause& first = fn.body->clauses.front();
    if (first.kind != Clause::Kind::kFor) {
      return Status::UpdateError("lineage provider must start with 'for'");
    }
    const ExternalFunction* table_fn = AsTableFn(*first.expr);
    if (table_fn == nullptr) {
      return Status::UpdateError(
          "lineage provider must iterate a relational source function");
    }
    RowCtx root_ctx = MakeCtx(first.var, *table_fn);
    const ExprPtr& ret = fn.body->children[0];
    if (ret->kind != ExprKind::kElementCtor) {
      return Status::UpdateError("lineage provider must return a constructor");
    }
    // Paths are relative to the returned root element.
    for (const auto& child : ret->children) {
      WalkContent(child, "", root_ctx);
    }
    ResolveKeys();
    return std::move(map_);
  }

 private:
  const ExternalFunction* AsTableFn(const Expr& e) const {
    if (e.kind != ExprKind::kFunctionCall || !e.children.empty()) {
      return nullptr;
    }
    const ExternalFunction* fn = functions_.FindExternal(e.fn_name);
    if (fn == nullptr || fn->kind() != "relational") return nullptr;
    return fn;
  }

  RowCtx MakeCtx(const std::string& var, const ExternalFunction& fn) {
    RowCtx ctx;
    ctx.var = var;
    ctx.source = fn.Property("source");
    ctx.table = fn.Property("table");
    ctx.pk = fn.Property("primary_key");
    if (ctx.pk.find(',') != std::string::npos) ctx.pk.clear();
    ctx.ctx_id = next_ctx_id_++;
    return ctx;
  }

  static std::string Extend(const std::string& prefix,
                            const std::string& name) {
    return prefix.empty() ? name : prefix + "/" + name;
  }

  // Skips fn:data and typematch wrappers the analyzer inserts around
  // function arguments.
  static const ExprPtr& UnwrapData(const ExprPtr& e) {
    const ExprPtr* cur = &e;
    while (true) {
      if ((*cur)->kind == ExprKind::kTypematch) {
        cur = &(*cur)->children[0];
        continue;
      }
      if ((*cur)->kind == ExprKind::kFunctionCall &&
          LookupBuiltin((*cur)->fn_name) == Builtin::kData &&
          (*cur)->children.size() == 1) {
        cur = &(*cur)->children[0];
        continue;
      }
      return *cur;
    }
  }

  // Detects `f1(f2(...($var/COL)))` over external transformations and
  // returns the column; transforms are recorded outermost first.
  bool MatchTransformedColumn(const ExprPtr& raw, const RowCtx& ctx,
                              std::string* column,
                              std::vector<std::string>* transforms) {
    const ExprPtr* cur = &UnwrapData(raw);
    while ((*cur)->kind == ExprKind::kFunctionCall &&
           (*cur)->children.size() == 1) {
      const ExternalFunction* fn = functions_.FindExternal((*cur)->fn_name);
      if (fn == nullptr || fn->kind() != "external") break;
      transforms->push_back((*cur)->fn_name);
      cur = &UnwrapData((*cur)->children[0]);
    }
    const ExprPtr& e = *cur;
    if (e->kind == ExprKind::kPathStep && !e->is_attribute_step &&
        e->children[0]->kind == ExprKind::kVarRef &&
        e->children[0]->var_name == ctx.var) {
      *column = e->step_name;
      return true;
    }
    return false;
  }

  void AddField(const std::string& path, const RowCtx& ctx,
                const std::string& column,
                std::vector<std::string> transforms) {
    FieldLineage f;
    f.shape_path = path;
    f.source_id = ctx.source;
    f.table = ctx.table;
    f.column = column;
    f.key_column = ctx.pk;
    f.transforms = std::move(transforms);
    for (const auto& t : f.transforms) {
      if (functions_.InverseOf(t).empty()) f.updatable = false;
    }
    if (ctx.pk.empty()) f.updatable = false;
    ctx_of_field_.push_back(ctx.ctx_id);
    map_.fields.push_back(std::move(f));
  }

  // Expands a row-sequence expression (table function, navigation
  // function, filtered scan, or correlated FLWOR) into per-column fields
  // under `prefix`.
  bool TryRowSequence(const ExprPtr& raw, const std::string& prefix,
                      const RowCtx& outer) {
    (void)outer;  // correlation predicates are implied by navigation keys
    const ExprPtr* e = &raw;
    // Peel filters: CREDIT_CARD()[CID eq $c/CID].
    while ((*e)->kind == ExprKind::kFilter) e = &(*e)->children[0];
    // Correlated FLWOR: for $o in T() where ... return $o | <ctor>.
    if ((*e)->kind == ExprKind::kFLWOR && !(*e)->clauses.empty()) {
      const Clause& first = (*e)->clauses.front();
      if (first.kind != Clause::Kind::kFor &&
          first.kind != Clause::Kind::kJoin) {
        return false;
      }
      std::vector<ExprPtr> unused;
      const ExprPtr* base = &first.expr;
      while ((*base)->kind == ExprKind::kFilter) base = &(*base)->children[0];
      const ExternalFunction* fn = AsTableFn(**base);
      if (fn == nullptr) return false;
      RowCtx ctx = MakeCtx(first.var, *fn);
      const ExprPtr& ret = UnwrapData((*e)->children[0]);
      if (ret->kind == ExprKind::kVarRef && ret->var_name == ctx.var) {
        ExpandWholeRow(prefix, ctx, *fn);
        return true;
      }
      if (ret->kind == ExprKind::kElementCtor) {
        std::string row_prefix = Extend(prefix, ret->ctor_name);
        for (const auto& child : ret->children) {
          WalkContent(child, row_prefix, ctx);
        }
        return true;
      }
      return false;
    }
    if ((*e)->kind == ExprKind::kFunctionCall) {
      const ExternalFunction* fn = functions_.FindExternal((*e)->fn_name);
      if (fn == nullptr) return false;
      if (fn->kind() == "relational" && (*e)->children.empty()) {
        RowCtx ctx = MakeCtx("", *fn);
        ExpandWholeRow(prefix, ctx, *fn);
        return true;
      }
      if (fn->kind() == "relational-nav") {
        // Navigation function: rows of fn's table keyed by its own PK.
        const ExternalFunction* table_fn = nullptr;
        for (const auto& cand : functions_.external_functions()) {
          if (cand.kind() == "relational" &&
              cand.Property("source") == fn->Property("source") &&
              cand.Property("table") == fn->Property("table")) {
            table_fn = &cand;
          }
        }
        if (table_fn == nullptr) return false;
        RowCtx ctx = MakeCtx("", *table_fn);
        ExpandWholeRow(prefix, ctx, *table_fn);
        return true;
      }
    }
    return false;
  }

  void ExpandWholeRow(const std::string& prefix, const RowCtx& ctx,
                      const ExternalFunction& fn) {
    if (fn.return_type.item == nullptr ||
        fn.return_type.item->kind() != xsd::XType::Kind::kElement) {
      return;
    }
    std::string row_prefix = Extend(prefix, fn.return_type.item->name());
    for (const auto& field : fn.return_type.item->fields()) {
      AddField(Extend(row_prefix, field.name), ctx, field.name, {});
    }
  }

  void WalkContent(const ExprPtr& child, const std::string& prefix,
                   const RowCtx& ctx) {
    if (child->kind == ExprKind::kSequence) {
      for (const auto& c : child->children) WalkContent(c, prefix, ctx);
      return;
    }
    if (child->kind == ExprKind::kElementCtor) {
      std::string path = Extend(prefix, child->ctor_name);
      // Simple mapped field: <NAME>{ transforms($var/COL) }</NAME>.
      if (child->children.size() == 1) {
        std::string column;
        std::vector<std::string> transforms;
        if (MatchTransformedColumn(child->children[0], ctx, &column,
                                   &transforms)) {
          AddField(path, ctx, column, std::move(transforms));
          return;
        }
        if (TryRowSequence(child->children[0], path, ctx)) return;
      }
      // Otherwise: recurse into mixed content.
      for (const auto& c : child->children) WalkContent(c, path, ctx);
      return;
    }
    // A bare column step contributes an element named after the column.
    {
      std::string column;
      std::vector<std::string> transforms;
      const ExprPtr& e = UnwrapData(child);
      if (e->kind == ExprKind::kPathStep && !e->is_attribute_step &&
          e->children[0]->kind == ExprKind::kVarRef &&
          e->children[0]->var_name == ctx.var && transforms.empty()) {
        AddField(Extend(prefix, e->step_name), ctx, e->step_name, {});
        return;
      }
      (void)column;
    }
    // Row sequences directly in content.
    TryRowSequence(child, prefix, ctx);
    // Anything else (web service values, computations): no lineage.
  }

  void ResolveKeys() {
    for (size_t i = 0; i < map_.fields.size(); ++i) {
      FieldLineage& f = map_.fields[i];
      if (f.key_column.empty()) continue;
      bool found = false;
      for (size_t j = 0; j < map_.fields.size(); ++j) {
        if (ctx_of_field_[j] != ctx_of_field_[i]) continue;
        const FieldLineage& g = map_.fields[j];
        if (g.column == f.key_column && g.transforms.empty()) {
          f.key_shape_path = g.shape_path;
          found = true;
          break;
        }
      }
      // A row whose key is not exposed in the shape cannot be updated.
      if (!found) f.updatable = false;
    }
  }

  const compiler::FunctionTable& functions_;
  LineageMap map_;
  std::vector<int> ctx_of_field_;
  int next_ctx_id_ = 0;
};

}  // namespace

Result<LineageMap> ComputeLineage(const std::string& function_name,
                                  const compiler::FunctionTable& functions) {
  const UserFunction* fn = functions.FindUser(function_name);
  if (fn == nullptr) {
    return Status::NotFound("no such lineage provider: " + function_name);
  }
  LineageAnalysis analysis(functions);
  return analysis.Run(*fn);
}

}  // namespace aldsp::update
