#ifndef ALDSP_UPDATE_SDO_H_
#define ALDSP_UPDATE_SDO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace aldsp::update {

/// One step of a data-object path: a child element name with an optional
/// 1-based position among same-named siblings ("ORDER[2]").
struct PathSegment {
  std::string name;
  int index = 1;
  bool has_index = false;
};

using ObjectPath = std::vector<PathSegment>;

/// Parses "ORDERS/ORDER[2]/AMOUNT" into segments.
Result<ObjectPath> ParseObjectPath(const std::string& path);
std::string ObjectPathToString(const ObjectPath& path);
/// The path without positional indexes ("ORDERS/ORDER/AMOUNT") — the form
/// lineage entries are keyed by.
std::string StripIndexes(const ObjectPath& path);

/// Resolves a path to the (first matching / indexed) element under root.
Result<xml::NodePtr> ResolvePath(const xml::NodePtr& root,
                                 const ObjectPath& path);

/// One entry of an SDO change log (paper §6: "a serialized change log
/// identifying the portions of the XML data that were changed and what
/// their previous values were"). Write methods support modifying,
/// inserting and deleting instances (paper §2.1), so the log records
/// value modifications plus whole-row inserts and deletes.
struct ChangeEntry {
  enum class Kind { kModify, kInsertRow, kDeleteRow };

  Kind kind = Kind::kModify;
  ObjectPath path;
  // kModify
  xml::AtomicValue old_value;
  xml::AtomicValue new_value;
  // kInsertRow / kDeleteRow: the inserted element / the removed subtree
  // as it was read (the delete's previous values).
  xml::NodePtr subtree;
};

/// A Service Data Object: the XML result of a data service call plus a
/// change log tracking modifications made by the client (paper §6 /
/// Fig. 5). `original()` preserves the values as read, which the
/// optimistic-concurrency policies compare against at submit time.
class DataObject {
 public:
  /// Takes a deep copy of `root`; the object owns its tree.
  explicit DataObject(const xml::NodePtr& root);

  const xml::NodePtr& root() const { return root_; }
  /// The unmodified tree as it was read.
  const xml::NodePtr& original() const { return original_; }

  /// Typed read of the element at `path` (its typed value).
  Result<xml::AtomicValue> Get(const std::string& path) const;

  /// Replaces the typed content of the element at `path`, recording the
  /// change in the log. Setting the same value is a no-op.
  Status Set(const std::string& path, xml::AtomicValue value);

  /// Removes the element at `path` (a nested row such as
  /// "ORDERS/ORDER[2]"), recording the removed subtree.
  Status DeleteElement(const std::string& path);

  /// Appends `element` under the element at `parent_path` ("" appends at
  /// the root), recording the insertion.
  Status InsertElement(const std::string& parent_path,
                       const xml::NodePtr& element);

  const std::vector<ChangeEntry>& change_log() const { return change_log_; }
  bool modified() const { return !change_log_.empty(); }
  void ClearChangeLog() { change_log_.clear(); }

 private:
  xml::NodePtr root_;
  xml::NodePtr original_;
  std::vector<ChangeEntry> change_log_;
};

}  // namespace aldsp::update

#endif  // ALDSP_UPDATE_SDO_H_
