#include "update/sdo.h"

#include <cstdlib>

#include "common/string_util.h"

namespace aldsp::update {

using xml::AtomicValue;
using xml::NodePtr;
using xml::XNode;

Result<ObjectPath> ParseObjectPath(const std::string& path) {
  ObjectPath out;
  for (const std::string& raw : Split(path, '/')) {
    std::string seg = std::string(Trim(raw));
    if (seg.empty()) {
      return Status::InvalidArgument("empty path segment in: " + path);
    }
    PathSegment ps;
    size_t bracket = seg.find('[');
    if (bracket != std::string::npos) {
      if (seg.back() != ']') {
        return Status::InvalidArgument("malformed index in path: " + path);
      }
      ps.name = seg.substr(0, bracket);
      ps.index = std::atoi(seg.substr(bracket + 1,
                                      seg.size() - bracket - 2).c_str());
      ps.has_index = true;
      if (ps.index < 1) {
        return Status::InvalidArgument("path index must be >= 1: " + path);
      }
    } else {
      ps.name = seg;
    }
    out.push_back(std::move(ps));
  }
  if (out.empty()) return Status::InvalidArgument("empty path");
  return out;
}

std::string ObjectPathToString(const ObjectPath& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += '/';
    out += path[i].name;
    if (path[i].has_index) {
      out += '[' + std::to_string(path[i].index) + ']';
    }
  }
  return out;
}

std::string StripIndexes(const ObjectPath& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += '/';
    out += path[i].name;
  }
  return out;
}

Result<NodePtr> ResolvePath(const NodePtr& root, const ObjectPath& path) {
  NodePtr cur = root;
  for (const PathSegment& seg : path) {
    auto matches = cur->ChildrenNamed(seg.name);
    size_t idx = static_cast<size_t>(seg.index - 1);
    if (matches.empty() || idx >= matches.size()) {
      return Status::NotFound("no element at path segment " + seg.name +
                              (seg.has_index
                                   ? "[" + std::to_string(seg.index) + "]"
                                   : "") +
                              " under <" + cur->name() + ">");
    }
    cur = matches[idx];
  }
  return cur;
}

DataObject::DataObject(const NodePtr& root)
    : root_(root->Clone()), original_(root->Clone()) {}

Result<AtomicValue> DataObject::Get(const std::string& path) const {
  ALDSP_ASSIGN_OR_RETURN(ObjectPath p, ParseObjectPath(path));
  ALDSP_ASSIGN_OR_RETURN(NodePtr node, ResolvePath(root_, p));
  return node->TypedValue();
}

Status DataObject::Set(const std::string& path, AtomicValue value) {
  ALDSP_ASSIGN_OR_RETURN(ObjectPath p, ParseObjectPath(path));
  ALDSP_ASSIGN_OR_RETURN(NodePtr node, ResolvePath(root_, p));
  AtomicValue old = node->TypedValue();
  if (old == value) return Status::OK();
  node->SetChildren({XNode::Text(value)});
  ChangeEntry entry;
  entry.kind = ChangeEntry::Kind::kModify;
  entry.path = std::move(p);
  entry.old_value = std::move(old);
  entry.new_value = std::move(value);
  change_log_.push_back(std::move(entry));
  return Status::OK();
}

Status DataObject::DeleteElement(const std::string& path) {
  ALDSP_ASSIGN_OR_RETURN(ObjectPath p, ParseObjectPath(path));
  ALDSP_ASSIGN_OR_RETURN(NodePtr node, ResolvePath(root_, p));
  xml::XNode* parent = node->parent();
  if (parent == nullptr) {
    return Status::InvalidArgument("cannot delete the root element");
  }
  ChangeEntry entry;
  entry.kind = ChangeEntry::Kind::kDeleteRow;
  entry.path = std::move(p);
  entry.subtree = node->Clone();
  for (size_t i = 0; i < parent->children().size(); ++i) {
    if (parent->children()[i] == node) {
      parent->RemoveChildAt(i);
      break;
    }
  }
  change_log_.push_back(std::move(entry));
  return Status::OK();
}

Status DataObject::InsertElement(const std::string& parent_path,
                                 const NodePtr& element) {
  NodePtr parent = root_;
  ObjectPath prefix;
  if (!parent_path.empty()) {
    ALDSP_ASSIGN_OR_RETURN(prefix, ParseObjectPath(parent_path));
    ALDSP_ASSIGN_OR_RETURN(parent, ResolvePath(root_, prefix));
  }
  NodePtr copy = element->Clone();
  int position =
      static_cast<int>(parent->ChildrenNamed(copy->name()).size()) + 1;
  parent->AddChild(copy);
  ChangeEntry entry;
  entry.kind = ChangeEntry::Kind::kInsertRow;
  entry.path = prefix;
  PathSegment seg;
  seg.name = copy->name();
  seg.index = position;
  seg.has_index = true;
  entry.path.push_back(std::move(seg));
  entry.subtree = copy->Clone();
  change_log_.push_back(std::move(entry));
  return Status::OK();
}

}  // namespace aldsp::update
