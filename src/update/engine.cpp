#include "update/engine.h"

#include <map>

#include "runtime/evaluator.h"
#include "sql/dialect.h"

namespace aldsp::update {

using compiler::ExternalFunction;
using relational::Cell;
using relational::SqlExpr;
using relational::SqlExprPtr;
using relational::UpdateStmt;
using xml::AtomicValue;
using xml::NodePtr;

namespace {

struct RowUpdate {
  std::string source_id;
  std::string vendor;
  std::string table;
  std::string key_column;
  Cell key_value;
  std::vector<std::pair<std::string, Cell>> sets;
  std::vector<std::pair<std::string, Cell>> checks;

  void AddSet(const std::string& column, Cell value) {
    for (auto& [c, v] : sets) {
      if (c == column) {
        v = std::move(value);
        return;
      }
    }
    sets.emplace_back(column, std::move(value));
  }

  void AddCheck(const std::string& column, Cell value) {
    for (auto& [c, v] : checks) {
      if (c == column) return;  // first check wins
    }
    checks.emplace_back(column, std::move(value));
  }
};

/// A whole-row insert or delete (paper §2.1: write methods support
/// "modifying, inserting, or deleting" instances).
struct RowOp {
  ChangeEntry::Kind kind;
  std::string source_id;
  std::string vendor;
  relational::InsertStmt insert;
  relational::DeleteStmt del;
};

SqlExprPtr EqualsOrNull(const std::string& table, const std::string& column,
                        const Cell& value) {
  if (value.is_null) return SqlExpr::IsNull(SqlExpr::Column(table, column));
  return SqlExpr::Binary("=", SqlExpr::Column(table, column),
                         SqlExpr::Literal(value));
}

}  // namespace

Result<SubmitReport> UpdateEngine::Submit(const DataObject& object,
                                          const LineageMap& lineage,
                                          const SubmitOptions& options) {
  SubmitReport report;
  if (!object.modified()) return report;

  // Applies an external function (an inverse transformation) to a value.
  auto apply_external = [&](const std::string& fn_name,
                            const AtomicValue& v) -> Result<AtomicValue> {
    const ExternalFunction* fn = functions_->FindExternal(fn_name);
    if (fn == nullptr) return Status::NotFound("no such function: " + fn_name);
    runtime::Adaptor* adaptor = adaptors_->Find(fn->Property("source"));
    if (adaptor == nullptr) {
      return Status::SourceError("no adaptor for " + fn->Property("source"));
    }
    ALDSP_ASSIGN_OR_RETURN(
        xml::Sequence result,
        adaptor->Invoke(fn_name, {xml::Sequence{xml::Item(v)}}));
    if (result.size() != 1 || !result.front().is_atomic()) {
      return Status::UpdateError("inverse function " + fn_name +
                                 " did not return a single value");
    }
    return result.front().atomic();
  };

  // Maps a shape-side value to its source-column value by applying the
  // registered inverses, outermost transformation first (paper §4.5).
  auto to_source_value = [&](const FieldLineage& lin,
                             const AtomicValue& shape_value)
      -> Result<AtomicValue> {
    AtomicValue v = shape_value;
    for (const auto& t : lin.transforms) {
      std::string inverse = functions_->InverseOf(t);
      if (inverse.empty()) {
        return Status::UpdateError("no inverse registered for " + t);
      }
      ALDSP_ASSIGN_OR_RETURN(v, apply_external(inverse, v));
    }
    return v;
  };

  auto vendor_of = [&](const std::string& source_id,
                       const std::string& table) -> std::string {
    for (const auto& cand : functions_->external_functions()) {
      if (cand.kind() == "relational" &&
          cand.Property("source") == source_id &&
          cand.Property("table") == table) {
        return cand.Property("vendor");
      }
    }
    return "";
  };

  // Reads the original (as-read) value of `leaf` within the row instance
  // identified by `instance_prefix`; a missing element reads as NULL.
  auto original_cell = [&](const ObjectPath& instance_prefix,
                           const std::string& leaf_path,
                           const FieldLineage& lin) -> Result<Cell> {
    ObjectPath path = instance_prefix;
    ALDSP_ASSIGN_OR_RETURN(ObjectPath leaf, ParseObjectPath(leaf_path));
    for (auto& seg : leaf) path.push_back(seg);
    auto node = ResolvePath(object.original(), path);
    if (!node.ok()) return Cell::Null();
    ALDSP_ASSIGN_OR_RETURN(AtomicValue v,
                           to_source_value(lin, (*node)->TypedValue()));
    return Cell::Of(std::move(v));
  };

  // ----- Decompose modifications into per-row updates -------------------
  std::map<std::string, RowUpdate> rows;
  for (const ChangeEntry& change : object.change_log()) {
    if (change.kind != ChangeEntry::Kind::kModify) continue;
    std::string stripped = StripIndexes(change.path);
    const FieldLineage* lin = lineage.Find(stripped);
    if (lin == nullptr) {
      return Status::UpdateError("field has no lineage (read-only): " +
                                 stripped);
    }
    if (!lin->updatable) {
      return Status::UpdateError("field is not updatable: " + stripped);
    }
    ObjectPath instance_prefix = change.path;
    instance_prefix.pop_back();
    std::string row_prefix = lin->RowPathPrefix();
    std::string key_leaf = lin->key_shape_path.substr(
        row_prefix.empty() ? 0 : row_prefix.size() + 1);
    ObjectPath key_path = instance_prefix;
    {
      ALDSP_ASSIGN_OR_RETURN(ObjectPath leaf, ParseObjectPath(key_leaf));
      for (auto& seg : leaf) key_path.push_back(seg);
    }
    ALDSP_ASSIGN_OR_RETURN(NodePtr key_node,
                           ResolvePath(object.original(), key_path));
    AtomicValue key_value = key_node->TypedValue();

    std::string row_id = lin->source_id + "|" + lin->table + "|" +
                         runtime::EncodeAtomic(key_value);
    RowUpdate& row = rows[row_id];
    if (row.table.empty()) {
      row.source_id = lin->source_id;
      row.table = lin->table;
      row.key_column = lin->key_column;
      row.key_value = Cell::Of(key_value);
      row.vendor = vendor_of(lin->source_id, lin->table);
    }
    ALDSP_ASSIGN_OR_RETURN(AtomicValue new_value,
                           to_source_value(*lin, change.new_value));
    row.AddSet(lin->column, Cell::Of(std::move(new_value)));

    // Optimistic-concurrency conditions (paper §6).
    switch (options.policy) {
      case ConcurrencyPolicy::kUpdatedValues: {
        std::string leaf = lin->shape_path.substr(
            row_prefix.empty() ? 0 : row_prefix.size() + 1);
        ALDSP_ASSIGN_OR_RETURN(Cell orig,
                               original_cell(instance_prefix, leaf, *lin));
        row.AddCheck(lin->column, std::move(orig));
        break;
      }
      case ConcurrencyPolicy::kAllReadValues: {
        for (const auto& f : lineage.fields) {
          if (f.table != lin->table || f.source_id != lin->source_id ||
              f.RowPathPrefix() != row_prefix) {
            continue;
          }
          std::string leaf = f.shape_path.substr(
              row_prefix.empty() ? 0 : row_prefix.size() + 1);
          ALDSP_ASSIGN_OR_RETURN(Cell orig,
                                 original_cell(instance_prefix, leaf, f));
          row.AddCheck(f.column, std::move(orig));
        }
        break;
      }
      case ConcurrencyPolicy::kDesignatedFields: {
        for (const auto& path : options.designated_paths) {
          const FieldLineage* f = lineage.Find(path);
          if (f == nullptr || f->table != lin->table ||
              f->RowPathPrefix() != row_prefix) {
            continue;
          }
          std::string leaf = f->shape_path.substr(
              row_prefix.empty() ? 0 : row_prefix.size() + 1);
          ALDSP_ASSIGN_OR_RETURN(Cell orig,
                                 original_cell(instance_prefix, leaf, *f));
          row.AddCheck(f->column, std::move(orig));
        }
        break;
      }
    }
  }

  // ----- Decompose whole-row inserts and deletes ------------------------
  std::vector<RowOp> row_ops;
  for (const ChangeEntry& change : object.change_log()) {
    if (change.kind == ChangeEntry::Kind::kModify) continue;
    std::string row_path = StripIndexes(change.path);
    std::vector<const FieldLineage*> fields;
    const FieldLineage* key_field = nullptr;
    for (const auto& f : lineage.fields) {
      if (f.RowPathPrefix() != row_path) continue;
      fields.push_back(&f);
      if (f.column == f.key_column && f.transforms.empty()) key_field = &f;
    }
    if (fields.empty()) {
      return Status::UpdateError("no lineage for row: " + row_path);
    }
    if (key_field == nullptr) {
      return Status::UpdateError("row key not exposed in shape: " + row_path);
    }
    const FieldLineage& proto = *fields.front();
    auto leaf_of = [&](const FieldLineage& f) {
      return f.shape_path.substr(row_path.empty() ? 0 : row_path.size() + 1);
    };
    if (change.subtree == nullptr) {
      return Status::UpdateError("change entry has no row content");
    }
    RowOp op;
    op.kind = change.kind;
    op.source_id = proto.source_id;
    op.vendor = vendor_of(proto.source_id, proto.table);

    if (change.kind == ChangeEntry::Kind::kDeleteRow) {
      NodePtr key_node = change.subtree->FirstChildNamed(leaf_of(*key_field));
      if (key_node == nullptr) {
        return Status::UpdateError("deleted row lacks its key value: " +
                                   row_path);
      }
      op.del.table_name = proto.table;
      SqlExprPtr where = SqlExpr::Binary(
          "=", SqlExpr::Column(proto.table, key_field->column),
          SqlExpr::Literal(Cell::Of(key_node->TypedValue())));
      // Concurrency: under all-read-values, every recorded column must
      // still match (the delete's "previous values").
      if (options.policy == ConcurrencyPolicy::kAllReadValues) {
        for (const FieldLineage* f : fields) {
          if (f == key_field) continue;
          NodePtr node = change.subtree->FirstChildNamed(leaf_of(*f));
          Cell value = Cell::Null();
          if (node != nullptr) {
            ALDSP_ASSIGN_OR_RETURN(AtomicValue v,
                                   to_source_value(*f, node->TypedValue()));
            value = Cell::Of(std::move(v));
          }
          where = SqlExpr::Binary("AND", where,
                                  EqualsOrNull(proto.table, f->column, value));
        }
      }
      op.del.where = std::move(where);
    } else {  // kInsertRow
      op.insert.table_name = proto.table;
      bool has_key = false;
      for (const FieldLineage* f : fields) {
        NodePtr node = change.subtree->FirstChildNamed(leaf_of(*f));
        if (node == nullptr) continue;  // absent -> column default/NULL
        ALDSP_ASSIGN_OR_RETURN(AtomicValue v,
                               to_source_value(*f, node->TypedValue()));
        op.insert.columns.push_back(f->column);
        op.insert.values.push_back(SqlExpr::Literal(Cell::Of(std::move(v))));
        if (f == key_field) has_key = true;
      }
      if (!has_key) {
        return Status::UpdateError("inserted row lacks its key value: " +
                                   row_path);
      }
    }
    row_ops.push_back(std::move(op));
  }

  // ----- Execute under simulated XA two-phase commit --------------------
  std::vector<relational::Database*> begun;
  auto rollback_all = [&] {
    for (auto* db : begun) (void)db->Rollback();
  };
  std::map<std::string, relational::Database*> dbs;
  auto require_db = [&](const std::string& source_id) -> Status {
    if (dbs.count(source_id) > 0) return Status::OK();
    relational::Database* db = adaptors_->FindDatabase(source_id);
    if (db == nullptr) {
      return Status::SourceError("no relational source " + source_id);
    }
    dbs[source_id] = db;
    report.sources_touched.push_back(source_id);
    return Status::OK();
  };
  for (const auto& [id, row] : rows) {
    (void)id;
    ALDSP_RETURN_NOT_OK(require_db(row.source_id));
  }
  for (const auto& op : row_ops) {
    ALDSP_RETURN_NOT_OK(require_db(op.source_id));
  }
  for (auto& [source, db] : dbs) {
    (void)source;
    Status st = db->Begin();
    if (!st.ok()) {
      rollback_all();
      return st;
    }
    begun.push_back(db);
  }

  for (const auto& [id, row] : rows) {
    (void)id;
    UpdateStmt stmt;
    stmt.table_name = row.table;
    for (const auto& [col, val] : row.sets) {
      stmt.assignments.emplace_back(col, SqlExpr::Literal(val));
    }
    SqlExprPtr where = SqlExpr::Binary(
        "=", SqlExpr::Column(row.table, row.key_column),
        SqlExpr::Literal(row.key_value));
    for (const auto& [col, val] : row.checks) {
      where = SqlExpr::Binary("AND", where,
                              EqualsOrNull(row.table, col, val));
    }
    stmt.where = where;

    relational::Database* db = dbs[row.source_id];
    auto affected = db->ExecuteUpdate(stmt);
    if (!affected.ok()) {
      rollback_all();
      return affected.status();
    }
    if (affected.value() != 1) {
      rollback_all();
      return Status::ConcurrencyError(
          "optimistic concurrency check failed for " + row.table + " row " +
          row.key_value.ToString() + " (rows matched: " +
          std::to_string(affected.value()) + ")");
    }
    SubmitReport::StatementInfo info;
    info.source_id = row.source_id;
    auto text = sql::RenderUpdate(stmt, sql::DialectForVendor(row.vendor));
    info.sql = text.ok() ? *text : "<unrenderable>";
    info.rows_affected = affected.value();
    report.statements.push_back(std::move(info));
  }

  for (const auto& op : row_ops) {
    relational::Database* db = dbs[op.source_id];
    SubmitReport::StatementInfo info;
    info.source_id = op.source_id;
    if (op.kind == ChangeEntry::Kind::kDeleteRow) {
      auto affected = db->ExecuteDelete(op.del);
      if (!affected.ok()) {
        rollback_all();
        return affected.status();
      }
      if (affected.value() != 1) {
        rollback_all();
        return Status::ConcurrencyError(
            "delete matched " + std::to_string(affected.value()) +
            " rows in " + op.del.table_name);
      }
      auto text = sql::RenderDelete(op.del, sql::DialectForVendor(op.vendor));
      info.sql = text.ok() ? *text : "<unrenderable>";
      info.rows_affected = affected.value();
    } else {
      auto affected = db->ExecuteInsert(op.insert);
      if (!affected.ok()) {
        rollback_all();
        return affected.status();
      }
      auto text =
          sql::RenderInsert(op.insert, sql::DialectForVendor(op.vendor));
      info.sql = text.ok() ? *text : "<unrenderable>";
      info.rows_affected = affected.value();
    }
    report.statements.push_back(std::move(info));
  }

  // Phase 1: prepare everywhere; phase 2: commit.
  for (auto* db : begun) {
    Status st = db->Prepare();
    if (!st.ok()) {
      rollback_all();
      return st;
    }
  }
  for (auto* db : begun) {
    ALDSP_RETURN_NOT_OK(db->Commit());
  }
  return report;
}

}  // namespace aldsp::update
