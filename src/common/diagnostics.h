#ifndef ALDSP_COMMON_DIAGNOSTICS_H_
#define ALDSP_COMMON_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace aldsp {

/// A position in XQuery source text (1-based line/column).
struct SourceLocation {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }
  std::string ToString() const;
};

enum class DiagnosticSeverity { kError, kWarning, kNote };

/// One compiler message. Design-time compilation (the XQuery editor mode
/// described in paper §4.1) collects many of these and keeps going;
/// runtime compilation fails on the first error.
struct Diagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kError;
  StatusCode code = StatusCode::kInternal;
  std::string message;
  SourceLocation location;
  /// Function the diagnostic was found in, if known ("tns:getProfile").
  std::string function_name;

  std::string ToString() const;
};

/// Collects diagnostics across the phases of a compilation.
class DiagnosticBag {
 public:
  void Add(Diagnostic diag) { diagnostics_.push_back(std::move(diag)); }
  void AddError(StatusCode code, std::string message,
                SourceLocation location = {}, std::string function = {});
  void AddWarning(std::string message, SourceLocation location = {});

  bool has_errors() const;
  size_t error_count() const;
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// First error as a Status (OK if none) — used by fail-fast compiles.
  Status FirstError() const;
  /// All messages, one per line.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace aldsp

#endif  // ALDSP_COMMON_DIAGNOSTICS_H_
