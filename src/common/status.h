#ifndef ALDSP_COMMON_STATUS_H_
#define ALDSP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace aldsp {

/// Error categories used across the platform. Mirrors the query-processing
/// stages of the paper (parse/analysis/type/optimize) plus runtime and
/// source-access failures.
enum class StatusCode {
  kOk = 0,
  kParseError,        // XQuery or SQL syntax error.
  kAnalysisError,     // Expression-tree construction / normalization error.
  kTypeError,         // Static type checking failure.
  kOptimizeError,     // Optimizer invariant violation.
  kRuntimeError,      // Dynamic evaluation error.
  kSourceError,       // Data source (adaptor) failure.
  kTimeout,           // Evaluation exceeded a deadline (fn-bea:timeout).
  kCancelled,         // Query cancelled via the live query registry.
  kResourceExhausted, // Refused or stopped by admission control / budgets:
                      // queue overflow, queue-wait timeout, or a per-query
                      // memory-budget breach. Distinct from kRuntimeError so
                      // dashboards and replay can tell shed load from bugs.
  kSecurityError,     // Access denied.
  kUpdateError,       // Update decomposition / propagation failure.
  kConcurrencyError,  // Optimistic concurrency check failed at submit time.
  kNotFound,          // Missing function, table, service, ...
  kInvalidArgument,   // Caller misuse of an API.
  kNotImplemented,
  kInternal,
};

/// Returns a stable human-readable name such as "ParseError".
const char* StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. All fallible ALDSP APIs return Status
/// or Result<T>; the platform does not throw exceptions.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status AnalysisError(std::string m) {
    return Status(StatusCode::kAnalysisError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status OptimizeError(std::string m) {
    return Status(StatusCode::kOptimizeError, std::move(m));
  }
  static Status RuntimeError(std::string m) {
    return Status(StatusCode::kRuntimeError, std::move(m));
  }
  static Status SourceError(std::string m) {
    return Status(StatusCode::kSourceError, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status SecurityError(std::string m) {
    return Status(StatusCode::kSecurityError, std::move(m));
  }
  static Status UpdateError(std::string m) {
    return Status(StatusCode::kUpdateError, std::move(m));
  }
  static Status ConcurrencyError(std::string m) {
    return Status(StatusCode::kConcurrencyError, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotImplemented(std::string m) {
    return Status(StatusCode::kNotImplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ParseError: unexpected token" or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status out of the current function.
#define ALDSP_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::aldsp::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace aldsp

#endif  // ALDSP_COMMON_STATUS_H_
