#include "common/diagnostics.h"

#include <sstream>

namespace aldsp {

std::string SourceLocation::ToString() const {
  if (!valid()) return "<unknown>";
  std::ostringstream os;
  os << line << ":" << column;
  return os.str();
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  switch (severity) {
    case DiagnosticSeverity::kError:
      os << "error";
      break;
    case DiagnosticSeverity::kWarning:
      os << "warning";
      break;
    case DiagnosticSeverity::kNote:
      os << "note";
      break;
  }
  os << " [" << StatusCodeName(code) << "]";
  if (location.valid()) os << " at " << location.ToString();
  if (!function_name.empty()) os << " in " << function_name;
  os << ": " << message;
  return os.str();
}

void DiagnosticBag::AddError(StatusCode code, std::string message,
                             SourceLocation location, std::string function) {
  Diagnostic d;
  d.severity = DiagnosticSeverity::kError;
  d.code = code;
  d.message = std::move(message);
  d.location = location;
  d.function_name = std::move(function);
  diagnostics_.push_back(std::move(d));
}

void DiagnosticBag::AddWarning(std::string message, SourceLocation location) {
  Diagnostic d;
  d.severity = DiagnosticSeverity::kWarning;
  d.code = StatusCode::kOk;
  d.message = std::move(message);
  d.location = location;
  diagnostics_.push_back(std::move(d));
}

bool DiagnosticBag::has_errors() const { return error_count() > 0; }

size_t DiagnosticBag::error_count() const {
  size_t n = 0;
  for (const auto& d : diagnostics_) {
    if (d.severity == DiagnosticSeverity::kError) ++n;
  }
  return n;
}

Status DiagnosticBag::FirstError() const {
  for (const auto& d : diagnostics_) {
    if (d.severity == DiagnosticSeverity::kError) {
      std::string msg = d.message;
      if (d.location.valid()) msg += " (at " + d.location.ToString() + ")";
      return Status(d.code, std::move(msg));
    }
  }
  return Status::OK();
}

std::string DiagnosticBag::ToString() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) os << d.ToString() << "\n";
  return os.str();
}

}  // namespace aldsp
