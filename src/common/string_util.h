#ifndef ALDSP_COMMON_STRING_UTIL_H_
#define ALDSP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace aldsp {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Collapses runs of whitespace to single spaces and trims — used by tests
/// to compare generated SQL against the paper's formatting-insensitive text.
std::string NormalizeWhitespace(std::string_view s);

/// Escapes XML special characters (& < > " ') for text/attribute content.
std::string XmlEscape(std::string_view s);

}  // namespace aldsp

#endif  // ALDSP_COMMON_STRING_UTIL_H_
