#include "common/status.h"

namespace aldsp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kOptimizeError:
      return "OptimizeError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kSourceError:
      return "SourceError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kSecurityError:
      return "SecurityError";
    case StatusCode::kUpdateError:
      return "UpdateError";
    case StatusCode::kConcurrencyError:
      return "ConcurrencyError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace aldsp
