#ifndef ALDSP_COMMON_RESULT_H_
#define ALDSP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace aldsp {

/// Result<T> holds either a value of type T or a non-OK Status.
/// Modeled on arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites terse: `return value;` or `return Status::TypeError(...)`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates an expression returning Result<T>; assigns the value to `lhs`
/// on success, otherwise returns the Status from the enclosing function.
#define ALDSP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define ALDSP_CONCAT_INNER(a, b) a##b
#define ALDSP_CONCAT(a, b) ALDSP_CONCAT_INNER(a, b)

#define ALDSP_ASSIGN_OR_RETURN(lhs, expr) \
  ALDSP_ASSIGN_OR_RETURN_IMPL(ALDSP_CONCAT(_aldsp_res_, __LINE__), lhs, expr)

}  // namespace aldsp

#endif  // ALDSP_COMMON_RESULT_H_
