#ifndef ALDSP_OPTIMIZER_OPTIMIZER_H_
#define ALDSP_OPTIMIZER_OPTIMIZER_H_

#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/result.h"
#include "compiler/function_table.h"
#include "runtime/observed_cost.h"
#include "xquery/ast.h"
#include "xsd/types.h"

namespace aldsp::optimizer {

/// Optimizer tuning knobs. Every rewrite can be disabled individually so
/// the ablation benchmarks can isolate its contribution.
struct OptimizerOptions {
  bool inline_views = true;            // view unfolding (paper §4.2)
  bool flatten_flwor = true;           // unnesting after inlining
  bool simplify_construction = true;   // source-access elimination (§4.2)
  bool substitute_lets = true;
  bool remove_unused_lets = true;
  bool introduce_joins = true;         // §4.3: joins for 'for' clauses
  /// Expands FK navigation functions into correlated FLWORs. Off by
  /// default: without SQL pushdown the expansion trades one keyed
  /// navigation query per row for one full scan per row. The pushdown
  /// phase recognizes navigation calls itself (and converts them to
  /// pattern-(c) LEFT OUTER JOINs), rolling back automatically when the
  /// region cannot push.
  bool expand_navigation = false;
  bool convert_ppk = true;             // §4.2: PP-k for relational right sides
  bool rewrite_inverses = true;        // §4.5
  bool fold_constants = true;
  bool detect_clustering = true;       // §4.2: streaming group-by
  /// Method used for cross-source joins against relational right sides.
  xquery::JoinMethod cross_source_method =
      xquery::JoinMethod::kPPkIndexNestedLoop;
  int ppk_k = 20;  // the paper's empirically chosen default block size
  int max_inline_depth = 8;
  int max_passes = 12;
  /// Set by declarative hints: forces every introduced join clause to the
  /// given method (kAuto = no forcing).
  xquery::JoinMethod forced_join_method = xquery::JoinMethod::kAuto;
  /// Set by hints: join_method / ppk_k were explicitly requested, so
  /// observed-cost advice must not override them.
  bool join_hinted = false;
  bool ppk_k_hinted = false;
  /// When set, cross-source join decisions consult runtime observations
  /// (the paper's §9 observed-cost roadmap): a full-fetch index join is
  /// chosen over PP-k when the observed outer cardinality approaches the
  /// observed inner table size, and the PP-k block size adapts to the
  /// outer cardinality.
  const runtime::ObservedCostModel* observed = nullptr;
};

/// Cache of partially optimized view plans (paper §4.2): the
/// query-independent part of view optimization runs once per function and
/// is reused by every query that unfolds the view. LRU-bounded.
class ViewPlanCache {
 public:
  explicit ViewPlanCache(size_t max_entries = 256)
      : max_entries_(max_entries) {}

  /// Returns a private clone of the cached plan, or null on miss.
  xquery::ExprPtr Get(const std::string& function);
  void Put(const std::string& function, xquery::ExprPtr body);
  void Clear();
  size_t size() const { return entries_.size(); }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  size_t max_entries_;
  std::map<std::string, xquery::ExprPtr> entries_;
  std::list<std::string> lru_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// The rule-based ALDSP query optimizer (paper §4.2–§4.3, §4.5). Rewrites
/// an analyzed expression tree in place: unfolds views, eliminates
/// construction that is immediately navigated away (so unused source
/// accesses disappear), splits and re-places predicates, introduces join
/// clauses for 'for' clauses, converts relational-right cross-source
/// joins to PP-k, applies inverse-function transformations, and marks
/// group-by clauses whose input arrives pre-clustered.
class Optimizer {
 public:
  Optimizer(const compiler::FunctionTable* functions,
            const xsd::SchemaRegistry* schemas,
            ViewPlanCache* view_cache = nullptr, OptimizerOptions options = {});

  /// Optimizes a closed (no free variables) query expression.
  Status Optimize(xquery::ExprPtr& root);

  /// Runs the view sub-optimizer for one function and returns the
  /// partially optimized body (cached). Exposed for tests/benchmarks.
  Result<xquery::ExprPtr> OptimizedViewBody(const std::string& function);

  const OptimizerOptions& options() const { return options_; }

 private:
  class Impl;

  const compiler::FunctionTable* functions_;
  const xsd::SchemaRegistry* schemas_;
  ViewPlanCache* view_cache_;
  OptimizerOptions options_;
};

}  // namespace aldsp::optimizer

#endif  // ALDSP_OPTIMIZER_OPTIMIZER_H_
