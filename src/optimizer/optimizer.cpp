#include "optimizer/optimizer.h"

#include <algorithm>

#include "compiler/analyzer.h"
#include "compiler/builtins.h"
#include "optimizer/expr_utils.h"
#include "xml/node.h"

namespace aldsp::optimizer {

using compiler::Builtin;
using compiler::ExternalFunction;
using compiler::LookupBuiltin;
using compiler::UserFunction;
using xquery::Clause;
using xquery::CloneExpr;
using xquery::Expr;
using xquery::ExprKind;
using xquery::ExprPtr;
using xquery::JoinMethod;
using xsd::XType;

// ----- ViewPlanCache -------------------------------------------------------

xquery::ExprPtr ViewPlanCache::Get(const std::string& function) {
  auto it = entries_.find(function);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.remove(function);
  lru_.push_front(function);
  return CloneExpr(it->second);
}

void ViewPlanCache::Put(const std::string& function, xquery::ExprPtr body) {
  if (entries_.count(function) == 0) {
    while (entries_.size() >= max_entries_ && !lru_.empty()) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(function);
  }
  entries_[function] = std::move(body);
}

void ViewPlanCache::Clear() {
  entries_.clear();
  lru_.clear();
}

// ----- Optimizer -----------------------------------------------------------

class Optimizer::Impl {
 public:
  Impl(const compiler::FunctionTable* functions,
       const xsd::SchemaRegistry* schemas, ViewPlanCache* view_cache,
       OptimizerOptions options, std::set<std::string>* in_progress,
       int* rename_serial)
      : functions_(functions),
        schemas_(schemas),
        view_cache_(view_cache),
        options_(std::move(options)),
        in_progress_(in_progress),
        rename_serial_(rename_serial) {}

  // Applies a function's declarative hints (paper §9: hints that survive
  // through layers of views) to the options used when optimizing that
  // function's body.
  static void ApplyHints(const std::map<std::string, std::string>& hints,
                         OptimizerOptions* options) {
    auto it = hints.find("join_method");
    if (it != hints.end()) {
      const std::string& m = it->second;
      if (m == "nl") {
        options->convert_ppk = false;
        options->forced_join_method = JoinMethod::kNestedLoop;
        options->join_hinted = true;
      } else if (m == "inl") {
        options->convert_ppk = false;
        options->forced_join_method = JoinMethod::kIndexNestedLoop;
        options->join_hinted = true;
      } else if (m == "ppk-nl") {
        options->convert_ppk = true;
        options->cross_source_method = JoinMethod::kPPkNestedLoop;
        options->join_hinted = true;
      } else if (m == "ppk-inl") {
        options->convert_ppk = true;
        options->cross_source_method = JoinMethod::kPPkIndexNestedLoop;
        options->join_hinted = true;
      }
    }
    it = hints.find("ppk_k");
    if (it != hints.end()) {
      int k = std::atoi(it->second.c_str());
      if (k > 0) {
        options->ppk_k = k;
        options->ppk_k_hinted = true;
      }
    }
    if (hints.count("no_pushdown_joins") > 0) options->introduce_joins = false;
  }

  Status Optimize(ExprPtr& root,
                  const std::vector<compiler::VarBinding>& env) {
    for (int pass = 0; pass < options_.max_passes; ++pass) {
      bool changed = false;
      if (options_.inline_views) {
        ALDSP_ASSIGN_OR_RETURN(bool c, InlinePass(root, 0));
        changed |= c;
      }
      ALDSP_RETURN_NOT_OK(Reanalyze(root, env));
      ALDSP_ASSIGN_OR_RETURN(bool c2, RulesPass(root));
      changed |= c2;
      if (changed) {
        ALDSP_RETURN_NOT_OK(Reanalyze(root, env));
      } else {
        break;
      }
    }
    // Post-pass annotations, outside the fixpoint loop: they decorate
    // clauses for the physical planner (observed cardinalities, parallel
    // let groups) without rewriting the tree, so they must not feed
    // `changed` or they would pin the loop at max_passes.
    AnnotatePass(root);
    return Status::OK();
  }

  Result<ExprPtr> OptimizedViewBody(const std::string& function) {
    if (view_cache_ != nullptr) {
      ExprPtr cached = view_cache_->Get(function);
      if (cached != nullptr) return cached;
    }
    const UserFunction* fn = functions_->FindUser(function);
    if (fn == nullptr || fn->body == nullptr || !fn->valid) {
      return Status::NotFound("no optimizable view: " + function);
    }
    if (in_progress_->count(function) > 0) {
      // Recursive view: inline as-is without further optimization.
      return CloneExpr(fn->body);
    }
    in_progress_->insert(function);
    ExprPtr body = CloneExpr(fn->body);
    std::vector<compiler::VarBinding> env;
    for (const auto& p : fn->params) env.push_back({p.name, p.type});
    // The view's declarative hints adjust the options for *its* body
    // only; they are baked into the cached partial plan and therefore
    // survive into every query that unfolds the view.
    OptimizerOptions view_options = options_;
    ApplyHints(fn->hints, &view_options);
    Impl sub(functions_, schemas_, view_cache_, view_options, in_progress_,
             rename_serial_);
    Status st = sub.Optimize(body, env);
    in_progress_->erase(function);
    ALDSP_RETURN_NOT_OK(st);
    if (view_cache_ != nullptr) view_cache_->Put(function, CloneExpr(body));
    return body;
  }

 private:
  Status Reanalyze(ExprPtr& root, const std::vector<compiler::VarBinding>& env) {
    DiagnosticBag bag;
    compiler::Analyzer analyzer(functions_, schemas_, &bag);
    Status st = analyzer.Analyze(root, env);
    if (!st.ok()) {
      return Status::OptimizeError("post-rewrite analysis failed: " +
                                   st.message());
    }
    return Status::OK();
  }

  // ----- Planner annotations (post-pass) ---------------------------------

  void AnnotatePass(ExprPtr& e) {
    xquery::ForEachChildSlot(*e, [&](ExprPtr& c) {
      if (c) AnnotatePass(c);
    });
    if (e->kind != ExprKind::kFLWOR) return;
    AnnotateCardinalities(*e);
    MarkParallelLets(*e);
  }

  // Stamps for/join clauses whose binding scans a full relational table
  // with the observed row count (§5.4: statistics from earlier runs feed
  // later compilations), so the physical planner knows where an exchange
  // pays for itself.
  void AnnotateCardinalities(Expr& flwor) {
    if (options_.observed == nullptr) return;
    for (auto& cl : flwor.clauses) {
      if (cl.kind != Clause::Kind::kFor && cl.kind != Clause::Kind::kJoin) {
        continue;
      }
      if (cl.expr == nullptr) continue;
      const Expr* binding = cl.expr.get();
      while (binding->kind == ExprKind::kFilter) {
        binding = binding->children[0].get();
      }
      if (binding->kind != ExprKind::kFunctionCall) continue;
      const ExternalFunction* fn = functions_->FindExternal(binding->fn_name);
      if (fn == nullptr || !fn->is_relational()) continue;
      cl.estimated_rows = options_.observed->ObservedRows(
          fn->Property("source"), fn->Property("table"));
    }
  }

  // True if `e` contains a call to any external (source-backed) function —
  // the only lets worth fanning out, since everything else is CPU-cheap.
  bool CallsExternal(Expr& e) const {
    if (e.kind == ExprKind::kFunctionCall &&
        functions_->FindExternal(e.fn_name) != nullptr) {
      return true;
    }
    bool found = false;
    xquery::ForEachChildSlot(e, [&](ExprPtr& c) {
      if (c && !found) found = CallsExternal(*c);
    });
    return found;
  }

  // Marks runs of consecutive lets that each call out to a source and do
  // not reference each other's variables: their source round trips can
  // overlap, so the planner fans them out to the worker pool as a group.
  void MarkParallelLets(Expr& flwor) {
    size_t i = 0;
    while (i < flwor.clauses.size()) {
      if (flwor.clauses[i].kind != Clause::Kind::kLet ||
          flwor.clauses[i].expr == nullptr ||
          !CallsExternal(*flwor.clauses[i].expr)) {
        ++i;
        continue;
      }
      // Extend the run while the next let stays independent of every
      // variable bound earlier in the run.
      size_t j = i + 1;
      std::set<std::string> bound = {flwor.clauses[i].var};
      while (j < flwor.clauses.size()) {
        const Clause& cand = flwor.clauses[j];
        if (cand.kind != Clause::Kind::kLet || cand.expr == nullptr ||
            !CallsExternal(*cand.expr)) {
          break;
        }
        bool independent = true;
        for (const std::string& v : bound) {
          if (IsFreeVar(*cand.expr, v)) {
            independent = false;
            break;
          }
        }
        if (!independent) break;
        bound.insert(cand.var);
        ++j;
      }
      if (j - i >= 2) {
        int group = (*rename_serial_)++;
        for (size_t k = i; k < j; ++k) {
          flwor.clauses[k].parallel_group = group;
        }
      }
      i = j;
    }
  }

  // ----- View unfolding (function inlining), paper §4.2 -----------------

  Result<bool> InlinePass(ExprPtr& e, int depth) {
    if (depth > options_.max_inline_depth) return false;
    bool changed = false;
    Status status = Status::OK();
    xquery::ForEachChildSlot(*e, [&](ExprPtr& c) {
      if (!c || !status.ok()) return;
      Result<bool> r = InlinePass(c, depth);
      if (!r.ok()) {
        status = r.status();
        return;
      }
      changed |= r.value();
    });
    ALDSP_RETURN_NOT_OK(status);
    if (e->kind != ExprKind::kFunctionCall) return changed;
    const UserFunction* fn = functions_->FindUser(e->fn_name);
    if (fn == nullptr || fn->body == nullptr || !fn->valid) return changed;
    if (in_progress_->count(e->fn_name) > 0) return changed;  // recursion
    ALDSP_ASSIGN_OR_RETURN(ExprPtr body, OptimizedViewBody(e->fn_name));
    RenameBoundVars(body, rename_serial_);
    // Bind parameters: trivial arguments substitute directly, others
    // become let clauses so they are evaluated once.
    std::vector<Clause> lets;
    for (size_t i = 0; i < fn->params.size(); ++i) {
      const ExprPtr& arg = e->children[i];
      if (arg->kind == ExprKind::kVarRef || arg->kind == ExprKind::kLiteral ||
          arg->kind == ExprKind::kEmptySequence) {
        SubstituteVar(body, fn->params[i].name, arg);
      } else {
        std::string fresh =
            fn->params[i].name + "#" + std::to_string((*rename_serial_)++);
        SubstituteVar(body, fn->params[i].name, xquery::MakeVarRef(fresh));
        Clause let;
        let.kind = Clause::Kind::kLet;
        let.var = fresh;
        let.expr = arg;
        lets.push_back(std::move(let));
      }
    }
    if (lets.empty()) {
      e = body;
    } else if (body->kind == ExprKind::kFLWOR) {
      body->clauses.insert(body->clauses.begin(), lets.begin(), lets.end());
      e = body;
    } else {
      e = xquery::MakeFLWOR(std::move(lets), body, e->loc);
    }
    return true;
  }

  // ----- Local rewrite rules (one bottom-up pass) ------------------------

  Result<bool> RulesPass(ExprPtr& e) {
    bool changed = false;
    Status status = Status::OK();
    xquery::ForEachChildSlot(*e, [&](ExprPtr& c) {
      if (!c || !status.ok()) return;
      Result<bool> r = RulesPass(c);
      if (!r.ok()) {
        status = r.status();
        return;
      }
      changed |= r.value();
    });
    ALDSP_RETURN_NOT_OK(status);

    if (options_.fold_constants) changed |= RuleFoldConstants(e);
    if (options_.expand_navigation) changed |= RuleExpandNavigation(e);
    if (options_.simplify_construction) {
      changed |= RuleFlattenSequences(e);
      changed |= RulePushStepIntoFLWOR(e);
      changed |= RuleCtorNavigation(e);
      changed |= RuleDataOnCtor(e);
    }
    if (options_.rewrite_inverses) {
      changed |= RuleCancelInverse(e);
      changed |= RuleInverseComparison(e);
    }
    if (e->kind == ExprKind::kFilter) changed |= RuleFilterToWhere(e);
    if (e->kind == ExprKind::kFLWOR) {
      if (options_.flatten_flwor) changed |= RuleFlattenForBinding(e);
      changed |= RuleSplitWhere(e);
      changed |= RulePlaceWhere(e);
      if (options_.introduce_joins) changed |= RuleIntroduceJoins(e);
      if (options_.convert_ppk) changed |= RuleConvertPPk(e);
      if (options_.forced_join_method != JoinMethod::kAuto) {
        changed |= RuleForceJoinMethod(e);
      }
      if (options_.substitute_lets) {
        changed |= RuleSubstituteTrivialLets(e);
        changed |= RuleSubstituteCtorLets(e);
      }
      if (options_.remove_unused_lets) changed |= RuleRemoveUnusedLets(e);
      if (options_.detect_clustering) changed |= RuleDetectClustering(e);
      changed |= RuleEmptyFLWOR(e);
    }
    return changed;
  }

  // Expands a foreign-key navigation function call into its defining
  // correlated FLWOR:
  //   ns3:getORDER($c)  ==>  for $o in ns3:ORDER()
  //                          where $o/CID eq fn:data($c/CID) return $o
  // which exposes the access to pattern-(c) SQL pushdown (one LEFT OUTER
  // JOIN instead of one navigation query per outer row).
  bool RuleExpandNavigation(ExprPtr& e) {
    if (e->kind != ExprKind::kFunctionCall || e->children.size() != 1) {
      return false;
    }
    const ExternalFunction* nav = functions_->FindExternal(e->fn_name);
    if (nav == nullptr || nav->kind() != "relational-nav") return false;
    // The argument must be cheap to duplicate into the correlation
    // predicate (a variable, or a typematch/data wrapper around one).
    const ExprPtr* arg = &e->children[0];
    while ((*arg)->kind == ExprKind::kTypematch) arg = &(*arg)->children[0];
    if ((*arg)->kind != ExprKind::kVarRef) return false;
    // The table function of the navigated table.
    const ExternalFunction* table_fn = nullptr;
    for (const auto& cand : functions_->external_functions()) {
      if (cand.kind() == "relational" &&
          cand.Property("source") == nav->Property("source") &&
          cand.Property("table") == nav->Property("table")) {
        table_fn = &cand;
      }
    }
    if (table_fn == nullptr) return false;
    std::string var = "nav#" + std::to_string((*rename_serial_)++);
    Clause for_clause;
    for_clause.kind = Clause::Kind::kFor;
    for_clause.var = var;
    for_clause.expr = xquery::MakeFunctionCall(table_fn->name, {}, e->loc);
    Clause where;
    where.kind = Clause::Kind::kWhere;
    where.expr = xquery::MakeComparison(
        "eq", false,
        xquery::MakePathStep(xquery::MakeVarRef(var), nav->Property("column"),
                             false, e->loc),
        xquery::MakeFunctionCall(
            "fn:data",
            {xquery::MakePathStep(CloneExpr(*arg), nav->Property("arg_child"),
                                  false, e->loc)},
            e->loc),
        e->loc);
    e = xquery::MakeFLWOR({std::move(for_clause), std::move(where)},
                          xquery::MakeVarRef(var, e->loc), e->loc);
    return true;
  }

  // Nested sequences splice into their parent (also inside constructors).
  bool RuleFlattenSequences(ExprPtr& e) {
    if (e->kind != ExprKind::kSequence && e->kind != ExprKind::kElementCtor) {
      return false;
    }
    bool has_nested = false;
    for (const auto& c : e->children) {
      if (c->kind == ExprKind::kSequence ||
          (c->kind == ExprKind::kEmptySequence &&
           e->kind == ExprKind::kSequence)) {
        has_nested = true;
      }
    }
    if (!has_nested) return false;
    std::vector<ExprPtr> flat;
    for (auto& c : e->children) {
      if (c->kind == ExprKind::kSequence) {
        for (auto& g : c->children) flat.push_back(g);
      } else if (c->kind == ExprKind::kEmptySequence &&
                 e->kind == ExprKind::kSequence) {
        // drop
      } else {
        flat.push_back(c);
      }
    }
    if (e->kind == ExprKind::kSequence) {
      e = xquery::MakeSequence(std::move(flat), e->loc);
    } else {
      e->children = std::move(flat);
    }
    return true;
  }

  // (FLWOR return R)/N  ->  FLWOR return (R/N): child steps map over each
  // item, so they distribute through the return expression; this exposes
  // constructor-navigation cancellation inside unfolded views. Steps also
  // distribute through sequences and the branches of an if.
  bool RulePushStepIntoFLWOR(ExprPtr& e) {
    if (e->kind != ExprKind::kPathStep) return false;
    ExprPtr input = e->children[0];
    if (input->kind == ExprKind::kFLWOR) {
      ExprPtr ret = input->children[0];
      input->children[0] =
          xquery::MakePathStep(ret, e->step_name, e->is_attribute_step, e->loc);
      e = input;
      return true;
    }
    if (input->kind == ExprKind::kSequence) {
      std::vector<ExprPtr> parts;
      for (auto& c : input->children) {
        parts.push_back(xquery::MakePathStep(c, e->step_name,
                                             e->is_attribute_step, e->loc));
      }
      e = xquery::MakeSequence(std::move(parts), e->loc);
      return true;
    }
    return false;
  }

  // element-constructor navigation cancellation: <E>{a, b, ...}</E>/N
  // keeps only the parts that construct N (paper §4.2's source access
  // elimination: the dropped parts — and their source calls — vanish).
  bool RuleCtorNavigation(ExprPtr& e) {
    if (e->kind != ExprKind::kPathStep) return false;
    ExprPtr input = e->children[0];
    if (input->kind != ExprKind::kElementCtor || input->conditional) {
      return false;
    }
    std::vector<ExprPtr> kept;
    for (const auto& c : input->children) {
      if (e->is_attribute_step) {
        if (c->kind == ExprKind::kAttributeCtor &&
            xml::NameMatches(c->ctor_name, e->step_name)) {
          // attribute constructor value becomes an attribute node; keep
          // the constructor itself.
          kept.push_back(c);
        }
        continue;
      }
      if (c->kind == ExprKind::kAttributeCtor) continue;
      if (c->kind == ExprKind::kElementCtor) {
        if (xml::NameMatches(c->ctor_name, e->step_name)) kept.push_back(c);
        continue;
      }
      // Typed content: keep element-typed parts matching the step, drop
      // atomic parts; bail out if the content type is opaque.
      const xsd::SequenceType& t = c->static_type;
      if (t.is_empty_sequence()) continue;
      if (t.item == nullptr) return false;
      if (t.item->kind() == XType::Kind::kAtomic) continue;
      if (t.item->kind() == XType::Kind::kElement &&
          !t.item->has_any_content()) {
        if (xml::NameMatches(t.item->name(), e->step_name)) kept.push_back(c);
        continue;
      }
      return false;  // opaque content: cannot decide statically
    }
    e = xquery::MakeSequence(std::move(kept), e->loc);
    return true;
  }

  // fn:data(<E>{x}</E>) -> x when x is atomic-typed single content.
  bool RuleDataOnCtor(ExprPtr& e) {
    if (e->kind != ExprKind::kFunctionCall ||
        LookupBuiltin(e->fn_name) != Builtin::kData || e->children.size() != 1) {
      return false;
    }
    const ExprPtr& arg = e->children[0];
    if (arg->kind != ExprKind::kElementCtor || arg->conditional) return false;
    std::vector<ExprPtr> content;
    for (const auto& c : arg->children) {
      if (c->kind != ExprKind::kAttributeCtor) content.push_back(c);
    }
    if (content.size() != 1) return false;
    const xsd::SequenceType& t = content[0]->static_type;
    if (t.item == nullptr || t.item->kind() != XType::Kind::kAtomic ||
        t.allows_many()) {
      return false;
    }
    e = content[0];
    return true;
  }

  // g(f(x)) -> x and f(g(x)) -> x for registered inverse pairs (§4.5).
  bool RuleCancelInverse(ExprPtr& e) {
    if (e->kind != ExprKind::kFunctionCall || e->children.size() != 1) {
      return false;
    }
    const ExprPtr& inner = e->children[0];
    if (inner->kind != ExprKind::kFunctionCall || inner->children.size() != 1) {
      return false;
    }
    const std::string& outer_name = e->fn_name;
    const std::string& inner_name = inner->fn_name;
    if (functions_->InverseOf(outer_name) == inner_name ||
        functions_->InverseOf(inner_name) == outer_name) {
      e = inner->children[0];
      return true;
    }
    return false;
  }

  // f(x) op y  ->  x op g(y) when g is f's registered inverse (§4.5);
  // unlocks SQL pushdown of predicates over transformed values.
  bool RuleInverseComparison(ExprPtr& e) {
    if (e->kind != ExprKind::kComparison) return false;
    static const char* kOps[] = {"eq", "ne", "lt", "le", "gt", "ge",
                                 "=",  "!=", "<",  "<=", ">",  ">="};
    bool op_ok = false;
    for (const char* op : kOps) {
      if (e->op == op) {
        op_ok = true;
        break;
      }
    }
    if (!op_ok) return false;
    // f(x) op f(y) -> x op y when f has an inverse (f is then injective
    // and, for the order operators, monotone by the same contract that
    // justifies the paper's single-sided rewrite).
    {
      ExprPtr& l = e->children[0];
      ExprPtr& r = e->children[1];
      if (l->kind == ExprKind::kFunctionCall &&
          r->kind == ExprKind::kFunctionCall && l->fn_name == r->fn_name &&
          l->children.size() == 1 && r->children.size() == 1 &&
          !functions_->InverseOf(l->fn_name).empty()) {
        l = l->children[0];
        r = r->children[0];
        return true;
      }
    }
    for (int side = 0; side < 2; ++side) {
      ExprPtr& call = e->children[side];
      ExprPtr& other = e->children[1 - side];
      if (call->kind != ExprKind::kFunctionCall || call->children.size() != 1) {
        continue;
      }
      std::string inverse = functions_->InverseOf(call->fn_name);
      if (inverse.empty()) continue;
      // Avoid ping-ponging: only rewrite when the other side is not
      // itself a call to the same transformation.
      if (other->kind == ExprKind::kFunctionCall &&
          other->fn_name == call->fn_name) {
        continue;
      }
      ExprPtr arg = call->children[0];
      other = xquery::MakeFunctionCall(inverse, {other}, e->loc);
      call = arg;
      return true;
    }
    return false;
  }

  bool RuleFoldConstants(ExprPtr& e) {
    auto lit = [](const ExprPtr& c) {
      return c->kind == ExprKind::kLiteral;
    };
    if (e->kind == ExprKind::kIf && lit(e->children[0]) &&
        e->children[0]->literal.type() == xml::AtomicType::kBoolean) {
      e = e->children[0]->literal.AsBoolean() ? e->children[1] : e->children[2];
      return true;
    }
    if (e->kind == ExprKind::kArith && lit(e->children[0]) &&
        lit(e->children[1])) {
      const auto& a = e->children[0]->literal;
      const auto& b = e->children[1]->literal;
      if (a.type() == xml::AtomicType::kInteger &&
          b.type() == xml::AtomicType::kInteger) {
        int64_t x = a.AsInteger();
        int64_t y = b.AsInteger();
        int64_t v;
        if (e->op == "+") {
          v = x + y;
        } else if (e->op == "-") {
          v = x - y;
        } else if (e->op == "*") {
          v = x * y;
        } else if (e->op == "idiv" && y != 0) {
          v = x / y;
        } else if (e->op == "mod" && y != 0) {
          v = x % y;
        } else {
          return false;
        }
        e = xquery::MakeLiteral(xml::AtomicValue::Integer(v), e->loc);
        return true;
      }
      return false;
    }
    if (e->kind == ExprKind::kComparison && lit(e->children[0]) &&
        lit(e->children[1])) {
      auto cmp = e->children[0]->literal.Compare(e->children[1]->literal);
      if (!cmp.ok()) return false;
      int c = cmp.value();
      bool v;
      if (e->op == "eq" || e->op == "=") {
        v = c == 0;
      } else if (e->op == "ne" || e->op == "!=") {
        v = c != 0;
      } else if (e->op == "lt" || e->op == "<") {
        v = c < 0;
      } else if (e->op == "le" || e->op == "<=") {
        v = c <= 0;
      } else if (e->op == "gt" || e->op == ">") {
        v = c > 0;
      } else if (e->op == "ge" || e->op == ">=") {
        v = c >= 0;
      } else {
        return false;
      }
      e = xquery::MakeLiteral(xml::AtomicValue::Boolean(v), e->loc);
      return true;
    }
    if (e->kind == ExprKind::kLogical && lit(e->children[0]) &&
        e->children[0]->literal.type() == xml::AtomicType::kBoolean) {
      bool l = e->children[0]->literal.AsBoolean();
      if (e->op == "and") {
        if (!l) {
          e = xquery::MakeLiteral(xml::AtomicValue::Boolean(false), e->loc);
        } else {
          e = e->children[1];
        }
        return true;
      }
      if (e->op == "or") {
        if (l) {
          e = xquery::MakeLiteral(xml::AtomicValue::Boolean(true), e->loc);
        } else {
          e = e->children[1];
        }
        return true;
      }
    }
    return false;
  }

  // Filter(FLWOR, boolean-pred) -> FLWOR with the predicate as a where
  // clause over the (let-bound) return value. Opens predicate pushdown
  // through unfolded views (the tns:getProfile()[CID eq $id] pattern).
  bool RuleFilterToWhere(ExprPtr& e) {
    ExprPtr input = e->children[0];
    if (input->kind != ExprKind::kFLWOR) return false;
    const ExprPtr& pred = e->children[1];
    // Positional (numeric) predicates select by position; only boolean
    // predicates commute with the FLWOR body.
    xml::AtomicType pt = xsd::AtomizedType(pred->static_type);
    if (pt != xml::AtomicType::kBoolean) return false;
    // Order-by makes the transformation still safe (stable filtering),
    // but a group-by changes what "." denotes only after the return expr;
    // binding the return expr below handles both.
    ExprPtr ret = input->children[0];
    ExprPtr item_var;
    if (ret->kind == ExprKind::kVarRef) {
      item_var = ret;
    } else {
      std::string fresh = "item#" + std::to_string((*rename_serial_)++);
      Clause let;
      let.kind = Clause::Kind::kLet;
      let.var = fresh;
      let.expr = ret;
      input->clauses.push_back(std::move(let));
      item_var = xquery::MakeVarRef(fresh);
      input->children[0] = CloneExpr(item_var);
    }
    ExprPtr where_pred = CloneExpr(pred);
    SubstituteVar(where_pred, ".", item_var);
    Clause where;
    where.kind = Clause::Kind::kWhere;
    where.expr = std::move(where_pred);
    input->clauses.push_back(std::move(where));
    e = input;
    return true;
  }

  // for $x in (FLWOR-without-order-by) ... -> splice the inner clauses.
  bool RuleFlattenForBinding(ExprPtr& e) {
    for (size_t i = 0; i < e->clauses.size(); ++i) {
      Clause& cl = e->clauses[i];
      if (cl.kind != Clause::Kind::kFor || !cl.positional_var.empty()) continue;
      if (!cl.expr || cl.expr->kind != ExprKind::kFLWOR) continue;
      bool has_order = false;
      for (const auto& inner : cl.expr->clauses) {
        if (inner.kind == Clause::Kind::kOrderBy) has_order = true;
      }
      if (has_order) continue;
      ExprPtr inner_flwor = cl.expr;
      Clause new_for;
      new_for.kind = Clause::Kind::kFor;
      new_for.var = cl.var;
      new_for.expr = inner_flwor->children[0];
      std::vector<Clause> merged;
      merged.insert(merged.end(), e->clauses.begin(),
                    e->clauses.begin() + static_cast<ptrdiff_t>(i));
      merged.insert(merged.end(), inner_flwor->clauses.begin(),
                    inner_flwor->clauses.end());
      merged.push_back(std::move(new_for));
      merged.insert(merged.end(),
                    e->clauses.begin() + static_cast<ptrdiff_t>(i) + 1,
                    e->clauses.end());
      e->clauses = std::move(merged);
      return true;
    }
    return false;
  }

  bool RuleSplitWhere(ExprPtr& e) {
    for (size_t i = 0; i < e->clauses.size(); ++i) {
      Clause& cl = e->clauses[i];
      if (cl.kind != Clause::Kind::kWhere) continue;
      if (cl.expr->kind == ExprKind::kLogical && cl.expr->op == "and") {
        Clause second;
        second.kind = Clause::Kind::kWhere;
        second.expr = cl.expr->children[1];
        cl.expr = cl.expr->children[0];
        e->clauses.insert(e->clauses.begin() + static_cast<ptrdiff_t>(i) + 1,
                          std::move(second));
        return true;
      }
    }
    return false;
  }

  // Names bound by clauses [0, upto).
  static std::set<std::string> BoundBefore(const Expr& flwor, size_t upto) {
    std::set<std::string> bound;
    for (size_t i = 0; i < upto && i < flwor.clauses.size(); ++i) {
      const Clause& cl = flwor.clauses[i];
      switch (cl.kind) {
        case Clause::Kind::kFor:
        case Clause::Kind::kJoin:
        case Clause::Kind::kLet:
          bound.insert(cl.var);
          if (!cl.positional_var.empty()) bound.insert(cl.positional_var);
          break;
        case Clause::Kind::kGroupBy:
          for (const auto& gv : cl.group_vars) bound.insert(gv.out_var);
          for (const auto& gk : cl.group_keys) {
            if (!gk.as_var.empty()) bound.insert(gk.as_var);
          }
          break;
        default:
          break;
      }
    }
    return bound;
  }

  // Moves where clauses to the earliest position where their variables
  // are bound (paper §4.3: clauses locally reordered).
  bool RulePlaceWhere(ExprPtr& e) {
    for (size_t i = 0; i < e->clauses.size(); ++i) {
      if (e->clauses[i].kind != Clause::Kind::kWhere) continue;
      std::set<std::string> needed = FreeVars(*e->clauses[i].expr);
      // Find earliest insertion point: after the last binder of a needed
      // variable, but never across a group-by (scope change).
      size_t earliest = 0;
      for (size_t j = 0; j < i; ++j) {
        const Clause& cl = e->clauses[j];
        bool binds_needed = false;
        switch (cl.kind) {
          case Clause::Kind::kFor:
          case Clause::Kind::kJoin:
          case Clause::Kind::kLet:
            binds_needed = needed.count(cl.var) > 0 ||
                           (!cl.positional_var.empty() &&
                            needed.count(cl.positional_var) > 0);
            break;
          case Clause::Kind::kGroupBy:
            binds_needed = true;  // do not hoist across a group-by
            break;
          case Clause::Kind::kOrderBy:
            binds_needed = true;  // keep filters after an explicit sort
            break;
          default:
            break;
        }
        if (binds_needed) earliest = j + 1;
      }
      if (earliest < i) {
        Clause moved = std::move(e->clauses[i]);
        e->clauses.erase(e->clauses.begin() + static_cast<ptrdiff_t>(i));
        e->clauses.insert(e->clauses.begin() + static_cast<ptrdiff_t>(earliest),
                          std::move(moved));
        return true;
      }
    }
    return false;
  }

  // Rewrites uncorrelated 'for' clauses with equi predicates into join
  // clauses (paper §4.3: "join expressions are introduced for each 'for'
  // clause ... where conditions pushed into joins").
  bool RuleIntroduceJoins(ExprPtr& e) {
    for (size_t i = 1; i < e->clauses.size(); ++i) {
      Clause& cl = e->clauses[i];
      if (cl.kind != Clause::Kind::kFor || !cl.positional_var.empty()) continue;
      std::set<std::string> before = BoundBefore(*e, i);
      // Uncorrelated: the binding expr references no FLWOR variables.
      bool correlated = false;
      for (const auto& v : FreeVars(*cl.expr)) {
        if (before.count(v) > 0) correlated = true;
      }
      if (correlated) continue;
      // There must be at least one earlier 'for' to join with.
      bool has_prior_for = false;
      for (size_t j = 0; j < i; ++j) {
        if (e->clauses[j].kind == Clause::Kind::kFor ||
            e->clauses[j].kind == Clause::Kind::kJoin) {
          has_prior_for = true;
        }
      }
      if (!has_prior_for) continue;
      // Collect usable equi conjuncts from subsequent where clauses (up
      // to the next group/order clause).
      std::vector<std::pair<ExprPtr, ExprPtr>> equi;
      std::vector<size_t> used_where;
      for (size_t j = i + 1; j < e->clauses.size(); ++j) {
        const Clause& wj = e->clauses[j];
        if (wj.kind == Clause::Kind::kGroupBy ||
            wj.kind == Clause::Kind::kOrderBy) {
          break;
        }
        if (wj.kind != Clause::Kind::kWhere) continue;
        const ExprPtr& pred = wj.expr;
        if (pred->kind != ExprKind::kComparison ||
            (pred->op != "eq" && pred->op != "=")) {
          continue;
        }
        auto side_vars = [&](const ExprPtr& s) { return FreeVars(*s); };
        std::set<std::string> lv = side_vars(pred->children[0]);
        std::set<std::string> rv = side_vars(pred->children[1]);
        auto only_right = [&](const std::set<std::string>& vars) {
          return vars.size() == 1 && vars.count(cl.var) == 1;
        };
        auto only_before = [&](const std::set<std::string>& vars) {
          for (const auto& v : vars) {
            if (before.count(v) == 0) return false;
          }
          return !vars.empty();
        };
        if (only_before(lv) && only_right(rv)) {
          equi.emplace_back(pred->children[0], pred->children[1]);
          used_where.push_back(j);
        } else if (only_before(rv) && only_right(lv)) {
          equi.emplace_back(pred->children[1], pred->children[0]);
          used_where.push_back(j);
        }
      }
      if (equi.empty()) continue;
      cl.kind = Clause::Kind::kJoin;
      cl.equi_keys = std::move(equi);
      cl.method = JoinMethod::kAuto;
      for (auto it = used_where.rbegin(); it != used_where.rend(); ++it) {
        e->clauses.erase(e->clauses.begin() + static_cast<ptrdiff_t>(*it));
      }
      return true;
    }
    return false;
  }

  // Unwraps fn:data around a path step.
  static const Expr* UnwrapData(const Expr& e) {
    if (e.kind == ExprKind::kFunctionCall &&
        LookupBuiltin(e.fn_name) == Builtin::kData && e.children.size() == 1) {
      return e.children[0].get();
    }
    return &e;
  }

  // Converts a join whose right side scans a relational table into a
  // PP-k join with a parameterized disjunctive fetch (paper §4.2).
  bool RuleConvertPPk(ExprPtr& e) {
    for (auto& cl : e->clauses) {
      if (cl.kind != Clause::Kind::kJoin) continue;
      if (cl.method != JoinMethod::kAuto) continue;  // already decided
      if (cl.equi_keys.size() != 1 || cl.ppk_fetch != nullptr) continue;
      if (cl.expr->kind != ExprKind::kFunctionCall) continue;
      const ExternalFunction* fn = functions_->FindExternal(cl.expr->fn_name);
      if (fn == nullptr || !fn->is_relational() || !cl.expr->children.empty()) {
        continue;
      }
      // Right key must be a column path on the join variable.
      const Expr* rkey = UnwrapData(*cl.equi_keys[0].second);
      if (rkey->kind != ExprKind::kPathStep || rkey->is_attribute_step ||
          rkey->children[0]->kind != ExprKind::kVarRef ||
          rkey->children[0]->var_name != cl.var) {
        continue;
      }
      // Column metadata from the function's structural row type.
      if (fn->return_type.item == nullptr ||
          fn->return_type.item->kind() != XType::Kind::kElement) {
        continue;
      }
      const XType& row_type = *fn->return_type.item;
      auto spec = std::make_shared<xquery::PPkFetchSpec>();
      spec->source = fn->Property("source");
      spec->in_alias = "t1";
      spec->in_column = rkey->step_name;
      spec->row_name = row_type.name();
      auto select = std::make_shared<relational::SelectStmt>();
      select->from = {fn->Property("table"), nullptr, "t1"};
      for (const auto& field : row_type.fields()) {
        select->items.push_back(
            {relational::SqlExpr::Column("t1", field.name), field.name});
        spec->columns.push_back({field.name, xsd::AtomizedType(field.type)});
      }
      if (row_type.FindField(spec->in_column) == nullptr) continue;
      // Observed-cost advice (§9 roadmap): against a small observed
      // inner table, a one-shot full fetch with an index join beats
      // parameterized blocks; otherwise adapt the block size to the
      // observed outer cardinality. Explicit hints override advice.
      if (options_.observed != nullptr && !options_.join_hinted) {
        int64_t outer_rows = ObservedOuterRows(*e);
        if (!options_.observed->AdvisePPk(spec->source, fn->Property("table"),
                                          outer_rows, /*default_ppk=*/true)) {
          cl.method = JoinMethod::kIndexNestedLoop;
          return true;
        }
        std::string fetch_source = spec->source;
        spec->select_template = std::move(select);
        cl.ppk_fetch = std::move(spec);
        cl.method = options_.cross_source_method;
        // Source-aware sizing: observed round-trip vs per-row transfer
        // time can push k above the pure-cardinality heuristic.
        cl.ppk_block_size =
            options_.ppk_k_hinted
                ? options_.ppk_k
                : options_.observed->AdvisePPkBlockSize(fetch_source,
                                                        outer_rows);
        return true;
      }
      spec->select_template = std::move(select);
      cl.ppk_fetch = std::move(spec);
      cl.method = options_.cross_source_method;
      cl.ppk_block_size = options_.ppk_k;
      return true;
    }
    return false;
  }

  // Observed cardinality of the FLWOR's leading scan (the join's outer),
  // or -1 when unknown.
  int64_t ObservedOuterRows(const Expr& flwor) const {
    if (options_.observed == nullptr || flwor.clauses.empty()) return -1;
    const Clause& first = flwor.clauses.front();
    if (first.kind != Clause::Kind::kFor && first.kind != Clause::Kind::kJoin) {
      return -1;
    }
    const Expr* binding = first.expr.get();
    while (binding->kind == ExprKind::kFilter) {
      binding = binding->children[0].get();
    }
    if (binding->kind != ExprKind::kFunctionCall) return -1;
    const ExternalFunction* fn = functions_->FindExternal(binding->fn_name);
    if (fn == nullptr || !fn->is_relational()) return -1;
    return options_.observed->ObservedRows(fn->Property("source"),
                                           fn->Property("table"));
  }

  // Applies a hint-forced join method to join clauses still undecided.
  bool RuleForceJoinMethod(ExprPtr& e) {
    bool changed = false;
    for (auto& cl : e->clauses) {
      if (cl.kind != Clause::Kind::kJoin) continue;
      if (cl.method == options_.forced_join_method) continue;
      JoinMethod forced = options_.forced_join_method;
      bool needs_fetch = forced == JoinMethod::kPPkNestedLoop ||
                         forced == JoinMethod::kPPkIndexNestedLoop;
      if (needs_fetch && cl.ppk_fetch == nullptr) continue;
      if (!needs_fetch) cl.ppk_fetch.reset();
      cl.method = forced;
      changed = true;
    }
    return changed;
  }

  bool RuleSubstituteTrivialLets(ExprPtr& e) {
    for (size_t i = 0; i < e->clauses.size(); ++i) {
      Clause& cl = e->clauses[i];
      if (cl.kind != Clause::Kind::kLet) continue;
      bool trivial = cl.expr->kind == ExprKind::kVarRef ||
                     cl.expr->kind == ExprKind::kLiteral ||
                     cl.expr->kind == ExprKind::kEmptySequence;
      int uses = 0;
      for (size_t j = i + 1; j < e->clauses.size(); ++j) {
        const Clause& later = e->clauses[j];
        if (later.expr) uses += CountVarUses(*later.expr, cl.var);
        if (later.condition) uses += CountVarUses(*later.condition, cl.var);
        for (const auto& [l, r] : later.equi_keys) {
          uses += CountVarUses(*l, cl.var) + CountVarUses(*r, cl.var);
        }
        for (const auto& gk : later.group_keys) {
          uses += CountVarUses(*gk.expr, cl.var);
        }
        for (const auto& gv : later.group_vars) {
          if (gv.in_var == cl.var) uses += 2;  // cannot substitute into
        }
        for (const auto& ok : later.order_keys) {
          uses += CountVarUses(*ok.expr, cl.var);
        }
      }
      uses += CountVarUses(*e->children[0], cl.var);
      bool single_use = uses == 1;
      if (!trivial && !single_use) continue;
      if (!trivial) {
        // Substituting a single-use non-trivial let is safe (evaluated at
        // most once either way) unless it is consumed by a group clause.
        bool grouped = false;
        for (size_t j = i + 1; j < e->clauses.size(); ++j) {
          for (const auto& gv : e->clauses[j].group_vars) {
            if (gv.in_var == cl.var) grouped = true;
          }
        }
        if (grouped) continue;
      }
      ExprPtr value = cl.expr;
      std::string name = cl.var;
      e->clauses.erase(e->clauses.begin() + static_cast<ptrdiff_t>(i));
      for (size_t j = i; j < e->clauses.size(); ++j) {
        Clause& later = e->clauses[j];
        SubstituteVar(later.expr, name, value);
        SubstituteVar(later.condition, name, value);
        for (auto& [l, r] : later.equi_keys) {
          SubstituteVar(l, name, value);
          SubstituteVar(r, name, value);
        }
        for (auto& gk : later.group_keys) SubstituteVar(gk.expr, name, value);
        for (auto& ok : later.order_keys) SubstituteVar(ok.expr, name, value);
        if (value->kind == ExprKind::kVarRef) {
          for (auto& gv : later.group_vars) {
            if (gv.in_var == name) gv.in_var = value->var_name;
          }
        }
      }
      SubstituteVar(e->children[0], name, value);
      return true;
    }
    return false;
  }

  // True for expressions that are cheap to duplicate: no source access,
  // no FLWOR re-evaluation.
  static bool IsCheap(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
      case ExprKind::kVarRef:
      case ExprKind::kEmptySequence:
        return true;
      case ExprKind::kPathStep:
      case ExprKind::kSequence:
      case ExprKind::kElementCtor:
      case ExprKind::kAttributeCtor:
      case ExprKind::kComparison:
      case ExprKind::kArith:
      case ExprKind::kLogical:
      case ExprKind::kIf:
      case ExprKind::kCastAs: {
        for (const auto& c : e.children) {
          if (c && !IsCheap(*c)) return false;
        }
        return true;
      }
      case ExprKind::kFunctionCall: {
        // fn:data over cheap content is cheap.
        if (LookupBuiltin(e.fn_name) != Builtin::kData) return false;
        return e.children.size() == 1 && IsCheap(*e.children[0]);
      }
      default:
        return false;
    }
  }

  // let $v := <ctor over cheap content> ... -> substitute the constructor
  // into its uses (unnesting, paper §4.2). Duplicating cheap construction
  // unlocks navigation cancellation and predicate pushdown through
  // unfolded views (the tns:getProfile()[CID eq $id] pipeline).
  bool RuleSubstituteCtorLets(ExprPtr& e) {
    for (size_t i = 0; i < e->clauses.size(); ++i) {
      Clause& cl = e->clauses[i];
      if (cl.kind != Clause::Kind::kLet) continue;
      if (cl.expr->kind != ExprKind::kElementCtor || !IsCheap(*cl.expr)) {
        continue;
      }
      // Not substitutable into group clauses.
      bool grouped = false;
      for (size_t j = i + 1; j < e->clauses.size(); ++j) {
        for (const auto& gv : e->clauses[j].group_vars) {
          if (gv.in_var == cl.var) grouped = true;
        }
      }
      if (grouped) continue;
      ExprPtr value = cl.expr;
      std::string name = cl.var;
      e->clauses.erase(e->clauses.begin() + static_cast<ptrdiff_t>(i));
      for (size_t j = i; j < e->clauses.size(); ++j) {
        Clause& later = e->clauses[j];
        SubstituteVar(later.expr, name, value);
        SubstituteVar(later.condition, name, value);
        for (auto& [l, r] : later.equi_keys) {
          SubstituteVar(l, name, value);
          SubstituteVar(r, name, value);
        }
        for (auto& gk : later.group_keys) SubstituteVar(gk.expr, name, value);
        for (auto& ok : later.order_keys) SubstituteVar(ok.expr, name, value);
      }
      SubstituteVar(e->children[0], name, value);
      return true;
    }
    return false;
  }

  bool RuleRemoveUnusedLets(ExprPtr& e) {
    for (size_t i = 0; i < e->clauses.size(); ++i) {
      const Clause& cl = e->clauses[i];
      if (cl.kind != Clause::Kind::kLet) continue;
      int uses = 0;
      for (size_t j = i + 1; j < e->clauses.size(); ++j) {
        const Clause& later = e->clauses[j];
        if (later.expr) uses += CountVarUses(*later.expr, cl.var);
        if (later.condition) uses += CountVarUses(*later.condition, cl.var);
        for (const auto& [l, r] : later.equi_keys) {
          uses += CountVarUses(*l, cl.var) + CountVarUses(*r, cl.var);
        }
        for (const auto& gk : later.group_keys) {
          uses += CountVarUses(*gk.expr, cl.var);
        }
        for (const auto& gv : later.group_vars) {
          if (gv.in_var == cl.var) ++uses;
        }
        for (const auto& ok : later.order_keys) {
          uses += CountVarUses(*ok.expr, cl.var);
        }
      }
      uses += CountVarUses(*e->children[0], cl.var);
      if (uses == 0) {
        e->clauses.erase(e->clauses.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  // Marks group-by clauses whose input is provably clustered on the
  // grouping keys, enabling the constant-memory streaming group operator
  // (paper §4.2). Sound criterion in this engine: the keys include a
  // primary-key column path over the FLWOR's first scan variable, whose
  // binding is a relational table function (rows unique and delivered in
  // stable order; for/join pipelining keeps the stream clustered by every
  // prefix variable), with no reordering clause in between.
  bool RuleDetectClustering(ExprPtr& e) {
    if (e->clauses.empty()) return false;
    const Clause& first = e->clauses.front();
    if (first.kind != Clause::Kind::kFor && first.kind != Clause::Kind::kJoin) {
      return false;
    }
    if (first.expr->kind != ExprKind::kFunctionCall) return false;
    const ExternalFunction* fn = functions_->FindExternal(first.expr->fn_name);
    if (fn == nullptr || !fn->is_relational()) return false;
    std::string pk = fn->Property("primary_key");
    if (pk.empty() || pk.find(',') != std::string::npos) return false;
    bool changed = false;
    for (size_t i = 1; i < e->clauses.size(); ++i) {
      Clause& cl = e->clauses[i];
      if (cl.kind == Clause::Kind::kOrderBy || cl.kind == Clause::Kind::kGroupBy) {
        if (cl.kind == Clause::Kind::kGroupBy && !cl.pre_clustered) {
          bool has_pk_key = false;
          bool keys_over_first = true;
          for (const auto& gk : cl.group_keys) {
            const Expr* key = UnwrapData(*gk.expr);
            std::set<std::string> vars = FreeVars(*gk.expr);
            if (!(vars.size() == 1 && vars.count(first.var) == 1)) {
              keys_over_first = false;
              break;
            }
            if (key->kind == ExprKind::kPathStep && !key->is_attribute_step &&
                key->children[0]->kind == ExprKind::kVarRef &&
                key->children[0]->var_name == first.var &&
                key->step_name == pk) {
              has_pk_key = true;
            }
          }
          if (keys_over_first && has_pk_key) {
            cl.pre_clustered = true;
            changed = true;
          }
        }
        break;  // anything past a reordering clause is out of scope
      }
    }
    return changed;
  }

  // A FLWOR whose where clause is constant-false returns ().
  bool RuleEmptyFLWOR(ExprPtr& e) {
    for (auto it = e->clauses.begin(); it != e->clauses.end(); ++it) {
      if (it->kind != Clause::Kind::kWhere) continue;
      if (it->expr->kind == ExprKind::kLiteral &&
          it->expr->literal.type() == xml::AtomicType::kBoolean) {
        if (!it->expr->literal.AsBoolean()) {
          e = xquery::MakeEmptySequence(e->loc);
          return true;
        }
        e->clauses.erase(it);
        return true;
      }
    }
    return false;
  }

  const compiler::FunctionTable* functions_;
  const xsd::SchemaRegistry* schemas_;
  ViewPlanCache* view_cache_;
  OptimizerOptions options_;
  std::set<std::string>* in_progress_;
  int* rename_serial_;
};

Optimizer::Optimizer(const compiler::FunctionTable* functions,
                     const xsd::SchemaRegistry* schemas,
                     ViewPlanCache* view_cache, OptimizerOptions options)
    : functions_(functions),
      schemas_(schemas),
      view_cache_(view_cache),
      options_(options) {}

Status Optimizer::Optimize(xquery::ExprPtr& root) {
  std::set<std::string> in_progress;
  int rename_serial = 0;
  Impl impl(functions_, schemas_, view_cache_, options_, &in_progress,
            &rename_serial);
  return impl.Optimize(root, {});
}

Result<xquery::ExprPtr> Optimizer::OptimizedViewBody(
    const std::string& function) {
  std::set<std::string> in_progress;
  int rename_serial = 0;
  Impl impl(functions_, schemas_, view_cache_, options_, &in_progress,
            &rename_serial);
  return impl.OptimizedViewBody(function);
}

}  // namespace aldsp::optimizer
