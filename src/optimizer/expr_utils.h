#ifndef ALDSP_OPTIMIZER_EXPR_UTILS_H_
#define ALDSP_OPTIMIZER_EXPR_UTILS_H_

#include <set>
#include <string>

#include "xquery/ast.h"

namespace aldsp::optimizer {

/// Free variables of an expression (variables referenced but not bound
/// within it). The context item "." counts as a variable.
std::set<std::string> FreeVars(const xquery::Expr& e);

/// True if `name` occurs free in `e`.
bool IsFreeVar(const xquery::Expr& e, const std::string& name);

/// Replaces every free occurrence of $`name` with a clone of
/// `replacement`, in place.
void SubstituteVar(xquery::ExprPtr& e, const std::string& name,
                   const xquery::ExprPtr& replacement);

/// Renames every variable *bound within* `e` (FLWOR/quantifier/group
/// bindings) to a fresh name `<old>#<serial>`, keeping the tree
/// capture-free for inlining. `serial` is incremented per rename.
void RenameBoundVars(xquery::ExprPtr& e, int* serial);

/// True if any function call to `name` occurs in `e`.
bool ContainsCallTo(const xquery::Expr& e, const std::string& name);

/// Counts free occurrences of $`name` in `e`.
int CountVarUses(const xquery::Expr& e, const std::string& name);

}  // namespace aldsp::optimizer

#endif  // ALDSP_OPTIMIZER_EXPR_UTILS_H_
