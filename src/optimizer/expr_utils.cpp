#include "optimizer/expr_utils.h"

namespace aldsp::optimizer {

using xquery::Clause;
using xquery::CloneExpr;
using xquery::Expr;
using xquery::ExprKind;
using xquery::ExprPtr;

namespace {

void CollectFree(const Expr& e, std::set<std::string> bound,
                 std::set<std::string>* free) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      if (bound.count(e.var_name) == 0) free->insert(e.var_name);
      return;
    case ExprKind::kFLWOR: {
      for (const auto& cl : e.clauses) {
        switch (cl.kind) {
          case Clause::Kind::kFor:
          case Clause::Kind::kJoin:
            if (cl.expr) CollectFree(*cl.expr, bound, free);
            if (cl.kind == Clause::Kind::kJoin) {
              // Condition and keys see the join variable.
              std::set<std::string> with_var = bound;
              with_var.insert(cl.var);
              if (cl.condition) CollectFree(*cl.condition, with_var, free);
              for (const auto& [l, r] : cl.equi_keys) {
                if (l) CollectFree(*l, bound, free);
                if (r) CollectFree(*r, with_var, free);
              }
            }
            bound.insert(cl.var);
            if (!cl.positional_var.empty()) bound.insert(cl.positional_var);
            break;
          case Clause::Kind::kLet:
            if (cl.expr) CollectFree(*cl.expr, bound, free);
            bound.insert(cl.var);
            break;
          case Clause::Kind::kWhere:
            if (cl.expr) CollectFree(*cl.expr, bound, free);
            break;
          case Clause::Kind::kGroupBy:
            for (const auto& gv : cl.group_vars) {
              if (bound.count(gv.in_var) == 0) free->insert(gv.in_var);
            }
            for (const auto& gk : cl.group_keys) {
              if (gk.expr) CollectFree(*gk.expr, bound, free);
            }
            for (const auto& gv : cl.group_vars) bound.insert(gv.out_var);
            for (const auto& gk : cl.group_keys) {
              if (!gk.as_var.empty()) bound.insert(gk.as_var);
            }
            break;
          case Clause::Kind::kOrderBy:
            for (const auto& ok : cl.order_keys) {
              if (ok.expr) CollectFree(*ok.expr, bound, free);
            }
            break;
        }
      }
      CollectFree(*e.children[0], bound, free);
      return;
    }
    case ExprKind::kQuantified: {
      CollectFree(*e.children[0], bound, free);
      bound.insert(e.var_name2);
      CollectFree(*e.children[1], bound, free);
      return;
    }
    case ExprKind::kFilter: {
      CollectFree(*e.children[0], bound, free);
      bound.insert(".");
      CollectFree(*e.children[1], bound, free);
      return;
    }
    default:
      for (const auto& c : e.children) {
        if (c) CollectFree(*c, bound, free);
      }
      return;
  }
}

// Substitutes free occurrences of `name` by `replacement` respecting
// shadowing. Returns false and does nothing more along a branch where
// `name` is rebound.
void Subst(ExprPtr& e, const std::string& name, const ExprPtr& replacement) {
  if (!e) return;
  switch (e->kind) {
    case ExprKind::kVarRef:
      if (e->var_name == name) e = CloneExpr(replacement);
      return;
    case ExprKind::kFLWOR: {
      bool shadowed = false;
      for (auto& cl : e->clauses) {
        if (shadowed) break;
        switch (cl.kind) {
          case Clause::Kind::kFor:
          case Clause::Kind::kJoin:
            Subst(cl.expr, name, replacement);
            if (cl.kind == Clause::Kind::kJoin) {
              for (auto& [l, r] : cl.equi_keys) {
                Subst(l, name, replacement);
                if (cl.var != name) Subst(r, name, replacement);
              }
              if (cl.var != name) Subst(cl.condition, name, replacement);
            }
            if (cl.var == name || cl.positional_var == name) shadowed = true;
            break;
          case Clause::Kind::kLet:
            Subst(cl.expr, name, replacement);
            if (cl.var == name) shadowed = true;
            break;
          case Clause::Kind::kWhere:
            Subst(cl.expr, name, replacement);
            break;
          case Clause::Kind::kGroupBy:
            for (auto& gv : cl.group_vars) {
              if (gv.in_var == name &&
                  replacement->kind == ExprKind::kVarRef) {
                gv.in_var = replacement->var_name;
              }
            }
            for (auto& gk : cl.group_keys) Subst(gk.expr, name, replacement);
            for (auto& gv : cl.group_vars) {
              if (gv.out_var == name) shadowed = true;
            }
            for (auto& gk : cl.group_keys) {
              if (gk.as_var == name) shadowed = true;
            }
            break;
          case Clause::Kind::kOrderBy:
            for (auto& ok : cl.order_keys) Subst(ok.expr, name, replacement);
            break;
        }
      }
      if (!shadowed) Subst(e->children[0], name, replacement);
      return;
    }
    case ExprKind::kQuantified:
      Subst(e->children[0], name, replacement);
      if (e->var_name2 != name) Subst(e->children[1], name, replacement);
      return;
    case ExprKind::kFilter:
      Subst(e->children[0], name, replacement);
      if (name != ".") Subst(e->children[1], name, replacement);
      return;
    default:
      for (auto& c : e->children) Subst(c, name, replacement);
      return;
  }
}

}  // namespace

std::set<std::string> FreeVars(const Expr& e) {
  std::set<std::string> free;
  CollectFree(e, {}, &free);
  return free;
}

bool IsFreeVar(const Expr& e, const std::string& name) {
  return FreeVars(e).count(name) > 0;
}

void SubstituteVar(ExprPtr& e, const std::string& name,
                   const ExprPtr& replacement) {
  Subst(e, name, replacement);
}

void RenameBoundVars(ExprPtr& e, int* serial) {
  if (!e) return;
  // Bottom-up: rename inner binders first so outer substitution cannot be
  // shadowed.
  xquery::ForEachChildSlot(*e, [&](ExprPtr& c) { RenameBoundVars(c, serial); });

  auto fresh = [&](const std::string& base) {
    return base + "#" + std::to_string((*serial)++);
  };

  if (e->kind == ExprKind::kFLWOR) {
    for (size_t i = 0; i < e->clauses.size(); ++i) {
      Clause& cl = e->clauses[i];
      auto rename_from = [&](const std::string& old_name,
                             const std::string& new_name, size_t from) {
        ExprPtr ref = xquery::MakeVarRef(new_name);
        for (size_t j = from; j < e->clauses.size(); ++j) {
          Clause& later = e->clauses[j];
          Subst(later.expr, old_name, ref);
          Subst(later.condition, old_name, ref);
          for (auto& [l, r] : later.equi_keys) {
            Subst(l, old_name, ref);
            Subst(r, old_name, ref);
          }
          for (auto& gv : later.group_vars) {
            if (gv.in_var == old_name) gv.in_var = new_name;
          }
          for (auto& gk : later.group_keys) Subst(gk.expr, old_name, ref);
          for (auto& ok : later.order_keys) Subst(ok.expr, old_name, ref);
        }
        Subst(e->children[0], old_name, ref);
      };
      switch (cl.kind) {
        case Clause::Kind::kFor:
        case Clause::Kind::kJoin:
        case Clause::Kind::kLet: {
          std::string new_name = fresh(cl.var);
          std::string old_name = cl.var;
          cl.var = new_name;
          if (cl.kind == Clause::Kind::kJoin) {
            // Condition/keys at this clause reference the old name too.
            ExprPtr ref = xquery::MakeVarRef(new_name);
            Subst(cl.condition, old_name, ref);
            for (auto& [l, r] : cl.equi_keys) {
              Subst(l, old_name, ref);
              Subst(r, old_name, ref);
            }
          }
          rename_from(old_name, new_name, i + 1);
          if (!cl.positional_var.empty()) {
            std::string new_pos = fresh(cl.positional_var);
            std::string old_pos = cl.positional_var;
            cl.positional_var = new_pos;
            rename_from(old_pos, new_pos, i + 1);
          }
          break;
        }
        case Clause::Kind::kGroupBy: {
          for (auto& gv : cl.group_vars) {
            std::string new_name = fresh(gv.out_var);
            std::string old_name = gv.out_var;
            gv.out_var = new_name;
            rename_from(old_name, new_name, i + 1);
          }
          for (auto& gk : cl.group_keys) {
            if (gk.as_var.empty()) continue;
            std::string new_name = fresh(gk.as_var);
            std::string old_name = gk.as_var;
            gk.as_var = new_name;
            rename_from(old_name, new_name, i + 1);
          }
          break;
        }
        default:
          break;
      }
    }
  } else if (e->kind == ExprKind::kQuantified) {
    std::string new_name = fresh(e->var_name2);
    ExprPtr ref = xquery::MakeVarRef(new_name);
    Subst(e->children[1], e->var_name2, ref);
    e->var_name2 = new_name;
  }
}

bool ContainsCallTo(const Expr& e, const std::string& name) {
  if (e.kind == ExprKind::kFunctionCall && e.fn_name == name) return true;
  bool found = false;
  xquery::ForEachChildSlot(const_cast<Expr&>(e), [&](ExprPtr& c) {
    if (!found && c && ContainsCallTo(*c, name)) found = true;
  });
  return found;
}

int CountVarUses(const Expr& e, const std::string& name) {
  // Approximation that ignores shadowing (safe for freshly renamed trees,
  // where names are unique).
  int count = 0;
  if (e.kind == ExprKind::kVarRef && e.var_name == name) return 1;
  xquery::ForEachChildSlot(const_cast<Expr&>(e), [&](ExprPtr& c) {
    if (c) count += CountVarUses(*c, name);
  });
  for (const auto& cl : e.clauses) {
    for (const auto& gv : cl.group_vars) {
      if (gv.in_var == name) ++count;
    }
  }
  return count;
}

}  // namespace aldsp::optimizer
