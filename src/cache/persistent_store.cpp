#include "cache/persistent_store.h"

#include "cache/typed_codec.h"

namespace aldsp::cache {

using relational::Cell;
using relational::ColumnType;
using relational::SelectStmt;
using relational::SqlExpr;
using relational::TableDef;

std::shared_ptr<relational::Database> PersistentCacheStore::MakeCacheDatabase(
    const std::string& name) {
  return std::make_shared<relational::Database>(name);
}

Result<std::shared_ptr<PersistentCacheStore>> PersistentCacheStore::Create(
    std::shared_ptr<relational::Database> db) {
  if (db->catalog().FindTable("CACHE_ENTRIES") == nullptr) {
    TableDef def;
    def.name = "CACHE_ENTRIES";
    def.columns = {{"K", ColumnType::kVarchar, false},
                   {"V", ColumnType::kVarchar, false},
                   {"EXPIRES_AT", ColumnType::kBigInt, false}};
    def.primary_key = {"K"};
    ALDSP_RETURN_NOT_OK(db->CreateTable(def));
  }
  return std::shared_ptr<PersistentCacheStore>(
      new PersistentCacheStore(std::move(db)));
}

Status PersistentCacheStore::Put(const std::string& key,
                                 const xml::Sequence& value,
                                 int64_t expires_at_millis) {
  std::string encoded = EncodeTypedSequence(value);
  // Upsert: delete any previous entry, then insert.
  relational::DeleteStmt del;
  del.table_name = "CACHE_ENTRIES";
  del.where = SqlExpr::Binary("=", SqlExpr::Column("CACHE_ENTRIES", "K"),
                              SqlExpr::Literal(Cell::Str(key)));
  ALDSP_RETURN_NOT_OK(db_->ExecuteDelete(del).status());
  relational::InsertStmt ins;
  ins.table_name = "CACHE_ENTRIES";
  ins.columns = {"K", "V", "EXPIRES_AT"};
  ins.values = {SqlExpr::Literal(Cell::Str(key)),
                SqlExpr::Literal(Cell::Str(std::move(encoded))),
                SqlExpr::Literal(Cell::Int(expires_at_millis))};
  return db_->ExecuteInsert(ins).status();
}

Result<bool> PersistentCacheStore::Get(const std::string& key,
                                       int64_t now_millis,
                                       xml::Sequence* value) {
  auto s = std::make_shared<SelectStmt>();
  s->from = {"CACHE_ENTRIES", nullptr, "t1"};
  s->items = {{SqlExpr::Column("t1", "V"), "v"},
              {SqlExpr::Column("t1", "EXPIRES_AT"), "e"}};
  s->where = SqlExpr::Binary(
      "AND",
      SqlExpr::Binary("=", SqlExpr::Column("t1", "K"),
                      SqlExpr::Literal(Cell::Str(key))),
      SqlExpr::Binary(">", SqlExpr::Column("t1", "EXPIRES_AT"),
                      SqlExpr::Literal(Cell::Int(now_millis))));
  ALDSP_ASSIGN_OR_RETURN(relational::ResultSet rs, db_->ExecuteSelect(*s));
  if (rs.rows.empty()) return false;
  ALDSP_ASSIGN_OR_RETURN(
      xml::Sequence decoded,
      DecodeTypedSequence(rs.rows.front()[0].value.AsString()));
  *value = std::move(decoded);
  return true;
}

Result<int64_t> PersistentCacheStore::Purge(int64_t now_millis) {
  relational::DeleteStmt del;
  del.table_name = "CACHE_ENTRIES";
  del.where = SqlExpr::Binary("<=", SqlExpr::Column("CACHE_ENTRIES", "EXPIRES_AT"),
                              SqlExpr::Literal(Cell::Int(now_millis)));
  return db_->ExecuteDelete(del);
}

Result<int64_t> PersistentCacheStore::EntryCount() const {
  auto s = std::make_shared<SelectStmt>();
  s->from = {"CACHE_ENTRIES", nullptr, "t1"};
  s->items = {{SqlExpr::Aggregate(relational::SqlAgg::kCountStar, nullptr),
               "n"}};
  ALDSP_ASSIGN_OR_RETURN(relational::ResultSet rs, db_->ExecuteSelect(*s));
  return rs.rows.front()[0].value.AsInteger();
}

}  // namespace aldsp::cache
