#ifndef ALDSP_CACHE_PERSISTENT_STORE_H_
#define ALDSP_CACHE_PERSISTENT_STORE_H_

#include <memory>
#include <string>

#include "relational/engine.h"
#include "runtime/function_cache.h"

namespace aldsp::cache {

/// The persistent, distributed function-cache store of paper §5.5: "the
/// current cache implementation employs a relational database to achieve
/// persistence and distribution in the context of a cluster of ALDSP
/// servers." Entries live in a CACHE_ENTRIES table of a (shared)
/// relational database; multiple FunctionCache instances attached to the
/// same store observe each other's inserts — turning a slow data-service
/// call into a single-row database lookup on every server of the cluster.
class PersistentCacheStore : public runtime::CacheBackingStore {
 public:
  /// Uses (and if necessary creates the CACHE_ENTRIES table in) `db`.
  static Result<std::shared_ptr<PersistentCacheStore>> Create(
      std::shared_ptr<relational::Database> db);

  /// Convenience: a fresh in-process cache database.
  static std::shared_ptr<relational::Database> MakeCacheDatabase(
      const std::string& name = "cache_db");

  Status Put(const std::string& key, const xml::Sequence& value,
             int64_t expires_at_millis) override;
  Result<bool> Get(const std::string& key, int64_t now_millis,
                   xml::Sequence* value) override;

  /// Removes expired entries; returns the number purged.
  Result<int64_t> Purge(int64_t now_millis);
  Result<int64_t> EntryCount() const;

 private:
  explicit PersistentCacheStore(std::shared_ptr<relational::Database> db)
      : db_(std::move(db)) {}

  std::shared_ptr<relational::Database> db_;
};

}  // namespace aldsp::cache

#endif  // ALDSP_CACHE_PERSISTENT_STORE_H_
