#ifndef ALDSP_CACHE_TYPED_CODEC_H_
#define ALDSP_CACHE_TYPED_CODEC_H_

#include <string>

#include "common/result.h"
#include "xml/item.h"

namespace aldsp::cache {

/// Serializes an item sequence to a compact typed wire format that —
/// unlike plain XML text — preserves runtime type annotations, so cached
/// results read back from the persistent store stay typed (ALDSP data is
/// typed end-to-end, paper §5.1). One token per line:
///   SE name / EE name       element start/end
///   AT name type lexical    attribute
///   TX type lexical         typed text / atomic item
/// Lexical values escape backslash and newline.
std::string EncodeTypedSequence(const xml::Sequence& seq);

Result<xml::Sequence> DecodeTypedSequence(const std::string& encoded);

}  // namespace aldsp::cache

#endif  // ALDSP_CACHE_TYPED_CODEC_H_
