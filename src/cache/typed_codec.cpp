#include "cache/typed_codec.h"

#include "common/string_util.h"
#include "xml/token.h"

namespace aldsp::cache {

using xml::AtomicType;
using xml::AtomicValue;
using xml::Token;
using xml::TokenKind;
using xml::TokenVector;

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[i + 1] == 'n' ? '\n' : s[i + 1];
      ++i;
    } else {
      out += s[i];
    }
  }
  return out;
}

const char* TypeTag(AtomicType t) {
  switch (t) {
    case AtomicType::kString:
      return "str";
    case AtomicType::kInteger:
      return "int";
    case AtomicType::kDecimal:
      return "dec";
    case AtomicType::kDouble:
      return "dbl";
    case AtomicType::kBoolean:
      return "bool";
    case AtomicType::kDateTime:
      return "dt";
    case AtomicType::kUntyped:
      return "untyped";
  }
  return "untyped";
}

Result<AtomicType> TypeFromTag(const std::string& tag) {
  if (tag == "str") return AtomicType::kString;
  if (tag == "int") return AtomicType::kInteger;
  if (tag == "dec") return AtomicType::kDecimal;
  if (tag == "dbl") return AtomicType::kDouble;
  if (tag == "bool") return AtomicType::kBoolean;
  if (tag == "dt") return AtomicType::kDateTime;
  if (tag == "untyped") return AtomicType::kUntyped;
  return Status::InvalidArgument("unknown type tag: " + tag);
}

Result<AtomicValue> ValueFrom(AtomicType type, const std::string& lexical) {
  if (type == AtomicType::kString) return AtomicValue::String(lexical);
  if (type == AtomicType::kUntyped) return AtomicValue::Untyped(lexical);
  return AtomicValue::Untyped(lexical).CastTo(type);
}

}  // namespace

std::string EncodeTypedSequence(const xml::Sequence& seq) {
  TokenVector tokens;
  xml::SequenceToTokens(seq, &tokens);
  std::string out;
  for (const Token& t : tokens) {
    switch (t.kind) {
      case TokenKind::kStartElement:
        out += "SE " + Escape(t.name) + "\n";
        break;
      case TokenKind::kEndElement:
        out += "EE " + Escape(t.name) + "\n";
        break;
      case TokenKind::kAttribute:
        out += "AT " + Escape(t.name) + " " + TypeTag(t.value.type()) + " " +
               Escape(t.value.Lexical()) + "\n";
        break;
      case TokenKind::kAtom:
        out += std::string("TX ") + TypeTag(t.value.type()) + " " +
               Escape(t.value.Lexical()) + "\n";
        break;
      default:
        break;  // documents/tuple framing never appear in cached results
    }
  }
  return out;
}

Result<xml::Sequence> DecodeTypedSequence(const std::string& encoded) {
  TokenVector tokens;
  for (const std::string& line : Split(encoded, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, ' ');
    const std::string& kind = parts[0];
    if (kind == "SE" && parts.size() == 2) {
      tokens.push_back(Token::StartElement(Unescape(parts[1])));
    } else if (kind == "EE" && parts.size() == 2) {
      tokens.push_back(Token::EndElement(Unescape(parts[1])));
    } else if (kind == "AT" && parts.size() >= 4) {
      ALDSP_ASSIGN_OR_RETURN(AtomicType type, TypeFromTag(parts[2]));
      std::string lexical = Join(
          std::vector<std::string>(parts.begin() + 3, parts.end()), " ");
      ALDSP_ASSIGN_OR_RETURN(AtomicValue v, ValueFrom(type, Unescape(lexical)));
      tokens.push_back(Token::Attribute(Unescape(parts[1]), std::move(v)));
    } else if (kind == "TX" && parts.size() >= 2) {
      ALDSP_ASSIGN_OR_RETURN(AtomicType type, TypeFromTag(parts[1]));
      std::string lexical =
          parts.size() > 2
              ? Join(std::vector<std::string>(parts.begin() + 2, parts.end()),
                     " ")
              : "";
      ALDSP_ASSIGN_OR_RETURN(AtomicValue v, ValueFrom(type, Unescape(lexical)));
      tokens.push_back(Token::Atom(std::move(v)));
    } else {
      return Status::InvalidArgument("malformed typed-codec line: " + line);
    }
  }
  return xml::TokensToSequence(tokens);
}

}  // namespace aldsp::cache
