#ifndef ALDSP_XML_NODE_H_
#define ALDSP_XML_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "xml/value.h"

namespace aldsp::xml {

class XNode;
using NodePtr = std::shared_ptr<XNode>;

enum class NodeKind { kDocument, kElement, kAttribute, kText };

/// A node of the XQuery Data Model tree. Element content is a sequence of
/// child nodes; typed element content (the norm in ALDSP, where data enters
/// already typed from sources) is represented as a single text child whose
/// value carries the runtime type annotation (paper §3.1: runtime type
/// annotations on content survive element construction).
class XNode : public std::enable_shared_from_this<XNode> {
 public:
  static NodePtr Document();
  /// Element with (possibly prefixed) name such as "tns:PROFILE".
  static NodePtr Element(std::string name);
  static NodePtr Attribute(std::string name, AtomicValue value);
  static NodePtr Text(AtomicValue value);

  /// Convenience: <name>typed-value</name>.
  static NodePtr TypedElement(std::string name, AtomicValue value);

  NodeKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  /// Atomic value of a text or attribute node.
  const AtomicValue& value() const { return value_; }
  void set_value(AtomicValue v) { value_ = std::move(v); }

  const std::vector<NodePtr>& attributes() const { return attributes_; }
  const std::vector<NodePtr>& children() const { return children_; }
  XNode* parent() const { return parent_; }

  void AddAttribute(NodePtr attr);
  void AddChild(NodePtr child);
  /// Replaces all children (used by update machinery).
  void SetChildren(std::vector<NodePtr> children);
  void RemoveChildAt(size_t index);

  /// All child elements named `name` (no-namespace match also accepts a
  /// prefixed name whose local part matches).
  std::vector<NodePtr> ChildrenNamed(const std::string& name) const;
  /// First child element named `name`, or nullptr.
  NodePtr FirstChildNamed(const std::string& name) const;
  /// Attribute node named `name`, or nullptr.
  NodePtr AttributeNamed(const std::string& name) const;

  /// String value per XDM: concatenation of descendant text.
  std::string StringValue() const;
  /// Typed value: the single typed text child if present, else the string
  /// value as xs:untypedAtomic.
  AtomicValue TypedValue() const;

  /// Deep copy (detached from any parent).
  NodePtr Clone() const;

  /// Structural deep equality (names, attributes, typed values).
  bool DeepEquals(const XNode& other) const;

  /// Approximate heap footprint of the subtree in bytes.
  size_t MemoryBytes() const;

 private:
  explicit XNode(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::string name_;
  AtomicValue value_;
  std::vector<NodePtr> attributes_;
  std::vector<NodePtr> children_;
  XNode* parent_ = nullptr;
};

/// Local part of a possibly prefixed name ("tns:PROFILE" -> "PROFILE").
std::string LocalName(const std::string& name);
/// True if names match, comparing local parts when either side has a prefix.
bool NameMatches(const std::string& node_name, const std::string& test);

}  // namespace aldsp::xml

#endif  // ALDSP_XML_NODE_H_
