#include "xml/serializer.h"

#include "common/string_util.h"

namespace aldsp::xml {

namespace {

void SerializeRec(const XNode& node, const SerializeOptions& options,
                  int depth, std::string* out) {
  auto indent = [&](int d) {
    if (options.indent) {
      if (!out->empty() && out->back() != '\n') *out += '\n';
      out->append(static_cast<size_t>(d) * 2, ' ');
    }
  };
  switch (node.kind()) {
    case NodeKind::kDocument:
      for (const auto& c : node.children()) {
        SerializeRec(*c, options, depth, out);
      }
      break;
    case NodeKind::kElement: {
      indent(depth);
      *out += '<';
      *out += node.name();
      for (const auto& a : node.attributes()) {
        *out += ' ';
        *out += a->name();
        *out += "=\"";
        *out += XmlEscape(a->value().Lexical());
        *out += '"';
      }
      if (node.children().empty()) {
        *out += "/>";
        return;
      }
      *out += '>';
      bool has_element_children = false;
      for (const auto& c : node.children()) {
        if (c->kind() == NodeKind::kElement) has_element_children = true;
        SerializeRec(*c, options, depth + 1, out);
      }
      if (options.indent && has_element_children) indent(depth);
      *out += "</";
      *out += node.name();
      *out += '>';
      break;
    }
    case NodeKind::kAttribute:
      // Standalone attribute (not attached to an element): name="value".
      *out += node.name();
      *out += "=\"";
      *out += XmlEscape(node.value().Lexical());
      *out += '"';
      break;
    case NodeKind::kText:
      *out += XmlEscape(node.value().Lexical());
      break;
  }
}

}  // namespace

std::string SerializeNode(const XNode& node, const SerializeOptions& options) {
  std::string out;
  SerializeRec(node, options, 0, &out);
  return out;
}

std::string SerializeSequence(const Sequence& seq,
                              const SerializeOptions& options) {
  std::string out;
  bool prev_atomic = false;
  for (const auto& item : seq) {
    if (item.is_atomic()) {
      if (prev_atomic) out += ' ';
      out += XmlEscape(item.atomic().Lexical());
      prev_atomic = true;
    } else {
      if (options.indent && !out.empty() && out.back() != '\n') out += '\n';
      out += SerializeNode(*item.node(), options);
      prev_atomic = false;
    }
  }
  return out;
}

}  // namespace aldsp::xml
