#ifndef ALDSP_XML_PARSER_H_
#define ALDSP_XML_PARSER_H_

#include <string>

#include "common/result.h"
#include "xml/node.h"

namespace aldsp::xml {

/// Parses an XML document (or fragment with a single root element) into a
/// node tree. Supports elements, attributes, character data, entity
/// references (&amp; &lt; &gt; &quot; &apos;), comments, and an optional
/// XML declaration. Text content is parsed as xs:untypedAtomic; schema
/// validation (typing) happens in the file adaptor per paper §5.3.
Result<NodePtr> ParseXml(const std::string& text);

}  // namespace aldsp::xml

#endif  // ALDSP_XML_PARSER_H_
