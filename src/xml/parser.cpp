#include "xml/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace aldsp::xml {

namespace {

class XmlTextParser {
 public:
  explicit XmlTextParser(const std::string& text) : text_(text) {}

  Result<NodePtr> Parse() {
    SkipMisc();
    if (!SkipPrologIfPresent().ok()) {
      return Status::ParseError("malformed XML declaration");
    }
    SkipMisc();
    ALDSP_ASSIGN_OR_RETURN(NodePtr root, ParseElement());
    SkipMisc();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing content after root element at offset " +
                                std::to_string(pos_));
    }
    return root;
  }

 private:
  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return Eof() ? '\0' : text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off >= text_.size() ? '\0' : text_[pos_ + off];
  }
  void Advance() { ++pos_; }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
  }

  // Skips whitespace and comments between markup.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Peek() == '<' && PeekAt(1) == '!' && PeekAt(2) == '-' &&
          PeekAt(3) == '-') {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  Status SkipPrologIfPresent() {
    if (Peek() == '<' && PeekAt(1) == '?') {
      size_t end = text_.find("?>", pos_ + 2);
      if (end == std::string::npos) {
        return Status::ParseError("unterminated processing instruction");
      }
      pos_ = end + 2;
    }
    return Status::OK();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) Advance();
    if (pos_ == start) {
      return Status::ParseError("expected XML name at offset " +
                                std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out += '&';
      } else if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        int code = std::atoi(std::string(ent.substr(1)).c_str());
        out += static_cast<char>(code);
      } else {
        return Status::ParseError("unknown entity: &" + std::string(ent) + ";");
      }
      i = semi;
    }
    return out;
  }

  Result<NodePtr> ParseElement() {
    if (Peek() != '<') {
      return Status::ParseError("expected '<' at offset " +
                                std::to_string(pos_));
    }
    Advance();
    ALDSP_ASSIGN_OR_RETURN(std::string name, ParseName());
    NodePtr element = XNode::Element(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (Peek() == '/' && PeekAt(1) == '>') {
        pos_ += 2;
        return element;
      }
      if (Peek() == '>') {
        Advance();
        break;
      }
      ALDSP_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (Peek() != '=') {
        return Status::ParseError("expected '=' after attribute name " +
                                  attr_name);
      }
      Advance();
      SkipWhitespace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Status::ParseError("expected quoted attribute value for " +
                                  attr_name);
      }
      Advance();
      size_t start = pos_;
      while (!Eof() && Peek() != quote) Advance();
      if (Eof()) {
        return Status::ParseError("unterminated attribute value for " +
                                  attr_name);
      }
      ALDSP_ASSIGN_OR_RETURN(
          std::string value,
          DecodeEntities(std::string_view(text_).substr(start, pos_ - start)));
      Advance();
      element->AddAttribute(
          XNode::Attribute(attr_name, AtomicValue::Untyped(std::move(value))));
    }
    // Content.
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      std::string_view trimmed = Trim(pending_text);
      if (!trimmed.empty()) {
        ALDSP_ASSIGN_OR_RETURN(std::string decoded, DecodeEntities(trimmed));
        element->AddChild(XNode::Text(AtomicValue::Untyped(std::move(decoded))));
      }
      pending_text.clear();
      return Status::OK();
    };
    while (true) {
      if (Eof()) {
        return Status::ParseError("unterminated element <" + name + ">");
      }
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          ALDSP_RETURN_NOT_OK(flush_text());
          pos_ += 2;
          ALDSP_ASSIGN_OR_RETURN(std::string end_name, ParseName());
          if (end_name != name) {
            return Status::ParseError("mismatched end tag </" + end_name +
                                      "> for <" + name + ">");
          }
          SkipWhitespace();
          if (Peek() != '>') {
            return Status::ParseError("expected '>' after end tag name");
          }
          Advance();
          return element;
        }
        if (PeekAt(1) == '!' && PeekAt(2) == '-' && PeekAt(3) == '-') {
          size_t end = text_.find("-->", pos_ + 4);
          if (end == std::string::npos) {
            return Status::ParseError("unterminated comment");
          }
          pos_ = end + 3;
          continue;
        }
        ALDSP_RETURN_NOT_OK(flush_text());
        ALDSP_ASSIGN_OR_RETURN(NodePtr child, ParseElement());
        element->AddChild(std::move(child));
        continue;
      }
      pending_text += Peek();
      Advance();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> ParseXml(const std::string& text) {
  XmlTextParser parser(text);
  return parser.Parse();
}

}  // namespace aldsp::xml
