#ifndef ALDSP_XML_TOKEN_H_
#define ALDSP_XML_TOKEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/item.h"

namespace aldsp::xml {

/// Token kinds of the typed XML token stream (paper §5.1 and [11]).
/// Structural events carry names; Atom tokens carry typed values (unlike
/// SAX/StAX, the stream represents the full typed XQuery Data Model).
/// BeginTuple / FieldSeparator / EndTuple frame the internal (non-XML)
/// tuple representation of FLWOR variable bindings (Fig. 4).
enum class TokenKind {
  kStartDocument,
  kEndDocument,
  kStartElement,   // name
  kEndElement,     // name
  kAttribute,      // name + value
  kAtom,           // typed atomic value (element content / standalone atomic)
  kBeginTuple,
  kFieldSeparator,
  kEndTuple,
};

/// One token of the stream. Kept small and POD-ish; token streams are the
/// high-volume currency of the runtime.
struct Token {
  TokenKind kind;
  std::string name;   // element/attribute name for structural tokens
  AtomicValue value;  // payload for kAttribute / kAtom

  static Token StartDocument() { return {TokenKind::kStartDocument, "", {}}; }
  static Token EndDocument() { return {TokenKind::kEndDocument, "", {}}; }
  static Token StartElement(std::string n) {
    return {TokenKind::kStartElement, std::move(n), {}};
  }
  static Token EndElement(std::string n) {
    return {TokenKind::kEndElement, std::move(n), {}};
  }
  static Token Attribute(std::string n, AtomicValue v) {
    return {TokenKind::kAttribute, std::move(n), std::move(v)};
  }
  static Token Atom(AtomicValue v) {
    return {TokenKind::kAtom, "", std::move(v)};
  }
  static Token BeginTuple() { return {TokenKind::kBeginTuple, "", {}}; }
  static Token FieldSeparator() { return {TokenKind::kFieldSeparator, "", {}}; }
  static Token EndTuple() { return {TokenKind::kEndTuple, "", {}}; }

  size_t MemoryBytes() const {
    return sizeof(Token) + name.capacity() + value.MemoryBytes();
  }
};

using TokenVector = std::vector<Token>;

/// Pull interface over a token stream. Implementations may stream lazily
/// (adaptors) or replay a materialized vector.
class TokenIterator {
 public:
  virtual ~TokenIterator() = default;
  /// Fills `token` and returns true, or returns false at end of stream.
  virtual bool Next(Token* token) = 0;
};

/// TokenIterator over a materialized vector.
class VectorTokenIterator : public TokenIterator {
 public:
  explicit VectorTokenIterator(TokenVector tokens)
      : tokens_(std::move(tokens)) {}
  bool Next(Token* token) override {
    if (pos_ >= tokens_.size()) return false;
    *token = tokens_[pos_++];
    return true;
  }

 private:
  TokenVector tokens_;
  size_t pos_ = 0;
};

/// Appends the token encoding of `item` to `out` (element subtrees expand
/// to Start/Attribute/Atom/End events; atomic items to a single Atom).
void ItemToTokens(const Item& item, TokenVector* out);
void SequenceToTokens(const Sequence& seq, TokenVector* out);

/// Rebuilds items from a token stream produced by ItemToTokens /
/// an adaptor. Tuple-framing tokens are not valid here.
Result<Sequence> TokensToSequence(TokenIterator* it);
Result<Sequence> TokensToSequence(const TokenVector& tokens);

size_t TokenVectorMemoryBytes(const TokenVector& tokens);

}  // namespace aldsp::xml

#endif  // ALDSP_XML_TOKEN_H_
