#include "xml/node.h"

namespace aldsp::xml {

NodePtr XNode::Document() { return NodePtr(new XNode(NodeKind::kDocument)); }

NodePtr XNode::Element(std::string name) {
  NodePtr n(new XNode(NodeKind::kElement));
  n->name_ = std::move(name);
  return n;
}

NodePtr XNode::Attribute(std::string name, AtomicValue value) {
  NodePtr n(new XNode(NodeKind::kAttribute));
  n->name_ = std::move(name);
  n->value_ = std::move(value);
  return n;
}

NodePtr XNode::Text(AtomicValue value) {
  NodePtr n(new XNode(NodeKind::kText));
  n->value_ = std::move(value);
  return n;
}

NodePtr XNode::TypedElement(std::string name, AtomicValue value) {
  NodePtr e = Element(std::move(name));
  e->AddChild(Text(std::move(value)));
  return e;
}

void XNode::AddAttribute(NodePtr attr) {
  attr->parent_ = this;
  attributes_.push_back(std::move(attr));
}

void XNode::AddChild(NodePtr child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
}

void XNode::SetChildren(std::vector<NodePtr> children) {
  children_ = std::move(children);
  for (auto& c : children_) c->parent_ = this;
}

void XNode::RemoveChildAt(size_t index) {
  if (index < children_.size()) {
    children_[index]->parent_ = nullptr;
    children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  }
}

std::vector<NodePtr> XNode::ChildrenNamed(const std::string& name) const {
  std::vector<NodePtr> out;
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kElement && NameMatches(c->name(), name)) {
      out.push_back(c);
    }
  }
  return out;
}

NodePtr XNode::FirstChildNamed(const std::string& name) const {
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kElement && NameMatches(c->name(), name)) {
      return c;
    }
  }
  return nullptr;
}

NodePtr XNode::AttributeNamed(const std::string& name) const {
  for (const auto& a : attributes_) {
    if (NameMatches(a->name(), name)) return a;
  }
  return nullptr;
}

std::string XNode::StringValue() const {
  switch (kind_) {
    case NodeKind::kText:
    case NodeKind::kAttribute:
      return value_.Lexical();
    case NodeKind::kElement:
    case NodeKind::kDocument: {
      std::string out;
      for (const auto& c : children_) out += c->StringValue();
      return out;
    }
  }
  return "";
}

AtomicValue XNode::TypedValue() const {
  if (kind_ == NodeKind::kText || kind_ == NodeKind::kAttribute) return value_;
  if (kind_ == NodeKind::kElement && children_.size() == 1 &&
      children_[0]->kind() == NodeKind::kText) {
    return children_[0]->value();
  }
  return AtomicValue::Untyped(StringValue());
}

NodePtr XNode::Clone() const {
  NodePtr n(new XNode(kind_));
  n->name_ = name_;
  n->value_ = value_;
  for (const auto& a : attributes_) n->AddAttribute(a->Clone());
  for (const auto& c : children_) n->AddChild(c->Clone());
  return n;
}

bool XNode::DeepEquals(const XNode& other) const {
  if (kind_ != other.kind_ || name_ != other.name_) return false;
  if ((kind_ == NodeKind::kText || kind_ == NodeKind::kAttribute) &&
      !(value_ == other.value_)) {
    return false;
  }
  if (attributes_.size() != other.attributes_.size() ||
      children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (!attributes_[i]->DeepEquals(*other.attributes_[i])) return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->DeepEquals(*other.children_[i])) return false;
  }
  return true;
}

size_t XNode::MemoryBytes() const {
  size_t total = sizeof(XNode) + name_.capacity() + value_.MemoryBytes();
  for (const auto& a : attributes_) total += a->MemoryBytes();
  for (const auto& c : children_) total += c->MemoryBytes();
  return total;
}

std::string LocalName(const std::string& name) {
  size_t pos = name.find(':');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

bool NameMatches(const std::string& node_name, const std::string& test) {
  if (node_name == test) return true;
  return LocalName(node_name) == LocalName(test);
}

}  // namespace aldsp::xml
