#ifndef ALDSP_XML_VALUE_H_
#define ALDSP_XML_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace aldsp::xml {

/// Atomic types of the XQuery Data Model subset supported by the platform.
/// kUntyped corresponds to xs:untypedAtomic (data whose type annotation was
/// lost); ALDSP's structural typing keeps data typed end-to-end, so untyped
/// values appear only at the edges (e.g. unvalidated file input).
enum class AtomicType {
  kString = 0,
  kInteger,   // xs:integer / SQL INTEGER, BIGINT
  kDecimal,   // xs:decimal / SQL DECIMAL (stored as double in this repo)
  kDouble,    // xs:double / SQL DOUBLE
  kBoolean,   // xs:boolean
  kDateTime,  // xs:dateTime (stored as seconds since 1970-01-01T00:00:00Z)
  kUntyped,
};

const char* AtomicTypeName(AtomicType t);

/// Whether values of type `from` may be promoted to `to` for comparison or
/// arithmetic (numeric promotion ladder integer -> decimal -> double).
bool IsNumeric(AtomicType t);

/// A single typed atomic value.
class AtomicValue {
 public:
  AtomicValue() : type_(AtomicType::kUntyped), repr_(std::string()) {}

  static AtomicValue String(std::string v);
  static AtomicValue Untyped(std::string v);
  static AtomicValue Integer(int64_t v);
  static AtomicValue Decimal(double v);
  static AtomicValue Double(double v);
  static AtomicValue Boolean(bool v);
  /// Seconds since the Unix epoch, matching the paper's int2date example.
  static AtomicValue DateTime(int64_t epoch_seconds);

  AtomicType type() const { return type_; }

  bool is_string() const {
    return type_ == AtomicType::kString || type_ == AtomicType::kUntyped;
  }
  bool is_numeric() const { return IsNumeric(type_); }

  /// Accessors; caller must check type() first.
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  int64_t AsInteger() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  bool AsBoolean() const { return std::get<bool>(repr_); }
  int64_t AsDateTime() const { return std::get<int64_t>(repr_); }

  /// Numeric value widened to double (integer/decimal/double only).
  double NumericAsDouble() const;

  /// XML-serialization lexical form ("42", "true",
  /// "2006-09-12T00:00:00Z", ...).
  std::string Lexical() const;

  /// Casts to another atomic type following (a subset of) XQuery cast rules.
  Result<AtomicValue> CastTo(AtomicType target) const;

  /// Value equality with numeric promotion; values of incomparable types
  /// are unequal.
  bool Equals(const AtomicValue& other) const;

  /// Three-way comparison for order-comparable values: <0, 0, >0.
  /// Returns an error for incomparable types (e.g. string vs integer).
  Result<int> Compare(const AtomicValue& other) const;

  /// Approximate heap footprint in bytes, used by memory accounting in the
  /// runtime (tuple representation and group-by benchmarks).
  size_t MemoryBytes() const;

 private:
  AtomicValue(AtomicType type, std::variant<std::string, int64_t, double, bool> repr)
      : type_(type), repr_(std::move(repr)) {}

  AtomicType type_;
  std::variant<std::string, int64_t, double, bool> repr_;
};

bool operator==(const AtomicValue& a, const AtomicValue& b);

/// Formats epoch seconds as an xs:dateTime lexical value (UTC).
std::string FormatDateTime(int64_t epoch_seconds);
/// Parses an xs:dateTime lexical value ("2006-09-12T10:30:00" with optional
/// trailing "Z") to epoch seconds.
Result<int64_t> ParseDateTime(const std::string& lexical);

}  // namespace aldsp::xml

#endif  // ALDSP_XML_VALUE_H_
