#ifndef ALDSP_XML_SERIALIZER_H_
#define ALDSP_XML_SERIALIZER_H_

#include <string>

#include "xml/item.h"

namespace aldsp::xml {

struct SerializeOptions {
  /// Pretty-print with 2-space indentation; default is compact.
  bool indent = false;
};

/// Serializes a node subtree to XML text.
std::string SerializeNode(const XNode& node, const SerializeOptions& options = {});

/// Serializes a sequence: nodes as XML, adjacent atomic values separated by
/// single spaces, per the XQuery serialization rules.
std::string SerializeSequence(const Sequence& seq,
                              const SerializeOptions& options = {});

}  // namespace aldsp::xml

#endif  // ALDSP_XML_SERIALIZER_H_
