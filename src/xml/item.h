#ifndef ALDSP_XML_ITEM_H_
#define ALDSP_XML_ITEM_H_

#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "xml/node.h"
#include "xml/value.h"

namespace aldsp::xml {

/// An XDM item: an atomic value or a node.
class Item {
 public:
  Item() : repr_(AtomicValue()) {}
  Item(AtomicValue v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Item(NodePtr n) : repr_(std::move(n)) {}      // NOLINT(runtime/explicit)

  bool is_atomic() const { return std::holds_alternative<AtomicValue>(repr_); }
  bool is_node() const { return !is_atomic(); }

  const AtomicValue& atomic() const { return std::get<AtomicValue>(repr_); }
  const NodePtr& node() const { return std::get<NodePtr>(repr_); }

  /// XQuery atomization (fn:data on one item).
  AtomicValue Atomize() const {
    return is_atomic() ? atomic() : node()->TypedValue();
  }

  std::string StringValue() const {
    return is_atomic() ? atomic().Lexical() : node()->StringValue();
  }

  size_t MemoryBytes() const {
    return is_atomic() ? atomic().MemoryBytes() : node()->MemoryBytes();
  }

 private:
  std::variant<AtomicValue, NodePtr> repr_;
};

/// An XDM sequence: a flat list of items (sequences never nest).
using Sequence = std::vector<Item>;

/// fn:data over a sequence.
Sequence Atomize(const Sequence& seq);

/// XQuery effective boolean value. Errors on a sequence whose first item is
/// an atomic value but which has length > 1, per the spec.
Result<bool> EffectiveBooleanValue(const Sequence& seq);

/// Singleton helpers.
inline Sequence SingletonSequence(Item item) { return Sequence{std::move(item)}; }
inline Sequence EmptySequence() { return {}; }

/// Concatenates b onto a.
void AppendSequence(Sequence& a, const Sequence& b);

/// Deep equality of two sequences (used heavily by the property tests that
/// compare pushed-down vs mid-tier execution).
bool SequenceDeepEquals(const Sequence& a, const Sequence& b);

/// Total memory footprint of a sequence.
size_t SequenceMemoryBytes(const Sequence& seq);

}  // namespace aldsp::xml

#endif  // ALDSP_XML_ITEM_H_
