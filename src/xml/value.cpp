#include "xml/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace aldsp::xml {

const char* AtomicTypeName(AtomicType t) {
  switch (t) {
    case AtomicType::kString:
      return "xs:string";
    case AtomicType::kInteger:
      return "xs:integer";
    case AtomicType::kDecimal:
      return "xs:decimal";
    case AtomicType::kDouble:
      return "xs:double";
    case AtomicType::kBoolean:
      return "xs:boolean";
    case AtomicType::kDateTime:
      return "xs:dateTime";
    case AtomicType::kUntyped:
      return "xs:untypedAtomic";
  }
  return "unknown";
}

bool IsNumeric(AtomicType t) {
  return t == AtomicType::kInteger || t == AtomicType::kDecimal ||
         t == AtomicType::kDouble;
}

AtomicValue AtomicValue::String(std::string v) {
  return AtomicValue(AtomicType::kString, std::move(v));
}
AtomicValue AtomicValue::Untyped(std::string v) {
  return AtomicValue(AtomicType::kUntyped, std::move(v));
}
AtomicValue AtomicValue::Integer(int64_t v) {
  return AtomicValue(AtomicType::kInteger, v);
}
AtomicValue AtomicValue::Decimal(double v) {
  return AtomicValue(AtomicType::kDecimal, v);
}
AtomicValue AtomicValue::Double(double v) {
  return AtomicValue(AtomicType::kDouble, v);
}
AtomicValue AtomicValue::Boolean(bool v) {
  return AtomicValue(AtomicType::kBoolean, v);
}
AtomicValue AtomicValue::DateTime(int64_t epoch_seconds) {
  return AtomicValue(AtomicType::kDateTime, epoch_seconds);
}

double AtomicValue::NumericAsDouble() const {
  if (type_ == AtomicType::kInteger) return static_cast<double>(AsInteger());
  return AsDouble();
}

namespace {

std::string FormatDouble(double v) {
  // Render integral doubles without a fractional tail, else shortest
  // round-trip-ish representation.
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Days in month, ignoring leap seconds; proleptic Gregorian.
bool IsLeapYear(int y) {
  return (y % 4 == 0 && y % 100 != 0) || (y % 400 == 0);
}

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

std::string AtomicValue::Lexical() const {
  switch (type_) {
    case AtomicType::kString:
    case AtomicType::kUntyped:
      return AsString();
    case AtomicType::kInteger:
      return std::to_string(AsInteger());
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return FormatDouble(AsDouble());
    case AtomicType::kBoolean:
      return AsBoolean() ? "true" : "false";
    case AtomicType::kDateTime:
      return FormatDateTime(AsDateTime());
  }
  return "";
}

Result<AtomicValue> AtomicValue::CastTo(AtomicType target) const {
  if (target == type_) return *this;
  switch (target) {
    case AtomicType::kString:
      return AtomicValue::String(Lexical());
    case AtomicType::kUntyped:
      return AtomicValue::Untyped(Lexical());
    case AtomicType::kInteger: {
      if (is_numeric()) return AtomicValue::Integer(static_cast<int64_t>(NumericAsDouble()));
      if (type_ == AtomicType::kBoolean) return AtomicValue::Integer(AsBoolean() ? 1 : 0);
      if (type_ == AtomicType::kDateTime) return AtomicValue::Integer(AsDateTime());
      if (is_string()) {
        errno = 0;
        char* end = nullptr;
        const std::string& s = AsString();
        long long v = std::strtoll(s.c_str(), &end, 10);
        if (end == s.c_str() || (end && *end != '\0') || errno != 0) {
          return Status::RuntimeError("cannot cast '" + s + "' to xs:integer");
        }
        return AtomicValue::Integer(v);
      }
      break;
    }
    case AtomicType::kDecimal:
    case AtomicType::kDouble: {
      double v;
      if (is_numeric()) {
        v = NumericAsDouble();
      } else if (type_ == AtomicType::kBoolean) {
        v = AsBoolean() ? 1.0 : 0.0;
      } else if (is_string()) {
        errno = 0;
        char* end = nullptr;
        const std::string& s = AsString();
        v = std::strtod(s.c_str(), &end);
        if (end == s.c_str() || (end && *end != '\0') || errno != 0) {
          return Status::RuntimeError("cannot cast '" + s + "' to " +
                                      AtomicTypeName(target));
        }
      } else {
        break;
      }
      return target == AtomicType::kDecimal ? AtomicValue::Decimal(v)
                                            : AtomicValue::Double(v);
    }
    case AtomicType::kBoolean: {
      if (is_numeric()) return AtomicValue::Boolean(NumericAsDouble() != 0.0);
      if (is_string()) {
        const std::string& s = AsString();
        if (s == "true" || s == "1") return AtomicValue::Boolean(true);
        if (s == "false" || s == "0") return AtomicValue::Boolean(false);
        return Status::RuntimeError("cannot cast '" + s + "' to xs:boolean");
      }
      break;
    }
    case AtomicType::kDateTime: {
      if (type_ == AtomicType::kInteger) return AtomicValue::DateTime(AsInteger());
      if (is_string()) {
        ALDSP_ASSIGN_OR_RETURN(int64_t secs, ParseDateTime(AsString()));
        return AtomicValue::DateTime(secs);
      }
      break;
    }
  }
  return Status::RuntimeError(std::string("unsupported cast from ") +
                              AtomicTypeName(type_) + " to " +
                              AtomicTypeName(target));
}

bool AtomicValue::Equals(const AtomicValue& other) const {
  auto cmp = Compare(other);
  return cmp.ok() && cmp.value() == 0;
}

Result<int> AtomicValue::Compare(const AtomicValue& other) const {
  // Numeric promotion across integer/decimal/double.
  if (is_numeric() && other.is_numeric()) {
    if (type_ == AtomicType::kInteger && other.type_ == AtomicType::kInteger) {
      int64_t a = AsInteger();
      int64_t b = other.AsInteger();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericAsDouble();
    double b = other.NumericAsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    return AsString().compare(other.AsString()) < 0
               ? -1
               : (AsString() == other.AsString() ? 0 : 1);
  }
  if (type_ == AtomicType::kBoolean && other.type_ == AtomicType::kBoolean) {
    int a = AsBoolean() ? 1 : 0;
    int b = other.AsBoolean() ? 1 : 0;
    return a - b;
  }
  if (type_ == AtomicType::kDateTime && other.type_ == AtomicType::kDateTime) {
    int64_t a = AsDateTime();
    int64_t b = other.AsDateTime();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // Untyped data compares through string form against strings (handled
  // above); everything else is a dynamic error per XQuery semantics.
  return Status::RuntimeError(std::string("cannot compare ") +
                              AtomicTypeName(type_) + " with " +
                              AtomicTypeName(other.type_));
}

size_t AtomicValue::MemoryBytes() const {
  size_t base = sizeof(AtomicValue);
  if (std::holds_alternative<std::string>(repr_)) {
    base += std::get<std::string>(repr_).capacity();
  }
  return base;
}

bool operator==(const AtomicValue& a, const AtomicValue& b) {
  if (a.type() != b.type()) return a.Equals(b);
  return a.Equals(b);
}

std::string FormatDateTime(int64_t epoch_seconds) {
  // Convert epoch seconds to UTC broken-down time without <ctime> to keep
  // behaviour deterministic across platforms.
  int64_t days = epoch_seconds / 86400;
  int64_t rem = epoch_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  int year = 1970;
  while (true) {
    int ydays = IsLeapYear(year) ? 366 : 365;
    if (days >= ydays) {
      days -= ydays;
      ++year;
    } else if (days < 0) {
      --year;
      days += IsLeapYear(year) ? 366 : 365;
    } else {
      break;
    }
  }
  int month = 1;
  while (days >= DaysInMonth(year, month)) {
    days -= DaysInMonth(year, month);
    ++month;
  }
  int day = static_cast<int>(days) + 1;
  int hh = static_cast<int>(rem / 3600);
  int mm = static_cast<int>((rem % 3600) / 60);
  int ss = static_cast<int>(rem % 60);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ", year,
                month, day, hh, mm, ss);
  return buf;
}

Result<int64_t> ParseDateTime(const std::string& lexical) {
  int year, month, day, hh, mm, ss;
  int n = std::sscanf(lexical.c_str(), "%d-%d-%dT%d:%d:%d", &year, &month,
                      &day, &hh, &mm, &ss);
  if (n != 6 || month < 1 || month > 12 || day < 1 ||
      day > DaysInMonth(year, month) || hh < 0 || hh > 23 || mm < 0 ||
      mm > 59 || ss < 0 || ss > 60) {
    return Status::RuntimeError("invalid xs:dateTime literal: " + lexical);
  }
  int64_t days = 0;
  if (year >= 1970) {
    for (int y = 1970; y < year; ++y) days += IsLeapYear(y) ? 366 : 365;
  } else {
    for (int y = year; y < 1970; ++y) days -= IsLeapYear(y) ? 366 : 365;
  }
  for (int m = 1; m < month; ++m) days += DaysInMonth(year, m);
  days += day - 1;
  return days * 86400 + hh * 3600 + mm * 60 + ss;
}

}  // namespace aldsp::xml
