#include "xml/token.h"

#include <stack>

namespace aldsp::xml {

namespace {

void NodeToTokens(const XNode& node, TokenVector* out) {
  switch (node.kind()) {
    case NodeKind::kDocument:
      out->push_back(Token::StartDocument());
      for (const auto& c : node.children()) NodeToTokens(*c, out);
      out->push_back(Token::EndDocument());
      break;
    case NodeKind::kElement:
      out->push_back(Token::StartElement(node.name()));
      for (const auto& a : node.attributes()) {
        out->push_back(Token::Attribute(a->name(), a->value()));
      }
      for (const auto& c : node.children()) NodeToTokens(*c, out);
      out->push_back(Token::EndElement(node.name()));
      break;
    case NodeKind::kAttribute:
      out->push_back(Token::Attribute(node.name(), node.value()));
      break;
    case NodeKind::kText:
      out->push_back(Token::Atom(node.value()));
      break;
  }
}

}  // namespace

void ItemToTokens(const Item& item, TokenVector* out) {
  if (item.is_atomic()) {
    out->push_back(Token::Atom(item.atomic()));
  } else {
    NodeToTokens(*item.node(), out);
  }
}

void SequenceToTokens(const Sequence& seq, TokenVector* out) {
  for (const auto& item : seq) ItemToTokens(item, out);
}

Result<Sequence> TokensToSequence(TokenIterator* it) {
  Sequence result;
  std::stack<NodePtr> open;
  Token tok;
  while (it->Next(&tok)) {
    switch (tok.kind) {
      case TokenKind::kStartDocument: {
        NodePtr doc = XNode::Document();
        if (open.empty()) {
          result.emplace_back(doc);
        } else {
          return Status::RuntimeError("nested document in token stream");
        }
        open.push(doc);
        break;
      }
      case TokenKind::kEndDocument:
        if (open.empty() || open.top()->kind() != NodeKind::kDocument) {
          return Status::RuntimeError("unbalanced EndDocument token");
        }
        open.pop();
        break;
      case TokenKind::kStartElement: {
        NodePtr el = XNode::Element(tok.name);
        if (open.empty()) {
          result.emplace_back(el);
        } else {
          open.top()->AddChild(el);
        }
        open.push(el);
        break;
      }
      case TokenKind::kEndElement:
        if (open.empty() || open.top()->kind() != NodeKind::kElement ||
            open.top()->name() != tok.name) {
          return Status::RuntimeError("unbalanced EndElement token: " +
                                      tok.name);
        }
        open.pop();
        break;
      case TokenKind::kAttribute: {
        NodePtr attr = XNode::Attribute(tok.name, tok.value);
        if (open.empty()) {
          result.emplace_back(attr);
        } else {
          open.top()->AddAttribute(attr);
        }
        break;
      }
      case TokenKind::kAtom:
        if (open.empty()) {
          result.emplace_back(tok.value);
        } else {
          open.top()->AddChild(XNode::Text(tok.value));
        }
        break;
      case TokenKind::kBeginTuple:
      case TokenKind::kFieldSeparator:
      case TokenKind::kEndTuple:
        return Status::RuntimeError(
            "tuple-framing token in XML token stream");
    }
  }
  if (!open.empty()) {
    return Status::RuntimeError("token stream ended with open elements");
  }
  return result;
}

Result<Sequence> TokensToSequence(const TokenVector& tokens) {
  VectorTokenIterator it(tokens);
  return TokensToSequence(&it);
}

size_t TokenVectorMemoryBytes(const TokenVector& tokens) {
  size_t total = sizeof(TokenVector) + tokens.capacity() * sizeof(Token);
  for (const auto& t : tokens) total += t.name.capacity() + t.value.MemoryBytes();
  return total;
}

}  // namespace aldsp::xml
