#include "xml/item.h"

namespace aldsp::xml {

Sequence Atomize(const Sequence& seq) {
  Sequence out;
  out.reserve(seq.size());
  for (const auto& item : seq) out.emplace_back(item.Atomize());
  return out;
}

Result<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  const Item& first = seq.front();
  if (first.is_node()) return true;
  if (seq.size() > 1) {
    return Status::RuntimeError(
        "effective boolean value of a multi-item atomic sequence");
  }
  const AtomicValue& v = first.atomic();
  switch (v.type()) {
    case AtomicType::kBoolean:
      return v.AsBoolean();
    case AtomicType::kString:
    case AtomicType::kUntyped:
      return !v.AsString().empty();
    case AtomicType::kInteger:
      return v.AsInteger() != 0;
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return v.AsDouble() != 0.0;
    case AtomicType::kDateTime:
      return Status::RuntimeError(
          "effective boolean value of xs:dateTime is undefined");
  }
  return Status::Internal("unhandled atomic type in EBV");
}

void AppendSequence(Sequence& a, const Sequence& b) {
  a.insert(a.end(), b.begin(), b.end());
}

bool SequenceDeepEquals(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_atomic() != b[i].is_atomic()) return false;
    if (a[i].is_atomic()) {
      if (!(a[i].atomic() == b[i].atomic())) return false;
    } else {
      if (!a[i].node()->DeepEquals(*b[i].node())) return false;
    }
  }
  return true;
}

size_t SequenceMemoryBytes(const Sequence& seq) {
  size_t total = sizeof(Sequence) + seq.capacity() * sizeof(Item);
  for (const auto& item : seq) total += item.MemoryBytes();
  return total;
}

}  // namespace aldsp::xml
