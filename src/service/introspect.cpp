#include "service/introspect.h"

#include "common/string_util.h"

namespace aldsp::service {

using compiler::ExternalFunction;
using relational::ColumnDef;
using relational::ForeignKey;
using relational::TableDef;

xsd::TypePtr RowElementType(const TableDef& def) {
  std::vector<xsd::ElementField> fields;
  for (const ColumnDef& col : def.columns) {
    xsd::TypePtr el =
        xsd::XType::SimpleElement(col.name, relational::ToAtomicType(col.type));
    fields.push_back({col.name, col.nullable ? xsd::Opt(el) : xsd::One(el)});
  }
  return xsd::XType::ComplexElement(def.name, std::move(fields));
}

Status IntrospectRelationalSource(
    const std::string& fn_prefix,
    const std::shared_ptr<relational::Database>& db,
    adaptors::RelationalAdaptor* adaptor, compiler::FunctionTable* functions,
    xsd::SchemaRegistry* schemas, const std::string& vendor) {
  const std::string& source_id = db->name();
  for (const TableDef& table : db->catalog().tables()) {
    xsd::TypePtr row_type = RowElementType(table);
    if (schemas != nullptr) schemas->Register(table.name, row_type);

    // Read function: one per table or view (paper §2.1).
    std::string fn_name = fn_prefix + ":" + table.name;
    ExternalFunction fn;
    fn.name = fn_name;
    fn.return_type = xsd::Star(row_type);
    fn.properties["kind"] = "relational";
    fn.properties["source"] = source_id;
    fn.properties["table"] = table.name;
    fn.properties["vendor"] = vendor;
    if (!table.primary_key.empty()) {
      fn.properties["primary_key"] = Join(table.primary_key, ",");
    }
    ALDSP_RETURN_NOT_OK(functions->RegisterExternal(std::move(fn)));
    ALDSP_RETURN_NOT_OK(adaptor->RegisterTableFunction(fn_name, table.name));

    // Navigation functions from foreign keys (paper §2.1): a FK
    // REFERENCING.cols -> REFERENCED.cols yields a function from a
    // REFERENCED row to its REFERENCING rows.
    for (const ForeignKey& fk : table.foreign_keys) {
      const TableDef* target = db->catalog().FindTable(fk.ref_table);
      if (target == nullptr || fk.columns.size() != 1 ||
          fk.ref_columns.size() != 1) {
        continue;  // composite-key navigation is not surfaced
      }
      std::string nav_name = fn_prefix + ":get" + table.name;
      if (functions->Exists(nav_name)) continue;
      ExternalFunction nav;
      nav.name = nav_name;
      nav.param_types = {xsd::One(RowElementType(*target))};
      nav.return_type = xsd::Star(row_type);
      nav.properties["kind"] = "relational-nav";
      nav.properties["source"] = source_id;
      nav.properties["table"] = table.name;
      nav.properties["column"] = fk.columns[0];
      nav.properties["arg_table"] = fk.ref_table;
      nav.properties["arg_child"] = fk.ref_columns[0];
      nav.properties["vendor"] = vendor;
      ALDSP_RETURN_NOT_OK(functions->RegisterExternal(std::move(nav)));
      ALDSP_RETURN_NOT_OK(adaptor->RegisterNavigationFunction(
          nav_name, table.name, fk.columns[0], fk.ref_columns[0]));
    }
  }
  return Status::OK();
}

Status RegisterFunctionalSource(
    const std::string& function_name, const std::string& source_id,
    const std::string& kind, std::vector<xsd::SequenceType> param_types,
    xsd::SequenceType return_type, compiler::FunctionTable* functions,
    std::map<std::string, std::string> extra_properties) {
  ExternalFunction fn;
  fn.name = function_name;
  fn.param_types = std::move(param_types);
  fn.return_type = std::move(return_type);
  for (auto& [key, value] : extra_properties) {
    fn.properties[key] = std::move(value);
  }
  fn.properties["kind"] = kind;
  fn.properties["source"] = source_id;
  return functions->RegisterExternal(std::move(fn));
}

}  // namespace aldsp::service
