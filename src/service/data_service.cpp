#include "service/data_service.h"

#include "common/string_util.h"

namespace aldsp::service {

Result<DataService> ServiceCatalog::BuildService(
    const compiler::FunctionTable& functions, const std::string& prefix,
    const std::string& primary) {
  DataService service;
  service.name = prefix;
  std::string designated = primary;
  std::string first_read;
  for (const auto& fn : functions.user_functions()) {
    if (!StartsWith(fn.name, prefix + ":")) continue;
    if (fn.pragma_kind == "read") {
      service.read_methods.push_back(fn.name);
      if (first_read.empty()) first_read = fn.name;
      // An isPrimary-marked read method is the designated lineage
      // provider (paper §6); an explicit `primary` argument wins.
      if (designated.empty() && fn.is_primary) designated = fn.name;
    } else if (fn.pragma_kind == "navigate") {
      service.navigate_methods.push_back(fn.name);
    } else {
      service.other_methods.push_back(fn.name);
    }
  }
  if (service.read_methods.empty() && service.navigate_methods.empty() &&
      service.other_methods.empty()) {
    return Status::NotFound("no functions with prefix " + prefix);
  }
  // Default: the first read method — the "get all" function (paper §6).
  service.lineage_provider = designated.empty() ? first_read : designated;
  if (!service.lineage_provider.empty()) {
    const compiler::UserFunction* provider =
        functions.FindUser(service.lineage_provider);
    if (provider != nullptr && !provider->return_type.is_empty_sequence() &&
        provider->return_type.item != nullptr &&
        provider->return_type.item->kind() == xsd::XType::Kind::kElement) {
      service.shape = provider->return_type.item;
    }
  }
  return service;
}

Status ServiceCatalog::Register(DataService service) {
  for (auto& existing : services_) {
    if (existing.name == service.name) {
      existing = std::move(service);  // redeployment replaces
      return Status::OK();
    }
  }
  services_.push_back(std::move(service));
  return Status::OK();
}

const DataService* ServiceCatalog::Find(const std::string& name) const {
  for (const auto& s : services_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace aldsp::service
