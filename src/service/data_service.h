#ifndef ALDSP_SERVICE_DATA_SERVICE_H_
#define ALDSP_SERVICE_DATA_SERVICE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compiler/function_table.h"

namespace aldsp::service {

/// A deployed data service (paper §2.1): a coarse-grained business-object
/// type with a shape and categorized service calls. Methods are the
/// XQuery functions of one data service file, classified by their pragma
/// `kind`; the lineage provider — the function update decomposition
/// analyzes (paper §6) — is the function marked isPrimary="true", or by
/// default the first read method (the "get all" function).
struct DataService {
  std::string name;  // the functions' namespace prefix ("tns")
  std::vector<std::string> read_methods;
  std::vector<std::string> navigate_methods;
  std::vector<std::string> other_methods;
  std::string lineage_provider;

  /// Shape: the structural element type returned by the lineage provider
  /// (null when it cannot be determined).
  xsd::TypePtr shape;
};

/// Registry of deployed data services.
class ServiceCatalog {
 public:
  /// Groups the user functions with namespace prefix `prefix` into a data
  /// service, classifying methods by pragma kind and designating the
  /// lineage provider. `primary` overrides the default designation.
  Result<DataService> BuildService(const compiler::FunctionTable& functions,
                                   const std::string& prefix,
                                   const std::string& primary = "");

  Status Register(DataService service);
  const DataService* Find(const std::string& name) const;
  const std::vector<DataService>& services() const { return services_; }

 private:
  std::vector<DataService> services_;
};

}  // namespace aldsp::service

#endif  // ALDSP_SERVICE_DATA_SERVICE_H_
