#ifndef ALDSP_SERVICE_INTROSPECT_H_
#define ALDSP_SERVICE_INTROSPECT_H_

#include <map>
#include <memory>
#include <string>

#include "adaptors/relational_adaptor.h"
#include "compiler/function_table.h"
#include "relational/engine.h"
#include "xsd/types.h"

namespace aldsp::service {

/// Builds the structural row-element type for a table via the SQL→XML
/// type mapping (paper §4.4): one child element per column, typed by the
/// column type; nullable columns become optional particles (NULL = the
/// element is missing).
xsd::TypePtr RowElementType(const relational::TableDef& def);

/// Introspects a relational source (paper §2.1): for every table,
/// registers
///   - a physical data service read function `<prefix>:<TABLE>()` that
///     returns all rows, and
///   - for every foreign key pointing *at* the table, a navigation
///     function `<prefix>:get<TABLE>($row)` from the referencing row.
/// Metadata (source id, table, keys, vendor) is recorded in the external
/// functions' properties — the C++ form of the pragma annotations of
/// paper §3.2 — and invocation mappings are installed in `adaptor`.
/// Row element types are registered in `schemas`.
Status IntrospectRelationalSource(
    const std::string& fn_prefix,
    const std::shared_ptr<relational::Database>& db,
    adaptors::RelationalAdaptor* adaptor, compiler::FunctionTable* functions,
    xsd::SchemaRegistry* schemas, const std::string& vendor = "base-sql92");

/// Registers a functional (web service / external function / custom
/// queryable) source operation as an external XQuery function.
/// `extra_properties` carries source-specific metadata — e.g. a custom
/// queryable source's `pushdown_ops` capability declaration (§9).
Status RegisterFunctionalSource(
    const std::string& function_name, const std::string& source_id,
    const std::string& kind, std::vector<xsd::SequenceType> param_types,
    xsd::SequenceType return_type, compiler::FunctionTable* functions,
    std::map<std::string, std::string> extra_properties = {});

}  // namespace aldsp::service

#endif  // ALDSP_SERVICE_INTROSPECT_H_
