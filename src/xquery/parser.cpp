#include "xquery/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace aldsp::xquery {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Module> ParseModuleText(DiagnosticBag* bag, bool recover) {
    Module module;
    SkipWs();
    // Optional version declaration.
    if (MatchWord("xquery")) {
      if (!MatchWord("version")) return Fail("expected 'version'");
      ALDSP_ASSIGN_OR_RETURN(std::string version, ParseStringLiteral());
      module.version = version;
      if (MatchWord("encoding")) {
        ALDSP_ASSIGN_OR_RETURN(std::string enc, ParseStringLiteral());
        (void)enc;
      }
      if (!MatchSymbol(";")) return Fail("expected ';' after version");
    }
    // Prolog declarations and function declarations.
    while (true) {
      SkipWs();
      if (Eof()) break;
      size_t decl_start = pos_;
      Status st = ParseDeclaration(&module);
      if (!st.ok()) {
        if (!recover) return st;
        if (bag != nullptr) {
          bag->AddError(StatusCode::kParseError, st.message(), Location());
        }
        // Recovery (paper §4.1): skip to the end of the declaration — the
        // first ';' token outside strings/comments — and continue.
        pos_ = decl_start;
        SkipToSemicolon();
      }
    }
    if (!recover && bag != nullptr && bag->has_errors()) {
      return bag->FirstError();
    }
    return module;
  }

  Result<ExprPtr> ParseExpressionText() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    SkipWs();
    if (!Eof()) return Fail("trailing input after expression");
    return e;
  }

 private:
  // ----- Character-level helpers --------------------------------------

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return Eof() ? '\0' : text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off >= text_.size() ? '\0' : text_[pos_ + off];
  }
  void Advance() {
    if (Eof()) return;
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  void AdvanceN(size_t n) {
    for (size_t i = 0; i < n; ++i) Advance();
  }

  SourceLocation Location() const { return {line_, col_}; }

  Status Fail(const std::string& message) const {
    return Status::ParseError(message + " at " + Location().ToString());
  }

  // Skips whitespace and comments. XQuery comments are "(: ... :)" and
  // nest; ALDSP pragmas "(:: ... ::)" are captured into pending_pragmas_.
  void SkipWs() {
    while (!Eof()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '(' && PeekAt(1) == ':') {
        if (PeekAt(2) == ':') {
          CapturePragma();
        } else {
          SkipComment();
        }
        continue;
      }
      break;
    }
  }

  void SkipComment() {
    // At "(:"; comments nest.
    AdvanceN(2);
    int depth = 1;
    while (!Eof() && depth > 0) {
      if (Peek() == '(' && PeekAt(1) == ':') {
        depth++;
        AdvanceN(2);
      } else if (Peek() == ':' && PeekAt(1) == ')') {
        depth--;
        AdvanceN(2);
      } else {
        Advance();
      }
    }
  }

  void CapturePragma() {
    // At "(::"; capture raw text until "::)" and parse loosely.
    AdvanceN(3);
    std::string raw;
    while (!Eof() && !(Peek() == ':' && PeekAt(1) == ':' && PeekAt(2) == ')')) {
      raw += Peek();
      Advance();
    }
    AdvanceN(3);
    Pragma pragma;
    size_t i = 0;
    auto skip = [&] {
      while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i])))
        ++i;
    };
    auto word = [&]() {
      std::string w;
      while (i < raw.size() &&
             !std::isspace(static_cast<unsigned char>(raw[i])) &&
             raw[i] != '=') {
        w += raw[i++];
      }
      return w;
    };
    skip();
    pragma.name = word();
    if (pragma.name == "pragma") {
      // "(::pragma function kind=... ::)" — the marker word is "pragma",
      // the pragma name is the next word.
      skip();
      pragma.name = word();
    }
    while (true) {
      skip();
      if (i >= raw.size()) break;
      std::string key = word();
      skip();
      if (i < raw.size() && raw[i] == '=') {
        ++i;
        skip();
        std::string value;
        if (i < raw.size() && (raw[i] == '"' || raw[i] == '\'')) {
          char q = raw[i++];
          while (i < raw.size() && raw[i] != q) value += raw[i++];
          if (i < raw.size()) ++i;
        } else {
          value = word();
        }
        pragma.attrs.emplace_back(key, value);
      } else if (!key.empty()) {
        pragma.attrs.emplace_back("target", key);
      } else {
        break;
      }
    }
    pending_pragmas_.push_back(std::move(pragma));
  }

  void SkipToSemicolon() {
    // Used by recovery: consume until ';' at comment/string top level.
    while (!Eof()) {
      char c = Peek();
      if (c == ';') {
        Advance();
        return;
      }
      if (c == '(' && PeekAt(1) == ':') {
        if (PeekAt(2) == ':') {
          CapturePragma();
        } else {
          SkipComment();
        }
        continue;
      }
      if (c == '"' || c == '\'') {
        char q = c;
        Advance();
        while (!Eof() && Peek() != q) Advance();
        if (!Eof()) Advance();
        continue;
      }
      Advance();
    }
  }

  // Matches a keyword (word boundary applies).
  bool MatchWord(const std::string& word) {
    SkipWs();
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    char after = PeekAt(word.size());
    if (IsNameChar(after) || after == ':') return false;
    AdvanceN(word.size());
    return true;
  }

  bool PeekWord(const std::string& word) {
    SkipWs();
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    char after = PeekAt(word.size());
    return !(IsNameChar(after) || after == ':');
  }

  bool MatchSymbol(const std::string& sym) {
    SkipWs();
    if (text_.compare(pos_, sym.size(), sym) != 0) return false;
    AdvanceN(sym.size());
    return true;
  }

  bool PeekSymbol(const std::string& sym) {
    SkipWs();
    return text_.compare(pos_, sym.size(), sym) == 0;
  }

  Status Expect(const std::string& sym) {
    if (!MatchSymbol(sym)) return Fail("expected '" + sym + "'");
    return Status::OK();
  }

  Result<std::string> ParseNCName() {
    SkipWs();
    if (!IsNameStartChar(Peek())) return Fail("expected a name");
    std::string name;
    while (IsNameChar(Peek())) {
      name += Peek();
      Advance();
    }
    return name;
  }

  Result<std::string> ParseQName() {
    ALDSP_ASSIGN_OR_RETURN(std::string name, ParseNCName());
    if (Peek() == ':' && IsNameStartChar(PeekAt(1))) {
      Advance();
      ALDSP_ASSIGN_OR_RETURN(std::string local, ParseNCName());
      return name + ":" + local;
    }
    return name;
  }

  Result<std::string> ParseStringLiteral() {
    SkipWs();
    char q = Peek();
    if (q != '"' && q != '\'') return Fail("expected a string literal");
    Advance();
    std::string out;
    while (!Eof()) {
      char c = Peek();
      if (c == q) {
        if (PeekAt(1) == q) {  // doubled quote escape
          out += q;
          AdvanceN(2);
          continue;
        }
        Advance();
        return out;
      }
      out += c;
      Advance();
    }
    return Fail("unterminated string literal");
  }

  // ----- Types ---------------------------------------------------------

  Result<TypeRef> ParseTypeRef() {
    SkipWs();
    TypeRef t;
    if (MatchWord("empty-sequence")) {
      ALDSP_RETURN_NOT_OK(Expect("("));
      ALDSP_RETURN_NOT_OK(Expect(")"));
      t.kind = TypeRef::Kind::kEmpty;
      return t;
    }
    if (MatchWord("item")) {
      ALDSP_RETURN_NOT_OK(Expect("("));
      ALDSP_RETURN_NOT_OK(Expect(")"));
      t.kind = TypeRef::Kind::kAnyItem;
    } else if (MatchWord("node")) {
      ALDSP_RETURN_NOT_OK(Expect("("));
      ALDSP_RETURN_NOT_OK(Expect(")"));
      t.kind = TypeRef::Kind::kAnyNode;
    } else if (MatchWord("element")) {
      ALDSP_RETURN_NOT_OK(Expect("("));
      ALDSP_ASSIGN_OR_RETURN(t.name, ParseQName());
      if (MatchSymbol(",")) {
        ALDSP_ASSIGN_OR_RETURN(std::string content, ParseQName());
        (void)content;  // element(E, ANYTYPE) treated as element(E)
      }
      ALDSP_RETURN_NOT_OK(Expect(")"));
      t.kind = TypeRef::Kind::kElement;
    } else if (MatchWord("schema-element")) {
      ALDSP_RETURN_NOT_OK(Expect("("));
      ALDSP_ASSIGN_OR_RETURN(t.name, ParseQName());
      ALDSP_RETURN_NOT_OK(Expect(")"));
      t.kind = TypeRef::Kind::kSchemaElement;
    } else {
      ALDSP_ASSIGN_OR_RETURN(t.name, ParseQName());
      t.kind = TypeRef::Kind::kAtomic;
    }
    // Occurrence indicator.
    SkipWs();
    if (Peek() == '?') {
      Advance();
      t.occurrence = xsd::Occurrence::kOptional;
    } else if (Peek() == '*') {
      Advance();
      t.occurrence = xsd::Occurrence::kStar;
    } else if (Peek() == '+') {
      Advance();
      t.occurrence = xsd::Occurrence::kPlus;
    }
    return t;
  }

  // ----- Prolog --------------------------------------------------------

  Status ParseDeclaration(Module* module) {
    SkipWs();
    if (Eof()) return Status::OK();
    if (MatchWord("declare")) {
      if (MatchWord("namespace")) {
        NamespaceDecl ns;
        ALDSP_ASSIGN_OR_RETURN(ns.prefix, ParseNCName());
        ALDSP_RETURN_NOT_OK(Expect("="));
        ALDSP_ASSIGN_OR_RETURN(ns.uri, ParseStringLiteral());
        ALDSP_RETURN_NOT_OK(Expect(";"));
        module->namespaces.push_back(std::move(ns));
        return Status::OK();
      }
      if (MatchWord("function")) return ParseFunctionDecl(module);
      return Fail("unsupported declaration after 'declare'");
    }
    if (MatchWord("import")) {
      if (!MatchWord("schema")) return Fail("expected 'schema' after 'import'");
      NamespaceDecl ns;
      if (MatchWord("namespace")) {
        ALDSP_ASSIGN_OR_RETURN(ns.prefix, ParseNCName());
        ALDSP_RETURN_NOT_OK(Expect("="));
      }
      ALDSP_ASSIGN_OR_RETURN(ns.uri, ParseStringLiteral());
      if (MatchWord("at")) {
        ALDSP_ASSIGN_OR_RETURN(std::string loc, ParseStringLiteral());
        (void)loc;
      }
      ALDSP_RETURN_NOT_OK(Expect(";"));
      module->schema_imports.push_back(std::move(ns));
      return Status::OK();
    }
    return Fail("expected a declaration");
  }

  Status ParseFunctionDecl(Module* module) {
    FunctionDecl fn;
    fn.loc = Location();
    fn.pragmas = std::move(pending_pragmas_);
    pending_pragmas_.clear();
    ALDSP_ASSIGN_OR_RETURN(fn.name, ParseQName());
    ALDSP_RETURN_NOT_OK(Expect("("));
    if (!PeekSymbol(")")) {
      while (true) {
        Param p;
        ALDSP_RETURN_NOT_OK(Expect("$"));
        ALDSP_ASSIGN_OR_RETURN(p.name, ParseQName());
        if (MatchWord("as")) {
          ALDSP_ASSIGN_OR_RETURN(p.type, ParseTypeRef());
        } else {
          p.type.kind = TypeRef::Kind::kAnyItem;
          p.type.occurrence = xsd::Occurrence::kStar;
        }
        fn.params.push_back(std::move(p));
        if (!MatchSymbol(",")) break;
      }
    }
    ALDSP_RETURN_NOT_OK(Expect(")"));
    if (MatchWord("as")) {
      ALDSP_ASSIGN_OR_RETURN(fn.return_type, ParseTypeRef());
    } else {
      fn.return_type.kind = TypeRef::Kind::kAnyItem;
      fn.return_type.occurrence = xsd::Occurrence::kStar;
    }
    if (MatchWord("external")) {
      fn.external = true;
      ALDSP_RETURN_NOT_OK(Expect(";"));
      module->functions.push_back(std::move(fn));
      return Status::OK();
    }
    ALDSP_RETURN_NOT_OK(Expect("{"));
    // Body errors should not lose the signature (paper §4.1): keep the
    // declaration with an error body if parsing the body fails.
    auto body = ParseExpr();
    if (!body.ok()) {
      fn.body = MakeError(body.status().message(), {}, Location());
      module->functions.push_back(std::move(fn));
      return body.status();
    }
    fn.body = body.value();
    ALDSP_RETURN_NOT_OK(Expect("}"));
    ALDSP_RETURN_NOT_OK(Expect(";"));
    module->functions.push_back(std::move(fn));
    return Status::OK();
  }

  // ----- Expressions ---------------------------------------------------

  Result<ExprPtr> ParseExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (!PeekSymbol(",")) return first;
    std::vector<ExprPtr> parts = {first};
    while (MatchSymbol(",")) {
      ALDSP_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      parts.push_back(next);
    }
    return MakeSequence(std::move(parts), first->loc);
  }

  Result<ExprPtr> ParseExprSingle() {
    SkipWs();
    if (PeekWord("for") || PeekWord("let")) return ParseFLWOR();
    if (PeekWord("some") || PeekWord("every")) return ParseQuantified();
    if (PeekWord("if") && LookaheadIsIfParen()) return ParseIf();
    return ParseOrExpr();
  }

  bool LookaheadIsIfParen() {
    // Distinguish `if (cond) then ...` from a path starting with an
    // element named "if" (not supported anyway, but be safe).
    size_t save = pos_;
    int l = line_, c = col_;
    bool ok = MatchWord("if") && PeekSymbol("(");
    pos_ = save;
    line_ = l;
    col_ = c;
    return ok;
  }

  Result<ExprPtr> ParseFLWOR() {
    SourceLocation loc = Location();
    std::vector<Clause> clauses;
    while (true) {
      if (MatchWord("for")) {
        while (true) {
          Clause cl;
          cl.kind = Clause::Kind::kFor;
          ALDSP_RETURN_NOT_OK(Expect("$"));
          ALDSP_ASSIGN_OR_RETURN(cl.var, ParseQName());
          if (MatchWord("at")) {
            ALDSP_RETURN_NOT_OK(Expect("$"));
            ALDSP_ASSIGN_OR_RETURN(cl.positional_var, ParseQName());
          }
          if (!MatchWord("in")) return Fail("expected 'in' in for clause");
          ALDSP_ASSIGN_OR_RETURN(cl.expr, ParseExprSingle());
          clauses.push_back(std::move(cl));
          if (!MatchSymbol(",")) break;
        }
        continue;
      }
      if (MatchWord("let")) {
        while (true) {
          Clause cl;
          cl.kind = Clause::Kind::kLet;
          ALDSP_RETURN_NOT_OK(Expect("$"));
          ALDSP_ASSIGN_OR_RETURN(cl.var, ParseQName());
          ALDSP_RETURN_NOT_OK(Expect(":="));
          ALDSP_ASSIGN_OR_RETURN(cl.expr, ParseExprSingle());
          clauses.push_back(std::move(cl));
          if (!MatchSymbol(",")) break;
        }
        continue;
      }
      if (MatchWord("where")) {
        Clause cl;
        cl.kind = Clause::Kind::kWhere;
        ALDSP_ASSIGN_OR_RETURN(cl.expr, ParseExprSingle());
        clauses.push_back(std::move(cl));
        continue;
      }
      if (PeekWord("group")) {
        size_t save = pos_;
        int l = line_, c = col_;
        MatchWord("group");
        Clause cl;
        cl.kind = Clause::Kind::kGroupBy;
        // `group ($v1 as $v2 (, ...))? by key (as $v)? (, ...)*`
        if (PeekSymbol("$")) {
          while (true) {
            Clause::GroupVar gv;
            ALDSP_RETURN_NOT_OK(Expect("$"));
            ALDSP_ASSIGN_OR_RETURN(gv.in_var, ParseQName());
            if (!MatchWord("as")) return Fail("expected 'as' in group clause");
            ALDSP_RETURN_NOT_OK(Expect("$"));
            ALDSP_ASSIGN_OR_RETURN(gv.out_var, ParseQName());
            cl.group_vars.push_back(std::move(gv));
            if (!MatchSymbol(",")) break;
          }
        }
        if (!MatchWord("by")) {
          // Not a group clause after all (e.g. a path step named group —
          // unlikely); rewind and fall through to `return` handling.
          pos_ = save;
          line_ = l;
          col_ = c;
          break;
        }
        while (true) {
          Clause::GroupKey gk;
          ALDSP_ASSIGN_OR_RETURN(gk.expr, ParseExprSingle());
          if (MatchWord("as")) {
            ALDSP_RETURN_NOT_OK(Expect("$"));
            ALDSP_ASSIGN_OR_RETURN(gk.as_var, ParseQName());
          }
          cl.group_keys.push_back(std::move(gk));
          if (!MatchSymbol(",")) break;
        }
        clauses.push_back(std::move(cl));
        continue;
      }
      if (MatchWord("order")) {
        if (!MatchWord("by")) return Fail("expected 'by' after 'order'");
        Clause cl;
        cl.kind = Clause::Kind::kOrderBy;
        while (true) {
          Clause::OrderKey ok;
          ALDSP_ASSIGN_OR_RETURN(ok.expr, ParseExprSingle());
          if (MatchWord("descending")) {
            ok.descending = true;
          } else {
            MatchWord("ascending");
          }
          cl.order_keys.push_back(std::move(ok));
          if (!MatchSymbol(",")) break;
        }
        clauses.push_back(std::move(cl));
        continue;
      }
      break;
    }
    if (clauses.empty()) return Fail("expected a FLWOR clause");
    if (!MatchWord("return")) return Fail("expected 'return' in FLWOR");
    ALDSP_ASSIGN_OR_RETURN(ExprPtr ret, ParseExprSingle());
    return MakeFLWOR(std::move(clauses), std::move(ret), loc);
  }

  Result<ExprPtr> ParseQuantified() {
    SourceLocation loc = Location();
    bool is_every = false;
    if (MatchWord("some")) {
      is_every = false;
    } else if (MatchWord("every")) {
      is_every = true;
    } else {
      return Fail("expected 'some' or 'every'");
    }
    ALDSP_RETURN_NOT_OK(Expect("$"));
    ALDSP_ASSIGN_OR_RETURN(std::string var, ParseQName());
    if (!MatchWord("in")) return Fail("expected 'in' in quantified expr");
    ALDSP_ASSIGN_OR_RETURN(ExprPtr in, ParseExprSingle());
    // The paper's Table 2(h) example spells it "satisifes"; accept the
    // correct spelling only.
    if (!MatchWord("satisfies")) return Fail("expected 'satisfies'");
    ALDSP_ASSIGN_OR_RETURN(ExprPtr sat, ParseExprSingle());
    return MakeQuantified(is_every, std::move(var), std::move(in),
                          std::move(sat), loc);
  }

  Result<ExprPtr> ParseIf() {
    SourceLocation loc = Location();
    MatchWord("if");
    ALDSP_RETURN_NOT_OK(Expect("("));
    ALDSP_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    ALDSP_RETURN_NOT_OK(Expect(")"));
    if (!MatchWord("then")) return Fail("expected 'then'");
    ALDSP_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExprSingle());
    if (!MatchWord("else")) return Fail("expected 'else'");
    ALDSP_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExprSingle());
    return MakeIf(std::move(cond), std::move(then_e), std::move(else_e), loc);
  }

  Result<ExprPtr> ParseOrExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
    while (MatchWord("or")) {
      ALDSP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
      lhs = MakeLogical("or", std::move(lhs), std::move(rhs), lhs->loc);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAndExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparisonExpr());
    while (MatchWord("and")) {
      ALDSP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparisonExpr());
      lhs = MakeLogical("and", std::move(lhs), std::move(rhs), lhs->loc);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparisonExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditiveExpr());
    // Value comparisons.
    for (const char* op : {"eq", "ne", "lt", "le", "gt", "ge"}) {
      if (MatchWord(op)) {
        ALDSP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditiveExpr());
        return MakeComparison(op, false, std::move(lhs), std::move(rhs),
                              lhs->loc);
      }
    }
    // General comparisons (multi-char first).
    for (const char* op : {"!=", "<=", ">=", "=", "<", ">"}) {
      // `<` could open a direct constructor only in primary position, so
      // here it is safe to treat as comparison.
      if (MatchSymbol(op)) {
        ALDSP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditiveExpr());
        return MakeComparison(op, true, std::move(lhs), std::move(rhs),
                              lhs->loc);
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditiveExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicativeExpr());
    while (true) {
      SkipWs();
      if (Peek() == '+') {
        Advance();
      } else if (Peek() == '-') {
        Advance();
        ALDSP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicativeExpr());
        lhs = MakeArith("-", std::move(lhs), std::move(rhs), lhs->loc);
        continue;
      } else {
        break;
      }
      ALDSP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicativeExpr());
      lhs = MakeArith("+", std::move(lhs), std::move(rhs), lhs->loc);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicativeExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnaryExpr());
    while (true) {
      std::string op;
      if (MatchWord("div")) {
        op = "div";
      } else if (MatchWord("idiv")) {
        op = "idiv";
      } else if (MatchWord("mod")) {
        op = "mod";
      } else {
        SkipWs();
        if (Peek() == '*') {
          Advance();
          op = "*";
        } else {
          break;
        }
      }
      ALDSP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs), lhs->loc);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnaryExpr() {
    SkipWs();
    if (Peek() == '-' && !std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
      SourceLocation loc = Location();
      Advance();
      ALDSP_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnaryExpr());
      return MakeArith("-", MakeLiteral(xml::AtomicValue::Integer(0), loc),
                       std::move(arg), loc);
    }
    return ParseCastExpr();
  }

  Result<ExprPtr> ParseCastExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr input, ParsePathExpr());
    if (PeekWord("cast")) {
      MatchWord("cast");
      if (!MatchWord("as")) return Fail("expected 'as' after 'cast'");
      ALDSP_ASSIGN_OR_RETURN(TypeRef t, ParseTypeRef());
      return MakeCastAs(std::move(input), std::move(t), input->loc);
    }
    if (PeekWord("castable")) {
      MatchWord("castable");
      if (!MatchWord("as")) return Fail("expected 'as' after 'castable'");
      ALDSP_ASSIGN_OR_RETURN(TypeRef t, ParseTypeRef());
      return MakeCastable(std::move(input), std::move(t), input->loc);
    }
    if (PeekWord("instance")) {
      MatchWord("instance");
      if (!MatchWord("of")) return Fail("expected 'of' after 'instance'");
      ALDSP_ASSIGN_OR_RETURN(TypeRef t, ParseTypeRef());
      return MakeInstanceOf(std::move(input), std::move(t), input->loc);
    }
    return input;
  }

  Result<ExprPtr> ParsePathExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr step, ParseStepExpr());
    while (true) {
      SkipWs();
      // '/' path separator — but not "//" (descendant; unsupported) and
      // not inside a constructor tail.
      if (Peek() == '/' && PeekAt(1) != '/' && PeekAt(1) != '>') {
        Advance();
        SkipWs();
        bool attribute = false;
        if (Peek() == '@') {
          Advance();
          attribute = true;
        }
        ALDSP_ASSIGN_OR_RETURN(std::string name, ParseQName());
        step = MakePathStep(std::move(step), std::move(name), attribute,
                            step->loc);
        // Predicates on the step.
        while (PeekSymbol("[")) {
          MatchSymbol("[");
          ALDSP_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
          ALDSP_RETURN_NOT_OK(Expect("]"));
          step = MakeFilter(std::move(step), std::move(pred), step->loc);
        }
        continue;
      }
      break;
    }
    return step;
  }

  Result<ExprPtr> ParseStepExpr() {
    ALDSP_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimaryExpr());
    while (PeekSymbol("[")) {
      MatchSymbol("[");
      ALDSP_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      ALDSP_RETURN_NOT_OK(Expect("]"));
      primary = MakeFilter(std::move(primary), std::move(pred), primary->loc);
    }
    return primary;
  }

  Result<ExprPtr> ParsePrimaryExpr() {
    SkipWs();
    SourceLocation loc = Location();
    char c = Peek();
    if (c == '$') {
      Advance();
      ALDSP_ASSIGN_OR_RETURN(std::string name, ParseQName());
      return MakeVarRef(std::move(name), loc);
    }
    if (c == '"' || c == '\'') {
      ALDSP_ASSIGN_OR_RETURN(std::string s, ParseStringLiteral());
      return MakeLiteral(xml::AtomicValue::String(std::move(s)), loc);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(PeekAt(1)))) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(PeekAt(1))))) {
      return ParseNumericLiteral();
    }
    if (c == '(') {
      Advance();
      SkipWs();
      if (Peek() == ')') {
        Advance();
        return MakeEmptySequence(loc);
      }
      ALDSP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      ALDSP_RETURN_NOT_OK(Expect(")"));
      return inner;
    }
    if (c == '<' && IsNameStartChar(PeekAt(1))) {
      return ParseDirectConstructor();
    }
    if (IsNameStartChar(c)) {
      ALDSP_ASSIGN_OR_RETURN(std::string name, ParseQName());
      SkipWs();
      if (Peek() == '(') {
        Advance();
        std::vector<ExprPtr> args;
        SkipWs();
        if (Peek() != ')') {
          while (true) {
            ALDSP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
            args.push_back(std::move(arg));
            if (!MatchSymbol(",")) break;
          }
        }
        ALDSP_RETURN_NOT_OK(Expect(")"));
        return MakeFunctionCall(std::move(name), std::move(args), loc);
      }
      // A bare name in expression position is a child step on the context
      // item — our subset only supports this inside predicates, where the
      // context is the filtered item: CUSTOMER()[CID eq $id].
      return MakePathStep(MakeVarRef(".", loc), std::move(name), false, loc);
    }
    if (c == '@') {
      Advance();
      ALDSP_ASSIGN_OR_RETURN(std::string name, ParseQName());
      return MakePathStep(MakeVarRef(".", loc), std::move(name), true, loc);
    }
    if (c == '.') {
      Advance();
      return MakeVarRef(".", loc);
    }
    return Fail("unexpected character '" + std::string(1, c) +
                "' in expression");
  }

  Result<ExprPtr> ParseNumericLiteral() {
    SourceLocation loc = Location();
    std::string num;
    if (Peek() == '-') {
      num += '-';
      Advance();
    }
    bool is_decimal = false;
    bool is_double = false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      num += Peek();
      Advance();
    }
    if (Peek() == '.') {
      is_decimal = true;
      num += '.';
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Peek();
        Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_double = true;
      num += 'e';
      Advance();
      if (Peek() == '+' || Peek() == '-') {
        num += Peek();
        Advance();
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Peek();
        Advance();
      }
    }
    if (is_double) {
      return MakeLiteral(xml::AtomicValue::Double(std::stod(num)), loc);
    }
    if (is_decimal) {
      return MakeLiteral(xml::AtomicValue::Decimal(std::stod(num)), loc);
    }
    return MakeLiteral(xml::AtomicValue::Integer(std::stoll(num)), loc);
  }

  // ----- Direct constructors -------------------------------------------

  // Parses `<Name ...>` where Peek() == '<'. Supports the ALDSP `<Name?>`
  // conditional-construction extension on both elements and attributes.
  Result<ExprPtr> ParseDirectConstructor() {
    SourceLocation loc = Location();
    Advance();  // '<'
    ALDSP_ASSIGN_OR_RETURN(std::string name, ParseQName());
    bool conditional = false;
    std::vector<ExprPtr> content;
    // Attributes.
    while (true) {
      SkipRawWs();
      char c = Peek();
      if (c == '?' && (PeekAt(1) == '>' || std::isspace(static_cast<unsigned char>(PeekAt(1))))) {
        conditional = true;
        Advance();
        continue;
      }
      if (c == '/') {
        Advance();
        if (Peek() != '>') return Fail("expected '>' after '/'");
        Advance();
        return MakeElementCtor(std::move(name), std::move(content), conditional,
                               loc);
      }
      if (c == '>') {
        Advance();
        break;
      }
      if (!IsNameStartChar(c)) return Fail("expected attribute or '>' in tag");
      ALDSP_ASSIGN_OR_RETURN(std::string attr_name, ParseQName());
      bool attr_conditional = false;
      if (Peek() == '?') {
        attr_conditional = true;
        Advance();
      }
      SkipRawWs();
      if (Peek() != '=') return Fail("expected '=' after attribute name");
      Advance();
      SkipRawWs();
      char q = Peek();
      if (q != '"' && q != '\'') return Fail("expected quoted attribute value");
      Advance();
      ALDSP_ASSIGN_OR_RETURN(ExprPtr value, ParseAttrValueContent(q));
      content.insert(content.begin() + NumLeadingAttributes(content),
                     MakeAttributeCtor(attr_name, std::move(value),
                                       attr_conditional, loc));
    }
    // Element content until matching end tag.
    ALDSP_RETURN_NOT_OK(ParseElementContent(name, &content));
    return MakeElementCtor(std::move(name), std::move(content), conditional,
                           loc);
  }

  static size_t NumLeadingAttributes(const std::vector<ExprPtr>& content) {
    size_t n = 0;
    while (n < content.size() &&
           content[n]->kind == ExprKind::kAttributeCtor) {
      ++n;
    }
    return n;
  }

  // Whitespace inside tags (no comment handling).
  void SkipRawWs() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
  }

  Result<ExprPtr> ParseAttrValueContent(char quote) {
    // Mix of literal text and {expr}; multiple parts concatenate.
    std::vector<ExprPtr> parts;
    std::string text;
    SourceLocation loc = Location();
    auto flush = [&] {
      if (!text.empty()) {
        parts.push_back(MakeLiteral(xml::AtomicValue::String(text), loc));
        text.clear();
      }
    };
    while (true) {
      if (Eof()) return Fail("unterminated attribute value");
      char c = Peek();
      if (c == quote) {
        Advance();
        break;
      }
      if (c == '{') {
        if (PeekAt(1) == '{') {
          text += '{';
          AdvanceN(2);
          continue;
        }
        Advance();
        flush();
        ALDSP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        ALDSP_RETURN_NOT_OK(Expect("}"));
        parts.push_back(std::move(e));
        continue;
      }
      if (c == '}' && PeekAt(1) == '}') {
        text += '}';
        AdvanceN(2);
        continue;
      }
      text += c;
      Advance();
    }
    flush();
    if (parts.empty()) {
      return MakeLiteral(xml::AtomicValue::String(""), loc);
    }
    if (parts.size() == 1) return parts[0];
    return MakeFunctionCall("fn:concat", std::move(parts), loc);
  }

  Status ParseElementContent(const std::string& name,
                             std::vector<ExprPtr>* content) {
    std::string text;
    SourceLocation loc = Location();
    auto flush = [&] {
      // Boundary whitespace between markup is stripped (data-centric
      // whitespace handling).
      std::string_view trimmed = Trim(text);
      if (!trimmed.empty()) {
        content->push_back(
            MakeLiteral(xml::AtomicValue::String(std::string(trimmed)), loc));
      }
      text.clear();
    };
    while (true) {
      if (Eof()) return Fail("unterminated element <" + name + ">");
      char c = Peek();
      if (c == '<') {
        if (PeekAt(1) == '/') {
          flush();
          AdvanceN(2);
          ALDSP_ASSIGN_OR_RETURN(std::string end_name, ParseQName());
          SkipRawWs();
          if (Peek() != '>') return Fail("expected '>' in end tag");
          Advance();
          if (end_name != name) {
            return Fail("mismatched end tag </" + end_name + "> for <" + name +
                        ">");
          }
          return Status::OK();
        }
        flush();
        ALDSP_ASSIGN_OR_RETURN(ExprPtr child, ParseDirectConstructor());
        content->push_back(std::move(child));
        continue;
      }
      if (c == '{') {
        if (PeekAt(1) == '{') {
          text += '{';
          AdvanceN(2);
          continue;
        }
        Advance();
        flush();
        ALDSP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        ALDSP_RETURN_NOT_OK(Expect("}"));
        content->push_back(std::move(e));
        continue;
      }
      if (c == '}' && PeekAt(1) == '}') {
        text += '}';
        AdvanceN(2);
        continue;
      }
      text += c;
      Advance();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  std::vector<Pragma> pending_pragmas_;
};

}  // namespace

Result<Module> ParseModule(const std::string& text, DiagnosticBag* bag,
                           bool recover) {
  Parser parser(text);
  return parser.ParseModuleText(bag, recover);
}

Result<Module> ParseModule(const std::string& text) {
  DiagnosticBag bag;
  return ParseModule(text, &bag, /*recover=*/false);
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  Parser parser(text);
  return parser.ParseExpressionText();
}

}  // namespace aldsp::xquery
