#ifndef ALDSP_XQUERY_PARSER_H_
#define ALDSP_XQUERY_PARSER_H_

#include <string>

#include "common/diagnostics.h"
#include "common/result.h"
#include "xquery/ast.h"

namespace aldsp::xquery {

/// Parses a complete data service file (prolog + function declarations).
///
/// In fail-fast mode (`recover` == false, the server runtime path) the
/// first syntax error aborts the parse. In recovery mode (`recover` ==
/// true, the design-time XQuery editor path of paper §4.1) a syntax error
/// inside a declaration causes the parser to skip to the end of that
/// declaration (the next ';') and continue, reporting the error in `bag`;
/// functions whose signature parsed are retained even when their body did
/// not.
Result<Module> ParseModule(const std::string& text, DiagnosticBag* bag,
                           bool recover);

/// Fail-fast convenience wrapper.
Result<Module> ParseModule(const std::string& text);

/// Parses a standalone (ad hoc) query expression with no prolog.
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace aldsp::xquery

#endif  // ALDSP_XQUERY_PARSER_H_
