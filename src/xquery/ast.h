#ifndef ALDSP_XQUERY_AST_H_
#define ALDSP_XQUERY_AST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "relational/sql_ast.h"
#include "xml/value.h"
#include "xsd/types.h"

namespace aldsp::xquery {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// A reference to a sequence type as written in source
/// ("element(ns0:PROFILE)*", "xs:string?", "item()*", "empty-sequence()").
/// Resolved against the schema registry during compilation.
struct TypeRef {
  enum class Kind {
    kAtomic,         // xs:NAME
    kElement,        // element(NAME) / element(NAME, ANYTYPE)
    kSchemaElement,  // schema-element(NAME): must exist in schema context
    kAnyItem,        // item()
    kAnyNode,        // node()
    kEmpty,          // empty-sequence()
  };
  Kind kind = Kind::kAnyItem;
  std::string name;
  xsd::Occurrence occurrence = xsd::Occurrence::kOne;

  std::string ToString() const;
};

/// Expression node kinds. The parser produces these directly; compilation
/// phases (normalization, type check, optimization) rewrite the same tree.
enum class ExprKind {
  kLiteral,          // atomic constant
  kEmptySequence,    // ()
  kSequence,         // comma operator: children are the concatenated parts
  kVarRef,           // $name
  kFLWOR,            // for/let/where/group/order/return
  kPathStep,         // children[0]/NAME, children[0]/@NAME, fn-style steps
  kFilter,           // children[0][predicate] — predicate is children[1]
  kElementCtor,      // <NAME attr...>{content}</NAME>; children = content
  kAttributeCtor,    // attribute NAME { children[0] } (inside element ctor)
  kIf,               // children: cond, then, else
  kQuantified,       // some/every $v in children[0] satisfies children[1]
  kComparison,       // value (eq..) or general (=, !=, <, ...) comparison
  kArith,            // + - * div idiv mod
  kLogical,          // and / or
  kFunctionCall,     // fn:*, fn-bea:*, user functions, source functions
  kCastAs,           // children[0] cast as TypeRef
  kInstanceOf,       // children[0] instance of TypeRef
  kCastable,         // children[0] castable as TypeRef
  kTypematch,        // internal: runtime check inserted by optimistic typing
  kSqlQuery,         // internal: pushed-down SQL region (optimizer output)
  kCustomQuery,      // internal: pushed filter for a custom queryable source
  kError,            // internal: placeholder from design-time error recovery
};

const char* ExprKindName(ExprKind kind);

/// Cross-source join methods of the ALDSP runtime (paper §5.2): nested
/// loop, index nested loop, and PP-k (parameter passing in blocks of k)
/// layered over either. kAuto lets the optimizer decide.
enum class JoinMethod {
  kAuto,
  kNestedLoop,
  kIndexNestedLoop,
  kPPkNestedLoop,
  kPPkIndexNestedLoop,
};

const char* JoinMethodName(JoinMethod m);

struct PPkFetchSpec;

/// FLWOR clause. The ALDSP FLWGOR extension adds the group-by clause
/// (paper §3.1): `group $v as $v2 by expr as $v3, expr as $v4`.
/// kJoin clauses are introduced by the optimizer (paper §4.3: "join
/// expressions are introduced for each 'for' clause"): the tuple stream
/// so far is joined with the binding sequence of `var` under `condition`.
struct Clause {
  enum class Kind { kFor, kLet, kWhere, kGroupBy, kOrderBy, kJoin };

  struct GroupVar {
    std::string in_var;   // var1: variable being regrouped
    std::string out_var;  // var2: bound to the sequence of var1 values
  };
  struct GroupKey {
    ExprPtr expr;
    std::string as_var;  // var3: optional binding of the key value
  };
  struct OrderKey {
    ExprPtr expr;
    bool descending = false;
  };

  Kind kind = Kind::kFor;
  // kFor / kLet
  std::string var;
  std::string positional_var;  // `at $p` (kFor only; empty if absent)
  ExprPtr expr;                // binding expr (kFor/kLet) or condition (kWhere)
  // kGroupBy
  std::vector<GroupVar> group_vars;
  std::vector<GroupKey> group_keys;
  /// Set by the optimizer when the input is known to arrive clustered on
  /// the grouping keys, enabling the constant-memory streaming group
  /// operator (paper §4.2); otherwise the runtime sorts first.
  bool pre_clustered = false;
  // kOrderBy
  std::vector<OrderKey> order_keys;
  // kJoin (optimizer-introduced)
  ExprPtr condition;            // residual join predicate (may be null)
  /// Equi-join key pairs: (expression over earlier variables, expression
  /// over this clause's variable). Extracted by the optimizer; used by the
  /// index-nested-loop and PP-k methods.
  std::vector<std::pair<ExprPtr, ExprPtr>> equi_keys;
  bool left_outer = false;      // let-join rewritten to left outer join
  JoinMethod method = JoinMethod::kAuto;
  int ppk_block_size = 20;      // the paper's empirically chosen default k
  std::shared_ptr<PPkFetchSpec> ppk_fetch;  // set for PP-k methods
  /// Observed-cost annotations (optimizer post-pass, -1/-1 = none).
  /// For kFor/kJoin: the ObservedCostModel's cardinality estimate for the
  /// binding source call; the plan builder inserts exchange operators
  /// when the running estimate crosses its threshold.
  int64_t estimated_rows = -1;
  /// For kLet: consecutive let clauses sharing a non-negative group id
  /// are mutually independent source calls the runtime may fan out
  /// concurrently (paper Â§5.4 async evaluation, applied by the planner).
  int parallel_group = -1;
};

/// A pushed-down SQL region (paper §4.4). The node's children are the
/// outer-variable parameter expressions, evaluated in the XQuery runtime
/// and bound as SQL parameters in order.
struct SqlQuerySpec {
  std::string source;  // registered relational source id
  relational::SelectPtr select;
  struct OutCol {
    std::string name;  // output column name (and row child-element name)
    xml::AtomicType type = xml::AtomicType::kString;
  };
  std::vector<OutCol> columns;
  std::string row_name = "row";  // element name wrapping each result row
};

/// A pushed filter region for a *custom* queryable source — the paper's
/// §9 roadmap item ("an extensible pushdown framework for use in teaching
/// the ALDSP query processor to push work down to queryable data sources
/// such as LDAP"). The source function's results are filtered at the
/// source by a conjunction of attribute predicates; each predicate
/// compares a child element of the source's items against a parameter
/// expression (the node's children, by index).
struct CustomQuerySpec {
  std::string source;
  std::string function;
  struct Conjunct {
    std::string attribute;
    std::string op;  // "eq","ne","lt","le","gt","ge"
    int param_index = -1;
  };
  std::vector<Conjunct> conjuncts;
};

/// PP-k parameterized-fetch descriptor (paper §4.2): for each block of k
/// outer tuples the runtime executes `select_template` extended with
/// `in_alias.in_column IN (k parameters)` — one round trip per block —
/// and joins the fetched rows with the block in the middleware.
struct PPkFetchSpec {
  std::string source;                     // relational source id
  relational::SelectPtr select_template;  // without the IN predicate
  std::string in_alias;                   // alias of the keyed table
  std::string in_column;                  // key column for the IN list
  std::vector<SqlQuerySpec::OutCol> columns;
  std::string row_name = "row";
};

/// One expression node. A deliberately "fat" tagged struct: rewrite rules
/// in the optimizer pattern-match on `kind` and mutate children in place.
struct Expr {
  ExprKind kind;
  SourceLocation loc;

  /// Inferred static type (filled by the type checker).
  xsd::SequenceType static_type = xsd::AnySequence();

  // kLiteral
  xml::AtomicValue literal;

  // kVarRef
  std::string var_name;

  // Generic operands. Layout by kind:
  //   kSequence: parts
  //   kFLWOR: [return]
  //   kPathStep: [input]
  //   kFilter: [input, predicate]
  //   kElementCtor: content parts (kAttributeCtor children first)
  //   kAttributeCtor: [value]
  //   kIf: [cond, then, else]
  //   kQuantified: [in, satisfies]
  //   kComparison/kArith/kLogical: [lhs, rhs]
  //   kFunctionCall: args
  //   kCastAs/kInstanceOf/kTypematch: [input]
  //   kError: original operands (kept so design-time analysis continues)
  std::vector<ExprPtr> children;

  // kFLWOR
  std::vector<Clause> clauses;

  // kPathStep
  std::string step_name;  // element name test, or attribute name
  bool is_attribute_step = false;

  // kElementCtor / kAttributeCtor
  std::string ctor_name;
  bool conditional = false;  // the ALDSP `<NAME?>` extension (paper §3.1)

  // kComparison / kArith / kLogical
  std::string op;           // "eq", "=", "+", "and", ...
  bool general_comparison = false;

  // kFunctionCall
  std::string fn_name;

  // kCastAs / kInstanceOf / kTypematch
  TypeRef type_ref;
  xsd::SequenceType target_type;  // resolved (typematch/cast)

  // kQuantified
  std::string var_name2;  // quantifier variable
  bool is_every = false;

  // kSqlQuery (children are the parameter expressions)
  std::shared_ptr<SqlQuerySpec> sql;

  // kCustomQuery (children are the parameter expressions)
  std::shared_ptr<CustomQuerySpec> custom;

  // kError
  std::string error_message;
};

// ----- Factories ------------------------------------------------------

ExprPtr MakeLiteral(xml::AtomicValue v, SourceLocation loc = {});
ExprPtr MakeEmptySequence(SourceLocation loc = {});
ExprPtr MakeSequence(std::vector<ExprPtr> parts, SourceLocation loc = {});
ExprPtr MakeVarRef(std::string name, SourceLocation loc = {});
ExprPtr MakeFLWOR(std::vector<Clause> clauses, ExprPtr ret,
                  SourceLocation loc = {});
ExprPtr MakePathStep(ExprPtr input, std::string name, bool attribute,
                     SourceLocation loc = {});
ExprPtr MakeFilter(ExprPtr input, ExprPtr predicate, SourceLocation loc = {});
ExprPtr MakeElementCtor(std::string name, std::vector<ExprPtr> content,
                        bool conditional, SourceLocation loc = {});
ExprPtr MakeAttributeCtor(std::string name, ExprPtr value, bool conditional,
                          SourceLocation loc = {});
ExprPtr MakeIf(ExprPtr cond, ExprPtr then_e, ExprPtr else_e,
               SourceLocation loc = {});
ExprPtr MakeQuantified(bool is_every, std::string var, ExprPtr in,
                       ExprPtr satisfies, SourceLocation loc = {});
ExprPtr MakeComparison(std::string op, bool general, ExprPtr lhs, ExprPtr rhs,
                       SourceLocation loc = {});
ExprPtr MakeArith(std::string op, ExprPtr lhs, ExprPtr rhs,
                  SourceLocation loc = {});
ExprPtr MakeLogical(std::string op, ExprPtr lhs, ExprPtr rhs,
                    SourceLocation loc = {});
ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args,
                         SourceLocation loc = {});
ExprPtr MakeCastAs(ExprPtr input, TypeRef target, SourceLocation loc = {});
ExprPtr MakeInstanceOf(ExprPtr input, TypeRef target, SourceLocation loc = {});
ExprPtr MakeCastable(ExprPtr input, TypeRef target, SourceLocation loc = {});
ExprPtr MakeTypematch(ExprPtr input, xsd::SequenceType target,
                      SourceLocation loc = {});
ExprPtr MakeSqlQuery(std::shared_ptr<SqlQuerySpec> spec,
                     std::vector<ExprPtr> params, SourceLocation loc = {});
ExprPtr MakeCustomQuery(std::shared_ptr<CustomQuerySpec> spec,
                        std::vector<ExprPtr> params, SourceLocation loc = {});
ExprPtr MakeError(std::string message, std::vector<ExprPtr> operands,
                  SourceLocation loc = {});

/// Deep copy of an expression tree (used by function inlining).
ExprPtr CloneExpr(const ExprPtr& e);

/// Visits every direct child expression, including those embedded in
/// FLWOR clauses, invoking `fn` with a mutable slot so rewrites can
/// replace children in place.
void ForEachChildSlot(Expr& e, const std::function<void(ExprPtr&)>& fn);

/// Compact single-line rendering for diagnostics and plan explainers.
std::string DebugString(const Expr& e);

// ----- Module-level declarations ---------------------------------------

/// Parsed pragma annotation: (::pragma function <kind> key="value" ... ::).
struct Pragma {
  std::string name;  // e.g. "function"
  std::vector<std::pair<std::string, std::string>> attrs;

  const std::string* Find(const std::string& key) const;
};

struct Param {
  std::string name;
  TypeRef type;
};

/// One XQuery function declaration of a data service file.
struct FunctionDecl {
  std::string name;  // "tns:getProfile"
  std::vector<Param> params;
  TypeRef return_type;
  ExprPtr body;  // null for external functions
  bool external = false;
  std::vector<Pragma> pragmas;
  SourceLocation loc;

  /// Value of pragma attr `kind` ("read", "navigate", ...), empty if none.
  std::string PragmaKind() const;
};

struct NamespaceDecl {
  std::string prefix;
  std::string uri;
};

/// A parsed data service file: prolog declarations + functions.
struct Module {
  std::string version;
  std::vector<NamespaceDecl> namespaces;
  std::vector<NamespaceDecl> schema_imports;
  std::vector<FunctionDecl> functions;

  const FunctionDecl* FindFunction(const std::string& name) const;
};

}  // namespace aldsp::xquery

#endif  // ALDSP_XQUERY_AST_H_
