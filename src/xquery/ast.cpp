#include "xquery/ast.h"

#include <sstream>

#include "xml/node.h"

namespace aldsp::xquery {

std::string TypeRef::ToString() const {
  std::string s;
  switch (kind) {
    case Kind::kAtomic:
      s = name;
      break;
    case Kind::kElement:
      s = "element(" + name + ")";
      break;
    case Kind::kSchemaElement:
      s = "schema-element(" + name + ")";
      break;
    case Kind::kAnyItem:
      s = "item()";
      break;
    case Kind::kAnyNode:
      s = "node()";
      break;
    case Kind::kEmpty:
      return "empty-sequence()";
  }
  switch (occurrence) {
    case xsd::Occurrence::kOne:
      break;
    case xsd::Occurrence::kOptional:
      s += "?";
      break;
    case xsd::Occurrence::kStar:
      s += "*";
      break;
    case xsd::Occurrence::kPlus:
      s += "+";
      break;
  }
  return s;
}

const char* JoinMethodName(JoinMethod m) {
  switch (m) {
    case JoinMethod::kAuto:
      return "auto";
    case JoinMethod::kNestedLoop:
      return "nl";
    case JoinMethod::kIndexNestedLoop:
      return "inl";
    case JoinMethod::kPPkNestedLoop:
      return "ppk-nl";
    case JoinMethod::kPPkIndexNestedLoop:
      return "ppk-inl";
  }
  return "?";
}

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kLiteral:
      return "literal";
    case ExprKind::kEmptySequence:
      return "empty";
    case ExprKind::kSequence:
      return "sequence";
    case ExprKind::kVarRef:
      return "varref";
    case ExprKind::kFLWOR:
      return "flwor";
    case ExprKind::kPathStep:
      return "step";
    case ExprKind::kFilter:
      return "filter";
    case ExprKind::kElementCtor:
      return "element";
    case ExprKind::kAttributeCtor:
      return "attribute";
    case ExprKind::kIf:
      return "if";
    case ExprKind::kQuantified:
      return "quantified";
    case ExprKind::kComparison:
      return "comparison";
    case ExprKind::kArith:
      return "arith";
    case ExprKind::kLogical:
      return "logical";
    case ExprKind::kFunctionCall:
      return "call";
    case ExprKind::kCastAs:
      return "cast";
    case ExprKind::kInstanceOf:
      return "instanceof";
    case ExprKind::kCastable:
      return "castable";
    case ExprKind::kTypematch:
      return "typematch";
    case ExprKind::kSqlQuery:
      return "sql";
    case ExprKind::kCustomQuery:
      return "custom-query";
    case ExprKind::kError:
      return "error";
  }
  return "?";
}

namespace {
ExprPtr NewExpr(ExprKind kind, SourceLocation loc) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->loc = loc;
  return e;
}
}  // namespace

ExprPtr MakeLiteral(xml::AtomicValue v, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kLiteral, loc);
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeEmptySequence(SourceLocation loc) {
  return NewExpr(ExprKind::kEmptySequence, loc);
}

ExprPtr MakeSequence(std::vector<ExprPtr> parts, SourceLocation loc) {
  if (parts.empty()) return MakeEmptySequence(loc);
  if (parts.size() == 1) return parts[0];
  ExprPtr e = NewExpr(ExprKind::kSequence, loc);
  e->children = std::move(parts);
  return e;
}

ExprPtr MakeVarRef(std::string name, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kVarRef, loc);
  e->var_name = std::move(name);
  return e;
}

ExprPtr MakeFLWOR(std::vector<Clause> clauses, ExprPtr ret, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kFLWOR, loc);
  e->clauses = std::move(clauses);
  e->children = {std::move(ret)};
  return e;
}

ExprPtr MakePathStep(ExprPtr input, std::string name, bool attribute,
                     SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kPathStep, loc);
  e->children = {std::move(input)};
  e->step_name = std::move(name);
  e->is_attribute_step = attribute;
  return e;
}

ExprPtr MakeFilter(ExprPtr input, ExprPtr predicate, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kFilter, loc);
  e->children = {std::move(input), std::move(predicate)};
  return e;
}

ExprPtr MakeElementCtor(std::string name, std::vector<ExprPtr> content,
                        bool conditional, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kElementCtor, loc);
  e->ctor_name = std::move(name);
  e->children = std::move(content);
  e->conditional = conditional;
  return e;
}

ExprPtr MakeAttributeCtor(std::string name, ExprPtr value, bool conditional,
                          SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kAttributeCtor, loc);
  e->ctor_name = std::move(name);
  e->children = {std::move(value)};
  e->conditional = conditional;
  return e;
}

ExprPtr MakeIf(ExprPtr cond, ExprPtr then_e, ExprPtr else_e,
               SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kIf, loc);
  e->children = {std::move(cond), std::move(then_e), std::move(else_e)};
  return e;
}

ExprPtr MakeQuantified(bool is_every, std::string var, ExprPtr in,
                       ExprPtr satisfies, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kQuantified, loc);
  e->is_every = is_every;
  e->var_name2 = std::move(var);
  e->children = {std::move(in), std::move(satisfies)};
  return e;
}

ExprPtr MakeComparison(std::string op, bool general, ExprPtr lhs, ExprPtr rhs,
                       SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kComparison, loc);
  e->op = std::move(op);
  e->general_comparison = general;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr MakeArith(std::string op, ExprPtr lhs, ExprPtr rhs,
                  SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kArith, loc);
  e->op = std::move(op);
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr MakeLogical(std::string op, ExprPtr lhs, ExprPtr rhs,
                    SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kLogical, loc);
  e->op = std::move(op);
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args,
                         SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kFunctionCall, loc);
  e->fn_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr MakeCastAs(ExprPtr input, TypeRef target, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kCastAs, loc);
  e->children = {std::move(input)};
  e->type_ref = std::move(target);
  return e;
}

ExprPtr MakeInstanceOf(ExprPtr input, TypeRef target, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kInstanceOf, loc);
  e->children = {std::move(input)};
  e->type_ref = std::move(target);
  return e;
}

ExprPtr MakeCastable(ExprPtr input, TypeRef target, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kCastable, loc);
  e->children = {std::move(input)};
  e->type_ref = std::move(target);
  return e;
}

ExprPtr MakeTypematch(ExprPtr input, xsd::SequenceType target,
                      SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kTypematch, loc);
  e->children = {std::move(input)};
  e->target_type = std::move(target);
  return e;
}

ExprPtr MakeSqlQuery(std::shared_ptr<SqlQuerySpec> spec,
                     std::vector<ExprPtr> params, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kSqlQuery, loc);
  e->sql = std::move(spec);
  e->children = std::move(params);
  return e;
}

ExprPtr MakeCustomQuery(std::shared_ptr<CustomQuerySpec> spec,
                        std::vector<ExprPtr> params, SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kCustomQuery, loc);
  e->custom = std::move(spec);
  e->children = std::move(params);
  return e;
}

ExprPtr MakeError(std::string message, std::vector<ExprPtr> operands,
                  SourceLocation loc) {
  ExprPtr e = NewExpr(ExprKind::kError, loc);
  e->error_message = std::move(message);
  e->children = std::move(operands);
  e->static_type = xsd::One(xsd::XType::Error(e->error_message));
  return e;
}

ExprPtr CloneExpr(const ExprPtr& e) {
  if (!e) return nullptr;
  auto copy = std::make_shared<Expr>(*e);
  copy->children.clear();
  for (const auto& c : e->children) copy->children.push_back(CloneExpr(c));
  if (e->sql) {
    // Share the SqlQuerySpec's immutable select; clone the spec shell so
    // later mutation of one copy cannot alias the other.
    copy->sql = std::make_shared<SqlQuerySpec>(*e->sql);
    if (e->sql->select) copy->sql->select = e->sql->select->Clone();
  }
  if (e->custom) copy->custom = std::make_shared<CustomQuerySpec>(*e->custom);
  copy->clauses.clear();
  for (const auto& cl : e->clauses) {
    Clause c = cl;
    c.expr = CloneExpr(cl.expr);
    c.condition = CloneExpr(cl.condition);
    c.equi_keys.clear();
    for (const auto& [l, r] : cl.equi_keys) {
      c.equi_keys.emplace_back(CloneExpr(l), CloneExpr(r));
    }
    if (cl.ppk_fetch) {
      c.ppk_fetch = std::make_shared<PPkFetchSpec>(*cl.ppk_fetch);
      if (cl.ppk_fetch->select_template) {
        c.ppk_fetch->select_template = cl.ppk_fetch->select_template->Clone();
      }
    }
    c.group_keys.clear();
    for (const auto& gk : cl.group_keys) {
      c.group_keys.push_back({CloneExpr(gk.expr), gk.as_var});
    }
    c.order_keys.clear();
    for (const auto& ok : cl.order_keys) {
      c.order_keys.push_back({CloneExpr(ok.expr), ok.descending});
    }
    copy->clauses.push_back(std::move(c));
  }
  return copy;
}

void ForEachChildSlot(Expr& e, const std::function<void(ExprPtr&)>& fn) {
  for (auto& cl : e.clauses) {
    if (cl.expr) fn(cl.expr);
    if (cl.condition) fn(cl.condition);
    for (auto& [l, r] : cl.equi_keys) {
      if (l) fn(l);
      if (r) fn(r);
    }
    for (auto& gk : cl.group_keys) {
      if (gk.expr) fn(gk.expr);
    }
    for (auto& ok : cl.order_keys) {
      if (ok.expr) fn(ok.expr);
    }
  }
  for (auto& c : e.children) {
    if (c) fn(c);
  }
}

namespace {

void Write(const Expr& e, std::ostringstream& os) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.is_string()) {
        os << '"' << e.literal.Lexical() << '"';
      } else {
        os << e.literal.Lexical();
      }
      break;
    case ExprKind::kEmptySequence:
      os << "()";
      break;
    case ExprKind::kSequence:
      os << "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) os << ", ";
        Write(*e.children[i], os);
      }
      os << ")";
      break;
    case ExprKind::kVarRef:
      os << "$" << e.var_name;
      break;
    case ExprKind::kFLWOR: {
      for (const auto& cl : e.clauses) {
        switch (cl.kind) {
          case Clause::Kind::kFor:
            os << "for $" << cl.var;
            if (!cl.positional_var.empty()) os << " at $" << cl.positional_var;
            os << " in ";
            Write(*cl.expr, os);
            os << " ";
            break;
          case Clause::Kind::kLet:
            os << "let $" << cl.var << " := ";
            Write(*cl.expr, os);
            os << " ";
            break;
          case Clause::Kind::kWhere:
            os << "where ";
            Write(*cl.expr, os);
            os << " ";
            break;
          case Clause::Kind::kGroupBy:
            os << "group ";
            for (size_t i = 0; i < cl.group_vars.size(); ++i) {
              if (i > 0) os << ", ";
              os << "$" << cl.group_vars[i].in_var << " as $"
                 << cl.group_vars[i].out_var;
            }
            os << " by ";
            for (size_t i = 0; i < cl.group_keys.size(); ++i) {
              if (i > 0) os << ", ";
              Write(*cl.group_keys[i].expr, os);
              if (!cl.group_keys[i].as_var.empty()) {
                os << " as $" << cl.group_keys[i].as_var;
              }
            }
            os << " ";
            break;
          case Clause::Kind::kOrderBy:
            os << "order by ";
            for (size_t i = 0; i < cl.order_keys.size(); ++i) {
              if (i > 0) os << ", ";
              Write(*cl.order_keys[i].expr, os);
              if (cl.order_keys[i].descending) os << " descending";
            }
            os << " ";
            break;
          case Clause::Kind::kJoin:
            os << (cl.left_outer ? "left-join" : "join") << "["
               << JoinMethodName(cl.method) << "] $" << cl.var << " in ";
            Write(*cl.expr, os);
            os << " on ";
            if (cl.condition) {
              Write(*cl.condition, os);
            } else {
              os << "true";
            }
            os << " ";
            break;
        }
      }
      os << "return ";
      Write(*e.children[0], os);
      break;
    }
    case ExprKind::kPathStep:
      Write(*e.children[0], os);
      os << "/" << (e.is_attribute_step ? "@" : "") << e.step_name;
      break;
    case ExprKind::kFilter:
      Write(*e.children[0], os);
      os << "[";
      Write(*e.children[1], os);
      os << "]";
      break;
    case ExprKind::kElementCtor:
      os << "<" << e.ctor_name << (e.conditional ? "?" : "") << ">{";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) os << ", ";
        Write(*e.children[i], os);
      }
      os << "}</" << e.ctor_name << ">";
      break;
    case ExprKind::kAttributeCtor:
      os << "attribute " << e.ctor_name << (e.conditional ? "?" : "") << " {";
      Write(*e.children[0], os);
      os << "}";
      break;
    case ExprKind::kIf:
      os << "if (";
      Write(*e.children[0], os);
      os << ") then ";
      Write(*e.children[1], os);
      os << " else ";
      Write(*e.children[2], os);
      break;
    case ExprKind::kQuantified:
      os << (e.is_every ? "every" : "some") << " $" << e.var_name2 << " in ";
      Write(*e.children[0], os);
      os << " satisfies ";
      Write(*e.children[1], os);
      break;
    case ExprKind::kComparison:
    case ExprKind::kArith:
    case ExprKind::kLogical:
      os << "(";
      Write(*e.children[0], os);
      os << " " << e.op << " ";
      Write(*e.children[1], os);
      os << ")";
      break;
    case ExprKind::kFunctionCall:
      os << e.fn_name << "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) os << ", ";
        Write(*e.children[i], os);
      }
      os << ")";
      break;
    case ExprKind::kCastAs:
      Write(*e.children[0], os);
      os << " cast as " << e.type_ref.ToString();
      break;
    case ExprKind::kInstanceOf:
      Write(*e.children[0], os);
      os << " instance of " << e.type_ref.ToString();
      break;
    case ExprKind::kCastable:
      Write(*e.children[0], os);
      os << " castable as " << e.type_ref.ToString();
      break;
    case ExprKind::kTypematch:
      os << "typematch[" << e.target_type.ToString() << "](";
      Write(*e.children[0], os);
      os << ")";
      break;
    case ExprKind::kSqlQuery:
      os << "sql[" << (e.sql ? e.sql->source : "?") << "]{"
         << (e.sql && e.sql->select ? relational::DebugString(*e.sql->select)
                                    : "")
         << "}";
      if (!e.children.empty()) {
        os << "(";
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i > 0) os << ", ";
          Write(*e.children[i], os);
        }
        os << ")";
      }
      break;
    case ExprKind::kCustomQuery:
      os << "custom[" << (e.custom ? e.custom->source : "?") << ":"
         << (e.custom ? e.custom->function : "?") << "]{";
      if (e.custom) {
        for (size_t i = 0; i < e.custom->conjuncts.size(); ++i) {
          if (i > 0) os << " and ";
          os << e.custom->conjuncts[i].attribute << " "
             << e.custom->conjuncts[i].op << " ?"
             << e.custom->conjuncts[i].param_index;
        }
      }
      os << "}(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) os << ", ";
        Write(*e.children[i], os);
      }
      os << ")";
      break;
    case ExprKind::kError:
      os << "error(\"" << e.error_message << "\")";
      break;
  }
}

}  // namespace

std::string DebugString(const Expr& e) {
  std::ostringstream os;
  Write(e, os);
  return os.str();
}

const std::string* Pragma::Find(const std::string& key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string FunctionDecl::PragmaKind() const {
  for (const auto& p : pragmas) {
    if (p.name != "function") continue;
    const std::string* kind = p.Find("kind");
    if (kind != nullptr) return *kind;
  }
  return "";
}

const FunctionDecl* Module::FindFunction(const std::string& name) const {
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace aldsp::xquery
