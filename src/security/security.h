#ifndef ALDSP_SECURITY_SECURITY_H_
#define ALDSP_SECURITY_SECURITY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/item.h"

namespace aldsp::security {

/// An authenticated caller with roles (the WebLogic security framework
/// substitute).
struct Principal {
  std::string user;
  std::set<std::string> roles;

  bool HasAnyRole(const std::set<std::string>& required) const {
    for (const auto& r : required) {
      if (roles.count(r) > 0) return true;
    }
    return false;
  }
};

/// What to do when an unauthorized caller would see a protected subtree
/// (paper §7): silently remove it, or substitute an administratively
/// specified replacement value.
enum class RedactionAction { kRemove, kReplace };

/// A labeled security resource: an element subtree of a data service's
/// shape, identified by its slash path of element names from the result
/// item's root ("PROFILE/RATING").
struct ElementPolicy {
  std::string resource_path;
  std::set<std::string> allowed_roles;
  RedactionAction action = RedactionAction::kRemove;
  xml::AtomicValue replacement;
};

/// Function-level access control: who is allowed to call what.
struct FunctionAcl {
  std::string function;
  std::set<std::string> allowed_roles;
};

/// Auditing security service (paper §7): records security decisions and
/// operational events for administrative monitoring.
class AuditLog {
 public:
  struct Event {
    int64_t sequence;
    std::string category;  // "access-denied", "redaction", "query", ...
    std::string user;
    std::string detail;
  };

  void Record(const std::string& category, const std::string& user,
              const std::string& detail);
  std::vector<Event> Events() const;
  std::vector<Event> EventsInCategory(const std::string& category) const;
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::atomic<int64_t> next_sequence_{1};
};

/// The fine-grained access control service. Fine-grained filtering is
/// applied at a late stage of query processing — after the function
/// cache — so plans and cached results stay shareable across users
/// (paper §7).
class AccessControl {
 public:
  void AddFunctionAcl(FunctionAcl acl);
  void AddElementPolicy(ElementPolicy policy);

  /// Checks that the principal may call every listed function.
  Status CheckFunctionAccess(const Principal& principal,
                             const std::vector<std::string>& functions,
                             AuditLog* audit = nullptr) const;

  /// Applies element policies to a result, producing a redacted copy.
  /// Matching subtrees are removed or replaced per policy. When
  /// `redactions` is non-null it receives the number of subtrees the
  /// policies removed or replaced (the execution audit's security-denial
  /// count).
  xml::Sequence FilterResult(const Principal& principal,
                             const xml::Sequence& result,
                             AuditLog* audit = nullptr,
                             int64_t* redactions = nullptr) const;

  bool has_element_policies() const { return !element_policies_.empty(); }

 private:
  std::vector<FunctionAcl> function_acls_;
  std::vector<ElementPolicy> element_policies_;
};

}  // namespace aldsp::security

#endif  // ALDSP_SECURITY_SECURITY_H_
