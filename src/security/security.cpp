#include "security/security.h"

#include "xml/node.h"

namespace aldsp::security {

using xml::NodeKind;
using xml::NodePtr;
using xml::XNode;

void AuditLog::Record(const std::string& category, const std::string& user,
                      const std::string& detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back({next_sequence_++, category, user, detail});
}

std::vector<AuditLog::Event> AuditLog::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<AuditLog::Event> AuditLog::EventsInCategory(
    const std::string& category) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void AccessControl::AddFunctionAcl(FunctionAcl acl) {
  function_acls_.push_back(std::move(acl));
}

void AccessControl::AddElementPolicy(ElementPolicy policy) {
  element_policies_.push_back(std::move(policy));
}

Status AccessControl::CheckFunctionAccess(
    const Principal& principal, const std::vector<std::string>& functions,
    AuditLog* audit) const {
  for (const auto& fn : functions) {
    for (const auto& acl : function_acls_) {
      if (acl.function != fn) continue;
      if (!principal.HasAnyRole(acl.allowed_roles)) {
        if (audit != nullptr) {
          audit->Record("access-denied", principal.user,
                        "function " + fn);
        }
        return Status::SecurityError("user " + principal.user +
                                     " may not call " + fn);
      }
    }
  }
  return Status::OK();
}

namespace {

// Applies policies to `node` (whose path from the item root is `path`),
// returning false if the node should be removed entirely.
bool RedactNode(const NodePtr& node, const std::string& path,
                const std::vector<ElementPolicy>& policies,
                const Principal& principal, AuditLog* audit,
                int64_t* redactions) {
  for (const auto& p : policies) {
    if (p.resource_path != path) continue;
    if (principal.HasAnyRole(p.allowed_roles)) continue;
    if (audit != nullptr) {
      audit->Record("redaction", principal.user, "resource " + path);
    }
    if (redactions != nullptr) ++*redactions;
    if (p.action == RedactionAction::kRemove) return false;
    node->SetChildren({XNode::Text(p.replacement)});
    return true;
  }
  // Recurse into children.
  for (size_t i = node->children().size(); i > 0; --i) {
    const NodePtr& child = node->children()[i - 1];
    if (child->kind() != NodeKind::kElement) continue;
    std::string child_path =
        path + "/" + xml::LocalName(child->name());
    if (!RedactNode(child, child_path, policies, principal, audit,
                    redactions)) {
      node->RemoveChildAt(i - 1);
    }
  }
  return true;
}

}  // namespace

xml::Sequence AccessControl::FilterResult(const Principal& principal,
                                          const xml::Sequence& result,
                                          AuditLog* audit,
                                          int64_t* redactions) const {
  if (element_policies_.empty()) return result;
  xml::Sequence out;
  out.reserve(result.size());
  for (const auto& item : result) {
    if (!item.is_node() || item.node()->kind() != NodeKind::kElement) {
      out.push_back(item);
      continue;
    }
    NodePtr copy = item.node()->Clone();
    std::string root_path = xml::LocalName(copy->name());
    if (RedactNode(copy, root_path, element_policies_, principal, audit,
                   redactions)) {
      out.emplace_back(std::move(copy));
    }
  }
  return out;
}

}  // namespace aldsp::security
