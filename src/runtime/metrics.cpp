#include "runtime/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "observability/json_util.h"

namespace aldsp::runtime {

void MetricsRegistry::RecordSourceLatency(const std::string& source,
                                          int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  source_latency_[source].Record(micros);
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::SetCounter(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] = value;
}

int64_t MetricsRegistry::NowMicrosLocked() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() +
         clock_skew_micros_;
}

void MetricsRegistry::RecordWindowed(const std::string& name, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  windows_[name].Record(micros, NowMicrosLocked());
}

void MetricsRegistry::AddWindowedCounter(const std::string& name,
                                         int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  windowed_counters_[name].Add(delta, NowMicrosLocked());
}

void MetricsRegistry::AdvanceClockForTest(int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_skew_micros_ += micros;
}

MetricsRegistry::Snapshot MetricsRegistry::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters = counters_;
  snap.source_latency = source_latency_;
  int64_t now = NowMicrosLocked();
  for (const auto& [name, window] : windows_) {
    snap.windows[name] = window.GetSnapshot(now);
  }
  for (const auto& [name, counter] : windowed_counters_) {
    snap.windowed_counters[name] = counter.GetSnapshot(now);
  }
  return snap;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  source_latency_.clear();
  windows_.clear();
  windowed_counters_.clear();
}

std::string MetricsRegistry::RenderText(const Snapshot& snapshot) {
  // Key column width follows the longest key in this snapshot, so long
  // source and tenant keys ("tenant.analytics-team.wall_micros") keep the
  // value columns aligned instead of overflowing a fixed width.
  size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [source, h] : snapshot.source_latency) {
    width = std::max(width, source.size() + sizeof("source_latency{}") - 1);
  }
  for (const auto& [name, w] : snapshot.windows) {
    width = std::max(width, name.size() + sizeof("window{}") - 1);
  }
  for (const auto& [name, c] : snapshot.windowed_counters) {
    width = std::max(width, name.size() + sizeof("windowed_counter{}") - 1);
  }
  std::ostringstream os;
  auto key = [&](const std::string& k) -> std::ostringstream& {
    os << k << std::string(width > k.size() ? width - k.size() : 0, ' ');
    return os;
  };
  os << "=== metrics ===\n";
  for (const auto& [name, value] : snapshot.counters) {
    key(name) << " " << value << "\n";
  }
  for (const auto& [source, h] : snapshot.source_latency) {
    key("source_latency{" + source + "}")
        << " count=" << h.count
        << " mean_us=" << static_cast<int64_t>(h.MeanMicros())
        << " min_us=" << h.min_micros << " max_us=" << h.max_micros << "\n";
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.counts[i] == 0) continue;
      os << "  " << Histogram::BucketLabel(i) << " " << h.counts[i] << "\n";
    }
  }
  for (const auto& [name, w] : snapshot.windows) {
    key("window{" + name + "}")
        << " 1m_count=" << w.last_1m.count
        << " 1m_mean_us=" << static_cast<int64_t>(w.last_1m.MeanMicros())
        << " 5m_count=" << w.last_5m.count
        << " 5m_mean_us=" << static_cast<int64_t>(w.last_5m.MeanMicros())
        << " total_count=" << w.total.count
        << " total_mean_us=" << static_cast<int64_t>(w.total.MeanMicros())
        << "\n";
  }
  for (const auto& [name, c] : snapshot.windowed_counters) {
    key("windowed_counter{" + name + "}")
        << " 1m=" << c.last_1m << " 5m=" << c.last_5m << " total=" << c.total
        << "\n";
  }
  return os.str();
}

namespace {

// The shared escaper (observability/json_util) behind the ostream
// interface this renderer uses: window and tenant keys are user-derived
// strings, so they need the full control-character treatment.
void AppendJsonString(std::ostringstream& os, const std::string& s) {
  std::string buf;
  observability::AppendJsonString(&buf, s);
  os << buf;
}

void AppendHistogramJson(std::ostringstream& os,
                         const MetricsRegistry::Histogram& h) {
  os << "{\"count\":" << h.count << ",\"sum_micros\":" << h.sum_micros
     << ",\"min_micros\":" << h.min_micros
     << ",\"max_micros\":" << h.max_micros << ",\"buckets\":{";
  bool bfirst = true;
  for (int i = 0; i < MetricsRegistry::Histogram::kBuckets; ++i) {
    if (!bfirst) os << ",";
    bfirst = false;
    AppendJsonString(os, MetricsRegistry::Histogram::BucketLabel(i));
    os << ":" << h.counts[i];
  }
  os << "}}";
}

}  // namespace

std::string MetricsRegistry::RenderJson(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, name);
    os << ":" << value;
  }
  os << "},\"source_latency\":{";
  first = true;
  for (const auto& [source, h] : snapshot.source_latency) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, source);
    os << ":";
    AppendHistogramJson(os, h);
  }
  os << "},\"windows\":{";
  first = true;
  for (const auto& [name, w] : snapshot.windows) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, name);
    os << ":{\"last_1m\":";
    AppendHistogramJson(os, w.last_1m);
    os << ",\"last_5m\":";
    AppendHistogramJson(os, w.last_5m);
    os << ",\"total\":";
    AppendHistogramJson(os, w.total);
    os << "}";
  }
  os << "},\"windowed_counters\":{";
  first = true;
  for (const auto& [name, c] : snapshot.windowed_counters) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, name);
    os << ":{\"last_1m\":" << c.last_1m << ",\"last_5m\":" << c.last_5m
       << ",\"total\":" << c.total << "}";
  }
  os << "}}";
  return os.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the
// registry's dots, mostly) maps to '_'.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

// Label values escape backslash, double quote and newline.
std::string PromLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void PromHistogram(std::ostringstream& os, const std::string& family,
                   const std::string& label,
                   const MetricsRegistry::Histogram& h) {
  int64_t cumulative = 0;
  for (int i = 0; i < MetricsRegistry::Histogram::kBuckets; ++i) {
    cumulative += h.counts[i];
    os << family << "_bucket{" << label << ",le=\"";
    if (i < MetricsRegistry::Histogram::kBuckets - 1) {
      os << MetricsRegistry::Histogram::kUpperMicros[i];
    } else {
      os << "+Inf";
    }
    os << "\"} " << cumulative << "\n";
  }
  os << family << "_sum{" << label << "} " << h.sum_micros << "\n";
  os << family << "_count{" << label << "} " << h.count << "\n";
}

}  // namespace

std::string MetricsRegistry::RenderPrometheusText(const Snapshot& snapshot) {
  std::ostringstream os;

  // Plain counters are exposed as one gauge family each; per-tenant
  // gauges ("tenant.<tenant>.<gauge>", split at the last dot) fold into
  // one family per gauge with a `tenant` label so a scrape sees a single
  // aldsp_tenant_in_flight family across every tenant.
  std::map<std::string, std::vector<std::pair<std::string, int64_t>>>
      tenant_families;
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    const size_t last_dot = name.rfind('.');
    if (name.rfind("tenant.", 0) == 0 && last_dot > sizeof("tenant.") - 1) {
      const std::string tenant =
          name.substr(sizeof("tenant.") - 1, last_dot - (sizeof("tenant.") - 1));
      tenant_families[name.substr(last_dot + 1)].emplace_back(tenant, value);
      continue;
    }
    const std::string family = "aldsp_" + PromName(name);
    if (!first) os << "\n";
    first = false;
    os << "# HELP " << family << " ALDSP counter " << name << "\n";
    os << "# TYPE " << family << " gauge\n";
    os << family << " " << value << "\n";
  }
  for (const auto& [gauge, samples] : tenant_families) {
    const std::string family = "aldsp_tenant_" + PromName(gauge);
    os << "\n# HELP " << family << " ALDSP per-tenant gauge " << gauge << "\n";
    os << "# TYPE " << family << " gauge\n";
    for (const auto& [tenant, value] : samples) {
      os << family << "{tenant=\"" << PromLabelValue(tenant) << "\"} " << value
         << "\n";
    }
  }

  if (!snapshot.source_latency.empty()) {
    os << "\n# HELP aldsp_source_latency_micros Source round-trip latency\n";
    os << "# TYPE aldsp_source_latency_micros histogram\n";
    for (const auto& [source, h] : snapshot.source_latency) {
      PromHistogram(os, "aldsp_source_latency_micros",
                    "source=\"" + PromLabelValue(source) + "\"", h);
    }
  }

  // Rolling windows and windowed counters keep the registry series name
  // as a `series` label (dots intact) with one sample per span.
  if (!snapshot.windows.empty()) {
    os << "\n# HELP aldsp_window_count Rolling-window sample count\n";
    os << "# TYPE aldsp_window_count gauge\n";
    os << "# HELP aldsp_window_sum_micros Rolling-window sample sum\n";
    os << "# TYPE aldsp_window_sum_micros gauge\n";
    for (const auto& [name, w] : snapshot.windows) {
      const std::string series = PromLabelValue(name);
      const struct {
        const char* span;
        const Histogram& h;
      } spans[] = {{"1m", w.last_1m}, {"5m", w.last_5m}, {"total", w.total}};
      for (const auto& s : spans) {
        os << "aldsp_window_count{series=\"" << series << "\",span=\""
           << s.span << "\"} " << s.h.count << "\n";
        os << "aldsp_window_sum_micros{series=\"" << series << "\",span=\""
           << s.span << "\"} " << s.h.sum_micros << "\n";
      }
    }
  }
  if (!snapshot.windowed_counters.empty()) {
    os << "\n# HELP aldsp_windowed_total Rolling-window counter\n";
    os << "# TYPE aldsp_windowed_total gauge\n";
    for (const auto& [name, c] : snapshot.windowed_counters) {
      const std::string series = PromLabelValue(name);
      const struct {
        const char* span;
        int64_t value;
      } spans[] = {{"1m", c.last_1m}, {"5m", c.last_5m}, {"total", c.total}};
      for (const auto& s : spans) {
        os << "aldsp_windowed_total{series=\"" << series << "\",span=\""
           << s.span << "\"} " << s.value << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace aldsp::runtime
