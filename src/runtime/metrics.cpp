#include "runtime/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "observability/json_util.h"

namespace aldsp::runtime {

void MetricsRegistry::RecordSourceLatency(const std::string& source,
                                          int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  source_latency_[source].Record(micros);
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::SetCounter(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] = value;
}

int64_t MetricsRegistry::NowMicrosLocked() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() +
         clock_skew_micros_;
}

void MetricsRegistry::RecordWindowed(const std::string& name, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  windows_[name].Record(micros, NowMicrosLocked());
}

void MetricsRegistry::AddWindowedCounter(const std::string& name,
                                         int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  windowed_counters_[name].Add(delta, NowMicrosLocked());
}

void MetricsRegistry::AdvanceClockForTest(int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_skew_micros_ += micros;
}

MetricsRegistry::Snapshot MetricsRegistry::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters = counters_;
  snap.source_latency = source_latency_;
  int64_t now = NowMicrosLocked();
  for (const auto& [name, window] : windows_) {
    snap.windows[name] = window.GetSnapshot(now);
  }
  for (const auto& [name, counter] : windowed_counters_) {
    snap.windowed_counters[name] = counter.GetSnapshot(now);
  }
  return snap;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  source_latency_.clear();
  windows_.clear();
  windowed_counters_.clear();
}

std::string MetricsRegistry::RenderText(const Snapshot& snapshot) {
  // Key column width follows the longest key in this snapshot, so long
  // source and tenant keys ("tenant.analytics-team.wall_micros") keep the
  // value columns aligned instead of overflowing a fixed width.
  size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [source, h] : snapshot.source_latency) {
    width = std::max(width, source.size() + sizeof("source_latency{}") - 1);
  }
  for (const auto& [name, w] : snapshot.windows) {
    width = std::max(width, name.size() + sizeof("window{}") - 1);
  }
  for (const auto& [name, c] : snapshot.windowed_counters) {
    width = std::max(width, name.size() + sizeof("windowed_counter{}") - 1);
  }
  std::ostringstream os;
  auto key = [&](const std::string& k) -> std::ostringstream& {
    os << k << std::string(width > k.size() ? width - k.size() : 0, ' ');
    return os;
  };
  os << "=== metrics ===\n";
  for (const auto& [name, value] : snapshot.counters) {
    key(name) << " " << value << "\n";
  }
  for (const auto& [source, h] : snapshot.source_latency) {
    key("source_latency{" + source + "}")
        << " count=" << h.count
        << " mean_us=" << static_cast<int64_t>(h.MeanMicros())
        << " min_us=" << h.min_micros << " max_us=" << h.max_micros << "\n";
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.counts[i] == 0) continue;
      os << "  " << Histogram::BucketLabel(i) << " " << h.counts[i] << "\n";
    }
  }
  for (const auto& [name, w] : snapshot.windows) {
    key("window{" + name + "}")
        << " 1m_count=" << w.last_1m.count
        << " 1m_mean_us=" << static_cast<int64_t>(w.last_1m.MeanMicros())
        << " 5m_count=" << w.last_5m.count
        << " 5m_mean_us=" << static_cast<int64_t>(w.last_5m.MeanMicros())
        << " total_count=" << w.total.count
        << " total_mean_us=" << static_cast<int64_t>(w.total.MeanMicros())
        << "\n";
  }
  for (const auto& [name, c] : snapshot.windowed_counters) {
    key("windowed_counter{" + name + "}")
        << " 1m=" << c.last_1m << " 5m=" << c.last_5m << " total=" << c.total
        << "\n";
  }
  return os.str();
}

namespace {

// The shared escaper (observability/json_util) behind the ostream
// interface this renderer uses: window and tenant keys are user-derived
// strings, so they need the full control-character treatment.
void AppendJsonString(std::ostringstream& os, const std::string& s) {
  std::string buf;
  observability::AppendJsonString(&buf, s);
  os << buf;
}

void AppendHistogramJson(std::ostringstream& os,
                         const MetricsRegistry::Histogram& h) {
  os << "{\"count\":" << h.count << ",\"sum_micros\":" << h.sum_micros
     << ",\"min_micros\":" << h.min_micros
     << ",\"max_micros\":" << h.max_micros << ",\"buckets\":{";
  bool bfirst = true;
  for (int i = 0; i < MetricsRegistry::Histogram::kBuckets; ++i) {
    if (!bfirst) os << ",";
    bfirst = false;
    AppendJsonString(os, MetricsRegistry::Histogram::BucketLabel(i));
    os << ":" << h.counts[i];
  }
  os << "}}";
}

}  // namespace

std::string MetricsRegistry::RenderJson(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, name);
    os << ":" << value;
  }
  os << "},\"source_latency\":{";
  first = true;
  for (const auto& [source, h] : snapshot.source_latency) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, source);
    os << ":";
    AppendHistogramJson(os, h);
  }
  os << "},\"windows\":{";
  first = true;
  for (const auto& [name, w] : snapshot.windows) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, name);
    os << ":{\"last_1m\":";
    AppendHistogramJson(os, w.last_1m);
    os << ",\"last_5m\":";
    AppendHistogramJson(os, w.last_5m);
    os << ",\"total\":";
    AppendHistogramJson(os, w.total);
    os << "}";
  }
  os << "},\"windowed_counters\":{";
  first = true;
  for (const auto& [name, c] : snapshot.windowed_counters) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, name);
    os << ":{\"last_1m\":" << c.last_1m << ",\"last_5m\":" << c.last_5m
       << ",\"total\":" << c.total << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace aldsp::runtime
