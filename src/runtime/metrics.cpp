#include "runtime/metrics.h"

#include <cstdio>
#include <sstream>

namespace aldsp::runtime {

const int64_t MetricsRegistry::Histogram::kUpperMicros[] = {
    100, 1000, 10000, 100000, 1000000, 10000000};

const char* MetricsRegistry::Histogram::BucketLabel(int i) {
  static const char* kLabels[kBuckets] = {
      "le_100us", "le_1ms", "le_10ms", "le_100ms",
      "le_1s",    "le_10s", "inf"};
  return (i >= 0 && i < kBuckets) ? kLabels[i] : "?";
}

void MetricsRegistry::Histogram::Record(int64_t micros) {
  int bucket = kBuckets - 1;
  for (int i = 0; i < kBuckets - 1; ++i) {
    if (micros <= kUpperMicros[i]) {
      bucket = i;
      break;
    }
  }
  counts[bucket] += 1;
  if (count == 0 || micros < min_micros) min_micros = micros;
  if (micros > max_micros) max_micros = micros;
  count += 1;
  sum_micros += micros;
}

void MetricsRegistry::RecordSourceLatency(const std::string& source,
                                          int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  source_latency_[source].Record(micros);
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::SetCounter(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] = value;
}

MetricsRegistry::Snapshot MetricsRegistry::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters = counters_;
  snap.source_latency = source_latency_;
  return snap;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  source_latency_.clear();
}

std::string MetricsRegistry::RenderText(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "=== metrics ===\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << name << " " << value << "\n";
  }
  for (const auto& [source, h] : snapshot.source_latency) {
    os << "source_latency{" << source << "} count=" << h.count
       << " mean_us=" << static_cast<int64_t>(h.MeanMicros())
       << " min_us=" << h.min_micros << " max_us=" << h.max_micros << "\n";
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.counts[i] == 0) continue;
      os << "  " << Histogram::BucketLabel(i) << " " << h.counts[i] << "\n";
    }
  }
  return os.str();
}

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string MetricsRegistry::RenderJson(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, name);
    os << ":" << value;
  }
  os << "},\"source_latency\":{";
  first = true;
  for (const auto& [source, h] : snapshot.source_latency) {
    if (!first) os << ",";
    first = false;
    AppendJsonString(os, source);
    os << ":{\"count\":" << h.count << ",\"sum_micros\":" << h.sum_micros
       << ",\"min_micros\":" << h.min_micros
       << ",\"max_micros\":" << h.max_micros << ",\"buckets\":{";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (!bfirst) os << ",";
      bfirst = false;
      AppendJsonString(os, Histogram::BucketLabel(i));
      os << ":" << h.counts[i];
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

}  // namespace aldsp::runtime
