#ifndef ALDSP_RUNTIME_METRICS_H_
#define ALDSP_RUNTIME_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace aldsp::runtime {

/// Server-wide metrics for export: named counters plus a per-source
/// round-trip latency histogram. The runtime records one histogram
/// sample per source interaction (pushed SQL statement, PP-k block
/// fetch, adaptor invocation); the server folds its cache and runtime
/// counters into the snapshot at export time so steady-state execution
/// only pays the histogram update.
class MetricsRegistry {
 public:
  /// Fixed log-scale latency histogram (bucket bounds in microseconds:
  /// 100us, 1ms, 10ms, 100ms, 1s, 10s, +inf). Fixed buckets keep
  /// recording allocation-free and snapshots mergeable across servers.
  struct Histogram {
    static constexpr int kBuckets = 7;
    static const int64_t kUpperMicros[kBuckets - 1];
    static const char* BucketLabel(int i);

    int64_t counts[kBuckets] = {};
    int64_t count = 0;
    int64_t sum_micros = 0;
    int64_t min_micros = 0;
    int64_t max_micros = 0;

    void Record(int64_t micros);
    double MeanMicros() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_micros) /
                              static_cast<double>(count);
    }
  };

  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, Histogram> source_latency;
  };

  void RecordSourceLatency(const std::string& source, int64_t micros);
  void IncrementCounter(const std::string& name, int64_t delta = 1);
  /// Overwrites a counter (used for gauges folded in at snapshot time).
  void SetCounter(const std::string& name, int64_t value);

  Snapshot GetSnapshot() const;
  void Clear();

  /// Human-readable snapshot (one counter per line, one histogram block
  /// per source).
  static std::string RenderText(const Snapshot& snapshot);
  /// Machine-readable snapshot for export / BENCH_*.json artifacts.
  static std::string RenderJson(const Snapshot& snapshot);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> source_latency_;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_METRICS_H_
