#ifndef ALDSP_RUNTIME_METRICS_H_
#define ALDSP_RUNTIME_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "observability/histogram.h"
#include "observability/rolling_window.h"

namespace aldsp::runtime {

/// Server-wide metrics for export: named counters, per-source round-trip
/// latency histograms, and rolling-window series (last 1m / last 5m /
/// total) for the always-on observability plane. The runtime records one
/// histogram sample per source interaction (pushed SQL statement, PP-k
/// block fetch, adaptor invocation); the server feeds query latency,
/// compile-phase micros, and cache hit/miss streams into the windowed
/// series and folds its cache and runtime counters into the snapshot at
/// export time so steady-state execution only pays the histogram update.
class MetricsRegistry {
 public:
  /// Fixed log-scale latency histogram; shared with the observability
  /// plane so rolling-window slots and snapshots merge cleanly.
  using Histogram = observability::LatencyHistogram;

  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, Histogram> source_latency;
    std::map<std::string, observability::RollingWindow::Snapshot> windows;
    std::map<std::string, observability::RollingCounter::Snapshot>
        windowed_counters;
  };

  void RecordSourceLatency(const std::string& source, int64_t micros);
  void IncrementCounter(const std::string& name, int64_t delta = 1);
  /// Overwrites a counter (used for gauges folded in at snapshot time).
  void SetCounter(const std::string& name, int64_t value);

  /// Records a value into the named rolling-window histogram series
  /// (query latency, compile-phase micros, ...).
  void RecordWindowed(const std::string& name, int64_t micros);
  /// Bumps the named rolling-window counter series (cache hits/misses,
  /// pool submissions, ...).
  void AddWindowedCounter(const std::string& name, int64_t delta = 1);

  /// Shifts the registry's view of "now" forward so tests can drive
  /// rolling-window rotation without sleeping.
  void AdvanceClockForTest(int64_t micros);

  Snapshot GetSnapshot() const;
  void Clear();

  /// Human-readable snapshot (one counter per line, one histogram block
  /// per source, one windowed block per series).
  static std::string RenderText(const Snapshot& snapshot);
  /// Machine-readable snapshot for export / BENCH_*.json artifacts.
  static std::string RenderJson(const Snapshot& snapshot);
  /// Prometheus text exposition (version 0.0.4) over the same snapshot:
  /// counters become `aldsp_<name>` gauges (dots to underscores),
  /// per-tenant `tenant.<t>.<gauge>` counters fold into one family per
  /// gauge with a `tenant` label, source histograms render as cumulative
  /// `_bucket{le=...}` series with `_sum`/`_count`, and rolling windows /
  /// windowed counters carry `series` + `span` labels.
  static std::string RenderPrometheusText(const Snapshot& snapshot);

 private:
  int64_t NowMicrosLocked() const;

  mutable std::mutex mutex_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> source_latency_;
  std::map<std::string, observability::RollingWindow> windows_;
  std::map<std::string, observability::RollingCounter> windowed_counters_;
  int64_t clock_skew_micros_ = 0;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_METRICS_H_
