#include "runtime/function_cache.h"

#include "xml/serializer.h"

namespace aldsp::runtime {

void FunctionCache::EnableFor(const std::string& function,
                              int64_t ttl_millis) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_[function] = ttl_millis;
}

void FunctionCache::DisableFor(const std::string& function) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.erase(function);
}

bool FunctionCache::IsEnabled(const std::string& function) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_.count(function) > 0;
}

int64_t FunctionCache::TtlFor(const std::string& function) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = enabled_.find(function);
  return it == enabled_.end() ? -1 : it->second;
}

std::string FunctionCache::MakeKey(const std::string& function,
                                   const std::vector<xml::Sequence>& args) {
  std::string key = function;
  for (const auto& arg : args) {
    key += '\x1f';
    key += xml::SerializeSequence(arg);
  }
  return key;
}

int64_t FunctionCache::NowMillis() const {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::milliseconds>(now).count() +
         clock_skew_millis_.load();
}

bool FunctionCache::Lookup(const std::string& key, xml::Sequence* result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Local miss: consult the shared persistent store, if attached.
    if (backing_store_ != nullptr) {
      auto found = backing_store_->Get(key, NowMillis(), result);
      if (found.ok() && found.value()) {
        stats_.hits += 1;
        return true;
      }
    }
    stats_.misses += 1;
    return false;
  }
  if (it->second.expires_at_millis <= NowMillis()) {
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    stats_.expirations += 1;
    stats_.misses += 1;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *result = it->second.result;
  stats_.hits += 1;
  return true;
}

void FunctionCache::Insert(const std::string& key, xml::Sequence result,
                           int64_t ttl_millis) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (backing_store_ != nullptr) {
    (void)backing_store_->Put(key, result, NowMillis() + ttl_millis);
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.result = std::move(result);
    it->second.expires_at_millis = NowMillis() + ttl_millis;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (entries_.size() >= max_entries_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_.emplace(
      key, Entry{std::move(result), NowMillis() + ttl_millis, lru_.begin()});
}

void FunctionCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

size_t FunctionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace aldsp::runtime
