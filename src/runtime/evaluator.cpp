#include "runtime/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "compiler/builtins.h"
#include "relational/sql_ast.h"
#include "runtime/physical/builder.h"
#include "runtime/physical/operator.h"
#include "runtime/source_timing.h"
#include "runtime/worker_pool.h"
#include "xml/node.h"

namespace aldsp::runtime {

using compiler::Builtin;
using compiler::ExternalFunction;
using compiler::LookupBuiltin;
using compiler::UserFunction;
using relational::Cell;
using xml::AtomicType;
using xml::AtomicValue;
using xml::Item;
using xml::NodePtr;
using xml::Sequence;
using xml::XNode;
using xquery::Clause;
using xquery::Expr;
using xquery::ExprKind;
using xquery::ExprPtr;
using xquery::JoinMethod;

std::string EncodeAtomic(const AtomicValue& v) {
  char buf[64];
  switch (v.type()) {
    case AtomicType::kInteger:
      std::snprintf(buf, sizeof(buf), "n%.17g",
                    static_cast<double>(v.AsInteger()));
      return buf;
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      std::snprintf(buf, sizeof(buf), "n%.17g", v.AsDouble());
      return buf;
    case AtomicType::kBoolean:
      return v.AsBoolean() ? "b1" : "b0";
    case AtomicType::kDateTime:
      std::snprintf(buf, sizeof(buf), "t%lld",
                    static_cast<long long>(v.AsDateTime()));
      return buf;
    case AtomicType::kString:
    case AtomicType::kUntyped:
      return "s" + v.AsString();
  }
  return "?";
}

std::string EncodeAtomicSequence(const Sequence& atomized) {
  if (atomized.empty()) return std::string("\x01empty", 6);
  std::string out;
  for (const auto& item : atomized) {
    std::string e = EncodeAtomic(item.atomic());
    out += std::to_string(e.size());
    out += ':';
    out += e;
  }
  return out;
}

namespace {

// Coerces untyped values toward the other operand's type.
Result<std::pair<AtomicValue, AtomicValue>> CoerceComparisonPair(
    const AtomicValue& a, const AtomicValue& b) {
  if (a.type() == AtomicType::kUntyped && b.type() != AtomicType::kUntyped) {
    ALDSP_ASSIGN_OR_RETURN(AtomicValue ca, a.CastTo(b.type()));
    return std::make_pair(ca, b);
  }
  if (b.type() == AtomicType::kUntyped && a.type() != AtomicType::kUntyped) {
    ALDSP_ASSIGN_OR_RETURN(AtomicValue cb, b.CastTo(a.type()));
    return std::make_pair(a, cb);
  }
  return std::make_pair(a, b);
}

Result<bool> CompareAtomPair(const AtomicValue& a, const AtomicValue& b,
                             const std::string& op) {
  ALDSP_ASSIGN_OR_RETURN(auto pair, CoerceComparisonPair(a, b));
  ALDSP_ASSIGN_OR_RETURN(int c, pair.first.Compare(pair.second));
  if (op == "eq" || op == "=") return c == 0;
  if (op == "ne" || op == "!=") return c != 0;
  if (op == "lt" || op == "<") return c < 0;
  if (op == "le" || op == "<=") return c <= 0;
  if (op == "gt" || op == ">") return c > 0;
  if (op == "ge" || op == ">=") return c >= 0;
  return Status::InvalidArgument("unknown comparison operator: " + op);
}

}  // namespace

Result<Sequence> CompareAtomizedOperands(const Sequence& la, const Sequence& ra,
                                         const std::string& op, bool general) {
  if (general) {
    // Existential semantics over all pairs.
    for (const auto& a : la) {
      for (const auto& b : ra) {
        ALDSP_ASSIGN_OR_RETURN(bool match,
                               CompareAtomPair(a.atomic(), b.atomic(), op));
        if (match) {
          return Sequence{Item(AtomicValue::Boolean(true))};
        }
      }
    }
    return Sequence{Item(AtomicValue::Boolean(false))};
  }
  // Value comparison: empty propagates; singletons required.
  if (la.empty() || ra.empty()) return Sequence{};
  if (la.size() > 1 || ra.size() > 1) {
    return Status::RuntimeError("value comparison on multi-item sequence");
  }
  ALDSP_ASSIGN_OR_RETURN(
      bool match, CompareAtomPair(la.front().atomic(), ra.front().atomic(), op));
  return Sequence{Item(AtomicValue::Boolean(match))};
}

Result<bool> CompareOperandsToBool(const Sequence& l, const Sequence& r,
                                   const std::string& op, bool general) {
  if (general) {
    for (const auto& a : l) {
      const AtomicValue av = a.Atomize();
      for (const auto& b : r) {
        ALDSP_ASSIGN_OR_RETURN(bool match,
                               CompareAtomPair(av, b.Atomize(), op));
        if (match) return true;
      }
    }
    return false;
  }
  if (l.empty() || r.empty()) return false;  // EBV of the empty sequence
  if (l.size() > 1 || r.size() > 1) {
    return Status::RuntimeError("value comparison on multi-item sequence");
  }
  return CompareAtomPair(l.front().Atomize(), r.front().Atomize(), op);
}

xml::Sequence RowsToItems(const relational::ResultSet& rs,
                          const std::string& row_name) {
  Sequence out;
  out.reserve(rs.rows.size());
  for (const auto& row : rs.rows) {
    NodePtr el = XNode::Element(row_name);
    for (size_t i = 0; i < row.size() && i < rs.column_names.size(); ++i) {
      if (row[i].is_null) continue;  // NULL -> missing element
      el->AddChild(XNode::TypedElement(rs.column_names[i], row[i].value));
    }
    out.emplace_back(std::move(el));
  }
  return out;
}

namespace {

Cell AtomicToCell(const AtomicValue& v) { return Cell::Of(v); }

// Circuit-breaker admission gate, consulted before every source
// interaction. An open breaker rejects immediately (fast SourceError, no
// round trip, no timeout) — fn-bea:fail-over catches it like any other
// source failure and takes the alternate.
Status GateSource(const RuntimeContext& ctx, const std::string& source) {
  if (ctx.health != nullptr &&
      !ctx.health->AllowRequest(source, HealthNowMicros())) {
    return Status::SourceError("circuit breaker open for source '" + source +
                               "'");
  }
  return Status::OK();
}

void NoteSourceOutcome(const RuntimeContext& ctx, const std::string& source,
                       bool ok, int64_t micros) {
  if (ctx.health == nullptr) return;
  if (ok) {
    ctx.health->NoteSuccess(source, micros, HealthNowMicros());
  } else {
    ctx.health->NoteFailure(source, HealthNowMicros());
  }
}

// True when the attached trace will replay its source observations into
// the observed-cost model at completion (FeedObservedCost): only full
// and timeline traces keep the event list that replay walks. With a
// counters-mode trace (or none) observations must be recorded inline.
bool TraceReplaysObservations(const RuntimeContext& ctx) {
  return ctx.trace != nullptr && ctx.trace->keeps_events();
}

class Evaluator {
 public:
  explicit Evaluator(const RuntimeContext& ctx) : ctx_(ctx) {}

  Result<Sequence> Eval(const Expr& e, const Tuple& env, int depth) {
    if (depth > ctx_.max_call_depth) {
      return Status::RuntimeError("maximum evaluation depth exceeded");
    }
    switch (e.kind) {
      case ExprKind::kLiteral:
        return Sequence{Item(e.literal)};
      case ExprKind::kEmptySequence:
        return Sequence{};
      case ExprKind::kSequence:
        return EvalChildrenConcat(e, env, depth);
      case ExprKind::kVarRef: {
        const Sequence* v = env.Lookup(e.var_name);
        if (v == nullptr) {
          return Status::RuntimeError("unbound variable $" + e.var_name);
        }
        return *v;
      }
      case ExprKind::kFLWOR:
        return EvalFLWOR(e, env, depth);
      case ExprKind::kPathStep:
        return EvalPathStep(e, env, depth);
      case ExprKind::kFilter:
        return EvalFilter(e, env, depth);
      case ExprKind::kElementCtor:
        return EvalElementCtor(e, env, depth);
      case ExprKind::kAttributeCtor: {
        ALDSP_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env, depth));
        Sequence data = xml::Atomize(v);
        AtomicValue value = AtomicValue::String("");
        if (data.size() == 1) {
          value = data.front().atomic();
        } else if (data.size() > 1) {
          std::string joined;
          for (size_t i = 0; i < data.size(); ++i) {
            if (i > 0) joined += ' ';
            joined += data[i].atomic().Lexical();
          }
          value = AtomicValue::String(std::move(joined));
        }
        return Sequence{Item(XNode::Attribute(e.ctor_name, std::move(value)))};
      }
      case ExprKind::kIf: {
        ALDSP_ASSIGN_OR_RETURN(Sequence c, Eval(*e.children[0], env, depth));
        ALDSP_ASSIGN_OR_RETURN(bool b, xml::EffectiveBooleanValue(c));
        return Eval(b ? *e.children[1] : *e.children[2], env, depth);
      }
      case ExprKind::kQuantified:
        return EvalQuantified(e, env, depth);
      case ExprKind::kComparison:
        return EvalComparison(e, env, depth);
      case ExprKind::kArith:
        return EvalArith(e, env, depth);
      case ExprKind::kLogical: {
        ALDSP_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0], env, depth));
        ALDSP_ASSIGN_OR_RETURN(bool lb, xml::EffectiveBooleanValue(l));
        if (e.op == "and" && !lb) return BoolSeq(false);
        if (e.op == "or" && lb) return BoolSeq(true);
        ALDSP_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1], env, depth));
        ALDSP_ASSIGN_OR_RETURN(bool rb, xml::EffectiveBooleanValue(r));
        return BoolSeq(rb);
      }
      case ExprKind::kFunctionCall:
        return EvalFunctionCall(e, env, depth);
      case ExprKind::kCastAs: {
        ALDSP_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env, depth));
        Sequence data = xml::Atomize(v);
        if (data.empty()) {
          if (e.target_type.allows_empty()) return Sequence{};
          return Status::RuntimeError("cast of empty sequence to " +
                                      e.target_type.ToString());
        }
        if (data.size() > 1) {
          return Status::RuntimeError("cast of multi-item sequence");
        }
        AtomicType target = xsd::AtomizedType(e.target_type);
        ALDSP_ASSIGN_OR_RETURN(AtomicValue out,
                               data.front().atomic().CastTo(target));
        return Sequence{Item(std::move(out))};
      }
      case ExprKind::kInstanceOf: {
        ALDSP_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env, depth));
        return BoolSeq(MatchesType(v, e.target_type));
      }
      case ExprKind::kCastable: {
        // `x castable as T`: true iff the cast would succeed.
        ALDSP_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env, depth));
        Sequence data = xml::Atomize(v);
        if (data.empty()) return BoolSeq(e.target_type.allows_empty());
        if (data.size() > 1) return BoolSeq(false);
        AtomicType target = xsd::AtomizedType(e.target_type);
        return BoolSeq(data.front().atomic().CastTo(target).ok());
      }
      case ExprKind::kTypematch: {
        ALDSP_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env, depth));
        if (!MatchesType(v, e.target_type)) {
          return Status::RuntimeError("typematch failed: value is not a " +
                                      e.target_type.ToString());
        }
        return v;
      }
      case ExprKind::kSqlQuery:
        return EvalSqlQuery(e, env, depth);
      case ExprKind::kCustomQuery:
        return EvalCustomQuery(e, env, depth);
      case ExprKind::kError:
        return Status::RuntimeError("attempt to execute an error expression: " +
                                    e.error_message);
    }
    return Status::Internal("unhandled expression kind");
  }

 private:
  static Result<Sequence> BoolSeq(bool b) {
    return Sequence{Item(AtomicValue::Boolean(b))};
  }

  // ----- Async-aware child evaluation ----------------------------------

  static bool IsAsyncCall(const Expr& e) {
    return e.kind == ExprKind::kFunctionCall &&
           LookupBuiltin(e.fn_name) == Builtin::kAsync;
  }

  // True when `e` contains an fn-bea:async call reachable without
  // crossing a FLWOR or function-call boundary — such subtrees are
  // hoisted onto worker threads wholesale so independent slow-source
  // calls inside sibling constructors overlap (paper §5.4).
  static bool ContainsHoistableAsync(const Expr& e) {
    if (IsAsyncCall(e)) return true;
    switch (e.kind) {
      case ExprKind::kElementCtor:
      case ExprKind::kAttributeCtor:
      case ExprKind::kSequence:
      case ExprKind::kIf:
        for (const auto& c : e.children) {
          if (c && ContainsHoistableAsync(*c)) return true;
        }
        return false;
      default:
        return false;
    }
  }

  /// Result slot a worker-pool task fills; shared so an abandoned task
  /// (never happens here — every child is waited on) could not dangle.
  struct AsyncSlot {
    Result<Sequence> result = Sequence{};
  };

  // Evaluates children, running fn-bea:async children (and children
  // containing hoistable async calls) concurrently on the bounded
  // worker pool, preserving order. Task::Wait runs not-yet-started
  // tasks inline on this thread, so nested async under a small pool
  // cannot deadlock and never exceeds the pool's thread bound.
  Result<std::vector<Sequence>> EvalChildren(
      const std::vector<ExprPtr>& children, const Tuple& env, int depth) {
    WorkerPool& pool = WorkerPool::For(ctx_.pool);
    std::vector<WorkerPool::Task> tasks(children.size());
    std::vector<std::shared_ptr<AsyncSlot>> slots(children.size());
    std::vector<Sequence> results(children.size());
    std::vector<int> task_spans(children.size(), -1);
    // Worker threads have an empty scope stack; capture the launching
    // thread's innermost span so the async subtree's events attach there.
    // In timeline mode each hoisted subtree additionally gets its own
    // task span, opened at submit time so its begin marks the enqueue
    // and SetSpanQueueMicros splits queue wait from run time.
    int parent_span = QueryTrace::CurrentSpan(ctx_.trace);
    auto launch = [&](size_t i, ExprPtr body, const char* what) {
      auto slot = std::make_shared<AsyncSlot>();
      slots[i] = slot;
      Tuple env_copy = env;
      QueryTrace* trace = ctx_.trace;
      int task_span = -1;
      int64_t enqueue_rel = 0;
      if (trace != nullptr && trace->has_timeline()) {
        task_span = trace->BeginSpanUnder(parent_span, "task[async]", what);
        enqueue_rel = trace->NowRelMicros();
      }
      task_spans[i] = task_span;
      tasks[i] = pool.Submit([this, body, env_copy, depth, parent_span, slot,
                              trace, task_span, enqueue_rel]() {
        std::optional<QueryTrace::Scope> scope;
        if (trace != nullptr) {
          scope.emplace(trace, task_span >= 0 ? task_span : parent_span);
        }
        int64_t run_begin = 0;
        if (task_span >= 0) {
          trace->SetSpanQueueMicros(task_span,
                                    trace->NowRelMicros() - enqueue_rel);
          run_begin = trace->NowRelMicros();
        }
        slot->result = Eval(*body, env_copy, depth + 1);
        if (task_span >= 0) {
          trace->AddSpanMetrics(
              task_span,
              slot->result.ok()
                  ? static_cast<int64_t>(slot->result.value().size())
                  : 0,
              trace->NowRelMicros() - run_begin);
          trace->EndSpan(task_span);
        }
      });
    };
    for (size_t i = 0; i < children.size(); ++i) {
      const ExprPtr& c = children[i];
      if (IsAsyncCall(*c) && !c->children.empty()) {
        if (ctx_.stats != nullptr) ctx_.stats->async_tasks += 1;
        if (ctx_.trace != nullptr) {
          ctx_.trace->AddEvent(QueryTrace::EventKind::kAsyncTask, "",
                               "fn-bea:async", 0, 0);
        }
        launch(i, c->children[0], "fn-bea:async");
      } else if (ContainsHoistableAsync(*c)) {
        if (ctx_.trace != nullptr) {
          ctx_.trace->AddEvent(QueryTrace::EventKind::kAsyncTask, "",
                               "hoisted async subtree", 0, 0);
        }
        launch(i, c, "hoisted async subtree");
      }
    }
    Status first_error = Status::OK();
    for (size_t i = 0; i < children.size(); ++i) {
      if (tasks[i].valid()) continue;
      Result<Sequence> r = Eval(*children[i], env, depth);
      if (!r.ok()) {
        if (first_error.ok()) first_error = r.status();
        continue;
      }
      results[i] = std::move(r).value();
    }
    for (size_t i = 0; i < children.size(); ++i) {
      if (!tasks[i].valid()) continue;
      bool timed = ctx_.trace != nullptr && ctx_.trace->has_timeline() &&
                   task_spans[i] >= 0;
      int64_t wait_begin = timed ? ctx_.trace->NowRelMicros() : 0;
      tasks[i].Wait();
      if (timed) {
        ctx_.trace->AddWaitEvent(task_spans[i],
                                 ctx_.trace->NowRelMicros() - wait_begin,
                                 "async-join");
      }
      Result<Sequence> r = std::move(slots[i]->result);
      if (!r.ok()) {
        if (first_error.ok()) first_error = r.status();
        continue;
      }
      results[i] = std::move(r).value();
    }
    if (!first_error.ok()) return first_error;
    return results;
  }

  Result<Sequence> EvalChildrenConcat(const Expr& e, const Tuple& env,
                                      int depth) {
    ALDSP_ASSIGN_OR_RETURN(std::vector<Sequence> parts,
                           EvalChildren(e.children, env, depth));
    Sequence out;
    for (auto& p : parts) xml::AppendSequence(out, p);
    return out;
  }

  // ----- Node construction ----------------------------------------------

  Result<Sequence> EvalElementCtor(const Expr& e, const Tuple& env,
                                   int depth) {
    ALDSP_ASSIGN_OR_RETURN(std::vector<Sequence> parts,
                           EvalChildren(e.children, env, depth));
    NodePtr el = XNode::Element(e.ctor_name);
    // First pass: attach attributes (attribute items may come from any
    // content expression, e.g. a conditional attribute constructor).
    Sequence content;
    for (auto& p : parts) {
      for (auto& item : p) {
        if (item.is_node() &&
            item.node()->kind() == xml::NodeKind::kAttribute) {
          el->AddAttribute(item.node()->Clone());
        } else {
          content.push_back(item);
        }
      }
    }
    // Second pass: content. Adjacent atomic values join into one text
    // node separated by spaces; a single atomic keeps its runtime type
    // annotation (paper §3.1: annotations survive construction).
    size_t i = 0;
    while (i < content.size()) {
      const Item& item = content[i];
      if (item.is_node()) {
        el->AddChild(item.node()->Clone());
        ++i;
        continue;
      }
      size_t j = i;
      while (j < content.size() && content[j].is_atomic()) ++j;
      if (j - i == 1) {
        el->AddChild(XNode::Text(item.atomic()));
      } else {
        std::string joined;
        for (size_t k = i; k < j; ++k) {
          if (k > i) joined += ' ';
          joined += content[k].atomic().Lexical();
        }
        el->AddChild(XNode::Text(AtomicValue::String(std::move(joined))));
      }
      i = j;
    }
    return Sequence{Item(std::move(el))};
  }

  // ----- Paths and filters ----------------------------------------------

  Result<Sequence> EvalPathStep(const Expr& e, const Tuple& env, int depth) {
    ALDSP_ASSIGN_OR_RETURN(Sequence in, Eval(*e.children[0], env, depth));
    Sequence out;
    for (const auto& item : in) {
      if (item.is_atomic()) {
        return Status::RuntimeError("path step '" + e.step_name +
                                    "' applied to an atomic value");
      }
      const NodePtr& node = item.node();
      if (e.is_attribute_step) {
        NodePtr attr = node->AttributeNamed(e.step_name);
        if (attr != nullptr) out.emplace_back(attr);
      } else {
        for (const auto& child : node->ChildrenNamed(e.step_name)) {
          out.emplace_back(child);
        }
      }
    }
    return out;
  }

  Result<Sequence> EvalFilter(const Expr& e, const Tuple& env, int depth) {
    ALDSP_ASSIGN_OR_RETURN(Sequence in, Eval(*e.children[0], env, depth));
    Sequence out;
    for (size_t i = 0; i < in.size(); ++i) {
      Tuple item_env = env.Bind(".", Sequence{in[i]});
      ALDSP_ASSIGN_OR_RETURN(Sequence pred,
                             Eval(*e.children[1], item_env, depth));
      // Numeric predicate selects by position (1-based).
      if (pred.size() == 1 && pred.front().is_atomic() &&
          pred.front().atomic().is_numeric()) {
        double want = pred.front().atomic().NumericAsDouble();
        if (static_cast<double>(i + 1) == want) out.push_back(in[i]);
        continue;
      }
      ALDSP_ASSIGN_OR_RETURN(bool keep, xml::EffectiveBooleanValue(pred));
      if (keep) out.push_back(in[i]);
    }
    return out;
  }

  // ----- Comparisons and arithmetic -------------------------------------

  // min/max in evaluator_builtins.inc coerce running extrema the same
  // way comparisons coerce operand pairs.
  static Result<std::pair<AtomicValue, AtomicValue>> CoercePair(
      const AtomicValue& a, const AtomicValue& b) {
    return CoerceComparisonPair(a, b);
  }

  Result<Sequence> EvalComparison(const Expr& e, const Tuple& env, int depth) {
    ALDSP_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0], env, depth));
    ALDSP_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1], env, depth));
    // The comparison itself is shared with the batch filter kernel so
    // both paths stay semantically identical.
    return CompareAtomizedOperands(xml::Atomize(l), xml::Atomize(r), e.op,
                                   e.general_comparison);
  }

  Result<Sequence> EvalArith(const Expr& e, const Tuple& env, int depth) {
    ALDSP_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0], env, depth));
    ALDSP_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1], env, depth));
    Sequence la = xml::Atomize(l);
    Sequence ra = xml::Atomize(r);
    if (la.empty() || ra.empty()) return Sequence{};
    if (la.size() > 1 || ra.size() > 1) {
      return Status::RuntimeError("arithmetic on multi-item sequence");
    }
    AtomicValue a = la.front().atomic();
    AtomicValue b = ra.front().atomic();
    if (a.type() == AtomicType::kUntyped) {
      ALDSP_ASSIGN_OR_RETURN(a, a.CastTo(AtomicType::kDouble));
    }
    if (b.type() == AtomicType::kUntyped) {
      ALDSP_ASSIGN_OR_RETURN(b, b.CastTo(AtomicType::kDouble));
    }
    if (!a.is_numeric() || !b.is_numeric()) {
      return Status::RuntimeError("arithmetic on non-numeric values");
    }
    bool both_int = a.type() == AtomicType::kInteger &&
                    b.type() == AtomicType::kInteger;
    const std::string& op = e.op;
    if (op == "idiv" || op == "mod") {
      int64_t x = static_cast<int64_t>(a.NumericAsDouble());
      int64_t y = static_cast<int64_t>(b.NumericAsDouble());
      if (y == 0) return Status::RuntimeError(op + " by zero");
      return Sequence{
          Item(AtomicValue::Integer(op == "mod" ? x % y : x / y))};
    }
    if (op == "div") {
      double y = b.NumericAsDouble();
      if (y == 0.0) return Status::RuntimeError("division by zero");
      return Sequence{Item(AtomicValue::Double(a.NumericAsDouble() / y))};
    }
    if (both_int) {
      int64_t x = a.AsInteger();
      int64_t y = b.AsInteger();
      int64_t v = op == "+" ? x + y : (op == "-" ? x - y : x * y);
      return Sequence{Item(AtomicValue::Integer(v))};
    }
    double x = a.NumericAsDouble();
    double y = b.NumericAsDouble();
    double v = op == "+" ? x + y : (op == "-" ? x - y : x * y);
    bool decimalish = a.type() != AtomicType::kDouble &&
                      b.type() != AtomicType::kDouble;
    return Sequence{Item(decimalish ? AtomicValue::Decimal(v)
                                    : AtomicValue::Double(v))};
  }

  Result<Sequence> EvalQuantified(const Expr& e, const Tuple& env, int depth) {
    ALDSP_ASSIGN_OR_RETURN(Sequence in, Eval(*e.children[0], env, depth));
    for (const auto& item : in) {
      Tuple bound = env.Bind(e.var_name2, Sequence{item});
      ALDSP_ASSIGN_OR_RETURN(Sequence s, Eval(*e.children[1], bound, depth));
      ALDSP_ASSIGN_OR_RETURN(bool b, xml::EffectiveBooleanValue(s));
      if (e.is_every && !b) return BoolSeq(false);
      if (!e.is_every && b) return BoolSeq(true);
    }
    return BoolSeq(e.is_every);
  }

  // ----- Type matching ---------------------------------------------------

  static bool ItemMatchesType(const Item& item, const xsd::TypePtr& t) {
    using K = xsd::XType::Kind;
    switch (t->kind()) {
      case K::kAnyItem:
        return true;
      case K::kAnyNode:
        return item.is_node();
      case K::kAtomic: {
        if (!item.is_atomic()) return false;
        AtomicType at = item.atomic().type();
        if (at == t->atomic_type()) return true;
        if (at == AtomicType::kInteger &&
            t->atomic_type() == AtomicType::kDecimal) {
          return true;
        }
        return false;
      }
      case K::kElement:
        return item.is_node() &&
               item.node()->kind() == xml::NodeKind::kElement &&
               xml::NameMatches(item.node()->name(), t->name());
      case K::kAttribute:
        return item.is_node() &&
               item.node()->kind() == xml::NodeKind::kAttribute &&
               xml::NameMatches(item.node()->name(), t->name());
      case K::kError:
        return false;
    }
    return false;
  }

  static bool MatchesType(const Sequence& v, const xsd::SequenceType& t) {
    if (t.is_empty_sequence()) return v.empty();
    if (v.empty()) return t.allows_empty();
    if (v.size() > 1 && !t.allows_many()) return false;
    for (const auto& item : v) {
      if (!ItemMatchesType(item, t.item)) return false;
    }
    return true;
  }

  // ----- FLWOR: physical operator tree -----------------------------------

  /// Bridges physical operators back into this interpreter for scalar/XML
  /// expression evaluation (key expressions, predicates, return bodies).
  /// Stateless beyond (evaluator, depth), so the PP-k prefetcher may call
  /// it from a worker thread concurrently with the driving thread.
  class InterpreterShim final : public physical::ExprEvaluator {
   public:
    InterpreterShim(Evaluator* ev, int depth) : ev_(ev), depth_(depth) {}
    Result<Sequence> EvalExpr(const Expr& e, const Tuple& env) override {
      return ev_->Eval(e, env, depth_);
    }

   private:
    Evaluator* ev_;
    int depth_;
  };

  // Planner knobs from the runtime context: the server wires DOP to its
  // pool size, embedders and tests get the serial defaults.
  physical::BuildOptions PlanOptions() const {
    physical::BuildOptions opts;
    opts.max_dop = ctx_.max_query_dop;
    opts.parallel_row_threshold = ctx_.parallel_row_threshold;
    opts.exchange_chunk_size = ctx_.exchange_chunk_size;
    opts.ordered = ctx_.exchange_ordered;
    opts.batch_size = ctx_.batch_size;
    return opts;
  }

  /// Appends the result column's row values to `deliver`'s target: the
  /// batch drive loops below read the ReturnOp's kResultBinding column
  /// directly (the atomic layout is the fast path — no Sequence is
  /// built for single-atomic results until delivery), falling back to a
  /// materialized-row lookup only when an unconverted tree didn't
  /// produce the column.
  template <typename Fn>
  static Status DrainResultBatch(const physical::TupleBatch& batch,
                                 const Fn& deliver) {
    const physical::BatchColumn* col =
        batch.FindColumn(physical::kResultBinding);
    size_t n = batch.size();
    for (size_t i = 0; i < n; ++i) {
      if (col != nullptr) {
        size_t r = batch.PhysicalIndex(i);
        if (col->atomic()) {
          ALDSP_RETURN_NOT_OK(deliver(Sequence{Item(col->atoms[r])}));
        } else {
          ALDSP_RETURN_NOT_OK(deliver(col->seqs[r]));
        }
        continue;
      }
      Tuple t = batch.MaterializeRow(i);
      const Sequence* v = t.Lookup(physical::kResultBinding);
      if (v != nullptr) ALDSP_RETURN_NOT_OK(deliver(*v));
    }
    return Status::OK();
  }

  Result<Sequence> EvalFLWOR(const Expr& e, const Tuple& env, int depth) {
    int span = -1;
    std::optional<QueryTrace::Scope> scope;
    auto t0 = std::chrono::steady_clock::now();
    if (ctx_.trace != nullptr) {
      span = ctx_.trace->BeginSpan("flwor");
      scope.emplace(ctx_.trace, span);
    }
    Sequence out;
    InterpreterShim shim(this, depth);
    physical::ExecEnv xenv{&ctx_, &shim, env};
    std::unique_ptr<physical::PhysicalOperator> plan =
        physical::BuildPlan(e, PlanOptions());
    Status result = [&]() -> Status {
      ALDSP_RETURN_NOT_OK(plan->Open(&xenv));
      physical::TupleBatch batch;
      while (true) {
        ALDSP_ASSIGN_OR_RETURN(bool more, plan->NextBatch(&batch));
        if (!more) return Status::OK();
        ALDSP_RETURN_NOT_OK(
            DrainResultBatch(batch, [&](const Sequence& v) -> Status {
              // Progress stays per result row, not per batch.
              if (ctx_.exec != nullptr) {
                ctx_.exec->AddRows(static_cast<int64_t>(v.size()));
              }
              xml::AppendSequence(out, v);
              return Status::OK();
            }));
      }
    }();
    plan->Close();
    if (ctx_.trace != nullptr) {
      ctx_.trace->AddSpanMetrics(span, static_cast<int64_t>(out.size()),
                                 MicrosSince(t0));
      ctx_.trace->EndSpan(span);
    }
    if (!result.ok()) return result;
    return out;
  }

 public:
  // Streaming FLWOR: one tuple at a time through the operator tree,
  // items delivered as produced.
  Status StreamFLWOR(const Expr& e, const Tuple& env,
                     const std::function<Status(const Item&)>& sink) {
    int span = -1;
    std::optional<QueryTrace::Scope> scope;
    auto t0 = std::chrono::steady_clock::now();
    if (ctx_.trace != nullptr) {
      span = ctx_.trace->BeginSpan("flwor", "streaming");
      scope.emplace(ctx_.trace, span);
    }
    int64_t produced = 0;
    InterpreterShim shim(this, 0);
    physical::ExecEnv xenv{&ctx_, &shim, env};
    std::unique_ptr<physical::PhysicalOperator> plan =
        physical::BuildPlan(e, PlanOptions());
    Status result = [&]() -> Status {
      ALDSP_RETURN_NOT_OK(plan->Open(&xenv));
      physical::TupleBatch batch;
      while (true) {
        // One result row per pull: the root return clause evaluates its
        // expression lazily, so each delivered item pays for exactly one
        // result-expression evaluation (external calls included) while the
        // operators beneath the root still run at full batch width.
        ALDSP_ASSIGN_OR_RETURN(bool more, plan->NextBatch(&batch, 1));
        if (!more) return Status::OK();
        ALDSP_RETURN_NOT_OK(
            DrainResultBatch(batch, [&](const Sequence& v) -> Status {
              // Delivery polls per row even though execution polls per
              // batch: a sink that cancels the query must see the stream
              // stop at the next row boundary, not after the rest of an
              // already-produced batch.
              ALDSP_RETURN_NOT_OK(CheckCancelled(ctx_.exec));
              for (const auto& item : v) {
                ALDSP_RETURN_NOT_OK(sink(item));
                ++produced;
                if (ctx_.exec != nullptr) ctx_.exec->AddRows(1);
              }
              return Status::OK();
            }));
      }
    }();
    plan->Close();
    if (ctx_.trace != nullptr) {
      ctx_.trace->AddSpanMetrics(span, produced, MicrosSince(t0));
      ctx_.trace->EndSpan(span);
    }
    return result;
  }

 private:

  // ----- Function calls --------------------------------------------------

  Result<Sequence> EvalFunctionCall(const Expr& e, const Tuple& env,
                                    int depth) {
    Builtin b = LookupBuiltin(e.fn_name);
    if (b != Builtin::kUnknown) return EvalBuiltin(b, e, env, depth);
    if (ctx_.functions == nullptr) {
      return Status::RuntimeError("no function table in runtime context");
    }
    if (const UserFunction* fn = ctx_.functions->FindUser(e.fn_name)) {
      if (!fn->valid || fn->body == nullptr) {
        return Status::RuntimeError("function is not executable: " +
                                    e.fn_name);
      }
      Tuple call_env;  // user functions see only their parameters
      for (size_t i = 0; i < fn->params.size(); ++i) {
        ALDSP_ASSIGN_OR_RETURN(Sequence arg, Eval(*e.children[i], env, depth));
        call_env = call_env.Bind(fn->params[i].name, std::move(arg));
      }
      return Eval(*fn->body, call_env, depth + 1);
    }
    if (const ExternalFunction* fn = ctx_.functions->FindExternal(e.fn_name)) {
      return InvokeExternal(*fn, e, env, depth);
    }
    return Status::RuntimeError("unknown function: " + e.fn_name);
  }

  Result<Sequence> InvokeExternal(const ExternalFunction& fn, const Expr& e,
                                  const Tuple& env, int depth) {
    // Cancel checkpoint before a source round trip: queries that are a
    // straight function call never reach an operator batch poll.
    ALDSP_RETURN_NOT_OK(CheckCancelled(ctx_.exec));
    std::vector<Sequence> args;
    args.reserve(e.children.size());
    for (const auto& c : e.children) {
      ALDSP_ASSIGN_OR_RETURN(Sequence arg, Eval(*c, env, depth));
      args.push_back(std::move(arg));
    }
    // Function cache (paper §5.5): checked before invocation; results are
    // inserted with the administratively configured TTL.
    std::string cache_key;
    bool cacheable = ctx_.function_cache != nullptr &&
                     ctx_.function_cache->IsEnabled(fn.name);
    if (cacheable) {
      cache_key = FunctionCache::MakeKey(fn.name, args);
      Sequence cached;
      if (ctx_.function_cache->Lookup(cache_key, &cached)) {
        if (ctx_.trace != nullptr) {
          ctx_.trace->AddEvent(QueryTrace::EventKind::kCacheHit,
                               fn.Property("source"), fn.name,
                               static_cast<int64_t>(cached.size()), 0);
        }
        return cached;
      }
      if (ctx_.trace != nullptr) {
        ctx_.trace->AddEvent(QueryTrace::EventKind::kCacheMiss,
                             fn.Property("source"), fn.name, 0, 0);
      }
    }
    if (ctx_.adaptors == nullptr) {
      return Status::SourceError("no adaptor registry in runtime context");
    }
    Adaptor* adaptor = ctx_.adaptors->Find(fn.Property("source"));
    if (adaptor == nullptr) {
      return Status::SourceError("no adaptor for source '" +
                                 fn.Property("source") + "' (function " +
                                 fn.name + ")");
    }
    ALDSP_RETURN_NOT_OK(GateSource(ctx_, fn.Property("source")));
    if (ctx_.stats != nullptr) ctx_.stats->source_invocations += 1;
    relational::Database* db =
        fn.is_relational()
            ? ctx_.adaptors->FindDatabase(fn.Property("source"))
            : nullptr;
    int64_t sim_mark = VirtualLatencyMark(db);
    auto t0 = std::chrono::steady_clock::now();
    Result<Sequence> invoked = adaptor->Invoke(fn.name, args);
    int64_t micros = MicrosSince(t0) + VirtualLatencyDelta(db, sim_mark);
    NoteSourceOutcome(ctx_, fn.Property("source"), invoked.ok(), micros);
    if (!invoked.ok()) return invoked.status();
    Sequence result = std::move(invoked).value();
    if (ctx_.metrics != nullptr) {
      ctx_.metrics->RecordSourceLatency(fn.Property("source"), micros);
    }
    if (ctx_.trace != nullptr) {
      int64_t roundtrip = -1;
      int64_t transfer = 0;
      if (db != nullptr) {
        SplitSourceMicros(db, static_cast<int64_t>(result.size()), micros,
                          &roundtrip, &transfer);
      }
      ctx_.trace->AddEvent(QueryTrace::EventKind::kSourceInvoke,
                           fn.Property("source"), fn.name,
                           static_cast<int64_t>(result.size()), micros,
                           fn.is_relational() ? fn.Property("table") : "",
                           roundtrip, transfer);
    }
    // A full trace replays its events into the observed-cost model at
    // completion (FeedObservedCost), so inline recording would double
    // count; the always-on counters trace keeps no events, so the inline
    // path must still feed the model.
    if (!TraceReplaysObservations(ctx_) && ctx_.observed != nullptr &&
        fn.is_relational()) {
      ctx_.observed->RecordTableScan(fn.Property("source"),
                                     fn.Property("table"),
                                     static_cast<int64_t>(result.size()),
                                     micros);
    }
    if (cacheable) {
      ctx_.function_cache->Insert(cache_key, result,
                                  ctx_.function_cache->TtlFor(fn.name));
    }
    return result;
  }

  Result<Sequence> EvalSqlQuery(const Expr& e, const Tuple& env, int depth) {
    const auto& spec = e.sql;
    if (!spec || !spec->select) {
      return Status::Internal("malformed SQL query node");
    }
    std::vector<Cell> params;
    for (const auto& c : e.children) {
      ALDSP_ASSIGN_OR_RETURN(Sequence v, Eval(*c, env, depth));
      Sequence data = xml::Atomize(v);
      if (data.empty()) {
        params.push_back(Cell::Null());
      } else {
        params.push_back(AtomicToCell(data.front().atomic()));
      }
    }
    if (ctx_.adaptors == nullptr) {
      return Status::SourceError("no adaptor registry in runtime context");
    }
    relational::Database* db = ctx_.adaptors->FindDatabase(spec->source);
    if (db == nullptr) {
      return Status::SourceError("no relational source '" + spec->source + "'");
    }
    ALDSP_RETURN_NOT_OK(GateSource(ctx_, spec->source));
    if (ctx_.stats != nullptr) ctx_.stats->sql_pushdowns += 1;
    int64_t sim_mark = VirtualLatencyMark(db);
    auto t0 = std::chrono::steady_clock::now();
    Result<relational::ResultSet> executed =
        db->ExecuteSelect(*spec->select, params);
    int64_t micros = MicrosSince(t0) + VirtualLatencyDelta(db, sim_mark);
    NoteSourceOutcome(ctx_, spec->source, executed.ok(), micros);
    if (!executed.ok()) return executed.status();
    relational::ResultSet rs = std::move(executed).value();
    // A bare single-table scan observes the table's cardinality.
    const relational::SelectStmt& s = *spec->select;
    bool bare_scan = s.joins.empty() && s.where == nullptr &&
                     s.group_by.empty() && !s.distinct && s.range_start < 0 &&
                     !s.from.table_name.empty();
    if (ctx_.metrics != nullptr) {
      ctx_.metrics->RecordSourceLatency(spec->source, micros);
    }
    if (ctx_.trace != nullptr) {
      int64_t roundtrip = -1;
      int64_t transfer = 0;
      SplitSourceMicros(db, static_cast<int64_t>(rs.rows.size()), micros,
                        &roundtrip, &transfer);
      ctx_.trace->AddEvent(QueryTrace::EventKind::kSql, spec->source,
                           relational::DebugString(*spec->select),
                           static_cast<int64_t>(rs.rows.size()), micros,
                           bare_scan ? s.from.table_name : "", roundtrip,
                           transfer);
    }
    // Only a full trace replays observations at completion; under the
    // counters trace (or none) the model is fed inline.
    if (!TraceReplaysObservations(ctx_) && ctx_.observed != nullptr) {
      int64_t roundtrip = -1;
      int64_t transfer = 0;
      SplitSourceMicros(db, static_cast<int64_t>(rs.rows.size()), micros,
                        &roundtrip, &transfer);
      if (roundtrip >= 0) {
        ctx_.observed->RecordStatementSplit(spec->source, roundtrip, transfer,
                                            static_cast<int64_t>(
                                                rs.rows.size()));
      } else {
        ctx_.observed->RecordStatement(spec->source, micros);
      }
      if (bare_scan) {
        ctx_.observed->RecordTableScan(spec->source, s.from.table_name,
                                       static_cast<int64_t>(rs.rows.size()),
                                       micros);
      }
    }
    return RowsToItems(rs, spec->row_name);
  }

  // A pushed filter for a custom queryable source (§9 extensible
  // pushdown): parameters evaluate in the XQuery runtime; the adaptor
  // applies the conjuncts and returns only matching items.
  Result<Sequence> EvalCustomQuery(const Expr& e, const Tuple& env,
                                   int depth) {
    if (!e.custom) return Status::Internal("malformed custom query node");
    std::vector<AtomicValue> params;
    for (const auto& c : e.children) {
      ALDSP_ASSIGN_OR_RETURN(Sequence v, Eval(*c, env, depth));
      Sequence data = xml::Atomize(v);
      if (data.size() != 1) {
        return Status::RuntimeError(
            "pushed filter parameter is not a single value");
      }
      params.push_back(data.front().atomic());
    }
    if (ctx_.adaptors == nullptr) {
      return Status::SourceError("no adaptor registry in runtime context");
    }
    Adaptor* adaptor = ctx_.adaptors->Find(e.custom->source);
    if (adaptor == nullptr) {
      return Status::SourceError("no adaptor for source '" +
                                 e.custom->source + "'");
    }
    ALDSP_RETURN_NOT_OK(GateSource(ctx_, e.custom->source));
    if (ctx_.stats != nullptr) ctx_.stats->source_invocations += 1;
    auto t0 = std::chrono::steady_clock::now();
    Result<Sequence> invoked = adaptor->InvokeFiltered(*e.custom, params);
    int64_t micros = MicrosSince(t0);
    NoteSourceOutcome(ctx_, e.custom->source, invoked.ok(), micros);
    if (!invoked.ok()) return invoked.status();
    Sequence result = std::move(invoked).value();
    if (ctx_.metrics != nullptr) {
      ctx_.metrics->RecordSourceLatency(e.custom->source, micros);
    }
    if (ctx_.trace != nullptr) {
      std::string detail = e.custom->function;
      for (const auto& c : e.custom->conjuncts) {
        detail += " [" + c.attribute + " " + c.op + " ?]";
      }
      ctx_.trace->AddEvent(QueryTrace::EventKind::kCustomPushdown,
                           e.custom->source, detail,
                           static_cast<int64_t>(result.size()), micros);
    }
    return result;
  }

  // ----- Builtins ---------------------------------------------------------

  Result<Sequence> EvalBuiltin(Builtin b, const Expr& e, const Tuple& env,
                               int depth);
  Result<Sequence> EvalWithTimeout(const ExprPtr& prim, const Tuple& env,
                                   int depth, int64_t millis);

  /// Statically collects the source ids a subtree may contact: pushed SQL
  /// regions, PP-k fetch specs, custom pushdowns, external function
  /// calls, and the bodies of user functions it calls (cycle-guarded).
  /// Used by fn-bea:fail-over / fn-bea:timeout to consult the health
  /// board about the primary before paying for its evaluation.
  void CollectSources(const Expr& e, std::set<std::string>* out,
                      std::set<std::string>* visited_fns) const {
    switch (e.kind) {
      case ExprKind::kSqlQuery:
        if (e.sql) out->insert(e.sql->source);
        break;
      case ExprKind::kCustomQuery:
        if (e.custom) out->insert(e.custom->source);
        break;
      case ExprKind::kFunctionCall:
        if (ctx_.functions != nullptr) {
          if (const ExternalFunction* fn =
                  ctx_.functions->FindExternal(e.fn_name)) {
            out->insert(fn->Property("source"));
          } else if (const UserFunction* fn =
                         ctx_.functions->FindUser(e.fn_name)) {
            if (fn->body != nullptr && visited_fns->insert(e.fn_name).second) {
              CollectSources(*fn->body, out, visited_fns);
            }
          }
        }
        break;
      default:
        break;
    }
    for (const auto& c : e.children) {
      if (c != nullptr) CollectSources(*c, out, visited_fns);
    }
    for (const Clause& cl : e.clauses) {
      if (cl.expr != nullptr) CollectSources(*cl.expr, out, visited_fns);
      if (cl.condition != nullptr) {
        CollectSources(*cl.condition, out, visited_fns);
      }
      for (const auto& gk : cl.group_keys) {
        if (gk.expr != nullptr) CollectSources(*gk.expr, out, visited_fns);
      }
      for (const auto& ok : cl.order_keys) {
        if (ok.expr != nullptr) CollectSources(*ok.expr, out, visited_fns);
      }
      for (const auto& [lhs, rhs] : cl.equi_keys) {
        if (lhs != nullptr) CollectSources(*lhs, out, visited_fns);
        if (rhs != nullptr) CollectSources(*rhs, out, visited_fns);
      }
      if (cl.ppk_fetch != nullptr) out->insert(cl.ppk_fetch->source);
    }
  }

  /// True when any source the subtree depends on has an open breaker
  /// (still inside its cooldown). Fills `sources` for NoteTimeout.
  bool AnySourceBreakerOpen(const Expr& e,
                            std::set<std::string>* sources) const {
    if (ctx_.health == nullptr) return false;
    std::set<std::string> visited_fns;
    CollectSources(e, sources, &visited_fns);
    int64_t now = HealthNowMicros();
    for (const std::string& source : *sources) {
      if (ctx_.health->IsOpen(source, now)) return true;
    }
    return false;
  }

  const RuntimeContext& ctx_;
};

// The builtin library is defined in an .inc file included here so it
// shares this translation unit's anonymous-namespace Evaluator definition
// while keeping file sizes reviewable (Google style allows .inc for such
// deliberate inclusion).
#include "runtime/evaluator_builtins.inc"

}  // namespace

Result<Sequence> Evaluate(const Expr& expr, const Tuple& env,
                          const RuntimeContext& ctx) {
  Evaluator ev(ctx);
  return ev.Eval(expr, env, 0);
}

Result<Sequence> Evaluate(const Expr& expr, const RuntimeContext& ctx) {
  return Evaluate(expr, Tuple(), ctx);
}

Status EvaluateStream(const Expr& expr, const RuntimeContext& ctx,
                      const std::function<Status(const xml::Item&)>& sink) {
  Evaluator ev(ctx);
  if (expr.kind == ExprKind::kFLWOR) {
    return ev.StreamFLWOR(expr, Tuple(), sink);
  }
  ALDSP_ASSIGN_OR_RETURN(Sequence result, ev.Eval(expr, Tuple(), 0));
  for (const auto& item : result) {
    ALDSP_RETURN_NOT_OK(sink(item));
  }
  return Status::OK();
}

}  // namespace aldsp::runtime
