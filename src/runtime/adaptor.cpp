#include "runtime/adaptor.h"

namespace aldsp::runtime {

Status AdaptorRegistry::Register(std::shared_ptr<Adaptor> adaptor) {
  if (Find(adaptor->source_id()) != nullptr) {
    return Status::InvalidArgument("adaptor already registered: " +
                                   adaptor->source_id());
  }
  adaptors_.push_back(std::move(adaptor));
  return Status::OK();
}

Adaptor* AdaptorRegistry::Find(const std::string& source_id) const {
  for (const auto& a : adaptors_) {
    if (a->source_id() == source_id) return a.get();
  }
  return nullptr;
}

relational::Database* AdaptorRegistry::FindDatabase(
    const std::string& source_id) const {
  Adaptor* a = Find(source_id);
  return a == nullptr ? nullptr : a->database();
}

}  // namespace aldsp::runtime
