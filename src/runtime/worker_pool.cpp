#include "runtime/worker_pool.h"

#include <algorithm>

namespace aldsp::runtime {

WorkerPool::WorkerPool(int size) {
  if (size <= 0) {
    size = std::max(2u, std::thread::hardware_concurrency());
  }
  threads_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Tasks still queued here were abandoned (nobody waits on them); they
  // are dropped unrun. Running tasks completed before the joins above.
}

WorkerPool::Task WorkerPool::Submit(std::function<void()> fn) {
  auto state = std::make_shared<TaskState>();
  state->fn = std::move(fn);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(state);
  }
  cv_.notify_one();
  return Task(this, std::move(state));
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<TaskState> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    int expected = 0;
    if (task->claimed.compare_exchange_strong(expected, 1)) {
      RunTask(task, /*inline_run=*/false);
    }
    // Otherwise a waiter claimed it first and runs it inline.
  }
}

void WorkerPool::RunTask(const std::shared_ptr<TaskState>& task,
                         bool inline_run) {
  task->fn();
  task->fn = nullptr;  // release captures promptly
  (inline_run ? inline_runs_ : async_runs_).fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(task->mutex);
    task->done = true;
  }
  task->cv.notify_all();
}

void WorkerPool::Task::Wait() {
  if (state_ == nullptr) return;
  int expected = 0;
  if (state_->claimed.compare_exchange_strong(expected, 1)) {
    pool_->RunTask(state_, /*inline_run=*/true);
    return;
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
}

bool WorkerPool::Task::WaitFor(std::chrono::milliseconds timeout) {
  if (state_ == nullptr) return true;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock, timeout, [this] { return state_->done; });
}

WorkerPool& WorkerPool::Default() {
  static WorkerPool* pool = new WorkerPool();  // leaked, see header
  return *pool;
}

}  // namespace aldsp::runtime
