#include "runtime/worker_pool.h"

#include <algorithm>

namespace aldsp::runtime {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WorkerPool::WorkerPool(int size) {
  if (size <= 0) {
    size = std::max(2u, std::thread::hardware_concurrency());
  }
  threads_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Tasks still queued here were abandoned (nobody waits on them); they
  // are dropped unrun. Running tasks completed before the joins above.
}

WorkerPool::Task WorkerPool::Submit(std::function<void()> fn) {
  auto state = std::make_shared<TaskState>();
  state->fn = std::move(fn);
  state->enqueue_micros = SteadyNowMicros();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(state);
  }
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return Task(this, std::move(state));
}

bool WorkerPool::Claim(const std::shared_ptr<TaskState>& task) {
  int expected = 0;
  if (!task->claimed.compare_exchange_strong(expected, 1)) return false;
  task->start_micros.store(SteadyNowMicros(), std::memory_order_relaxed);
  queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<TaskState> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (Claim(task)) {
      RunTask(task, /*inline_run=*/false);
    }
    // Otherwise a waiter claimed it first and runs it inline.
  }
}

void WorkerPool::RunTask(const std::shared_ptr<TaskState>& task,
                         bool inline_run) {
  running_.fetch_add(1, std::memory_order_relaxed);
  task->fn();
  task->fn = nullptr;  // release captures promptly
  int64_t finish = SteadyNowMicros();
  task->finish_micros.store(finish, std::memory_order_relaxed);
  int64_t start = task->start_micros.load(std::memory_order_relaxed);
  total_queue_wait_micros_.fetch_add(
      std::max<int64_t>(start - task->enqueue_micros, 0),
      std::memory_order_relaxed);
  total_run_micros_.fetch_add(std::max<int64_t>(finish - start, 0),
                              std::memory_order_relaxed);
  tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  running_.fetch_sub(1, std::memory_order_relaxed);
  (inline_run ? inline_runs_ : async_runs_).fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(task->mutex);
    task->done = true;
  }
  task->cv.notify_all();
}

void WorkerPool::Task::Wait() {
  if (state_ == nullptr) return;
  if (pool_->Claim(state_)) {
    pool_->RunTask(state_, /*inline_run=*/true);
    return;
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
}

bool WorkerPool::Task::WaitFor(std::chrono::milliseconds timeout) {
  if (state_ == nullptr) return true;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock, timeout, [this] { return state_->done; });
}

int64_t WorkerPool::Task::queue_wait_micros() const {
  if (state_ == nullptr) return -1;
  int64_t start = state_->start_micros.load(std::memory_order_relaxed);
  if (start < 0) return -1;
  return std::max<int64_t>(start - state_->enqueue_micros, 0);
}

int64_t WorkerPool::Task::run_micros() const {
  if (state_ == nullptr) return -1;
  int64_t start = state_->start_micros.load(std::memory_order_relaxed);
  int64_t finish = state_->finish_micros.load(std::memory_order_relaxed);
  if (start < 0 || finish < 0) return -1;
  return std::max<int64_t>(finish - start, 0);
}

WorkerPool& WorkerPool::Default() {
  static WorkerPool* pool = new WorkerPool();  // leaked, see header
  return *pool;
}

}  // namespace aldsp::runtime
