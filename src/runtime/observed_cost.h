#ifndef ALDSP_RUNTIME_OBSERVED_COST_H_
#define ALDSP_RUNTIME_OBSERVED_COST_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace aldsp::runtime {

/// Observed-cost instrumentation — an implementation of the paper's §9
/// roadmap item: "skip past 'old school' techniques that rely on static
/// cost models and difficult-to-obtain statistics, instead instrumenting
/// the system and basing its optimization decisions (such as evaluation
/// ordering and parallelization) only on actually observed data
/// characteristics and data source behavior."
///
/// The runtime records what each source actually did (rows returned per
/// table, statement round-trip time); the optimizer consults these
/// observations when picking cross-source join methods and PP-k block
/// sizes on the next compilation.
class ObservedCostModel {
 public:
  struct TableObservation {
    int64_t rows = -1;            // last observed cardinality
    int64_t scans = 0;            // times observed
    double avg_scan_micros = 0;   // running average full-scan time
  };

  /// Records a completed table fetch.
  void RecordTableScan(const std::string& source, const std::string& table,
                       int64_t rows, int64_t micros);
  /// Records a statement round trip (any SQL execution).
  void RecordStatement(const std::string& source, int64_t micros);

  /// Last observed cardinality of a table, or -1 if never observed.
  int64_t ObservedRows(const std::string& source,
                       const std::string& table) const;
  /// Running average statement round-trip time for a source (-1 unknown).
  double ObservedRoundTripMicros(const std::string& source) const;

  TableObservation TableStats(const std::string& source,
                              const std::string& table) const;

  /// Join-method advice for a cross-source join whose right side scans
  /// `table`: returns true when PP-k is advisable (the outer is small
  /// relative to the observed inner cardinality, so parameterized
  /// fetches beat a full transfer), false when a one-shot full fetch
  /// (index nested loop) is expected to win. Unknown cardinalities give
  /// no advice (returns `default_ppk`).
  bool AdvisePPk(const std::string& source, const std::string& table,
                 int64_t estimated_outer_rows, bool default_ppk) const;

  /// Block-size advice: balances round trips against block memory given
  /// the estimated outer cardinality; clamped to [20, 500] so the paper's
  /// empirical default is the floor.
  int AdvisePPkBlockSize(int64_t estimated_outer_rows) const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, TableObservation> tables_;
  std::map<std::string, std::pair<int64_t, double>> statements_;  // n, avg
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_OBSERVED_COST_H_
