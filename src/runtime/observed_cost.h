#ifndef ALDSP_RUNTIME_OBSERVED_COST_H_
#define ALDSP_RUNTIME_OBSERVED_COST_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace aldsp::runtime {

/// Observed-cost instrumentation — an implementation of the paper's §9
/// roadmap item: "skip past 'old school' techniques that rely on static
/// cost models and difficult-to-obtain statistics, instead instrumenting
/// the system and basing its optimization decisions (such as evaluation
/// ordering and parallelization) only on actually observed data
/// characteristics and data source behavior."
///
/// The runtime records what each source actually did (rows returned per
/// table, statement round-trip time); the optimizer consults these
/// observations when picking cross-source join methods and PP-k block
/// sizes on the next compilation.
class ObservedCostModel {
 public:
  struct TableObservation {
    int64_t rows = -1;            // last observed cardinality
    int64_t scans = 0;            // times observed
    double avg_scan_micros = 0;   // running average full-scan time
  };

  /// Log2-bucketed latency histogram: bucket b holds samples in
  /// [2^(b-1), 2^b) microseconds, so forty buckets cover sub-micro
  /// through ~15 minutes with constant memory and a cheap percentile.
  struct LatencyHistogram {
    static constexpr int kBuckets = 40;
    int64_t counts[kBuckets] = {0};
    int64_t samples = 0;

    void Record(int64_t micros);
    /// Representative value (geometric bucket midpoint) at percentile
    /// `p` in [0, 1], or -1 when empty.
    int64_t Percentile(double p) const;
  };

  /// Records a completed table fetch.
  void RecordTableScan(const std::string& source, const std::string& table,
                       int64_t rows, int64_t micros);
  /// Records a statement round trip (any SQL execution).
  void RecordStatement(const std::string& source, int64_t micros);
  /// Records a statement with its cost split into the fixed round-trip
  /// part and the per-row transfer part (rows shipped). Also feeds the
  /// aggregate RecordStatement average with the total. The histograms
  /// these populate drive the adaptive PP-k block size / prefetch depth.
  void RecordStatementSplit(const std::string& source,
                            int64_t roundtrip_micros, int64_t transfer_micros,
                            int64_t rows);

  /// Last observed cardinality of a table, or -1 if never observed.
  int64_t ObservedRows(const std::string& source,
                       const std::string& table) const;
  /// Running average statement round-trip time for a source (-1 unknown).
  double ObservedRoundTripMicros(const std::string& source) const;
  /// Median fixed round-trip cost from the split histogram (-1 unknown).
  int64_t RoundTripP50Micros(const std::string& source) const;
  /// Average transfer micros per shipped row (-1 unknown).
  double TransferMicrosPerRow(const std::string& source) const;

  TableObservation TableStats(const std::string& source,
                              const std::string& table) const;

  /// Join-method advice for a cross-source join whose right side scans
  /// `table`: returns true when PP-k is advisable (the outer is small
  /// relative to the observed inner cardinality, so parameterized
  /// fetches beat a full transfer), false when a one-shot full fetch
  /// (index nested loop) is expected to win. Unknown cardinalities give
  /// no advice (returns `default_ppk`).
  bool AdvisePPk(const std::string& source, const std::string& table,
                 int64_t estimated_outer_rows, bool default_ppk) const;

  /// Block-size advice: balances round trips against block memory given
  /// the estimated outer cardinality; clamped to [20, 500] so the paper's
  /// empirical default is the floor.
  int AdvisePPkBlockSize(int64_t estimated_outer_rows) const;

  /// Source-aware block-size advice: starts from the cardinality-only
  /// heuristic above, then (when split observations exist) raises k until
  /// the fixed round-trip cost amortizes to <= ~10% of the block's
  /// transfer time. Same [20, 500] clamp.
  int AdvisePPkBlockSize(const std::string& source,
                         int64_t estimated_outer_rows) const;

  /// Prefetch-depth advice for a depth-d PP-k pipeline against `source`
  /// with blocks of `block_rows` parameters: roughly round-trip / block
  /// consumption time, so enough fetches are in flight to keep the
  /// consumer from stalling. Clamped to [1, 8]; 1 (the classic double
  /// buffer) when the source has no split observations yet.
  int AdvisePrefetchDepth(const std::string& source, int block_rows) const;

  /// Deterministic summary of the advice-relevant inputs: observed row
  /// counts per (source, table) plus the log2 bucket of each source's
  /// round-trip p50 (bucketed because raw p50 jitters without changing
  /// any advice). The plan lifecycle plane snapshots this at compile
  /// time; when a statement recompiles into a different plan shape,
  /// comparing snapshots attributes the flip to cost-model-advice change
  /// versus plan-cache eviction.
  std::string AdviceSnapshot() const;

  void Clear();

 private:
  struct SourceObservation {
    LatencyHistogram roundtrip;
    int64_t transfer_micros_total = 0;
    int64_t rows_total = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, TableObservation> tables_;
  std::map<std::string, std::pair<int64_t, double>> statements_;  // n, avg
  std::map<std::string, SourceObservation> splits_;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_OBSERVED_COST_H_
