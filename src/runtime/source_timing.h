#ifndef ALDSP_RUNTIME_SOURCE_TIMING_H_
#define ALDSP_RUNTIME_SOURCE_TIMING_H_

// Timing helpers shared by the evaluator and the physical operators:
// wall-clock deltas around source round trips, the virtual-latency
// correction for LatencyModels that run without sleeping, the health
// board's steady timestamps, and the round-trip vs per-row-transfer
// split the timeline trace records on relational source events.

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "relational/engine.h"

namespace aldsp::runtime {

inline int64_t MicrosSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Snapshot of a source's simulated-latency clock: when the LatencyModel
// runs in virtual time (sleep == false) the wall clock misses the
// modeled round trips, so trace events fold in the clock's growth.
inline int64_t VirtualLatencyMark(relational::Database* db) {
  if (db == nullptr || db->latency_model().sleep) return -1;
  return db->stats().simulated_latency_micros.load();
}

inline int64_t VirtualLatencyDelta(relational::Database* db, int64_t mark) {
  if (mark < 0) return 0;
  return db->stats().simulated_latency_micros.load() - mark;
}

// Steady-clock "now" for the source health board's breaker timestamps.
inline int64_t HealthNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Splits a relational source event's observed micros into the
// LatencyModel components: one round trip plus `rows` per-row transfer
// micros, each clipped to what was actually observed. Without a
// configured model (or a db) the split is unknown: the whole duration
// is reported as round trip (*roundtrip = micros).
inline void SplitSourceMicros(relational::Database* db, int64_t rows,
                              int64_t micros, int64_t* roundtrip,
                              int64_t* transfer) {
  *roundtrip = micros;
  *transfer = 0;
  if (db == nullptr) return;
  const relational::LatencyModel& lm = db->latency_model();
  if (lm.roundtrip_micros <= 0 && lm.per_row_micros <= 0) return;
  *roundtrip = std::min<int64_t>(micros, std::max<int64_t>(lm.roundtrip_micros, 0));
  *transfer =
      std::min<int64_t>(micros - *roundtrip,
                        std::max<int64_t>(rows, 0) * lm.per_row_micros);
}

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_SOURCE_TIMING_H_
