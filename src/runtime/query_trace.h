#ifndef ALDSP_RUNTIME_QUERY_TRACE_H_
#define ALDSP_RUNTIME_QUERY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace aldsp::runtime {

class ObservedCostModel;

/// Per-execution profile of one query run (the paper's §9 "instrumenting
/// the system" roadmap item, and the observability counterpart of the
/// §4.1 query-plan view). A trace records
///
///  - one *span* per plan-operator instance (FLWOR clause streams, the
///    enclosing FLWOR, the root query): operator kind, rows produced,
///    cumulative wall micros spent inside the operator (inclusive of its
///    inputs, EXPLAIN ANALYZE style), and bytes materialized by blocking
///    operators (join build sides, group-by, order-by);
///  - one *event* per source interaction: the SQL text pushed to a
///    relational source, PP-k block fetches, adaptor invocations,
///    function-cache hits/misses, async task launches, timeout and
///    fail-over firings. Events carry the rows transferred and the
///    round-trip micros (including a source's simulated latency when its
///    LatencyModel runs in virtual time).
///
/// A trace runs in one of two modes. kFull records the span tree and
/// the event list above (opt-in, ExecuteProfiled). kCounters is the
/// always-on observability mode: BeginSpan returns -1 so operators keep
/// their no-span fast path, and AddEvent folds into per-kind atomic
/// counters plus a touched-source set — no span tree, no per-event
/// strings, no mutex on the counter path — cheap enough to leave on for
/// every execution while still feeding audit records (pushed-SQL count,
/// cache hits, sources touched, timeout/fail-over firings). A null trace
/// pointer still skips every instrumentation branch. A trace must be
/// thread-safe because fn-bea:async and fn-bea:timeout evaluate subtrees
/// on worker threads that share the RuntimeContext.
///
/// Spans form a tree. Parentage is tracked per thread: a Scope pushes a
/// span onto the calling thread's stack, and spans/events created while
/// it is open attach to it. Worker threads re-establish the launching
/// thread's innermost span via the span id captured at launch.
class QueryTrace {
 public:
  enum class Mode { kFull, kCounters };

  explicit QueryTrace(Mode mode = Mode::kFull) : mode_(mode) {}
  Mode mode() const { return mode_; }

  struct Span {
    int id = -1;
    int parent = -1;       // -1 = attached to the root listing
    std::string kind;      // "query", "flwor", "for $c", "join[ppk-inl] $o"
    std::string detail;    // method parameters, query text, ...
    int64_t rows = 0;      // tuples / items produced
    int64_t micros = 0;    // cumulative wall time (inclusive of inputs)
    int64_t bytes = 0;     // peak bytes materialized by this operator
    bool finished = false;
  };

  enum class EventKind {
    kSql,             // pushed-down SQL statement (detail = SQL text)
    kPPkFetch,        // PP-k parameterized block fetch (detail = SQL text)
    kSourceInvoke,    // adaptor invocation (detail = function name)
    kCustomPushdown,  // pushed filter on a custom queryable source
    kCacheHit,        // function cache hit (no source round trip)
    kCacheMiss,       // function cache miss (invocation follows)
    kAsyncTask,       // fn-bea:async subtree hoisted to a worker thread
    kTimeout,         // fn-bea:timeout abandoned the primary
    kFailOver,        // fn-bea:fail-over / timeout took the alternate
  };
  static const char* EventKindName(EventKind kind);

  struct Event {
    EventKind kind = EventKind::kSourceInvoke;
    int span = -1;       // operator span the event occurred under
    std::string source;  // source id ("customer_db", "ratingWS", ...)
    std::string detail;  // SQL text / function name / message
    std::string table;   // non-empty when the event observed a table scan
    int64_t rows = 0;    // rows / items transferred
    int64_t micros = 0;  // round-trip time (virtual latency folded in)
  };

  /// Opens a span whose parent is the calling thread's innermost open
  /// scope (or the root). Returns the span id.
  int BeginSpan(const std::string& kind, const std::string& detail = "");
  /// Accumulates rows/micros onto a span (operators flush incrementally).
  void AddSpanMetrics(int id, int64_t rows, int64_t micros);
  /// Raises the span's materialized-bytes high-water mark.
  void AddSpanBytes(int id, int64_t bytes);
  void EndSpan(int id);

  /// Records a source-interaction event under the calling thread's
  /// innermost open span.
  void AddEvent(EventKind kind, const std::string& source,
                const std::string& detail, int64_t rows, int64_t micros,
                const std::string& table = "");

  /// Empty in counters mode.
  std::vector<Span> spans() const;
  /// Empty in counters mode.
  std::vector<Event> events() const;
  /// Works in both modes (atomic counters in kCounters, event scan in
  /// kFull).
  int64_t CountEvents(EventKind kind) const;
  /// Total micros attributed to events of `kind` (both modes).
  int64_t SumEventMicros(EventKind kind) const;
  /// Sorted unique source ids touched by any recorded event (both
  /// modes). Function-cache hits count their source as touched even
  /// though no backend round trip happened.
  std::vector<std::string> SourcesTouched() const;

  /// Replays the trace's source observations into the observed-cost
  /// model: SQL statements feed round-trip averages, and events that
  /// observed a full table scan feed cardinalities. This closes the §9
  /// observe -> optimize loop without any manual Record* calls: the next
  /// compilation of the same query consults these values.
  void FeedObservedCost(ObservedCostModel* model) const;

  /// RAII parent marker for the calling thread. Pass the span id that
  /// nested spans and events should attach to; -1 re-establishes the
  /// root (used by worker threads with an empty stack).
  class Scope {
   public:
    Scope(const QueryTrace* trace, int span);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const QueryTrace* trace_;
  };
  /// The calling thread's innermost open span for `trace`, or -1.
  static int CurrentSpan(const QueryTrace* trace);

 private:
  static constexpr int kNumEventKinds =
      static_cast<int>(EventKind::kFailOver) + 1;

  Mode mode_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::vector<Event> events_;
  // Counters-mode state: lock-free per-kind tallies plus a touched-source
  // set updated only on events that carry a source id.
  std::atomic<int64_t> event_counts_[kNumEventKinds] = {};
  std::atomic<int64_t> event_micros_[kNumEventKinds] = {};
  mutable std::mutex sources_mutex_;
  std::set<std::string> sources_;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_QUERY_TRACE_H_
