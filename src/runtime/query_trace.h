#ifndef ALDSP_RUNTIME_QUERY_TRACE_H_
#define ALDSP_RUNTIME_QUERY_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "observability/timeline.h"

namespace aldsp::runtime {

class ObservedCostModel;

/// Per-execution profile of one query run (the paper's §9 "instrumenting
/// the system" roadmap item, and the observability counterpart of the
/// §4.1 query-plan view). A trace records
///
///  - one *span* per plan-operator instance (FLWOR clause streams, the
///    enclosing FLWOR, the root query): operator kind, rows produced,
///    cumulative wall micros spent inside the operator (inclusive of its
///    inputs, EXPLAIN ANALYZE style), and bytes materialized by blocking
///    operators (join build sides, group-by, order-by);
///  - one *event* per source interaction: the SQL text pushed to a
///    relational source, PP-k block fetches, adaptor invocations,
///    function-cache hits/misses, async task launches, timeout and
///    fail-over firings. Events carry the rows transferred and the
///    round-trip micros (including a source's simulated latency when its
///    LatencyModel runs in virtual time).
///
/// A trace runs in one of three modes. kFull records the span tree and
/// the event list above. kTimeline is kFull plus a *timeline*: every
/// span gets steady-clock begin/end timestamps (relative to the trace's
/// construction) and a thread lane; operators mark first-row/last-row
/// production; pool-task spans record how long they sat queued before a
/// thread ran them; task joins record how long the waiting thread
/// stalled (kTaskWait events); relational source events split their
/// micros into round-trip vs per-row transfer. ExecuteProfiled and
/// slow-query promotion use kTimeline so the run can be rendered as a
/// critical-path report or exported as a Chrome trace_event JSON
/// document (see BuildTimeline and observability/{critical_path,
/// trace_export}). kCounters is the always-on observability mode:
/// BeginSpan returns -1 so operators keep their no-span fast path, and
/// AddEvent folds into per-kind atomic counters plus a touched-source
/// set — no span tree, no per-event strings, no mutex on the counter
/// path — cheap enough to leave on for every execution while still
/// feeding audit records (pushed-SQL count, cache hits, sources touched,
/// timeout/fail-over firings). The atomic tallies are maintained in
/// every mode, so CountEvents/SumEventMicros/SourcesTouched never scan
/// the event list. A null trace pointer still skips every
/// instrumentation branch. A trace must be thread-safe because
/// fn-bea:async and fn-bea:timeout evaluate subtrees on worker threads
/// that share the RuntimeContext.
///
/// Spans form a tree. Parentage is tracked per thread: a Scope pushes a
/// span onto the calling thread's stack, and spans/events created while
/// it is open attach to it. Worker threads re-establish the launching
/// thread's innermost span via the span id captured at launch.
class QueryTrace {
 public:
  enum class Mode { kFull, kCounters, kTimeline };

  explicit QueryTrace(Mode mode = Mode::kFull);
  Mode mode() const { return mode_; }
  /// True when the trace records the span tree and event list.
  bool keeps_events() const { return mode_ != Mode::kCounters; }
  /// True when spans/events additionally carry timestamps and lanes.
  bool has_timeline() const { return mode_ == Mode::kTimeline; }

  struct Span {
    int id = -1;
    int parent = -1;       // -1 = attached to the root listing
    std::string kind;      // "query", "flwor", "for $c", "join[ppk-inl] $o"
    std::string detail;    // method parameters, query text, ...
    int64_t rows = 0;      // tuples / items produced
    int64_t micros = 0;    // cumulative wall time (inclusive of inputs)
    int64_t bytes = 0;     // peak bytes materialized by this operator
    bool finished = false;
    // Timeline mode only (-1 otherwise): steady-clock micros relative to
    // the trace origin, and the thread lane the span was opened on.
    int64_t begin_micros = -1;
    int64_t end_micros = -1;
    int lane = -1;
    // Pool-task spans: micros spent queued before a thread ran the task.
    int64_t queue_micros = -1;
    // First/last row production marks (operators with a span).
    int64_t first_row_micros = -1;
    int64_t last_row_micros = -1;
  };

  enum class EventKind {
    kSql,             // pushed-down SQL statement (detail = SQL text)
    kPPkFetch,        // PP-k parameterized block fetch (detail = SQL text)
    kSourceInvoke,    // adaptor invocation (detail = function name)
    kCustomPushdown,  // pushed filter on a custom queryable source
    kCacheHit,        // function cache hit (no source round trip)
    kCacheMiss,       // function cache miss (invocation follows)
    kAsyncTask,       // fn-bea:async subtree hoisted to a worker thread
    kTimeout,         // fn-bea:timeout abandoned the primary
    kFailOver,        // fn-bea:fail-over / timeout took the alternate
    kTaskWait,        // calling thread blocked joining a pool task
  };
  static const char* EventKindName(EventKind kind);

  struct Event {
    EventKind kind = EventKind::kSourceInvoke;
    int span = -1;       // operator span the event occurred under
    std::string source;  // source id ("customer_db", "ratingWS", ...)
    std::string detail;  // SQL text / function name / message
    std::string table;   // non-empty when the event observed a table scan
    int64_t rows = 0;    // rows / items transferred
    int64_t micros = 0;  // round-trip time (virtual latency folded in)
    // Timeline mode only: completion timestamp (the event covers
    // [at - micros, at]) and the recording thread's lane.
    int64_t at_micros = -1;
    int lane = -1;
    // Relational source events: micros split into the LatencyModel
    // components. roundtrip < 0 means no split was recorded.
    int64_t roundtrip_micros = -1;
    int64_t transfer_micros = 0;
    // kTaskWait: the pool-task span the thread was joining.
    int ref_span = -1;
  };

  /// Opens a span whose parent is the calling thread's innermost open
  /// scope (or the root). Returns the span id.
  int BeginSpan(const std::string& kind, const std::string& detail = "");
  /// Opens a span under an explicit parent, ignoring the thread's scope
  /// stack. Used at async-launch points: the task span is created by the
  /// launching thread (so enqueue time is its begin) but runs elsewhere.
  int BeginSpanUnder(int parent, const std::string& kind,
                     const std::string& detail = "");
  /// Accumulates rows/micros onto a span (operators flush incrementally).
  void AddSpanMetrics(int id, int64_t rows, int64_t micros);
  /// Raises the span's materialized-bytes high-water mark.
  void AddSpanBytes(int id, int64_t bytes);
  /// Records how long a pool-task span sat queued before running.
  void SetSpanQueueMicros(int id, int64_t micros);
  /// Records when a span produced its first and most recent row
  /// (origin-relative micros).
  void SetSpanRowMarks(int id, int64_t first_micros, int64_t last_micros);
  void EndSpan(int id);

  /// Records a source-interaction event under the calling thread's
  /// innermost open span. `roundtrip_micros`/`transfer_micros` split
  /// `micros` into the LatencyModel components when the source is
  /// relational (-1 = unknown, whole duration counts as round trip).
  void AddEvent(EventKind kind, const std::string& source,
                const std::string& detail, int64_t rows, int64_t micros,
                const std::string& table = "", int64_t roundtrip_micros = -1,
                int64_t transfer_micros = 0);
  /// Timeline mode only (no-op otherwise): records that the calling
  /// thread just spent `micros` blocked joining pool-task span
  /// `ref_span`. The stall interval is [now - micros, now].
  void AddWaitEvent(int ref_span, int64_t micros, const std::string& detail);

  /// Micros elapsed since the trace was constructed (steady clock).
  int64_t NowRelMicros() const;
  /// Converts a steady-clock time point to origin-relative micros.
  int64_t RelMicros(std::chrono::steady_clock::time_point tp) const;

  /// Empty in counters mode.
  std::vector<Span> spans() const;
  /// Empty in counters mode.
  std::vector<Event> events() const;
  /// Per-kind atomic tally, O(1) in every mode.
  int64_t CountEvents(EventKind kind) const;
  /// Total micros attributed to events of `kind`, O(1) in every mode.
  int64_t SumEventMicros(EventKind kind) const;
  /// Sorted unique source ids touched by any recorded event (every
  /// mode). Function-cache hits count their source as touched even
  /// though no backend round trip happened.
  std::vector<std::string> SourcesTouched() const;

  /// Converts a timeline-mode trace into the runtime-neutral model the
  /// observability consumers (critical path, Chrome export) operate on.
  /// Traces without timestamps degrade gracefully: spans land at ts 0
  /// with their cumulative micros as duration.
  observability::Timeline BuildTimeline() const;

  /// Replays the trace's source observations into the observed-cost
  /// model: SQL statements feed round-trip averages, and events that
  /// observed a full table scan feed cardinalities. This closes the §9
  /// observe -> optimize loop without any manual Record* calls: the next
  /// compilation of the same query consults these values.
  void FeedObservedCost(ObservedCostModel* model) const;

  /// RAII parent marker for the calling thread. Pass the span id that
  /// nested spans and events should attach to; -1 re-establishes the
  /// root (used by worker threads with an empty stack).
  class Scope {
   public:
    Scope(const QueryTrace* trace, int span);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const QueryTrace* trace_;
  };
  /// The calling thread's innermost open span for `trace`, or -1.
  static int CurrentSpan(const QueryTrace* trace);

 private:
  static constexpr int kNumEventKinds =
      static_cast<int>(EventKind::kTaskWait) + 1;

  /// Lane index for the calling thread, registering it on first use.
  /// Requires mutex_ to be held.
  int LaneLocked();

  Mode mode_;
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::vector<Event> events_;
  // Timeline-mode lane registry: lane 0 is the constructing thread
  // ("main"), workers are named in registration order. Guarded by mutex_.
  std::map<std::thread::id, int> lanes_;
  std::vector<std::string> lane_names_;
  // Lock-free per-kind tallies plus a touched-source set updated only on
  // events that carry a source id. Maintained in every mode so the audit
  // path never scans the event list.
  std::atomic<int64_t> event_counts_[kNumEventKinds] = {};
  std::atomic<int64_t> event_micros_[kNumEventKinds] = {};
  mutable std::mutex sources_mutex_;
  std::set<std::string> sources_;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_QUERY_TRACE_H_
