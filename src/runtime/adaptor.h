#ifndef ALDSP_RUNTIME_ADAPTOR_H_
#define ALDSP_RUNTIME_ADAPTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/engine.h"
#include "xml/item.h"
#include "xquery/ast.h"

namespace aldsp::runtime {

/// A runtime data source adaptor (paper §5.3). One adaptor instance
/// represents one connected physical source; invocation follows the
/// paper's five steps (connect, translate parameters, invoke, translate
/// result into the typed token stream / item form, release).
class Adaptor {
 public:
  virtual ~Adaptor() = default;

  /// Registered source id ("customer_db", "ratingWS", ...).
  virtual const std::string& source_id() const = 0;

  /// Invokes a source function with XQuery-level arguments and returns the
  /// result as a typed item sequence. Must be thread-safe: asynchronous
  /// evaluation (fn-bea:async) calls adaptors from worker threads.
  virtual Result<xml::Sequence> Invoke(
      const std::string& function, const std::vector<xml::Sequence>& args) = 0;

  /// Non-null for queryable (relational) sources; used by the pushdown
  /// runtime to execute generated SQL.
  virtual relational::Database* database() { return nullptr; }

  /// Extensible pushdown hook (the §9 roadmap: pushing work to queryable
  /// non-relational sources like LDAP). Sources that advertise pushable
  /// operators (via the function's `pushdown_ops` metadata) receive the
  /// pushed conjuncts plus the evaluated parameter values and return only
  /// matching items. The default declines.
  virtual Result<xml::Sequence> InvokeFiltered(
      const xquery::CustomQuerySpec& spec,
      const std::vector<xml::AtomicValue>& params) {
    (void)params;
    return Status::NotImplemented("source " + spec.source +
                                  " does not accept pushed filters");
  }
};

/// Runtime registry of connected adaptors, keyed by source id.
class AdaptorRegistry {
 public:
  Status Register(std::shared_ptr<Adaptor> adaptor);
  Adaptor* Find(const std::string& source_id) const;
  /// Finds an adaptor that wraps a relational database, or null.
  relational::Database* FindDatabase(const std::string& source_id) const;

 private:
  std::vector<std::shared_ptr<Adaptor>> adaptors_;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_ADAPTOR_H_
