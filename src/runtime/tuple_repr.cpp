#include "runtime/tuple_repr.h"

#include <cstring>

namespace aldsp::runtime {

using xml::AtomicType;
using xml::AtomicValue;
using xml::Sequence;
using xml::Token;
using xml::TokenKind;
using xml::TokenVector;

const char* TupleReprName(TupleRepr r) {
  switch (r) {
    case TupleRepr::kStream:
      return "stream";
    case TupleRepr::kSingleToken:
      return "single-token";
    case TupleRepr::kArray:
      return "array";
  }
  return "?";
}

namespace {

// ----- Compact binary token encoding ------------------------------------
// The stream and single-token representations store tokens as packed
// bytes (the in-memory analogue of the wire-level token stream of [11]),
// which is what gives them their low memory footprint; field access pays
// for sequential decoding (Fig. 4's tradeoff).

enum : char {
  kOpBeginTuple = 'B',
  kOpFieldSep = 'F',
  kOpEndTuple = 'E',
  kOpStartElement = '<',
  kOpEndElement = '>',
  kOpAttribute = 'A',
  kOpAtom = 'T',
};

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const AtomicValue& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case AtomicType::kInteger: {
      int64_t n = v.AsInteger();
      out->append(reinterpret_cast<const char*>(&n), 8);
      break;
    }
    case AtomicType::kDateTime: {
      int64_t n = v.AsDateTime();
      out->append(reinterpret_cast<const char*>(&n), 8);
      break;
    }
    case AtomicType::kDecimal:
    case AtomicType::kDouble: {
      double d = v.AsDouble();
      out->append(reinterpret_cast<const char*>(&d), 8);
      break;
    }
    case AtomicType::kBoolean:
      out->push_back(v.AsBoolean() ? 1 : 0);
      break;
    case AtomicType::kString:
    case AtomicType::kUntyped:
      PutBytes(out, v.AsString());
      break;
  }
}

class ByteReader {
 public:
  ByteReader(const std::string& bytes, size_t pos) : bytes_(bytes), pos_(pos) {}

  bool AtEnd() const { return pos_ >= bytes_.size(); }
  size_t pos() const { return pos_; }
  char PeekOp() const { return bytes_[pos_]; }
  char TakeOp() { return bytes_[pos_++]; }

  uint32_t TakeU32() {
    uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  std::string TakeBytes() {
    uint32_t n = TakeU32();
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  AtomicValue TakeValue() {
    AtomicType type = static_cast<AtomicType>(bytes_[pos_++]);
    switch (type) {
      case AtomicType::kInteger:
      case AtomicType::kDateTime: {
        int64_t n;
        std::memcpy(&n, bytes_.data() + pos_, 8);
        pos_ += 8;
        return type == AtomicType::kInteger ? AtomicValue::Integer(n)
                                            : AtomicValue::DateTime(n);
      }
      case AtomicType::kDecimal:
      case AtomicType::kDouble: {
        double d;
        std::memcpy(&d, bytes_.data() + pos_, 8);
        pos_ += 8;
        return type == AtomicType::kDecimal ? AtomicValue::Decimal(d)
                                            : AtomicValue::Double(d);
      }
      case AtomicType::kBoolean:
        return AtomicValue::Boolean(bytes_[pos_++] != 0);
      case AtomicType::kString:
        return AtomicValue::String(TakeBytes());
      case AtomicType::kUntyped:
        return AtomicValue::Untyped(TakeBytes());
    }
    return AtomicValue();
  }

  // Decodes exactly one token (op already known to be present).
  Token TakeToken() {
    char op = TakeOp();
    switch (op) {
      case kOpBeginTuple:
        return Token::BeginTuple();
      case kOpFieldSep:
        return Token::FieldSeparator();
      case kOpEndTuple:
        return Token::EndTuple();
      case kOpStartElement:
        return Token::StartElement(TakeBytes());
      case kOpEndElement:
        return Token::EndElement(TakeBytes());
      case kOpAttribute: {
        std::string name = TakeBytes();
        return Token::Attribute(std::move(name), TakeValue());
      }
      case kOpAtom:
      default:
        return Token::Atom(TakeValue());
    }
  }

 private:
  const std::string& bytes_;
  size_t pos_;
};

void EncodeToken(const Token& t, std::string* out) {
  switch (t.kind) {
    case TokenKind::kBeginTuple:
      out->push_back(kOpBeginTuple);
      break;
    case TokenKind::kFieldSeparator:
      out->push_back(kOpFieldSep);
      break;
    case TokenKind::kEndTuple:
      out->push_back(kOpEndTuple);
      break;
    case TokenKind::kStartElement:
      out->push_back(kOpStartElement);
      PutBytes(out, t.name);
      break;
    case TokenKind::kEndElement:
      out->push_back(kOpEndElement);
      PutBytes(out, t.name);
      break;
    case TokenKind::kAttribute:
      out->push_back(kOpAttribute);
      PutBytes(out, t.name);
      PutValue(out, t.value);
      break;
    case TokenKind::kAtom:
      out->push_back(kOpAtom);
      PutValue(out, t.value);
      break;
    default:
      break;  // documents never enter tuple buffers
  }
}

// Encodes a framed tuple.
void EncodeFields(const std::vector<Sequence>& fields, std::string* out) {
  out->push_back(kOpBeginTuple);
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out->push_back(kOpFieldSep);
    TokenVector tokens;
    xml::SequenceToTokens(fields[i], &tokens);
    for (const Token& t : tokens) EncodeToken(t, out);
  }
  out->push_back(kOpEndTuple);
}

// Scans a framed tuple starting at `pos` (a BeginTuple op) and decodes
// field `field` — skipping earlier fields token by token, the stream
// representation's access cost.
Result<Sequence> DecodeField(const std::string& bytes, size_t pos,
                             size_t field) {
  ByteReader reader(bytes, pos);
  if (reader.AtEnd() || reader.PeekOp() != kOpBeginTuple) {
    return Status::Internal("corrupt tuple frame");
  }
  reader.TakeOp();
  size_t current = 0;
  int depth = 0;
  TokenVector out;
  while (!reader.AtEnd()) {
    char op = reader.PeekOp();
    if (depth == 0 && op == kOpFieldSep) {
      reader.TakeOp();
      if (current == field) return xml::TokensToSequence(out);
      ++current;
      continue;
    }
    if (depth == 0 && op == kOpEndTuple) {
      if (current == field) return xml::TokensToSequence(out);
      return Status::InvalidArgument("tuple field index out of range");
    }
    Token t = reader.TakeToken();
    if (t.kind == TokenKind::kStartElement) ++depth;
    if (t.kind == TokenKind::kEndElement) --depth;
    if (current == field) out.push_back(std::move(t));
  }
  return Status::Internal("unterminated tuple frame");
}

}  // namespace

struct TupleBuffer::BoxedTupleBytes {
  std::string bytes;
};

TupleBuffer::TupleBuffer(TupleRepr repr, size_t field_count)
    : repr_(repr), field_count_(field_count) {}

TupleBuffer::~TupleBuffer() = default;

void TupleBuffer::Append(const std::vector<Sequence>& fields) {
  switch (repr_) {
    case TupleRepr::kStream:
      tuple_offsets_.push_back(stream_bytes_.size());
      EncodeFields(fields, &stream_bytes_);
      break;
    case TupleRepr::kSingleToken: {
      auto boxed = std::make_shared<BoxedTupleBytes>();
      EncodeFields(fields, &boxed->bytes);
      boxed_.push_back(std::move(boxed));
      break;
    }
    case TupleRepr::kArray:
      for (const auto& f : fields) array_.push_back(f);
      break;
  }
  ++tuple_count_;
}

Result<Sequence> TupleBuffer::GetField(size_t row, size_t field) const {
  if (row >= tuple_count_ || field >= field_count_) {
    return Status::InvalidArgument("tuple buffer index out of range");
  }
  switch (repr_) {
    case TupleRepr::kStream:
      return DecodeField(stream_bytes_, tuple_offsets_[row], field);
    case TupleRepr::kSingleToken:
      return DecodeField(boxed_[row]->bytes, 0, field);
    case TupleRepr::kArray:
      return array_[row * field_count_ + field];
  }
  return Status::Internal("unhandled tuple representation");
}

Result<std::vector<Sequence>> TupleBuffer::GetTuple(size_t row) const {
  std::vector<Sequence> out;
  out.reserve(field_count_);
  for (size_t f = 0; f < field_count_; ++f) {
    ALDSP_ASSIGN_OR_RETURN(Sequence s, GetField(row, f));
    out.push_back(std::move(s));
  }
  return out;
}

size_t TupleBuffer::MemoryBytes() const {
  size_t total = sizeof(TupleBuffer);
  switch (repr_) {
    case TupleRepr::kStream:
      total += stream_bytes_.capacity();
      total += tuple_offsets_.capacity() * sizeof(size_t);
      break;
    case TupleRepr::kSingleToken:
      for (const auto& b : boxed_) {
        total += sizeof(BoxedTupleBytes) + sizeof(std::shared_ptr<void>);
        total += b->bytes.capacity();
      }
      break;
    case TupleRepr::kArray:
      for (const auto& s : array_) total += xml::SequenceMemoryBytes(s);
      total += array_.capacity() * sizeof(Sequence);
      break;
  }
  return total;
}

}  // namespace aldsp::runtime
