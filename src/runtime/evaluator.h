#ifndef ALDSP_RUNTIME_EVALUATOR_H_
#define ALDSP_RUNTIME_EVALUATOR_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "runtime/context.h"
#include "runtime/tuple.h"
#include "xml/item.h"
#include "xquery/ast.h"

namespace aldsp::runtime {

/// Evaluates an analyzed (and typically optimized) expression tree
/// against a variable environment. This is the ALDSP runtime system's
/// entry point: a FLWOR root is lowered through physical::BuildPlan into
/// an Open/Next/Close operator tree (src/runtime/physical/) covering the
/// paper's operator repertoire — for/let/where, the four cross-source
/// join methods (nested loop, index nested loop, PP-k over both), the
/// streaming pre-clustered group operator with sort fallback, order-by,
/// and pushed-down SQL regions executed through relational adaptors —
/// while non-FLWOR expressions take the interpreter path directly.
/// EXPLAIN renders the same tree's descriptors; PROFILE its trace spans.
///
/// fn-bea:async arguments inside element constructors and sequences,
/// fn-bea:timeout bodies and the PP-k block prefetcher all run on the
/// context's bounded WorkerPool (paper §5.4/§5.6); fn-bea:timeout and
/// fn-bea:fail-over implement the §5.6 fail-over semantics. The
/// RuntimeContext must outlive any in-flight timeout evaluations.
Result<xml::Sequence> Evaluate(const xquery::Expr& expr, const Tuple& env,
                               const RuntimeContext& ctx);

/// Convenience entry point with an empty environment.
Result<xml::Sequence> Evaluate(const xquery::Expr& expr,
                               const RuntimeContext& ctx);

/// Streaming evaluation (the paper's server-side API that lets same-JVM
/// applications "consume the results of a data service call or query
/// incrementally, as a stream ... without materializing them first"):
/// a top-level FLWOR pipelines tuple by tuple, invoking `sink` per result
/// item as it is produced; a sink error aborts evaluation immediately.
/// Non-FLWOR roots fall back to materialize-then-deliver.
Status EvaluateStream(const xquery::Expr& expr, const RuntimeContext& ctx,
                      const std::function<Status(const xml::Item&)>& sink);

/// XQuery comparison over already-atomized operands — the single
/// implementation behind the interpreter's kComparison and the batch
/// filter kernel. `general` selects existential (general-comparison)
/// semantics over all operand pairs; otherwise value-comparison rules
/// apply: an empty operand yields the empty sequence, a multi-item
/// operand errors. Untyped values coerce toward the other operand's
/// type, as in the interpreter.
Result<xml::Sequence> CompareAtomizedOperands(const xml::Sequence& la,
                                              const xml::Sequence& ra,
                                              const std::string& op,
                                              bool general);

/// Allocation-free variant for the batch filter kernel: atomizes the raw
/// operand sequences item-wise and returns the effective boolean value
/// the CompareAtomizedOperands + EffectiveBooleanValue pipeline would
/// produce (a value comparison with an empty operand yields false, the
/// EBV of its empty result), with identical error behavior.
Result<bool> CompareOperandsToBool(const xml::Sequence& l,
                                   const xml::Sequence& r,
                                   const std::string& op, bool general);

/// Canonical encoding of an atomic value used for grouping, distinct-
/// values and join keys (numeric values encode equal across numeric
/// types; the empty sequence has a distinguished encoding).
std::string EncodeAtomic(const xml::AtomicValue& v);
std::string EncodeAtomicSequence(const xml::Sequence& atomized);

/// Converts a relational result set into a sequence of row elements named
/// `row_name`; NULL cells become missing child elements (paper §4.4).
xml::Sequence RowsToItems(const relational::ResultSet& rs,
                          const std::string& row_name);

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_EVALUATOR_H_
