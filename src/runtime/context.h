#ifndef ALDSP_RUNTIME_CONTEXT_H_
#define ALDSP_RUNTIME_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "compiler/function_table.h"
#include "observability/query_registry.h"
#include "observability/source_health.h"
#include "runtime/adaptor.h"
#include "runtime/function_cache.h"
#include "runtime/metrics.h"
#include "runtime/observed_cost.h"
#include "runtime/query_trace.h"
#include "runtime/tuple_repr.h"

namespace aldsp::runtime {

class WorkerPool;

/// The one cooperative-cancellation checkpoint. Every poll site in the
/// runtime — operator Next/NextBatch, exchange chunk workers, the PP-k
/// block fetcher, external-function invocation — funnels through here so
/// the cancelled status (and its message) stays identical everywhere.
/// Two relaxed atomic loads when a control block is wired; free otherwise.
/// A memory-budget breach (flagged by QueryControl::NotePeakBytes when a
/// blocking operator's materialization crosses the per-query budget) fails
/// here with kResourceExhausted: same cooperative stop as a cancel, so the
/// query tears down through the normal Close/CancelAndWait paths and can
/// never return a partial result.
inline Status CheckCancelled(const observability::QueryControl* exec) {
  if (exec == nullptr) return Status::OK();
  if (exec->IsCancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (exec->BudgetBreached()) {
    return Status::ResourceExhausted(
        "query memory budget exceeded (budget=" +
        std::to_string(
            exec->memory_budget_bytes.load(std::memory_order_relaxed)) +
        " bytes, peak=" +
        std::to_string(exec->peak_bytes.load(std::memory_order_relaxed)) +
        " bytes)");
  }
  return Status::OK();
}

/// Counters the benchmarks and the (future) observed-cost optimizer read.
struct RuntimeStats {
  std::atomic<int64_t> source_invocations{0};
  std::atomic<int64_t> sql_pushdowns{0};
  std::atomic<int64_t> join_probe_rows{0};
  std::atomic<int64_t> ppk_blocks{0};
  std::atomic<int64_t> async_tasks{0};
  std::atomic<int64_t> timeouts_fired{0};
  std::atomic<int64_t> failovers_fired{0};
  std::atomic<int64_t> group_sort_fallbacks{0};
  std::atomic<int64_t> streaming_groups{0};
  /// Chunks shipped through exchange operators (scatter side).
  std::atomic<int64_t> exchange_chunks{0};
  /// Parallel fan-outs of independent let-bound source calls.
  std::atomic<int64_t> parallel_let_fanouts{0};
  /// Peak bytes materialized by a single blocking operator instance
  /// (group-by / sort / join build side) — the memory axis of the
  /// grouping and PP-k experiments.
  std::atomic<int64_t> peak_operator_bytes{0};

  /// Zeroes every counter with explicit relaxed stores: counters are
  /// independent, so readers racing a Reset see each counter either
  /// before or after its store, never a torn value. Safe to call while
  /// queries run: NotePeakBytes revalidates against the reset generation
  /// after publishing, so a maximum it loaded before the reset cannot
  /// silently survive it.
  void Reset() {
    source_invocations.store(0, std::memory_order_relaxed);
    sql_pushdowns.store(0, std::memory_order_relaxed);
    join_probe_rows.store(0, std::memory_order_relaxed);
    ppk_blocks.store(0, std::memory_order_relaxed);
    async_tasks.store(0, std::memory_order_relaxed);
    timeouts_fired.store(0, std::memory_order_relaxed);
    failovers_fired.store(0, std::memory_order_relaxed);
    group_sort_fallbacks.store(0, std::memory_order_relaxed);
    streaming_groups.store(0, std::memory_order_relaxed);
    exchange_chunks.store(0, std::memory_order_relaxed);
    parallel_let_fanouts.store(0, std::memory_order_relaxed);
    peak_operator_bytes.store(0, std::memory_order_relaxed);
    reset_generation.fetch_add(1, std::memory_order_release);
  }

  /// Raises the peak-bytes watermark to `bytes` if larger. Tolerant of a
  /// concurrent Reset: after the CAS publishes, the generation is
  /// re-checked and the publish retried, so the watermark a racing Reset
  /// zeroed is re-applied (the operator reporting it is still live) and a
  /// stale pre-reset maximum is never left behind.
  void NotePeakBytes(int64_t bytes) {
    while (true) {
      uint64_t gen = reset_generation.load(std::memory_order_acquire);
      int64_t prev = peak_operator_bytes.load();
      while (bytes > prev &&
             !peak_operator_bytes.compare_exchange_weak(prev, bytes)) {
      }
      if (reset_generation.load(std::memory_order_acquire) == gen) return;
    }
  }

  /// Bumped by Reset so NotePeakBytes can detect one racing with it.
  std::atomic<uint64_t> reset_generation{0};
};

/// Everything the evaluator needs to execute a compiled plan: function
/// metadata, connected adaptors, the optional mid-tier function cache,
/// and tuning knobs.
struct RuntimeContext {
  const compiler::FunctionTable* functions = nullptr;
  const AdaptorRegistry* adaptors = nullptr;
  FunctionCache* function_cache = nullptr;   // optional
  RuntimeStats* stats = nullptr;             // optional
  ObservedCostModel* observed = nullptr;     // optional (§9 roadmap)
  /// Server-wide metrics export (optional): per-source latency samples.
  MetricsRegistry* metrics = nullptr;
  /// Per-execution profile (optional). Null for ordinary Execute calls:
  /// every instrumentation branch in the evaluator is guarded by this
  /// pointer, so disabled profiling costs nothing. ExecuteProfiled runs
  /// with a context copy pointing at a fresh trace.
  QueryTrace* trace = nullptr;
  /// Keep-alive for `trace` when the execution may outlive the caller's
  /// stack frame: fn-bea:timeout abandons its worker-pool task on the
  /// deadline, and the task runs to completion later holding a *copy* of
  /// this context. The copy's shared ownership keeps the trace (and the
  /// events the abandoned task still records, e.g. function-cache hits on
  /// the pool thread) valid until the task finishes.
  std::shared_ptr<QueryTrace> trace_owner;

  /// Live-query control block (optional, server-owned). Physical operators
  /// poll its cancel flag in Next(), pool workers poll it per tuple, and
  /// the evaluator's FLWOR drive loops report progress (rows produced)
  /// through it. Same keep-alive pattern as trace/trace_owner: abandoned
  /// timeout tasks hold a context copy, so exec_owner keeps the block
  /// valid until the last task finishes.
  observability::QueryControl* exec = nullptr;
  std::shared_ptr<observability::QueryControl> exec_owner;

  /// Per-source health scoreboard with circuit breaking (optional,
  /// server-owned). The evaluator gates every source interaction through
  /// AllowRequest and reports NoteSuccess/NoteFailure/NoteTimeout;
  /// fn-bea:fail-over / fn-bea:timeout consult IsOpen to skip a tripped
  /// primary without re-paying its timeout.
  observability::SourceHealthBoard* health = nullptr;

  /// Bounded worker pool for fn-bea:async fan-out, timeout evaluation and
  /// PP-k block prefetch. Null falls back to the process-wide
  /// WorkerPool::Default(); the server wires its own pool (destroyed
  /// first, so abandoned timeout tasks join while sources are alive).
  WorkerPool* pool = nullptr;

  /// Maximum user-function call depth (recursion guard).
  int max_call_depth = 64;
  /// Representation for blocking-operator materialization (Fig. 4 knob).
  TupleRepr materialize_repr = TupleRepr::kArray;
  /// Double-buffer PP-k parameter blocks: overlap the next block's
  /// round trip with mid-tier consumption of the current one.
  bool ppk_prefetch = true;
  /// Outstanding PP-k block fetches when prefetching (the pipeline depth).
  /// 0 = adaptive: ask the ObservedCostModel per source (falls back to 1,
  /// the classic double buffer, with no observations). Capped at 8.
  int ppk_prefetch_depth = 0;
  /// Maximum degree of intra-query parallelism (exchange operators and
  /// partitioned join probes). 1 = serial execution; the server wires
  /// this to its worker-pool size by default.
  int max_query_dop = 1;
  /// Minimum estimated upstream rows before the planner inserts an
  /// exchange above a join probe or for-scan.
  int64_t parallel_row_threshold = 64;
  /// Tuples per exchange chunk (0 = auto). Chunks are whole TupleBatches
  /// in the vectorized runtime; this bounds their row count so small
  /// latency-bound streams still fan out across workers.
  int exchange_chunk_size = 0;
  /// Rows per TupleBatch flowing between physical operators (the
  /// vectorized runtime's unit of work: virtual dispatch, trace timing
  /// and cancellation polls amortize over this many rows). Clamped to
  /// [1, 16384] at Open; 1 degenerates to row-at-a-time execution.
  int batch_size = 1024;
  /// Ordered mode: exchange gather preserves input order (deterministic
  /// results). False allows chunks to interleave as they complete.
  bool exchange_ordered = true;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_CONTEXT_H_
