#ifndef ALDSP_RUNTIME_WORKER_POOL_H_
#define ALDSP_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace aldsp::runtime {

/// The bounded worker pool shared by everything in the runtime that
/// evaluates concurrently: hoisted fn-bea:async subtrees (paper §5.4),
/// fn-bea:timeout primaries (§5.6), and the PP-k block prefetcher. It
/// replaces the earlier unbounded std::async / detached-thread scheme:
/// the pool owns exactly `size` threads for the server's lifetime, so a
/// query fan-out cannot spawn threads without limit.
///
/// Deadlock freedom under nesting: an async subtree may itself contain
/// fn-bea:async calls, so a pool task can block waiting on tasks it
/// submitted. Task::Wait therefore *claims* a task no worker has started
/// yet and runs it inline on the waiting thread — arbitrarily deep
/// nesting makes progress even on a pool of 1. Task::WaitFor never runs
/// the task inline: a timeout wait must be able to give up at the
/// deadline, so a task the saturated pool never reached simply times out
/// (the paper's fail-over semantics, not a hang).
///
/// A task abandoned by WaitFor keeps running (or stays queued) until the
/// pool is destroyed; the destructor joins running tasks, so everything a
/// task references must outlive the pool.
///
/// Every task records its enqueue→start→finish steady-clock timestamps.
/// Per task they feed the timeline trace's queue-wait vs run split
/// (Task::queue_wait_micros / run_micros); aggregated they feed the
/// metrics snapshot (total_queue_wait_micros / total_run_micros /
/// tasks_completed).
class WorkerPool {
  struct TaskState;

 public:
  /// `size` <= 0 selects std::thread::hardware_concurrency().
  explicit WorkerPool(int size = 0);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Handle to a submitted task. Copyable; all copies refer to the same
  /// execution.
  class Task {
   public:
    Task() = default;
    bool valid() const { return state_ != nullptr; }

    /// Blocks until the task finished. If no worker has started it yet,
    /// the waiting thread claims and runs it inline.
    void Wait();

    /// Waits up to `timeout` without ever claiming the task inline.
    /// Returns true when the task completed within the deadline.
    bool WaitFor(std::chrono::milliseconds timeout);

    /// Micros the task spent queued before a thread started it, or -1
    /// when it has not started yet.
    int64_t queue_wait_micros() const;
    /// Micros the task spent running, or -1 when it has not finished.
    int64_t run_micros() const;

   private:
    friend class WorkerPool;
    Task(WorkerPool* pool, std::shared_ptr<TaskState> state)
        : pool_(pool), state_(std::move(state)) {}
    WorkerPool* pool_ = nullptr;
    std::shared_ptr<TaskState> state_;
  };

  Task Submit(std::function<void()> fn);

  /// A set of related tasks with shared cancellation, used by operators
  /// that keep several pool tasks in flight (exchange chunks, deep PP-k
  /// prefetch). Submit wraps each task so a cancelled group's unstarted
  /// tasks become no-ops; tasks already running can poll `cancelled()`
  /// at their own checkpoints. Not thread-safe: one owner thread submits
  /// and waits (the tasks themselves only touch the shared flag).
  ///
  /// The destructor cancels and drains, so an operator tree torn down
  /// early (LIMIT-style close, timeout abandonment) never leaves a task
  /// running against freed operator state.
  class TaskGroup {
   public:
    explicit TaskGroup(WorkerPool* pool) : pool_(pool) {}
    ~TaskGroup() { CancelAndWait(); }
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Submits `fn` gated on the group's cancel flag and tracks the task.
    Task Submit(std::function<void()> fn) {
      // Finished tasks retire from the front so a long pipeline does not
      // accumulate handles (submissions complete roughly in FIFO order).
      while (!tasks_.empty() && tasks_.front().run_micros() >= 0) {
        tasks_.erase(tasks_.begin());
      }
      Task t = pool_->Submit(
          [flag = cancelled_, fn = std::move(fn)] {
            if (!flag->load(std::memory_order_acquire)) fn();
          });
      tasks_.push_back(t);
      return t;
    }

    bool cancelled() const {
      return cancelled_->load(std::memory_order_acquire);
    }
    void Cancel() { cancelled_->store(true, std::memory_order_release); }

    /// Blocks until every tracked task finished (claiming unstarted ones
    /// inline, so this is deadlock-free even from a pool thread).
    void WaitAll() {
      for (Task& t : tasks_) t.Wait();
      tasks_.clear();
    }

    void CancelAndWait() {
      Cancel();
      WaitAll();
    }

   private:
    WorkerPool* pool_;
    std::shared_ptr<std::atomic<bool>> cancelled_ =
        std::make_shared<std::atomic<bool>>(false);
    std::vector<Task> tasks_;
  };

  int size() const { return static_cast<int>(threads_.size()); }
  /// Tasks submitted but not yet claimed by a worker or inline waiter —
  /// the queue-depth gauge the metrics snapshot polls. An atomic gauge
  /// (incremented on enqueue, decremented on claim), not a queue scan.
  ///
  /// Inline-steal audit: Submit increments after enqueue; the single
  /// decrement lives inside Claim's successful CAS, which is the one
  /// gate both a worker and an inline-stealing Task::Wait must pass. A
  /// worker that pops a task Wait already claimed loses the CAS and
  /// never touches the gauge, so a stolen task is decremented exactly
  /// once and the gauge returns to zero after a drain. The only way the
  /// gauge rests above zero is tasks abandoned unclaimed at pool
  /// destruction, which drops them unrun by design.
  int64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// Tasks currently executing a body on any thread (worker or inline
  /// waiter). With queue_depth this gives the saturation picture the
  /// metrics snapshot exposes: running/size is how busy the pool is,
  /// queue_depth is how much work is waiting behind it.
  int64_t running_tasks() const {
    return running_.load(std::memory_order_relaxed);
  }
  /// Counters for tests: completions on pool threads vs claimed inline
  /// by a waiter.
  int64_t async_runs() const { return async_runs_.load(); }
  int64_t inline_runs() const { return inline_runs_.load(); }
  /// Lifetime aggregates across completed tasks.
  int64_t tasks_completed() const { return tasks_completed_.load(); }
  int64_t total_queue_wait_micros() const {
    return total_queue_wait_micros_.load();
  }
  int64_t total_run_micros() const { return total_run_micros_.load(); }

  /// Process-wide pool used when a RuntimeContext supplies none.
  /// Deliberately leaked: like the detached threads it replaces, tasks
  /// abandoned by a timeout may still be running at process exit, and a
  /// static destructor joining them could touch already-destroyed state.
  static WorkerPool& Default();
  static WorkerPool& For(WorkerPool* pool) {
    return pool != nullptr ? *pool : Default();
  }

 private:
  struct TaskState {
    std::function<void()> fn;
    /// 0 = queued, 1 = claimed (by a worker or an inline waiter).
    std::atomic<int> claimed{0};
    /// Steady-clock micros: enqueue set by Submit, start when a thread
    /// claims the task, finish when fn returns.
    int64_t enqueue_micros = 0;
    std::atomic<int64_t> start_micros{-1};
    std::atomic<int64_t> finish_micros{-1};
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };

  void WorkerLoop();
  void RunTask(const std::shared_ptr<TaskState>& task, bool inline_run);
  /// CAS-claims `task` for the calling thread; on success stamps its
  /// start time and drops the queue-depth gauge.
  bool Claim(const std::shared_ptr<TaskState>& task);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<TaskState>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<int64_t> running_{0};
  std::atomic<int64_t> async_runs_{0};
  std::atomic<int64_t> inline_runs_{0};
  std::atomic<int64_t> tasks_completed_{0};
  std::atomic<int64_t> total_queue_wait_micros_{0};
  std::atomic<int64_t> total_run_micros_{0};
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_WORKER_POOL_H_
