#ifndef ALDSP_RUNTIME_FUNCTION_CACHE_H_
#define ALDSP_RUNTIME_FUNCTION_CACHE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "xml/item.h"

namespace aldsp::runtime {

/// Backing store interface for the function cache. The production ALDSP
/// cache "employs a relational database to achieve persistence and
/// distribution in the context of a cluster of ALDSP servers" (paper
/// §5.5); src/cache provides that implementation.
class CacheBackingStore {
 public:
  virtual ~CacheBackingStore() = default;
  virtual Status Put(const std::string& key, const xml::Sequence& value,
                     int64_t expires_at_millis) = 0;
  /// Returns true and fills `value` when a non-expired entry exists.
  virtual Result<bool> Get(const std::string& key, int64_t now_millis,
                           xml::Sequence* value) = 0;
};

/// The ALDSP mid-tier function cache (paper §5.5): a map from (function,
/// argument values) to the function result, with an administratively
/// configured TTL per function. It caches *function invocations* — not a
/// queryable materialized view — which is what makes it effective for
/// turning slow service calls into lookups. Entries are cached before
/// security filtering so they are shareable across users (paper §7).
class FunctionCache {
 public:
  struct Stats {
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> expirations{0};
  };

  explicit FunctionCache(size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  /// Enables caching for a function with the given TTL. A data service
  /// designer must allow caching before an administrator enables it;
  /// this API models the administrative step.
  void EnableFor(const std::string& function, int64_t ttl_millis);
  void DisableFor(const std::string& function);
  bool IsEnabled(const std::string& function) const;
  /// TTL for a function, or -1 if caching is not enabled for it.
  int64_t TtlFor(const std::string& function) const;

  /// Builds the cache key for an invocation.
  static std::string MakeKey(const std::string& function,
                             const std::vector<xml::Sequence>& args);

  /// Looks up a non-stale entry. Returns true and fills `result` on a hit.
  bool Lookup(const std::string& key, xml::Sequence* result);
  /// Inserts a result with the given TTL (LRU eviction at capacity).
  void Insert(const std::string& key, xml::Sequence result,
              int64_t ttl_millis);

  void Clear();
  size_t size() const;
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// Advances the cache's virtual clock — lets tests and benchmarks expire
  /// entries without real sleeps.
  void AdvanceClockForTest(int64_t millis) { clock_skew_millis_ += millis; }

  /// Attaches a shared persistent store (cluster distribution, §5.5):
  /// local misses consult the store; inserts write through.
  void set_backing_store(std::shared_ptr<CacheBackingStore> store) {
    std::lock_guard<std::mutex> lock(mutex_);
    backing_store_ = std::move(store);
  }

 private:
  int64_t NowMillis() const;

  struct Entry {
    xml::Sequence result;
    int64_t expires_at_millis;
    std::list<std::string>::iterator lru_it;
  };

  size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, int64_t> enabled_;
  std::shared_ptr<CacheBackingStore> backing_store_;
  Stats stats_;
  std::atomic<int64_t> clock_skew_millis_{0};
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_FUNCTION_CACHE_H_
