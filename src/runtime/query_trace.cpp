#include "runtime/query_trace.h"

#include "runtime/observed_cost.h"

namespace aldsp::runtime {

namespace {

// Per-thread stack of (trace, span) scopes. Keyed by trace instance so
// concurrent traced executions on the same thread pool cannot observe
// each other's parents.
thread_local std::vector<std::pair<const QueryTrace*, int>> tls_scope_stack;

}  // namespace

const char* QueryTrace::EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSql:
      return "sql";
    case EventKind::kPPkFetch:
      return "ppk-fetch";
    case EventKind::kSourceInvoke:
      return "invoke";
    case EventKind::kCustomPushdown:
      return "custom-pushdown";
    case EventKind::kCacheHit:
      return "cache-hit";
    case EventKind::kCacheMiss:
      return "cache-miss";
    case EventKind::kAsyncTask:
      return "async-task";
    case EventKind::kTimeout:
      return "timeout";
    case EventKind::kFailOver:
      return "fail-over";
  }
  return "?";
}

QueryTrace::Scope::Scope(const QueryTrace* trace, int span) : trace_(trace) {
  tls_scope_stack.emplace_back(trace, span);
}

QueryTrace::Scope::~Scope() {
  // Scopes nest strictly, so the matching entry is on top.
  for (auto it = tls_scope_stack.rbegin(); it != tls_scope_stack.rend();
       ++it) {
    if (it->first == trace_) {
      tls_scope_stack.erase(std::next(it).base());
      break;
    }
  }
}

int QueryTrace::CurrentSpan(const QueryTrace* trace) {
  for (auto it = tls_scope_stack.rbegin(); it != tls_scope_stack.rend();
       ++it) {
    if (it->first == trace) return it->second;
  }
  return -1;
}

int QueryTrace::BeginSpan(const std::string& kind,
                          const std::string& detail) {
  // Counters mode keeps operators on their span-less fast path.
  if (mode_ == Mode::kCounters) return -1;
  int parent = CurrentSpan(this);
  std::lock_guard<std::mutex> lock(mutex_);
  Span span;
  span.id = static_cast<int>(spans_.size());
  span.parent = parent;
  span.kind = kind;
  span.detail = detail;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::AddSpanMetrics(int id, int64_t rows, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].rows += rows;
  spans_[id].micros += micros;
}

void QueryTrace::AddSpanBytes(int id, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  if (bytes > spans_[id].bytes) spans_[id].bytes = bytes;
}

void QueryTrace::EndSpan(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].finished = true;
}

void QueryTrace::AddEvent(EventKind kind, const std::string& source,
                          const std::string& detail, int64_t rows,
                          int64_t micros, const std::string& table) {
  if (mode_ == Mode::kCounters) {
    int i = static_cast<int>(kind);
    event_counts_[i].fetch_add(1, std::memory_order_relaxed);
    event_micros_[i].fetch_add(micros, std::memory_order_relaxed);
    if (!source.empty()) {
      std::lock_guard<std::mutex> lock(sources_mutex_);
      sources_.insert(source);
    }
    return;
  }
  int span = CurrentSpan(this);
  std::lock_guard<std::mutex> lock(mutex_);
  Event event;
  event.kind = kind;
  event.span = span;
  event.source = source;
  event.detail = detail;
  event.table = table;
  event.rows = rows;
  event.micros = micros;
  events_.push_back(std::move(event));
}

std::vector<QueryTrace::Span> QueryTrace::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<QueryTrace::Event> QueryTrace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

int64_t QueryTrace::CountEvents(EventKind kind) const {
  if (mode_ == Mode::kCounters) {
    return event_counts_[static_cast<int>(kind)].load(
        std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

int64_t QueryTrace::SumEventMicros(EventKind kind) const {
  if (mode_ == Mode::kCounters) {
    return event_micros_[static_cast<int>(kind)].load(
        std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t sum = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) sum += e.micros;
  }
  return sum;
}

std::vector<std::string> QueryTrace::SourcesTouched() const {
  if (mode_ == Mode::kCounters) {
    std::lock_guard<std::mutex> lock(sources_mutex_);
    return std::vector<std::string>(sources_.begin(), sources_.end());
  }
  std::set<std::string> sources;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& e : events_) {
      if (!e.source.empty()) sources.insert(e.source);
    }
  }
  return std::vector<std::string>(sources.begin(), sources.end());
}

void QueryTrace::FeedObservedCost(ObservedCostModel* model) const {
  if (model == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::kSql:
      case EventKind::kPPkFetch:
        model->RecordStatement(e.source, e.micros);
        if (!e.table.empty()) {
          model->RecordTableScan(e.source, e.table, e.rows, e.micros);
        }
        break;
      case EventKind::kSourceInvoke:
        if (!e.table.empty()) {
          model->RecordTableScan(e.source, e.table, e.rows, e.micros);
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace aldsp::runtime
