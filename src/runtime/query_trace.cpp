#include "runtime/query_trace.h"

#include <algorithm>

#include "runtime/observed_cost.h"

namespace aldsp::runtime {

namespace {

// Per-thread stack of (trace, span) scopes. Keyed by trace instance so
// concurrent traced executions on the same thread pool cannot observe
// each other's parents.
thread_local std::vector<std::pair<const QueryTrace*, int>> tls_scope_stack;

}  // namespace

const char* QueryTrace::EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSql:
      return "sql";
    case EventKind::kPPkFetch:
      return "ppk-fetch";
    case EventKind::kSourceInvoke:
      return "invoke";
    case EventKind::kCustomPushdown:
      return "custom-pushdown";
    case EventKind::kCacheHit:
      return "cache-hit";
    case EventKind::kCacheMiss:
      return "cache-miss";
    case EventKind::kAsyncTask:
      return "async-task";
    case EventKind::kTimeout:
      return "timeout";
    case EventKind::kFailOver:
      return "fail-over";
    case EventKind::kTaskWait:
      return "task-wait";
  }
  return "?";
}

QueryTrace::QueryTrace(Mode mode)
    : mode_(mode), origin_(std::chrono::steady_clock::now()) {
  if (has_timeline()) {
    // Lane 0 is the thread that owns the execution (the driving thread).
    lanes_[std::this_thread::get_id()] = 0;
    lane_names_.push_back("main");
  }
}

QueryTrace::Scope::Scope(const QueryTrace* trace, int span) : trace_(trace) {
  tls_scope_stack.emplace_back(trace, span);
}

QueryTrace::Scope::~Scope() {
  // Scopes nest strictly, so the matching entry is on top.
  for (auto it = tls_scope_stack.rbegin(); it != tls_scope_stack.rend();
       ++it) {
    if (it->first == trace_) {
      tls_scope_stack.erase(std::next(it).base());
      break;
    }
  }
}

int QueryTrace::CurrentSpan(const QueryTrace* trace) {
  for (auto it = tls_scope_stack.rbegin(); it != tls_scope_stack.rend();
       ++it) {
    if (it->first == trace) return it->second;
  }
  return -1;
}

int64_t QueryTrace::NowRelMicros() const {
  return RelMicros(std::chrono::steady_clock::now());
}

int64_t QueryTrace::RelMicros(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp - origin_)
      .count();
}

int QueryTrace::LaneLocked() {
  auto [it, inserted] =
      lanes_.try_emplace(std::this_thread::get_id(),
                         static_cast<int>(lane_names_.size()));
  if (inserted) {
    lane_names_.push_back("worker-" + std::to_string(it->second));
  }
  return it->second;
}

int QueryTrace::BeginSpan(const std::string& kind,
                          const std::string& detail) {
  return BeginSpanUnder(CurrentSpan(this), kind, detail);
}

int QueryTrace::BeginSpanUnder(int parent, const std::string& kind,
                               const std::string& detail) {
  // Counters mode keeps operators on their span-less fast path.
  if (mode_ == Mode::kCounters) return -1;
  std::lock_guard<std::mutex> lock(mutex_);
  Span span;
  span.id = static_cast<int>(spans_.size());
  span.parent = parent;
  span.kind = kind;
  span.detail = detail;
  if (has_timeline()) {
    span.begin_micros = NowRelMicros();
    span.lane = LaneLocked();
  }
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::AddSpanMetrics(int id, int64_t rows, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].rows += rows;
  spans_[id].micros += micros;
}

void QueryTrace::AddSpanBytes(int id, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  if (bytes > spans_[id].bytes) spans_[id].bytes = bytes;
}

void QueryTrace::SetSpanQueueMicros(int id, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].queue_micros = std::max<int64_t>(micros, 0);
  if (has_timeline()) {
    // The task is now running here: re-home the span to the thread that
    // actually executes it so Perfetto draws it on the right lane.
    spans_[id].lane = LaneLocked();
  }
}

void QueryTrace::SetSpanRowMarks(int id, int64_t first_micros,
                                 int64_t last_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].first_row_micros = first_micros;
  spans_[id].last_row_micros = last_micros;
}

void QueryTrace::EndSpan(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].finished = true;
  if (has_timeline() && spans_[id].end_micros < 0) {
    spans_[id].end_micros =
        std::max(NowRelMicros(), spans_[id].begin_micros);
  }
}

void QueryTrace::AddEvent(EventKind kind, const std::string& source,
                          const std::string& detail, int64_t rows,
                          int64_t micros, const std::string& table,
                          int64_t roundtrip_micros, int64_t transfer_micros) {
  // The per-kind tallies and the touched-source set are maintained in
  // every mode: the audit path (CountEvents/SumEventMicros/
  // SourcesTouched) runs after every profiled execution and must not
  // scan the event list under mutex_.
  int i = static_cast<int>(kind);
  event_counts_[i].fetch_add(1, std::memory_order_relaxed);
  event_micros_[i].fetch_add(micros, std::memory_order_relaxed);
  if (!source.empty()) {
    std::lock_guard<std::mutex> lock(sources_mutex_);
    sources_.insert(source);
  }
  if (mode_ == Mode::kCounters) return;
  int span = CurrentSpan(this);
  std::lock_guard<std::mutex> lock(mutex_);
  Event event;
  event.kind = kind;
  event.span = span;
  event.source = source;
  event.detail = detail;
  event.table = table;
  event.rows = rows;
  event.micros = micros;
  event.roundtrip_micros = roundtrip_micros;
  event.transfer_micros = transfer_micros;
  if (has_timeline()) {
    event.at_micros = NowRelMicros();
    event.lane = LaneLocked();
  }
  events_.push_back(std::move(event));
}

void QueryTrace::AddWaitEvent(int ref_span, int64_t micros,
                              const std::string& detail) {
  if (!has_timeline()) return;
  int span = CurrentSpan(this);
  int i = static_cast<int>(EventKind::kTaskWait);
  event_counts_[i].fetch_add(1, std::memory_order_relaxed);
  event_micros_[i].fetch_add(micros, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  Event event;
  event.kind = EventKind::kTaskWait;
  event.span = span;
  event.detail = detail;
  event.micros = std::max<int64_t>(micros, 0);
  event.at_micros = NowRelMicros();
  event.lane = LaneLocked();
  event.ref_span = ref_span;
  events_.push_back(std::move(event));
}

std::vector<QueryTrace::Span> QueryTrace::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<QueryTrace::Event> QueryTrace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

int64_t QueryTrace::CountEvents(EventKind kind) const {
  return event_counts_[static_cast<int>(kind)].load(
      std::memory_order_relaxed);
}

int64_t QueryTrace::SumEventMicros(EventKind kind) const {
  return event_micros_[static_cast<int>(kind)].load(
      std::memory_order_relaxed);
}

std::vector<std::string> QueryTrace::SourcesTouched() const {
  std::lock_guard<std::mutex> lock(sources_mutex_);
  return std::vector<std::string>(sources_.begin(), sources_.end());
}

observability::Timeline QueryTrace::BuildTimeline() const {
  observability::Timeline timeline;
  std::lock_guard<std::mutex> lock(mutex_);
  timeline.lanes = lane_names_;
  if (timeline.lanes.empty()) timeline.lanes.push_back("main");
  timeline.spans.reserve(spans_.size());
  for (const Span& s : spans_) {
    observability::TimelineSpan ts;
    ts.id = s.id;
    ts.parent = s.parent;
    ts.name = s.kind;
    ts.detail = s.detail;
    ts.lane = s.lane < 0 ? 0 : s.lane;
    // Non-timeline traces degrade to a flat ts=0 layout so the export
    // still opens; durations fall back to the cumulative micros.
    ts.begin_micros = s.begin_micros >= 0 ? s.begin_micros : 0;
    ts.end_micros = s.end_micros >= 0
                        ? s.end_micros
                        : (s.begin_micros >= 0 ? -1 : s.micros);
    ts.queue_micros = s.queue_micros;
    ts.rows = s.rows;
    ts.micros = s.micros;
    ts.bytes = s.bytes;
    ts.first_row_micros = s.first_row_micros;
    ts.last_row_micros = s.last_row_micros;
    timeline.spans.push_back(std::move(ts));
    if (s.parent < 0 && timeline.root < 0) timeline.root = s.id;
  }
  timeline.events.reserve(events_.size());
  for (const Event& e : events_) {
    observability::TimelineEvent te;
    te.name = EventKindName(e.kind);
    te.source = e.source;
    te.detail = e.detail;
    te.span = e.span;
    te.lane = e.lane < 0 ? 0 : e.lane;
    te.at_micros = e.at_micros >= 0 ? e.at_micros : e.micros;
    te.rows = e.rows;
    te.roundtrip_micros = e.roundtrip_micros;
    te.transfer_micros = e.transfer_micros;
    te.ref_span = e.ref_span;
    te.is_wait = e.kind == EventKind::kTaskWait;
    switch (e.kind) {
      case EventKind::kSql:
      case EventKind::kPPkFetch:
      case EventKind::kSourceInvoke:
      case EventKind::kCustomPushdown:
        te.is_source = true;
        te.dur_micros = e.micros;
        break;
      case EventKind::kTaskWait:
        te.dur_micros = e.micros;
        break;
      default:
        // Cache hits/misses, async launches, timeout/fail-over marks are
        // instants: their micros are attributes, not blocked time.
        te.dur_micros = 0;
        break;
    }
    timeline.events.push_back(std::move(te));
  }
  if (timeline.root >= 0) {
    observability::TimelineSpan& root =
        timeline.spans[static_cast<size_t>(timeline.root)];
    int64_t end = root.end_micros;
    for (const observability::TimelineSpan& s : timeline.spans) {
      end = std::max(end, s.end_micros);
    }
    for (const observability::TimelineEvent& e : timeline.events) {
      end = std::max(end, e.at_micros);
    }
    timeline.wall_micros =
        std::max<int64_t>((root.end_micros >= 0 ? root.end_micros : end) -
                              root.begin_micros,
                          0);
  }
  return timeline;
}

void QueryTrace::FeedObservedCost(ObservedCostModel* model) const {
  if (model == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::kSql:
      case EventKind::kPPkFetch:
        if (e.roundtrip_micros >= 0) {
          model->RecordStatementSplit(e.source, e.roundtrip_micros,
                                      e.transfer_micros, e.rows);
        } else {
          model->RecordStatement(e.source, e.micros);
        }
        if (!e.table.empty()) {
          model->RecordTableScan(e.source, e.table, e.rows, e.micros);
        }
        break;
      case EventKind::kSourceInvoke:
        if (!e.table.empty()) {
          model->RecordTableScan(e.source, e.table, e.rows, e.micros);
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace aldsp::runtime
