#include "runtime/query_trace.h"

#include "runtime/observed_cost.h"

namespace aldsp::runtime {

namespace {

// Per-thread stack of (trace, span) scopes. Keyed by trace instance so
// concurrent traced executions on the same thread pool cannot observe
// each other's parents.
thread_local std::vector<std::pair<const QueryTrace*, int>> tls_scope_stack;

}  // namespace

const char* QueryTrace::EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSql:
      return "sql";
    case EventKind::kPPkFetch:
      return "ppk-fetch";
    case EventKind::kSourceInvoke:
      return "invoke";
    case EventKind::kCustomPushdown:
      return "custom-pushdown";
    case EventKind::kCacheHit:
      return "cache-hit";
    case EventKind::kCacheMiss:
      return "cache-miss";
    case EventKind::kAsyncTask:
      return "async-task";
    case EventKind::kTimeout:
      return "timeout";
    case EventKind::kFailOver:
      return "fail-over";
  }
  return "?";
}

QueryTrace::Scope::Scope(const QueryTrace* trace, int span) : trace_(trace) {
  tls_scope_stack.emplace_back(trace, span);
}

QueryTrace::Scope::~Scope() {
  // Scopes nest strictly, so the matching entry is on top.
  for (auto it = tls_scope_stack.rbegin(); it != tls_scope_stack.rend();
       ++it) {
    if (it->first == trace_) {
      tls_scope_stack.erase(std::next(it).base());
      break;
    }
  }
}

int QueryTrace::CurrentSpan(const QueryTrace* trace) {
  for (auto it = tls_scope_stack.rbegin(); it != tls_scope_stack.rend();
       ++it) {
    if (it->first == trace) return it->second;
  }
  return -1;
}

int QueryTrace::BeginSpan(const std::string& kind,
                          const std::string& detail) {
  int parent = CurrentSpan(this);
  std::lock_guard<std::mutex> lock(mutex_);
  Span span;
  span.id = static_cast<int>(spans_.size());
  span.parent = parent;
  span.kind = kind;
  span.detail = detail;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::AddSpanMetrics(int id, int64_t rows, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].rows += rows;
  spans_[id].micros += micros;
}

void QueryTrace::AddSpanBytes(int id, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  if (bytes > spans_[id].bytes) spans_[id].bytes = bytes;
}

void QueryTrace::EndSpan(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].finished = true;
}

void QueryTrace::AddEvent(EventKind kind, const std::string& source,
                          const std::string& detail, int64_t rows,
                          int64_t micros, const std::string& table) {
  int span = CurrentSpan(this);
  std::lock_guard<std::mutex> lock(mutex_);
  Event event;
  event.kind = kind;
  event.span = span;
  event.source = source;
  event.detail = detail;
  event.table = table;
  event.rows = rows;
  event.micros = micros;
  events_.push_back(std::move(event));
}

std::vector<QueryTrace::Span> QueryTrace::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<QueryTrace::Event> QueryTrace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

int64_t QueryTrace::CountEvents(EventKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void QueryTrace::FeedObservedCost(ObservedCostModel* model) const {
  if (model == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::kSql:
      case EventKind::kPPkFetch:
        model->RecordStatement(e.source, e.micros);
        if (!e.table.empty()) {
          model->RecordTableScan(e.source, e.table, e.rows, e.micros);
        }
        break;
      case EventKind::kSourceInvoke:
        if (!e.table.empty()) {
          model->RecordTableScan(e.source, e.table, e.rows, e.micros);
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace aldsp::runtime
