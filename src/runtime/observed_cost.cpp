#include "runtime/observed_cost.h"

#include <algorithm>
#include <cmath>

namespace aldsp::runtime {

namespace {

int BucketOf(int64_t micros) {
  int b = 0;
  while (micros > 0 && b < ObservedCostModel::LatencyHistogram::kBuckets - 1) {
    micros >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void ObservedCostModel::LatencyHistogram::Record(int64_t micros) {
  counts[BucketOf(micros)] += 1;
  samples += 1;
}

int64_t ObservedCostModel::LatencyHistogram::Percentile(double p) const {
  if (samples <= 0) return -1;
  int64_t target = static_cast<int64_t>(p * static_cast<double>(samples - 1));
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen > target) {
      if (b == 0) return 0;
      // Geometric midpoint of [2^(b-1), 2^b).
      return (int64_t{3} << (b - 1)) / 2;
    }
  }
  return -1;
}

void ObservedCostModel::RecordTableScan(const std::string& source,
                                        const std::string& table,
                                        int64_t rows, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  TableObservation& obs = tables_[{source, table}];
  obs.rows = rows;
  obs.avg_scan_micros =
      (obs.avg_scan_micros * static_cast<double>(obs.scans) +
       static_cast<double>(micros)) /
      static_cast<double>(obs.scans + 1);
  obs.scans += 1;
}

void ObservedCostModel::RecordStatement(const std::string& source,
                                        int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& [n, avg] = statements_[source];
  avg = (avg * static_cast<double>(n) + static_cast<double>(micros)) /
        static_cast<double>(n + 1);
  n += 1;
}

void ObservedCostModel::RecordStatementSplit(const std::string& source,
                                             int64_t roundtrip_micros,
                                             int64_t transfer_micros,
                                             int64_t rows) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SourceObservation& obs = splits_[source];
    obs.roundtrip.Record(roundtrip_micros);
    if (rows > 0 && transfer_micros >= 0) {
      obs.transfer_micros_total += transfer_micros;
      obs.rows_total += rows;
    }
  }
  RecordStatement(source, roundtrip_micros + std::max<int64_t>(
                                                 transfer_micros, 0));
}

int64_t ObservedCostModel::RoundTripP50Micros(const std::string& source) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = splits_.find(source);
  return it == splits_.end() ? -1 : it->second.roundtrip.Percentile(0.5);
}

double ObservedCostModel::TransferMicrosPerRow(const std::string& source) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = splits_.find(source);
  if (it == splits_.end() || it->second.rows_total <= 0) return -1.0;
  return static_cast<double>(it->second.transfer_micros_total) /
         static_cast<double>(it->second.rows_total);
}

int64_t ObservedCostModel::ObservedRows(const std::string& source,
                                        const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find({source, table});
  return it == tables_.end() ? -1 : it->second.rows;
}

double ObservedCostModel::ObservedRoundTripMicros(
    const std::string& source) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = statements_.find(source);
  return it == statements_.end() ? -1.0 : it->second.second;
}

ObservedCostModel::TableObservation ObservedCostModel::TableStats(
    const std::string& source, const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find({source, table});
  return it == tables_.end() ? TableObservation{} : it->second;
}

bool ObservedCostModel::AdvisePPk(const std::string& source,
                                  const std::string& table,
                                  int64_t estimated_outer_rows,
                                  bool default_ppk) const {
  int64_t inner = ObservedRows(source, table);
  if (inner < 0 || estimated_outer_rows < 0) return default_ppk;
  // A full fetch transfers `inner` rows once; PP-k fetches only joining
  // rows but pays ceil(outer/k) round trips. With the default k, PP-k
  // wins when the outer is small relative to the inner table.
  return estimated_outer_rows * 4 < inner;
}

int ObservedCostModel::AdvisePPkBlockSize(
    int64_t estimated_outer_rows) const {
  if (estimated_outer_rows < 0) return 20;
  // Aim for at most ~10 round trips while keeping the paper's default as
  // the floor and bounded middleware block memory as the ceiling.
  int64_t k = estimated_outer_rows / 10;
  return static_cast<int>(std::clamp<int64_t>(k, 20, 500));
}

int ObservedCostModel::AdvisePPkBlockSize(const std::string& source,
                                          int64_t estimated_outer_rows) const {
  int base = AdvisePPkBlockSize(estimated_outer_rows);
  int64_t rtt = RoundTripP50Micros(source);
  double per_row = TransferMicrosPerRow(source);
  if (rtt > 0 && per_row > 0) {
    // Raise k until the fixed round trip is <= ~10% of the block's
    // transfer time: k * per_row >= 9 * rtt.
    int64_t k_amortized = static_cast<int64_t>(
        std::ceil(static_cast<double>(rtt) / (9.0 * per_row)));
    base = std::max(base,
                    static_cast<int>(std::clamp<int64_t>(k_amortized, 20, 500)));
  }
  return base;
}

int ObservedCostModel::AdvisePrefetchDepth(const std::string& source,
                                           int block_rows) const {
  int64_t rtt = RoundTripP50Micros(source);
  if (rtt <= 0) return 1;
  double per_row = TransferMicrosPerRow(source);
  // Time the consumer spends absorbing one block: per-row transfer plus
  // a floor for mid-tier join work (which we do not observe directly).
  double consume = std::max(per_row > 0 ? per_row * block_rows : 0.0, 200.0);
  int64_t depth = static_cast<int64_t>(
      std::ceil(static_cast<double>(rtt) / consume));
  return static_cast<int>(std::clamp<int64_t>(depth, 1, 8));
}

std::string ObservedCostModel::AdviceSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // std::map iteration order makes the snapshot deterministic for a
  // given observation state, so string equality is state equality.
  std::string out;
  for (const auto& [key, obs] : tables_) {
    out += key.first;
    out += '.';
    out += key.second;
    out += '=';
    out += std::to_string(obs.rows);
    out += ';';
  }
  out += '|';
  for (const auto& [source, obs] : splits_) {
    const int64_t p50 = obs.roundtrip.Percentile(0.5);
    out += source;
    out += '~';
    out += std::to_string(p50 < 0 ? -1 : BucketOf(p50));
    out += ';';
  }
  return out;
}

void ObservedCostModel::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  tables_.clear();
  statements_.clear();
  splits_.clear();
}

}  // namespace aldsp::runtime
