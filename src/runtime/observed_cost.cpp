#include "runtime/observed_cost.h"

#include <algorithm>

namespace aldsp::runtime {

void ObservedCostModel::RecordTableScan(const std::string& source,
                                        const std::string& table,
                                        int64_t rows, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  TableObservation& obs = tables_[{source, table}];
  obs.rows = rows;
  obs.avg_scan_micros =
      (obs.avg_scan_micros * static_cast<double>(obs.scans) +
       static_cast<double>(micros)) /
      static_cast<double>(obs.scans + 1);
  obs.scans += 1;
}

void ObservedCostModel::RecordStatement(const std::string& source,
                                        int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& [n, avg] = statements_[source];
  avg = (avg * static_cast<double>(n) + static_cast<double>(micros)) /
        static_cast<double>(n + 1);
  n += 1;
}

int64_t ObservedCostModel::ObservedRows(const std::string& source,
                                        const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find({source, table});
  return it == tables_.end() ? -1 : it->second.rows;
}

double ObservedCostModel::ObservedRoundTripMicros(
    const std::string& source) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = statements_.find(source);
  return it == statements_.end() ? -1.0 : it->second.second;
}

ObservedCostModel::TableObservation ObservedCostModel::TableStats(
    const std::string& source, const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find({source, table});
  return it == tables_.end() ? TableObservation{} : it->second;
}

bool ObservedCostModel::AdvisePPk(const std::string& source,
                                  const std::string& table,
                                  int64_t estimated_outer_rows,
                                  bool default_ppk) const {
  int64_t inner = ObservedRows(source, table);
  if (inner < 0 || estimated_outer_rows < 0) return default_ppk;
  // A full fetch transfers `inner` rows once; PP-k fetches only joining
  // rows but pays ceil(outer/k) round trips. With the default k, PP-k
  // wins when the outer is small relative to the inner table.
  return estimated_outer_rows * 4 < inner;
}

int ObservedCostModel::AdvisePPkBlockSize(
    int64_t estimated_outer_rows) const {
  if (estimated_outer_rows < 0) return 20;
  // Aim for at most ~10 round trips while keeping the paper's default as
  // the floor and bounded middleware block memory as the ceiling.
  int64_t k = estimated_outer_rows / 10;
  return static_cast<int>(std::clamp<int64_t>(k, 20, 500));
}

void ObservedCostModel::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  tables_.clear();
  statements_.clear();
}

}  // namespace aldsp::runtime
