#ifndef ALDSP_RUNTIME_PHYSICAL_OPERATOR_H_
#define ALDSP_RUNTIME_PHYSICAL_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "runtime/context.h"
#include "runtime/physical/batch.h"
#include "runtime/tuple.h"
#include "xquery/ast.h"

namespace aldsp::runtime::physical {

/// Variable the Return operator binds each evaluated return sequence to;
/// starts with a control byte so it can never collide with a query
/// variable.
inline constexpr char kResultBinding[] = "\x01result";

/// Callback into the expression interpreter. Physical operators own
/// iteration (tuple flow, joins, grouping) but delegate scalar/XML
/// expression evaluation — key expressions, predicates, return bodies —
/// back to the interpreter. Implementations must be callable from worker
/// threads (the PP-k prefetcher evaluates key expressions off-thread).
class ExprEvaluator {
 public:
  virtual ~ExprEvaluator() = default;
  virtual Result<xml::Sequence> EvalExpr(const xquery::Expr& e,
                                         const Tuple& env) = 0;
};

/// Execution environment shared by every operator in one tree.
struct ExecEnv {
  const RuntimeContext* ctx = nullptr;
  ExprEvaluator* eval = nullptr;
  /// The environment the FLWOR itself evaluates in: join right sides and
  /// group emission rebind on top of this, not on the flowing tuple.
  Tuple base_env;
};

/// Static descriptor of one operator for EXPLAIN: what would run, before
/// (or without) running it. PROFILE adds the runtime counters via the
/// operator's QueryTrace span; both views come from the same tree.
struct ExplainNode {
  std::string label;   // e.g. "join[ppk-inl] $cc"
  std::string detail;  // e.g. "k=20 prefetch"
  /// True when the operator executes batch-natively (overrides
  /// NextBatchImpl); EXPLAIN renders it as a "[batch]" suffix. Excluded
  /// from plan fingerprints (those hash labels only).
  bool batch = false;
  const xquery::Expr* expr = nullptr;       // clause input expression
  const xquery::Expr* condition = nullptr;  // join residual condition
  const xquery::PPkFetchSpec* ppk = nullptr;
};

/// Volcano-style physical operator over Tuple (paper §5.2: compiled
/// plans execute as streams of tuples flowing through an explicit
/// operator repertoire). Lifecycle: Open once, Next until it returns
/// false (or errors), Close once; Describe works without Open.
///
/// Tracing is built into the base class: when the context has a
/// QueryTrace, Open begins a span labeled with the operator's clause
/// label (parented on the calling thread's innermost scope — the
/// enclosing flwor span), every Next is timed inclusive of the input
/// chain with the span as the thread's scope (so source events fired
/// inside attach to it), and Close flushes row/time metrics. The
/// destructor flushes an unclosed span so error paths still report
/// partial counts.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator();
  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  Status Open(ExecEnv* env);
  /// Fills `out` and returns true, or returns false at end of stream.
  Result<bool> Next(Tuple* out);
  /// Batch driver API: clears `out` and fills it with up to
  /// ctx()->batch_size rows (`max_rows` caps lower when positive, e.g.
  /// the exchange scattering chunk-sized batches). Returns true while
  /// the stream continues — a true result with an EMPTY batch is legal
  /// (a filter may select nothing); false means end of stream. Cancel is
  /// polled once per batch, and row/time span metrics accumulate per row
  /// (rows += batch size) so profiles stay comparable with the row
  /// engine.
  Result<bool> NextBatch(TupleBatch* out, int max_rows = 0);
  void Close();

  /// Appends this subtree's descriptors in pipeline order (input first).
  /// Virtual so composite operators (the exchange pair) can emit more
  /// than one descriptor; the default walks the input then appends
  /// explain_ when labeled.
  virtual void Describe(std::vector<ExplainNode>* out) const;

  /// Descriptor access for the plan builder (to attach expr/condition/
  /// ppk pointers or extend the detail).
  ExplainNode& explain() { return explain_; }
  const ExplainNode& explain() const { return explain_; }

 protected:
  /// `label` is both the trace span kind and the EXPLAIN label; an empty
  /// label makes the operator invisible (no span, no explain node) — used
  /// by the singleton source. `span_detail` must match the legacy span
  /// detail format exactly (profile output is a compatibility surface);
  /// EXPLAIN-only qualifiers go into explain().detail instead.
  PhysicalOperator(std::unique_ptr<PhysicalOperator> input, std::string label,
                   std::string span_detail = "");

  virtual Status OpenImpl() { return Status::OK(); }
  /// Row-at-a-time production. The default drains an internal buffer
  /// filled by NextBatchImpl (the compatibility shim for batch-native
  /// operators driven row-wise, e.g. under an unconverted consumer).
  /// Every operator must override at least one of NextImpl /
  /// NextBatchImpl — overriding neither recurses mutually.
  virtual Result<bool> NextImpl(Tuple* out);
  /// Batch-at-a-time production into a cleared `out`. The default loops
  /// NextImpl up to batch_target() rows (the shim that lets unconverted
  /// operators ride in a batch pipeline).
  virtual Result<bool> NextBatchImpl(TupleBatch* out);
  virtual void CloseImpl() {}

  PhysicalOperator* input() { return input_.get(); }
  const PhysicalOperator* input() const { return input_.get(); }
  const RuntimeContext* ctx() const { return env_->ctx; }
  ExprEvaluator* eval() const { return env_->eval; }
  const Tuple& base_env() const { return env_->base_env; }
  QueryTrace* trace() const { return trace_; }
  int span() const { return span_; }
  /// Row target for the batch currently being produced: the consumer's
  /// cap when one was passed to NextBatch, else the context batch_size
  /// (clamped at Open).
  int batch_target() const { return batch_limit_; }
  /// The uncapped batch width (the clamped context batch_size). A target
  /// below this means the consumer capped the current pull.
  int batch_capacity() const { return batch_size_; }

  /// Reports bytes materialized by a blocking stage against both the
  /// peak-memory stat and this operator's span.
  void NoteOperatorBytes(int64_t bytes);

 private:
  void FlushSpan();

  std::unique_ptr<PhysicalOperator> input_;
  ExplainNode explain_;
  std::string span_detail_;
  ExecEnv* env_ = nullptr;
  QueryTrace* trace_ = nullptr;  // cached at Open; outlives the tree
  // Live-query control block, cached at Open like trace_. Next() polls its
  // cancel flag (one relaxed load) so CancelQuery() stops every pipeline in
  // the tree at the next tuple boundary.
  observability::QueryControl* exec_ = nullptr;
  int span_ = -1;
  int64_t rows_ = 0;
  int64_t micros_ = 0;
  bool opened_ = false;
  bool flushed_ = false;
  // Batch plumbing: the clamped context batch size, the active target
  // for the batch in flight, and the row-shim buffer the default
  // NextImpl drains when a batch-native operator is driven row-wise.
  int batch_size_ = 1;
  int batch_limit_ = 1;
  TupleBatch shim_batch_;
  size_t shim_pos_ = 0;
  // Timeline mode: origin-relative first/last row production marks,
  // flushed onto the span with the row/time metrics.
  bool timeline_ = false;
  int64_t first_row_micros_ = -1;
  int64_t last_row_micros_ = -1;
};

}  // namespace aldsp::runtime::physical

#endif  // ALDSP_RUNTIME_PHYSICAL_OPERATOR_H_
