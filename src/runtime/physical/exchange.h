#ifndef ALDSP_RUNTIME_PHYSICAL_EXCHANGE_H_
#define ALDSP_RUNTIME_PHYSICAL_EXCHANGE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/physical/operator.h"
#include "runtime/worker_pool.h"

namespace aldsp::runtime::physical {

/// Encapsulated Volcano-style exchange (Graefe's model): one operator
/// that scatters its input into chunks run as WorkerPool tasks, applies
/// a subclass-defined per-tuple transform on worker threads, and gathers
/// the results back onto the driving thread. The rest of the plan is
/// oblivious — upstream is pulled only by the driving thread, and
/// downstream sees an ordinary Next stream.
///
/// Scheduling: the driving thread keeps a bounded window of up to
/// 2*dop outstanding chunk tasks (the backpressure bound: upstream is
/// never drained more than one window ahead of the consumer). Gather
/// blocks on a chunk via Task::Wait, which claims unstarted tasks and
/// runs them inline — so a saturated or size-1 pool degrades to serial
/// execution instead of deadlocking, even with exchanges nested under
/// worker tasks. In ordered mode chunks emit strictly in input order
/// (deterministic results); unordered mode emits whichever chunk
/// finished first.
///
/// Tracing: each chunk runs under a "task[exchange]" span (queue wait
/// split out via SetSpanQueueMicros), and every blocking gather emits a
/// wait event referencing the awaited chunk's span, so exchange queue
/// time lands in the critical-path queue-wait bucket.
///
/// Teardown: Close (and the destructor, for error paths) cancels the
/// task group and drains in-flight chunks before upstream operators are
/// destroyed.
class ExchangeOpBase : public PhysicalOperator {
 public:
  /// Descriptor access for the builder: the scatter side of the pair
  /// (the work node itself is explain(), the gather side is synthesized
  /// by Describe from dop/ordered).
  ExplainNode& scatter_explain() { return scatter_explain_; }

  /// Emits input, exchange[scatter], the work node, exchange[gather].
  void Describe(std::vector<ExplainNode>* out) const override;

 protected:
  ExchangeOpBase(std::unique_ptr<PhysicalOperator> input, std::string label,
                 std::string span_detail, int dop, int chunk_size,
                 bool ordered);
  ~ExchangeOpBase() override;

  Status OpenImpl() final;
  Result<bool> NextBatchImpl(TupleBatch* out) final;
  void CloseImpl() final;

  /// One-time setup on the driving thread before any chunk is scheduled
  /// (e.g. materializing a join build side). Default no-op.
  virtual Status OpenShared() { return Status::OK(); }

  /// The parallel work: transforms one input tuple into zero or more
  /// output tuples. Runs on worker threads, possibly several at once —
  /// implementations may only touch state that is immutable after
  /// OpenShared plus the thread-safe runtime services (evaluator, stats,
  /// trace).
  virtual Status ProcessTuple(const Tuple& in, std::vector<Tuple>* out) = 0;

  /// The parallel work over one whole chunk-batch. The default loops
  /// ProcessTuple over materialized rows; subclasses with a columnar
  /// kernel (the partitioned join probe) override it. Same threading
  /// contract as ProcessTuple. The worker polls cancellation once per
  /// chunk-batch before calling this.
  virtual Status ProcessBatch(const TupleBatch& in, std::vector<Tuple>* out);

  int dop() const { return dop_; }

  /// Concrete subclasses call this first in their destructor: in-flight
  /// chunks invoke the subclass's ProcessTuple, so they must drain before
  /// the derived object starts tearing down (the base destructor would
  /// run too late).
  void DrainForDestruction() {
    if (group_.has_value()) group_->CancelAndWait();
  }

 private:
  struct Chunk {
    /// Scattered unit of work: one whole TupleBatch (the upstream pull is
    /// NextBatch capped at chunk_size_, so chunk granularity — and with
    /// it the exchange_chunks stat and fan-out behavior — is bounded by
    /// the chunk size, not the context batch size).
    TupleBatch in;
    std::vector<Tuple> out;
    Status status;
    std::atomic<bool> done{false};
    WorkerPool::Task task;
    int task_span = -1;
  };

  /// Reads upstream and submits chunk tasks until the window holds
  /// 2*dop chunks or the input is exhausted.
  Status FillWindow();
  void Submit(std::unique_ptr<Chunk> chunk);
  /// Blocks until `chunk` completes, emitting the gather wait event.
  void AwaitChunk(Chunk* chunk);

  int dop_;
  int chunk_size_;
  bool ordered_;
  std::optional<WorkerPool::TaskGroup> group_;
  std::deque<std::unique_ptr<Chunk>> window_;
  bool input_done_ = false;
  std::vector<Tuple> ready_;
  size_t ready_pos_ = 0;
  ExplainNode scatter_explain_;
};

}  // namespace aldsp::runtime::physical

#endif  // ALDSP_RUNTIME_PHYSICAL_EXCHANGE_H_
