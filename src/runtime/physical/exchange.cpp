#include "runtime/physical/exchange.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace aldsp::runtime::physical {

namespace {
constexpr int kDefaultChunkSize = 8;
}  // namespace

ExchangeOpBase::ExchangeOpBase(std::unique_ptr<PhysicalOperator> input,
                               std::string label, std::string span_detail,
                               int dop, int chunk_size, bool ordered)
    : PhysicalOperator(std::move(input), std::move(label),
                       std::move(span_detail)),
      dop_(std::max(1, dop)),
      chunk_size_(chunk_size > 0 ? chunk_size : kDefaultChunkSize),
      ordered_(ordered) {
  explain().batch = true;
  scatter_explain_.label = "exchange[scatter]";
  scatter_explain_.detail = "chunk=" + std::to_string(chunk_size_);
  scatter_explain_.batch = true;
}

ExchangeOpBase::~ExchangeOpBase() {
  // Subclass destructors have already drained (ProcessTuple is theirs);
  // this is the safety net for the base-only window state.
  if (group_.has_value()) group_->CancelAndWait();
}

void ExchangeOpBase::Describe(std::vector<ExplainNode>* out) const {
  if (input() != nullptr) input()->Describe(out);
  out->push_back(scatter_explain_);
  if (!explain().label.empty()) out->push_back(explain());
  ExplainNode gather;
  gather.label = "exchange[gather]";
  gather.detail = "dop=" + std::to_string(dop_) +
                  (ordered_ ? " ordered" : " unordered");
  gather.batch = true;
  out->push_back(std::move(gather));
}

Status ExchangeOpBase::OpenImpl() {
  group_.emplace(&WorkerPool::For(ctx()->pool));
  return OpenShared();
}

void ExchangeOpBase::CloseImpl() {
  if (group_.has_value()) group_->CancelAndWait();
  window_.clear();
}

Status ExchangeOpBase::FillWindow() {
  size_t cap = static_cast<size_t>(2 * dop_);
  while (!input_done_ && window_.size() < cap) {
    auto chunk = std::make_unique<Chunk>();
    // One upstream batch per chunk, capped at the chunk size so small
    // latency-bound streams still fan out across workers instead of
    // collapsing into one context-sized batch.
    ALDSP_ASSIGN_OR_RETURN(bool more,
                           input()->NextBatch(&chunk->in, chunk_size_));
    if (!more) {
      input_done_ = true;
      break;
    }
    // An empty batch (filter selected nothing) is legal upstream but is
    // not worth a worker task.
    if (chunk->in.empty()) continue;
    Submit(std::move(chunk));
  }
  return Status::OK();
}

void ExchangeOpBase::Submit(std::unique_ptr<Chunk> chunk) {
  if (ctx()->stats != nullptr) ctx()->stats->exchange_chunks += 1;
  QueryTrace* tr = trace();
  int sp = span();
  int task_span = -1;
  int64_t enqueue_rel = 0;
  if (tr != nullptr && tr->has_timeline()) {
    task_span = tr->BeginSpanUnder(sp, "task[exchange]", "");
    enqueue_rel = tr->NowRelMicros();
  }
  Chunk* c = chunk.get();
  c->task_span = task_span;
  c->task = group_->Submit([this, c, tr, sp, task_span, enqueue_rel] {
    // Worker threads start with an empty scope stack; re-establish the
    // chunk's task span (or the exchange span) so events recorded by
    // ProcessTuple attach where they would have inline.
    std::optional<QueryTrace::Scope> scope;
    if (tr != nullptr) scope.emplace(tr, task_span >= 0 ? task_span : sp);
    int64_t run_begin = 0;
    if (task_span >= 0) {
      tr->SetSpanQueueMicros(task_span, tr->NowRelMicros() - enqueue_rel);
      run_begin = tr->NowRelMicros();
    }
    // One cancel poll per chunk-batch, same checkpoint as every other
    // poll site: cancel latency is bounded by one chunk of work.
    c->status = CheckCancelled(ctx()->exec);
    if (c->status.ok()) c->status = ProcessBatch(c->in, &c->out);
    if (task_span >= 0) {
      tr->AddSpanMetrics(task_span, static_cast<int64_t>(c->out.size()),
                         tr->NowRelMicros() - run_begin);
      tr->EndSpan(task_span);
    }
    c->done.store(true, std::memory_order_release);
  });
  window_.push_back(std::move(chunk));
}

void ExchangeOpBase::AwaitChunk(Chunk* chunk) {
  // Record the gather-side stall even when the chunk already finished
  // (a ~0us wait): critical-path attribution then sees every await, and
  // "no stall" shows up as a zero-cost wait rather than a missing one.
  QueryTrace* tr = trace();
  bool timed = tr != nullptr && tr->has_timeline() && chunk->task_span >= 0;
  int64_t wait_begin = timed ? tr->NowRelMicros() : 0;
  chunk->task.Wait();
  if (timed) {
    tr->AddWaitEvent(chunk->task_span, tr->NowRelMicros() - wait_begin,
                     "exchange-gather");
  }
}

Status ExchangeOpBase::ProcessBatch(const TupleBatch& in,
                                    std::vector<Tuple>* out) {
  size_t n = in.size();
  for (size_t i = 0; i < n; ++i) {
    ALDSP_RETURN_NOT_OK(ProcessTuple(in.MaterializeRow(i), out));
  }
  return Status::OK();
}

Result<bool> ExchangeOpBase::NextBatchImpl(TupleBatch* out) {
  int target = batch_target();
  while (static_cast<int>(out->size()) < target) {
    if (ready_pos_ < ready_.size()) {
      out->PushRow(std::move(ready_[ready_pos_++]));
      continue;
    }
    ready_.clear();
    ready_pos_ = 0;
    ALDSP_RETURN_NOT_OK(FillWindow());
    if (window_.empty()) return !out->empty();
    // Ordered gather takes the oldest chunk (deterministic output order);
    // unordered prefers any chunk that already finished.
    size_t pick = 0;
    if (!ordered_) {
      for (size_t i = 0; i < window_.size(); ++i) {
        if (window_[i]->done.load(std::memory_order_acquire)) {
          pick = i;
          break;
        }
      }
    }
    AwaitChunk(window_[pick].get());
    std::unique_ptr<Chunk> finished = std::move(window_[pick]);
    window_.erase(window_.begin() + static_cast<std::ptrdiff_t>(pick));
    ALDSP_RETURN_NOT_OK(finished->status);
    ready_ = std::move(finished->out);
    // Top the window back up before draining the finished chunk, so
    // workers chew on the next chunks while downstream consumes this one.
    ALDSP_RETURN_NOT_OK(FillWindow());
  }
  return true;
}

}  // namespace aldsp::runtime::physical
