#ifndef ALDSP_RUNTIME_PHYSICAL_BUILDER_H_
#define ALDSP_RUNTIME_PHYSICAL_BUILDER_H_

#include <memory>

#include "runtime/physical/operator.h"

namespace aldsp::runtime::physical {

/// Lowers an analyzed+optimized FLWOR expression into a physical operator
/// tree: SingletonSource, then one operator per clause — ForScan (or
/// SqlRegionScan when the binding expression is a pushed SQL region),
/// LetBind, Filter, one of the four join operators (kAuto resolves to
/// NL/INL on equi-key availability; PP-k without a fetch plan or equi
/// keys degrades the same way the interpreter did), StreamGroupBy (with
/// sort fallback), OrderBy — capped by Return, which evaluates the return
/// expression per tuple and binds it to kResultBinding.
///
/// Planner-time parallelism knobs, derived from the RuntimeContext (the
/// evaluator) or ServerOptions (EXPLAIN). The defaults build the serial
/// plan, so existing callers are unchanged.
struct BuildOptions {
  /// Maximum degree of parallelism; <= 1 disables exchange insertion.
  int max_dop = 1;
  /// Minimum estimated upstream cardinality before an exchange pays off.
  /// Unknown estimates (-1) never parallelize.
  int64_t parallel_row_threshold = 64;
  /// Tuples per exchange chunk; 0 picks a default.
  int exchange_chunk_size = 0;
  /// Ordered gather (deterministic results) vs completion order.
  bool ordered = true;
  /// Rows per TupleBatch (the vectorized runtime's unit of work). Purely
  /// descriptive at build time — execution clamps the RuntimeContext's
  /// knob at Open — but EXPLAIN reports it so plans show their batch
  /// shape. 1 degenerates to row-at-a-time.
  int batch_size = 1024;
};

/// Pure lowering: no RuntimeContext and no source access, so EXPLAIN can
/// build (and describe) the exact tree that would execute. `flwor` must
/// outlive the returned tree.
///
/// With `opts.max_dop > 1` the builder additionally inserts exchange
/// operators above NL/INL join probe sides, non-leading for-scans, and
/// independent let groups when the optimizer's cardinality annotations
/// (Clause::estimated_rows / parallel_group) say the parallelism pays.
std::unique_ptr<PhysicalOperator> BuildPlan(const xquery::Expr& flwor,
                                            const BuildOptions& opts);
std::unique_ptr<PhysicalOperator> BuildPlan(const xquery::Expr& flwor);

}  // namespace aldsp::runtime::physical

#endif  // ALDSP_RUNTIME_PHYSICAL_BUILDER_H_
