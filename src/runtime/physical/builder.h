#ifndef ALDSP_RUNTIME_PHYSICAL_BUILDER_H_
#define ALDSP_RUNTIME_PHYSICAL_BUILDER_H_

#include <memory>

#include "runtime/physical/operator.h"

namespace aldsp::runtime::physical {

/// Lowers an analyzed+optimized FLWOR expression into a physical operator
/// tree: SingletonSource, then one operator per clause — ForScan (or
/// SqlRegionScan when the binding expression is a pushed SQL region),
/// LetBind, Filter, one of the four join operators (kAuto resolves to
/// NL/INL on equi-key availability; PP-k without a fetch plan or equi
/// keys degrades the same way the interpreter did), StreamGroupBy (with
/// sort fallback), OrderBy — capped by Return, which evaluates the return
/// expression per tuple and binds it to kResultBinding.
///
/// Pure lowering: no RuntimeContext and no source access, so EXPLAIN can
/// build (and describe) the exact tree that would execute. `flwor` must
/// outlive the returned tree.
std::unique_ptr<PhysicalOperator> BuildPlan(const xquery::Expr& flwor);

}  // namespace aldsp::runtime::physical

#endif  // ALDSP_RUNTIME_PHYSICAL_BUILDER_H_
