// The physical operator repertoire (paper §5.2) and the lowering from
// analyzed+optimized FLWOR clauses to operator trees: nested loop, index
// nested loop, and PP-k joins (with the double-buffered block
// prefetcher), streaming group-by with sort fallback (§4.2), order-by,
// for/let/where scans, and pushed SQL region scans.

#include "runtime/physical/builder.h"
#include "runtime/physical/exchange.h"
#include "runtime/physical/operator.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relational/sql_ast.h"
#include "runtime/evaluator.h"
#include "runtime/source_timing.h"
#include "runtime/tuple_repr.h"
#include "runtime/worker_pool.h"
#include "xml/node.h"

namespace aldsp::runtime::physical {

namespace {

using relational::Cell;
using xml::AtomicValue;
using xml::Item;
using xml::Sequence;
using xquery::Clause;
using xquery::Expr;
using xquery::ExprKind;
using xquery::ExprPtr;
using xquery::JoinMethod;

// Orders two atomized singleton-or-empty sequences; empty sorts first.
int OrderCompareKeys(const Sequence& a, const Sequence& b) {
  if (a.empty() && b.empty()) return 0;
  if (a.empty()) return -1;
  if (b.empty()) return 1;
  const AtomicValue& va = a.front().atomic();
  const AtomicValue& vb = b.front().atomic();
  auto c = va.Compare(vb);
  if (c.ok()) return c.value();
  return static_cast<int>(va.type()) - static_cast<int>(vb.type());
}

}  // namespace

// ----- PhysicalOperator base ---------------------------------------------

PhysicalOperator::PhysicalOperator(std::unique_ptr<PhysicalOperator> input,
                                   std::string label, std::string span_detail)
    : input_(std::move(input)), span_detail_(std::move(span_detail)) {
  explain_.label = std::move(label);
  explain_.detail = span_detail_;
}

PhysicalOperator::~PhysicalOperator() { FlushSpan(); }

Status PhysicalOperator::Open(ExecEnv* env) {
  env_ = env;
  trace_ = env->ctx->trace;
  exec_ = env->ctx->exec;
  batch_size_ = std::clamp(env->ctx->batch_size, 1, 16384);
  batch_limit_ = batch_size_;
  if (input_ != nullptr) ALDSP_RETURN_NOT_OK(input_->Open(env));
  // Spans begin in pipeline order (input first), all parented on the
  // calling thread's innermost scope — the enclosing flwor span.
  if (trace_ != nullptr && !explain_.label.empty()) {
    span_ = trace_->BeginSpan(explain_.label, span_detail_);
    timeline_ = trace_->has_timeline() && span_ >= 0;
  }
  opened_ = true;
  return OpenImpl();
}

Result<bool> PhysicalOperator::Next(Tuple* out) {
  ALDSP_RETURN_NOT_OK(CheckCancelled(exec_));
  if (span_ < 0) {
    Result<bool> r = NextImpl(out);
    if (r.ok() && r.value()) ++rows_;
    return r;
  }
  // Timed inclusive of the input chain (EXPLAIN ANALYZE style); the span
  // becomes the thread's scope so source events inside attach to it.
  QueryTrace::Scope scope(trace_, span_);
  auto t0 = std::chrono::steady_clock::now();
  Result<bool> r = NextImpl(out);
  auto t1 = std::chrono::steady_clock::now();
  micros_ +=
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  if (r.ok() && r.value()) {
    ++rows_;
    if (timeline_) {
      last_row_micros_ = trace_->RelMicros(t1);
      if (first_row_micros_ < 0) first_row_micros_ = last_row_micros_;
    }
  }
  return r;
}

Result<bool> PhysicalOperator::NextBatch(TupleBatch* out, int max_rows) {
  // One cancel poll per batch (not per row): the batch is the unit at
  // which every pipeline in the tree re-checks the live-query control
  // block, so cancel latency is bounded by one batch of work.
  ALDSP_RETURN_NOT_OK(CheckCancelled(exec_));
  out->Clear();
  batch_limit_ = (max_rows > 0 && max_rows < batch_size_) ? max_rows
                                                          : batch_size_;
  if (span_ < 0) {
    Result<bool> r = NextBatchImpl(out);
    if (r.ok() && r.value()) rows_ += static_cast<int64_t>(out->size());
    return r;
  }
  QueryTrace::Scope scope(trace_, span_);
  auto t0 = std::chrono::steady_clock::now();
  Result<bool> r = NextBatchImpl(out);
  auto t1 = std::chrono::steady_clock::now();
  micros_ +=
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  if (r.ok() && r.value()) {
    // Spans count rows, never batches: PROFILE output, per-fingerprint
    // row totals and slow-query records stay comparable with row-engine
    // captures.
    rows_ += static_cast<int64_t>(out->size());
    if (timeline_ && !out->empty()) {
      last_row_micros_ = trace_->RelMicros(t1);
      if (first_row_micros_ < 0) first_row_micros_ = last_row_micros_;
    }
  }
  return r;
}

Result<bool> PhysicalOperator::NextImpl(Tuple* out) {
  // Row-compat shim: drain a buffered batch produced by the subclass's
  // NextBatchImpl, skipping empty batches so row consumers never see a
  // phantom tuple.
  while (true) {
    if (shim_pos_ < shim_batch_.size()) {
      *out = shim_batch_.MaterializeRow(shim_pos_++);
      return true;
    }
    shim_batch_.Clear();
    shim_pos_ = 0;
    batch_limit_ = batch_size_;
    ALDSP_ASSIGN_OR_RETURN(bool more, NextBatchImpl(&shim_batch_));
    if (!more) return false;
  }
}

Result<bool> PhysicalOperator::NextBatchImpl(TupleBatch* out) {
  // Batch-compat shim: loop the subclass's row production up to the
  // batch target, so unconverted operators ride in a batch pipeline.
  Tuple t;
  int target = batch_target();
  while (static_cast<int>(out->size()) < target) {
    ALDSP_ASSIGN_OR_RETURN(bool more, NextImpl(&t));
    if (!more) break;
    out->PushRow(std::move(t));
  }
  return !out->empty();
}

void PhysicalOperator::Close() {
  if (!opened_) return;
  opened_ = false;
  CloseImpl();
  if (input_ != nullptr) input_->Close();
  FlushSpan();
}

void PhysicalOperator::FlushSpan() {
  if (flushed_) return;
  flushed_ = true;
  if (trace_ != nullptr && span_ >= 0) {
    trace_->AddSpanMetrics(span_, rows_, micros_);
    if (timeline_ && first_row_micros_ >= 0) {
      trace_->SetSpanRowMarks(span_, first_row_micros_, last_row_micros_);
    }
    trace_->EndSpan(span_);
  }
}

void PhysicalOperator::Describe(std::vector<ExplainNode>* out) const {
  if (input_ != nullptr) input_->Describe(out);
  if (!explain_.label.empty()) out->push_back(explain_);
}

void PhysicalOperator::NoteOperatorBytes(int64_t bytes) {
  if (ctx()->stats != nullptr) ctx()->stats->NotePeakBytes(bytes);
  if (exec_ != nullptr) exec_->NotePeakBytes(bytes);
  if (trace_ != nullptr && span_ >= 0) trace_->AddSpanBytes(span_, bytes);
}

namespace {

// ----- Leaf / pipelined operators ----------------------------------------

/// Emits the FLWOR's base environment exactly once. Invisible in traces
/// and EXPLAIN (empty label), like the interpreter's singleton stream.
class SingletonSourceOp final : public PhysicalOperator {
 public:
  SingletonSourceOp() : PhysicalOperator(nullptr, "") {}

 protected:
  Result<bool> NextImpl(Tuple* out) override {
    if (done_) return false;
    done_ = true;
    *out = base_env();
    return true;
  }

 private:
  bool done_ = false;
};

/// `for $v [at $p] in expr`: iterates the binding sequence per input
/// tuple, binding the item (and 1-based position). Batch-native: the
/// binding sequence materializes directly into the output batch's var
/// column (items from a relational/SQL-region scan land in column
/// storage without per-row tuple construction), and the positional
/// counter is a pure columnar integer column.
class ForScanOp : public PhysicalOperator {
 public:
  ForScanOp(std::unique_ptr<PhysicalOperator> input, const Clause& cl,
            std::string label)
      : PhysicalOperator(std::move(input), std::move(label)), cl_(cl) {
    explain().batch = true;
  }

 protected:
  Result<bool> NextBatchImpl(TupleBatch* out) override {
    // Add both columns before taking pointers: the second AddColumn may
    // reallocate the column vector.
    size_t var_idx = out->column_count();
    out->AddColumn(cl_.var);
    if (!cl_.positional_var.empty()) out->AddColumn(cl_.positional_var);
    BatchColumn* var_col = out->column_ptr(var_idx);
    BatchColumn* pos_col = cl_.positional_var.empty()
                               ? nullptr
                               : out->column_ptr(var_idx + 1);
    int target = batch_target();
    while (static_cast<int>(out->size()) < target) {
      if (pos_ < items_.size()) {
        out->AddRow(current_);
        var_col->AppendItem(items_[pos_]);
        if (pos_col != nullptr) {
          pos_col->AppendAtomic(
              AtomicValue::Integer(static_cast<int64_t>(pos_ + 1)));
        }
        ++pos_;
        continue;
      }
      if (in_pos_ >= in_.size()) {
        if (input_done_) break;
        ALDSP_ASSIGN_OR_RETURN(bool more, input()->NextBatch(&in_));
        in_pos_ = 0;
        if (!more) input_done_ = true;
        continue;
      }
      current_ = in_.MaterializeRow(in_pos_++);
      ALDSP_ASSIGN_OR_RETURN(Sequence seq,
                             eval()->EvalExpr(*cl_.expr, current_));
      items_ = std::move(seq);
      pos_ = 0;
    }
    if (!out->empty()) return true;
    return !(input_done_ && in_pos_ >= in_.size() && pos_ >= items_.size());
  }

 private:
  const Clause& cl_;
  Tuple current_;
  Sequence items_;
  size_t pos_ = 0;
  TupleBatch in_;
  size_t in_pos_ = 0;
  bool input_done_ = false;
};

/// A ForScan whose binding expression is a pushed-down SQL region
/// (paper §4.4): the scan's rows come from one generated statement
/// executed through the relational adaptor. Execution is inherited —
/// the SQL region evaluates through the interpreter's kSqlQuery path —
/// but the plan names it distinctly so EXPLAIN shows the region boundary.
class SqlRegionScanOp final : public ForScanOp {
 public:
  using ForScanOp::ForScanOp;
};

/// `let $v := expr`: binds the full sequence without iterating it.
/// Batch-native: appends one column per input batch — via the expression
/// kernel when the binding shape supports it, else the interpreter over
/// materialized rows.
class LetBindOp final : public PhysicalOperator {
 public:
  LetBindOp(std::unique_ptr<PhysicalOperator> input, const Clause& cl,
            std::string label)
      : PhysicalOperator(std::move(input), std::move(label)), cl_(cl) {
    explain().batch = true;
  }

 protected:
  Status OpenImpl() override {
    kernel_ = cl_.expr != nullptr && KernelSupports(*cl_.expr);
    return Status::OK();
  }

  Result<bool> NextBatchImpl(TupleBatch* out) override {
    ALDSP_ASSIGN_OR_RETURN(bool more, input()->NextBatch(out, batch_target()));
    if (!more) return false;
    // Columns must align with physical rows before one is appended.
    out->Compact();
    size_t n = out->size();
    if (kernel_) {
      ALDSP_RETURN_NOT_OK(KernelEvalRows(*cl_.expr, *out, &vals_));
    } else {
      vals_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        Tuple t = out->MaterializeRow(i);
        ALDSP_ASSIGN_OR_RETURN(Sequence v, eval()->EvalExpr(*cl_.expr, t));
        vals_[i] = std::move(v);
      }
    }
    BatchColumn* col = out->AddColumn(cl_.var);
    for (size_t i = 0; i < n; ++i) col->AppendSeq(std::move(vals_[i]));
    return true;
  }

 private:
  const Clause& cl_;
  bool kernel_ = false;
  std::vector<Sequence> vals_;
};

/// `where expr`: passes tuples whose effective boolean value is true.
/// Batch-native: marks dropped rows in the batch's selection vector
/// instead of copying survivors. Comparison predicates over
/// kernel-evaluable operands run as a batch kernel (operand extraction
/// plus the interpreter's shared comparison routine, no per-row tuple
/// materialization); anything else falls back to the interpreter.
class FilterOp final : public PhysicalOperator {
 public:
  FilterOp(std::unique_ptr<PhysicalOperator> input, const Clause& cl,
           std::string label)
      : PhysicalOperator(std::move(input), std::move(label)), cl_(cl) {
    explain().batch = true;
  }

 protected:
  Status OpenImpl() override {
    const Expr* p = cl_.expr.get();
    kernel_ = p != nullptr && p->kind == ExprKind::kComparison &&
              p->children.size() == 2 && p->children[0] != nullptr &&
              p->children[1] != nullptr && KernelSupports(*p->children[0]) &&
              KernelSupports(*p->children[1]);
    return Status::OK();
  }

  Result<bool> NextBatchImpl(TupleBatch* out) override {
    ALDSP_ASSIGN_OR_RETURN(bool more, input()->NextBatch(out, batch_target()));
    if (!more) return false;
    size_t n = out->size();
    std::vector<uint32_t> keep;
    keep.reserve(n);
    if (kernel_) {
      const Expr& p = *cl_.expr;
      ALDSP_RETURN_NOT_OK(KernelEvalRows(*p.children[0], *out, &lhs_));
      ALDSP_RETURN_NOT_OK(KernelEvalRows(*p.children[1], *out, &rhs_));
      for (size_t i = 0; i < n; ++i) {
        ALDSP_ASSIGN_OR_RETURN(bool ok,
                               CompareOperandsToBool(lhs_[i], rhs_[i], p.op,
                                                     p.general_comparison));
        if (ok) keep.push_back(static_cast<uint32_t>(out->PhysicalIndex(i)));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        Tuple t = out->MaterializeRow(i);
        ALDSP_ASSIGN_OR_RETURN(Sequence c, eval()->EvalExpr(*cl_.expr, t));
        ALDSP_ASSIGN_OR_RETURN(bool ok, xml::EffectiveBooleanValue(c));
        if (ok) keep.push_back(static_cast<uint32_t>(out->PhysicalIndex(i)));
      }
    }
    // A batch where nothing survives still returns true: empty batches
    // are legal mid-stream, and downstream avoids any copy for the
    // dropped rows.
    out->SetSelection(std::move(keep));
    return true;
  }

 private:
  const Clause& cl_;
  bool kernel_ = false;
  std::vector<Sequence> lhs_, rhs_;
};

// ----- Join operators (paper §5.2) ---------------------------------------

using JoinIndex = std::unordered_map<std::string, std::vector<size_t>>;

/// The join micro-kernel shared by the serial join repertoire and the
/// parallel probe exchange: equi-key encoding, residual conditions, and
/// the per-left probe (including the left-outer null row). All methods
/// are const over immutable state, so several worker threads may probe
/// at once (the evaluator already supports concurrent EvalExpr — the
/// async fan-out relies on it).
struct JoinMatcher {
  const Clause* cl = nullptr;
  JoinMethod method = JoinMethod::kNestedLoop;
  const RuntimeContext* ctx = nullptr;
  ExprEvaluator* eval = nullptr;
  Tuple base_env;

  // Evaluates a key expression to its atomized value sequence.
  Result<Sequence> EvalKey(const ExprPtr& expr, const Tuple& env) const {
    ALDSP_ASSIGN_OR_RETURN(Sequence v, eval->EvalExpr(*expr, env));
    return xml::Atomize(v);
  }

  Result<std::string> LeftKey(const Tuple& left, bool* has_empty) const {
    std::string key;
    *has_empty = false;
    for (const auto& [le, re] : cl->equi_keys) {
      ALDSP_ASSIGN_OR_RETURN(Sequence k, EvalKey(le, left));
      if (k.empty()) *has_empty = true;
      key += EncodeAtomicSequence(k);
      key += '\x1e';
    }
    return key;
  }

  Result<std::string> RightKey(const Item& item, bool* has_empty) const {
    Tuple env = base_env.Bind(cl->var, Sequence{item});
    std::string key;
    *has_empty = false;
    for (const auto& [le, re] : cl->equi_keys) {
      ALDSP_ASSIGN_OR_RETURN(Sequence k, EvalKey(re, env));
      if (k.empty()) *has_empty = true;
      key += EncodeAtomicSequence(k);
      key += '\x1e';
    }
    return key;
  }

  // Checks residual condition with the join variable bound.
  Result<bool> Residual(const Tuple& joined) const {
    if (!cl->condition) return true;
    ALDSP_ASSIGN_OR_RETURN(Sequence c,
                           eval->EvalExpr(*cl->condition, joined));
    return xml::EffectiveBooleanValue(c);
  }

  // For plain NL, the equi keys must also be verified per combination.
  Result<bool> EquiMatch(const Tuple& joined) const {
    for (const auto& [le, re] : cl->equi_keys) {
      ALDSP_ASSIGN_OR_RETURN(Sequence l, EvalKey(le, joined));
      ALDSP_ASSIGN_OR_RETURN(Sequence r, EvalKey(re, joined));
      if (l.empty() || r.empty()) return false;
      if (EncodeAtomicSequence(l) != EncodeAtomicSequence(r)) return false;
    }
    return true;
  }

  // Joins one left tuple against a set of right items using the current
  // method (NL or INL), appending matches (and the outer-join null row).
  Status JoinOneLeft(const Tuple& left, const Sequence& right,
                     std::vector<Tuple>* out,
                     const JoinIndex* index = nullptr) const {
    bool matched = false;
    auto try_item = [&](const Item& item) -> Status {
      Tuple joined = left.Bind(cl->var, Sequence{item});
      if (ctx->stats != nullptr) ctx->stats->join_probe_rows += 1;
      if (index == nullptr &&
          (method == JoinMethod::kNestedLoop ||
           method == JoinMethod::kPPkNestedLoop)) {
        ALDSP_ASSIGN_OR_RETURN(bool em, EquiMatch(joined));
        if (!em) return Status::OK();
      }
      ALDSP_ASSIGN_OR_RETURN(bool ok, Residual(joined));
      if (ok) {
        matched = true;
        out->push_back(std::move(joined));
      }
      return Status::OK();
    };
    if (index != nullptr) {
      bool has_empty;
      ALDSP_ASSIGN_OR_RETURN(std::string key, LeftKey(left, &has_empty));
      if (!has_empty) {
        auto it = index->find(key);
        if (it != index->end()) {
          for (size_t i : it->second) {
            ALDSP_RETURN_NOT_OK(try_item(right[i]));
          }
        }
      }
    } else {
      for (const auto& item : right) {
        ALDSP_RETURN_NOT_OK(try_item(item));
      }
    }
    if (!matched && cl->left_outer) {
      out->push_back(left.Bind(cl->var, Sequence{}));
    }
    return Status::OK();
  }

  // Index probe for one left tuple whose bucket was already resolved
  // (the batch probe computes left keys columnar, so this is JoinOneLeft's
  // index path minus the per-left key recompute). `rows` may be null for
  // a key miss / empty key: only the outer null row can result.
  Status JoinMatchedItems(const Tuple& left, const Sequence& right,
                          const std::vector<size_t>* rows,
                          std::vector<Tuple>* out) const {
    bool matched = false;
    if (rows != nullptr) {
      for (size_t i : *rows) {
        Tuple joined = left.Bind(cl->var, Sequence{right[i]});
        if (ctx->stats != nullptr) ctx->stats->join_probe_rows += 1;
        ALDSP_ASSIGN_OR_RETURN(bool ok, Residual(joined));
        if (ok) {
          matched = true;
          out->push_back(std::move(joined));
        }
      }
    }
    if (!matched && cl->left_outer) {
      out->push_back(left.Bind(cl->var, Sequence{}));
    }
    return Status::OK();
  }
};

/// Shared base for the serial join operators: a JoinMatcher bound at
/// Open, and the pending-output buffer subclasses refill a batch at a
/// time. Batch-native on both sides: left tuples pull from the upstream
/// in whole batches (NextLeft / left batch accessors), and joined rows
/// drain from pending() into output batches.
class JoinOpBase : public PhysicalOperator {
 public:
  JoinOpBase(std::unique_ptr<PhysicalOperator> input, const Clause& cl,
             JoinMethod method, std::string label, std::string span_detail)
      : PhysicalOperator(std::move(input), std::move(label),
                         std::move(span_detail)),
        cl_(cl),
        method_(method) {
    explain().batch = true;
  }

 protected:
  Status OpenImpl() override {
    matcher_.emplace(JoinMatcher{&cl_, method_, ctx(), eval(), base_env()});
    return Status::OK();
  }

  Result<bool> NextBatchImpl(TupleBatch* out) override {
    int target = batch_target();
    while (static_cast<int>(out->size()) < target) {
      if (pending_pos_ < pending_.size()) {
        out->PushRow(std::move(pending_[pending_pos_++]));
        continue;
      }
      pending_.clear();
      pending_pos_ = 0;
      ALDSP_ASSIGN_OR_RETURN(bool more, Refill());
      if (!more) return !out->empty();
    }
    return true;
  }

  /// Produces the next batch of joined tuples into pending(); returns
  /// false when the input is exhausted.
  virtual Result<bool> Refill() = 0;

  std::vector<Tuple>* pending() { return &pending_; }

  /// Pulls the next left tuple, reading the upstream a batch at a time
  /// (the PP-k block reader consumes lefts one by one across block
  /// boundaries, so it buffers here instead of per-row upstream calls).
  Result<bool> NextLeft(Tuple* out) {
    while (left_pos_ >= left_batch_.size()) {
      if (left_done_) return false;
      ALDSP_ASSIGN_OR_RETURN(bool more, input()->NextBatch(&left_batch_));
      left_pos_ = 0;
      if (!more) {
        left_done_ = true;
        return false;
      }
    }
    *out = left_batch_.MaterializeRow(left_pos_++);
    return true;
  }

  /// Pulls the next non-empty left batch into the shared buffer; false
  /// at end of stream. Used by the NL/INL batch probe (whole-batch
  /// processing); not valid interleaved with NextLeft.
  Result<bool> NextLeftBatch() {
    left_pos_ = 0;
    while (true) {
      if (left_done_) return false;
      ALDSP_ASSIGN_OR_RETURN(bool more, input()->NextBatch(&left_batch_));
      if (!more) {
        left_done_ = true;
        return false;
      }
      if (!left_batch_.empty()) return true;
    }
  }

  const TupleBatch& left_batch() const { return left_batch_; }

  Result<Sequence> EvalKey(const ExprPtr& expr, const Tuple& env) {
    return matcher_->EvalKey(expr, env);
  }

  Result<std::string> RightKey(const Item& item, bool* has_empty) {
    return matcher_->RightKey(item, has_empty);
  }

  Status JoinOneLeft(const Tuple& left, const Sequence& right,
                     std::vector<Tuple>* out,
                     const JoinIndex* index = nullptr) {
    return matcher_->JoinOneLeft(left, right, out, index);
  }

  Status JoinMatchedItems(const Tuple& left, const Sequence& right,
                          const std::vector<size_t>* rows,
                          std::vector<Tuple>* out) {
    return matcher_->JoinMatchedItems(left, right, rows, out);
  }

  const Clause& cl() const { return cl_; }
  JoinMethod method() const { return method_; }

 private:
  const Clause& cl_;
  JoinMethod method_;
  std::vector<Tuple> pending_;
  size_t pending_pos_ = 0;
  std::optional<JoinMatcher> matcher_;
  TupleBatch left_batch_;
  size_t left_pos_ = 0;
  bool left_done_ = false;
};

/// Nested loop and index nested loop joins: the right side materializes
/// once (INL also builds a hash index on the equi keys), then each left
/// tuple probes it.
class NestedLoopJoinOp : public JoinOpBase {
 public:
  using JoinOpBase::JoinOpBase;

 protected:
  Status OpenImpl() override {
    ALDSP_RETURN_NOT_OK(JoinOpBase::OpenImpl());
    keys_kernel_ = !cl().equi_keys.empty();
    for (const auto& [le, re] : cl().equi_keys) {
      if (le == nullptr || !KernelSupports(*le)) keys_kernel_ = false;
    }
    return Status::OK();
  }

  Result<bool> Refill() override {
    ALDSP_RETURN_NOT_OK(EnsureRightMaterialized());
    ALDSP_ASSIGN_OR_RETURN(bool more, NextLeftBatch());
    if (!more) return false;
    const TupleBatch& batch = left_batch();
    size_t n = batch.size();
    if (method() == JoinMethod::kIndexNestedLoop && keys_kernel_) {
      // Columnar probe: the left key expressions evaluate once per batch
      // through the kernel; a row whose bucket misses (and isn't outer)
      // never materializes a left tuple at all.
      size_t nk = cl().equi_keys.size();
      key_cols_.resize(nk);
      for (size_t k = 0; k < nk; ++k) {
        ALDSP_RETURN_NOT_OK(
            KernelEvalRows(*cl().equi_keys[k].first, batch, &key_cols_[k]));
      }
      std::string key;
      for (size_t i = 0; i < n; ++i) {
        key.clear();
        bool has_empty = false;
        for (size_t k = 0; k < nk; ++k) {
          Sequence atomized = xml::Atomize(key_cols_[k][i]);
          if (atomized.empty()) has_empty = true;
          key += EncodeAtomicSequence(atomized);
          key += '\x1e';
        }
        const std::vector<size_t>* rows = nullptr;
        if (!has_empty) {
          auto it = index_.find(key);
          if (it != index_.end()) rows = &it->second;
        }
        if (rows == nullptr && !cl().left_outer) continue;
        ALDSP_RETURN_NOT_OK(JoinMatchedItems(batch.MaterializeRow(i),
                                             right_items_, rows, pending()));
      }
      return true;
    }
    const auto* idx =
        method() == JoinMethod::kIndexNestedLoop ? &index_ : nullptr;
    for (size_t i = 0; i < n; ++i) {
      ALDSP_RETURN_NOT_OK(
          JoinOneLeft(batch.MaterializeRow(i), right_items_, pending(), idx));
    }
    return true;
  }

 private:
  Status EnsureRightMaterialized() {
    if (right_ready_) return Status::OK();
    ALDSP_ASSIGN_OR_RETURN(Sequence items,
                           eval()->EvalExpr(*cl().expr, base_env()));
    right_items_ = std::move(items);
    NoteOperatorBytes(
        static_cast<int64_t>(xml::SequenceMemoryBytes(right_items_)));
    if (method() == JoinMethod::kIndexNestedLoop) {
      for (size_t i = 0; i < right_items_.size(); ++i) {
        bool has_empty;
        ALDSP_ASSIGN_OR_RETURN(std::string key,
                               RightKey(right_items_[i], &has_empty));
        if (!has_empty) index_[key].push_back(i);
      }
    }
    right_ready_ = true;
    return Status::OK();
  }

  bool right_ready_ = false;
  bool keys_kernel_ = false;
  Sequence right_items_;
  std::unordered_map<std::string, std::vector<size_t>> index_;
  std::vector<std::vector<Sequence>> key_cols_;
};

/// INL is NL with the index switched on; a distinct type keeps the
/// operator inventory explicit in the plan.
class IndexNLJoinOp final : public NestedLoopJoinOp {
 public:
  using NestedLoopJoinOp::NestedLoopJoinOp;
};

/// PP-k join (paper §4.2): pulls up to k left tuples, issues one
/// disjunctive (IN-list) fetch for the block, and joins in the mid-tier.
///
/// With ctx.ppk_prefetch (default), block fetches run as a depth-d
/// pipeline of worker-pool tasks: the driving thread reads blocks of
/// left tuples and their key parameters (upstream is only ever touched
/// by one thread), keeps up to d parameterized fetches in flight, and
/// joins each block as its fetch completes. d=1 is the classic double
/// buffer; larger depths overlap several round trips, chosen adaptively
/// from the ObservedCostModel's per-source round-trip/transfer
/// observations (ctx.ppk_prefetch_depth pins it).
///
/// Close and the destructor cancel and drain the pipeline, so an early
/// teardown (LIMIT-style close, timeout abandonment) never leaves a
/// fetch task running against destroyed operator state.
class PPkJoinOp final : public JoinOpBase {
 public:
  using JoinOpBase::JoinOpBase;

  ~PPkJoinOp() override { Drain(); }

 protected:
  Status OpenImpl() override {
    ALDSP_RETURN_NOT_OK(JoinOpBase::OpenImpl());
    if (!ctx()->ppk_prefetch) {
      depth_ = 0;
    } else if (ctx()->ppk_prefetch_depth > 0) {
      depth_ = std::min(ctx()->ppk_prefetch_depth, 8);
    } else if (ctx()->observed != nullptr && cl().ppk_fetch != nullptr) {
      depth_ = ctx()->observed->AdvisePrefetchDepth(
          cl().ppk_fetch->source, std::max(1, cl().ppk_block_size));
    } else {
      depth_ = 1;
    }
    if (depth_ > 0) group_.emplace(&WorkerPool::For(ctx()->pool));
    return Status::OK();
  }

  void CloseImpl() override { Drain(); }

  Result<bool> Refill() override {
    if (depth_ == 0) {
      // No prefetch: read and fetch inline under the join span.
      ALDSP_ASSIGN_OR_RETURN(PendingBlock block, ReadBlock());
      if (block.lefts.empty()) return false;
      Result<Fetched> fetched = FetchBlock(std::move(block.params));
      if (!fetched.ok()) return fetched.status();
      return JoinBlock(block.lefts, fetched.value());
    }
    ALDSP_RETURN_NOT_OK(FillPipeline());
    if (inflight_.empty()) return false;
    Inflight f = std::move(inflight_.front());
    inflight_.pop_front();
    QueryTrace* tr = trace();
    bool timed = tr != nullptr && tr->has_timeline() && f.task_span >= 0;
    int64_t wait_begin = timed ? tr->NowRelMicros() : 0;
    f.task.Wait();
    if (timed) {
      tr->AddWaitEvent(f.task_span, tr->NowRelMicros() - wait_begin,
                       "ppk-prefetch");
    }
    // Top the pipeline back up before joining, so the next round trips
    // overlap this block's mid-tier join work.
    ALDSP_RETURN_NOT_OK(FillPipeline());
    Result<Fetched>& r = *f.slot;
    if (!r.ok()) return r.status();
    return JoinBlock(f.lefts, r.value());
  }

 private:
  /// A block read on the driving thread: left tuples plus the distinct
  /// first-equi-key parameter cells for the IN-list fetch.
  struct PendingBlock {
    std::vector<Tuple> lefts;
    std::vector<Cell> params;
  };

  /// The fetch task's product.
  struct Fetched {
    Sequence fetched;
    JoinIndex index;
    bool index_built = false;
    int64_t fetched_bytes = 0;
  };

  struct Inflight {
    std::vector<Tuple> lefts;
    std::shared_ptr<Result<Fetched>> slot;
    WorkerPool::Task task;
    int task_span = -1;
  };

  /// Reads up to k left tuples and their key parameters. Main thread
  /// only: the sole reader of the upstream input.
  Result<PendingBlock> ReadBlock() {
    PendingBlock block;
    int k = std::max(1, cl().ppk_block_size);
    Tuple t;
    while (static_cast<int>(block.lefts.size()) < k) {
      ALDSP_ASSIGN_OR_RETURN(bool more, NextLeft(&t));
      if (!more) {
        input_exhausted_ = true;
        break;
      }
      block.lefts.push_back(t);
    }
    if (block.lefts.empty()) return block;
    if (ctx()->stats != nullptr) ctx()->stats->ppk_blocks += 1;

    // Collect distinct key values from the block's first equi key (the
    // parameterized IN-list column).
    std::unordered_map<std::string, bool> seen;
    for (const auto& left : block.lefts) {
      ALDSP_ASSIGN_OR_RETURN(Sequence key,
                             EvalKey(cl().equi_keys[0].first, left));
      if (key.empty()) continue;
      const AtomicValue& v = key.front().atomic();
      if (seen.emplace(EncodeAtomic(v), true).second) {
        block.params.push_back(Cell::Of(v));
      }
    }
    return block;
  }

  /// Schedules fetch tasks until `depth_` are in flight or the input is
  /// exhausted.
  Status FillPipeline() {
    while (static_cast<int>(inflight_.size()) < depth_ && !input_exhausted_) {
      ALDSP_ASSIGN_OR_RETURN(PendingBlock block, ReadBlock());
      if (block.lefts.empty()) break;
      SchedulePrefetch(std::move(block));
    }
    return Status::OK();
  }

  void SchedulePrefetch(PendingBlock block) {
    Inflight f;
    f.lefts = std::move(block.lefts);
    f.slot = std::make_shared<Result<Fetched>>(Fetched{});
    QueryTrace* tr = trace();
    int sp = span();
    // In timeline mode each prefetch gets its own task span under the
    // join span, opened at enqueue so queue wait and run time separate.
    int task_span = -1;
    int64_t enqueue_rel = 0;
    if (tr != nullptr && tr->has_timeline()) {
      task_span = tr->BeginSpanUnder(sp, "task[ppk-prefetch]", "");
      enqueue_rel = tr->NowRelMicros();
    }
    f.task_span = task_span;
    auto slot = f.slot;
    auto params = std::make_shared<std::vector<Cell>>(std::move(block.params));
    f.task = group_->Submit([this, slot, params, tr, sp, task_span,
                             enqueue_rel] {
      // Worker threads start with an empty scope stack; re-establish the
      // task span (or the join span) so the block's fetch event attaches
      // where it would have inline.
      std::optional<QueryTrace::Scope> scope;
      if (tr != nullptr) scope.emplace(tr, task_span >= 0 ? task_span : sp);
      int64_t run_begin = 0;
      if (task_span >= 0) {
        tr->SetSpanQueueMicros(task_span, tr->NowRelMicros() - enqueue_rel);
        run_begin = tr->NowRelMicros();
      }
      *slot = FetchBlock(std::move(*params));
      if (task_span >= 0) {
        tr->AddSpanMetrics(
            task_span,
            slot->ok() ? static_cast<int64_t>(slot->value().fetched.size())
                       : 0,
            tr->NowRelMicros() - run_begin);
        tr->EndSpan(task_span);
      }
    });
    inflight_.push_back(std::move(f));
  }

  /// Runs the block's parameterized fetch and builds the mid-tier index.
  /// Called inline (depth 0) or on a pool thread; touches only
  /// thread-safe services plus the immutable clause/matcher state.
  Result<Fetched> FetchBlock(std::vector<Cell> params) {
    Fetched result;
    // Prefetch tasks may still be queued (or running) when the query is
    // cancelled; skip the source round trip instead of paying for it.
    ALDSP_RETURN_NOT_OK(CheckCancelled(ctx()->exec));
    if (!params.empty()) {
      const auto& spec = *cl().ppk_fetch;
      relational::Database* db =
          ctx()->adaptors == nullptr
              ? nullptr
              : ctx()->adaptors->FindDatabase(spec.source);
      if (db == nullptr) {
        return Status::SourceError("no relational source '" + spec.source +
                                   "' for PP-k fetch");
      }
      relational::SelectPtr select = spec.select_template->Clone();
      std::vector<relational::SqlExprPtr> placeholders;
      for (size_t i = 0; i < params.size(); ++i) {
        placeholders.push_back(
            relational::SqlExpr::Param(static_cast<int>(i)));
      }
      relational::SqlExprPtr in_pred = relational::SqlExpr::InList(
          relational::SqlExpr::Column(spec.in_alias, spec.in_column),
          std::move(placeholders));
      select->where = select->where
                          ? relational::SqlExpr::Binary(
                                "AND", select->where, std::move(in_pred))
                          : std::move(in_pred);
      if (ctx()->health != nullptr &&
          !ctx()->health->AllowRequest(spec.source, HealthNowMicros())) {
        return Status::SourceError("circuit breaker open for source '" +
                                   spec.source + "'");
      }
      int64_t sim_mark = VirtualLatencyMark(db);
      auto t0 = std::chrono::steady_clock::now();
      Result<relational::ResultSet> executed =
          db->ExecuteSelect(*select, params);
      int64_t micros = MicrosSince(t0) + VirtualLatencyDelta(db, sim_mark);
      if (ctx()->health != nullptr) {
        if (executed.ok()) {
          ctx()->health->NoteSuccess(spec.source, micros, HealthNowMicros());
        } else {
          ctx()->health->NoteFailure(spec.source, HealthNowMicros());
        }
      }
      if (!executed.ok()) return executed.status();
      relational::ResultSet rs = std::move(executed).value();
      if (ctx()->metrics != nullptr) {
        ctx()->metrics->RecordSourceLatency(spec.source, micros);
      }
      if (trace() != nullptr) {
        int64_t roundtrip = -1;
        int64_t transfer = 0;
        SplitSourceMicros(db, static_cast<int64_t>(rs.rows.size()), micros,
                          &roundtrip, &transfer);
        trace()->AddEvent(QueryTrace::EventKind::kPPkFetch, spec.source,
                          relational::DebugString(*select),
                          static_cast<int64_t>(rs.rows.size()), micros, "",
                          roundtrip, transfer);
      }
      result.fetched = RowsToItems(rs, spec.row_name);
    }

    // Mid-tier join of the block against the fetched rows; PP-k can use
    // any join method for this step (paper §5.2) — here NL or INL.
    if (method() == JoinMethod::kPPkIndexNestedLoop) {
      for (size_t i = 0; i < result.fetched.size(); ++i) {
        bool has_empty;
        ALDSP_ASSIGN_OR_RETURN(std::string key,
                               RightKey(result.fetched[i], &has_empty));
        if (!has_empty) result.index[key].push_back(i);
      }
      result.index_built = true;
    }
    result.fetched_bytes =
        static_cast<int64_t>(xml::SequenceMemoryBytes(result.fetched));
    return result;
  }

  Result<bool> JoinBlock(const std::vector<Tuple>& lefts, const Fetched& fr) {
    NoteOperatorBytes(fr.fetched_bytes);
    const JoinIndex* idx = fr.index_built ? &fr.index : nullptr;
    for (const auto& left : lefts) {
      ALDSP_RETURN_NOT_OK(JoinOneLeft(left, fr.fetched, pending(), idx));
    }
    return true;
  }

  /// Cancels unstarted fetches and waits out running ones; after this no
  /// task references `this` or the upstream operators.
  void Drain() {
    if (group_.has_value()) group_->CancelAndWait();
    inflight_.clear();
  }

  int depth_ = 0;
  bool input_exhausted_ = false;
  std::optional<WorkerPool::TaskGroup> group_;
  std::deque<Inflight> inflight_;
};

// ----- Parallel operators (exchange-based) -------------------------------

/// Partitioned NL/INL join probe: the right side materializes once on
/// the driving thread (OpenShared), then chunks of left tuples probe it
/// concurrently on worker threads. Build side and index are immutable
/// during the probe, and the JoinMatcher is a const kernel, so chunks
/// share them without locks.
class ParallelJoinProbeOp final : public ExchangeOpBase {
 public:
  ParallelJoinProbeOp(std::unique_ptr<PhysicalOperator> input,
                      const Clause& cl, JoinMethod method, std::string label,
                      std::string span_detail, int dop, int chunk_size,
                      bool ordered)
      : ExchangeOpBase(std::move(input), std::move(label),
                       std::move(span_detail), dop, chunk_size, ordered),
        cl_(cl),
        method_(method) {}

  ~ParallelJoinProbeOp() override { DrainForDestruction(); }

 protected:
  Status OpenShared() override {
    matcher_.emplace(JoinMatcher{&cl_, method_, ctx(), eval(), base_env()});
    ALDSP_ASSIGN_OR_RETURN(Sequence items,
                           eval()->EvalExpr(*cl_.expr, base_env()));
    right_items_ = std::move(items);
    NoteOperatorBytes(
        static_cast<int64_t>(xml::SequenceMemoryBytes(right_items_)));
    if (method_ == JoinMethod::kIndexNestedLoop) {
      for (size_t i = 0; i < right_items_.size(); ++i) {
        bool has_empty;
        ALDSP_ASSIGN_OR_RETURN(std::string key,
                               matcher_->RightKey(right_items_[i], &has_empty));
        if (!has_empty) index_[key].push_back(i);
      }
      keys_kernel_ = !cl_.equi_keys.empty();
      for (const auto& [le, re] : cl_.equi_keys) {
        if (le == nullptr || !KernelSupports(*le)) keys_kernel_ = false;
      }
    }
    return Status::OK();
  }

  Status ProcessTuple(const Tuple& in, std::vector<Tuple>* out) override {
    const JoinIndex* idx =
        method_ == JoinMethod::kIndexNestedLoop ? &index_ : nullptr;
    return matcher_->JoinOneLeft(in, right_items_, out, idx);
  }

  // Columnar INL probe over one chunk-batch. Worker-thread safe: the
  // kernel and matcher are pure over state immutable after OpenShared,
  // and all scratch buffers are locals.
  Status ProcessBatch(const TupleBatch& in, std::vector<Tuple>* out) override {
    if (method_ != JoinMethod::kIndexNestedLoop || !keys_kernel_) {
      return ExchangeOpBase::ProcessBatch(in, out);
    }
    size_t n = in.size();
    size_t nk = cl_.equi_keys.size();
    std::vector<std::vector<Sequence>> key_cols(nk);
    for (size_t k = 0; k < nk; ++k) {
      ALDSP_RETURN_NOT_OK(
          KernelEvalRows(*cl_.equi_keys[k].first, in, &key_cols[k]));
    }
    std::string key;
    for (size_t i = 0; i < n; ++i) {
      key.clear();
      bool has_empty = false;
      for (size_t k = 0; k < nk; ++k) {
        Sequence atomized = xml::Atomize(key_cols[k][i]);
        if (atomized.empty()) has_empty = true;
        key += EncodeAtomicSequence(atomized);
        key += '\x1e';
      }
      const std::vector<size_t>* rows = nullptr;
      if (!has_empty) {
        auto it = index_.find(key);
        if (it != index_.end()) rows = &it->second;
      }
      if (rows == nullptr && !cl_.left_outer) continue;
      ALDSP_RETURN_NOT_OK(matcher_->JoinMatchedItems(in.MaterializeRow(i),
                                                     right_items_, rows, out));
    }
    return Status::OK();
  }

 private:
  const Clause& cl_;
  JoinMethod method_;
  bool keys_kernel_ = false;
  std::optional<JoinMatcher> matcher_;
  Sequence right_items_;
  JoinIndex index_;
};

/// Partitioned for-scan: evaluates the binding expression for chunks of
/// input tuples concurrently. Positional variables stay per-tuple
/// (1-based within each tuple's item sequence), so the output is
/// identical to the serial ForScanOp in ordered mode.
class ParallelForScanOp final : public ExchangeOpBase {
 public:
  ParallelForScanOp(std::unique_ptr<PhysicalOperator> input, const Clause& cl,
                    std::string label, std::string span_detail, int dop,
                    int chunk_size, bool ordered)
      : ExchangeOpBase(std::move(input), std::move(label),
                       std::move(span_detail), dop, chunk_size, ordered),
        cl_(cl) {}

  ~ParallelForScanOp() override { DrainForDestruction(); }

 protected:
  Status ProcessTuple(const Tuple& in, std::vector<Tuple>* out) override {
    ALDSP_ASSIGN_OR_RETURN(Sequence seq, eval()->EvalExpr(*cl_.expr, in));
    for (size_t i = 0; i < seq.size(); ++i) {
      Tuple t = in.Bind(cl_.var, Sequence{seq[i]});
      if (!cl_.positional_var.empty()) {
        t = t.Bind(cl_.positional_var,
                   Sequence{Item(AtomicValue::Integer(
                       static_cast<int64_t>(i + 1)))});
      }
      out->push_back(std::move(t));
    }
    return Status::OK();
  }

 private:
  const Clause& cl_;
};

/// Parallel fan-out of a run of independent let clauses (paper §5.4
/// applied by the planner): per input tuple, every let's binding
/// expression dispatches as its own worker-pool task — they share the
/// same input environment (the optimizer verified mutual independence),
/// so k source calls overlap instead of paying their latencies in
/// sequence. All tasks complete before NextImpl returns, so no task can
/// outlive the operator.
class ParallelLetOp final : public PhysicalOperator {
 public:
  ParallelLetOp(std::unique_ptr<PhysicalOperator> input,
                std::vector<const Clause*> lets, std::string label,
                std::string span_detail)
      : PhysicalOperator(std::move(input), std::move(label),
                         std::move(span_detail)),
        lets_(std::move(lets)) {}

 protected:
  Result<bool> NextImpl(Tuple* out) override {
    Tuple t;
    ALDSP_ASSIGN_OR_RETURN(bool more, input()->Next(&t));
    if (!more) return false;
    if (ctx()->stats != nullptr) ctx()->stats->parallel_let_fanouts += 1;
    WorkerPool& pool = WorkerPool::For(ctx()->pool);
    QueryTrace* tr = trace();
    int sp = span();
    size_t n = lets_.size();
    std::vector<std::shared_ptr<Result<Sequence>>> slots(n);
    std::vector<WorkerPool::Task> tasks(n);
    std::vector<int> task_spans(n, -1);
    for (size_t i = 0; i < n; ++i) {
      slots[i] = std::make_shared<Result<Sequence>>(Sequence{});
      const Expr* body = lets_[i]->expr.get();
      int task_span = -1;
      int64_t enqueue_rel = 0;
      if (tr != nullptr && tr->has_timeline()) {
        task_span = tr->BeginSpanUnder(sp, "task[let]", "$" + lets_[i]->var);
        enqueue_rel = tr->NowRelMicros();
      }
      task_spans[i] = task_span;
      auto slot = slots[i];
      ExprEvaluator* ev = eval();
      tasks[i] = pool.Submit([ev, body, t, slot, tr, sp, task_span,
                              enqueue_rel] {
        std::optional<QueryTrace::Scope> scope;
        if (tr != nullptr) scope.emplace(tr, task_span >= 0 ? task_span : sp);
        int64_t run_begin = 0;
        if (task_span >= 0) {
          tr->SetSpanQueueMicros(task_span, tr->NowRelMicros() - enqueue_rel);
          run_begin = tr->NowRelMicros();
        }
        *slot = ev->EvalExpr(*body, t);
        if (task_span >= 0) {
          tr->AddSpanMetrics(
              task_span,
              slot->ok() ? static_cast<int64_t>(slot->value().size()) : 0,
              tr->NowRelMicros() - run_begin);
          tr->EndSpan(task_span);
        }
      });
    }
    // Every task must finish before we return (error or not): they
    // borrow the evaluator and this tuple's bindings.
    for (size_t i = 0; i < n; ++i) {
      bool timed = tr != nullptr && tr->has_timeline() && task_spans[i] >= 0;
      int64_t wait_begin = timed ? tr->NowRelMicros() : 0;
      tasks[i].Wait();
      if (timed) {
        tr->AddWaitEvent(task_spans[i], tr->NowRelMicros() - wait_begin,
                         "let-fanout");
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!slots[i]->ok()) return slots[i]->status();
      t = t.Bind(lets_[i]->var, std::move(*slots[i]).value());
    }
    *out = std::move(t);
    return true;
  }

 private:
  std::vector<const Clause*> lets_;
};

// ----- Grouping (paper §4.2) ---------------------------------------------

/// Streaming group-by when the input is pre-clustered on the grouping
/// keys (a group ends exactly when the key changes — constant memory
/// beyond the current group), with a materialize-and-cluster fallback
/// otherwise. Batch-native on the input side: each pulled batch's key
/// encodings/values and member values precompute in tight per-column
/// loops (group keys through the expression kernel when their shape
/// allows), and the group loop then consumes plain arrays.
class StreamGroupByOp final : public PhysicalOperator {
 public:
  StreamGroupByOp(std::unique_ptr<PhysicalOperator> input, const Clause& cl,
                  std::string label)
      : PhysicalOperator(std::move(input), std::move(label)), cl_(cl) {
    explain().batch = true;
  }

 protected:
  Status OpenImpl() override {
    keys_kernel_ = !cl_.group_keys.empty();
    for (const auto& gk : cl_.group_keys) {
      if (gk.expr == nullptr || !KernelSupports(*gk.expr)) {
        keys_kernel_ = false;
      }
    }
    return Status::OK();
  }

  Result<bool> NextBatchImpl(TupleBatch* out) override {
    int target = batch_target();
    Tuple t;
    while (static_cast<int>(out->size()) < target) {
      ALDSP_ASSIGN_OR_RETURN(bool more, NextOne(&t));
      if (!more) return !out->empty();
      out->PushRow(std::move(t));
    }
    return true;
  }

 private:
  Result<bool> NextOne(Tuple* out) {
    if (cl_.pre_clustered) return NextStreaming(out);
    if (!sorted_ready_) {
      ALDSP_RETURN_NOT_OK(MaterializeAndSort());
      sorted_ready_ = true;
    }
    return NextFromSorted(out);
  }

  struct GroupAccumulator {
    std::string key_enc;
    std::vector<Sequence> key_values;     // one per group key
    std::vector<Sequence> member_values;  // one per group var (concatenated)
    size_t bytes = 0;
    bool active = false;
  };

  Result<std::pair<std::string, std::vector<Sequence>>> KeyOf(const Tuple& t) {
    std::string enc;
    std::vector<Sequence> values;
    for (const auto& gk : cl_.group_keys) {
      ALDSP_ASSIGN_OR_RETURN(Sequence v, eval()->EvalExpr(*gk.expr, t));
      Sequence data = xml::Atomize(v);
      enc += EncodeAtomicSequence(data);
      enc += '\x1e';
      values.push_back(std::move(data));
    }
    return std::make_pair(std::move(enc), std::move(values));
  }

  /// Pulls the next non-empty input batch and precomputes, per row, the
  /// key encoding + key values (kernel per column when possible, else
  /// the interpreter over materialized rows) and the member values
  /// (column-aware lookups — no tuple materialization). Returns false at
  /// end of stream.
  Result<bool> FetchInputBatch() {
    while (true) {
      if (input_done_) return false;
      ALDSP_ASSIGN_OR_RETURN(bool more, input()->NextBatch(&in_));
      if (!more) {
        input_done_ = true;
        return false;
      }
      if (!in_.empty()) break;
    }
    size_t n = in_.size();
    size_t nkeys = cl_.group_keys.size();
    size_t nvars = cl_.group_vars.size();
    in_pos_ = 0;
    in_enc_.assign(n, std::string());
    in_keys_.assign(n, std::vector<Sequence>());
    in_members_.assign(n, std::vector<Sequence>());
    if (keys_kernel_) {
      key_cols_.resize(nkeys);
      for (size_t k = 0; k < nkeys; ++k) {
        ALDSP_RETURN_NOT_OK(
            KernelEvalRows(*cl_.group_keys[k].expr, in_, &key_cols_[k]));
      }
      for (size_t i = 0; i < n; ++i) {
        in_keys_[i].reserve(nkeys);
        for (size_t k = 0; k < nkeys; ++k) {
          Sequence data = xml::Atomize(key_cols_[k][i]);
          in_enc_[i] += EncodeAtomicSequence(data);
          in_enc_[i] += '\x1e';
          in_keys_[i].push_back(std::move(data));
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        ALDSP_ASSIGN_OR_RETURN(auto key, KeyOf(in_.MaterializeRow(i)));
        in_enc_[i] = std::move(key.first);
        in_keys_[i] = std::move(key.second);
      }
    }
    Sequence scratch;
    for (size_t i = 0; i < n; ++i) {
      in_members_[i].reserve(nvars);
      for (const auto& gv : cl_.group_vars) {
        const Sequence* v = in_.LookupRow(i, gv.in_var, &scratch);
        if (v == nullptr) {
          return Status::RuntimeError("unbound grouping variable $" +
                                      gv.in_var);
        }
        in_members_[i].push_back(*v);
      }
    }
    return true;
  }

  Tuple EmitGroup(const GroupAccumulator& g) {
    Tuple t = base_env();
    for (size_t i = 0; i < cl_.group_vars.size(); ++i) {
      t = t.Bind(cl_.group_vars[i].out_var, g.member_values[i]);
    }
    for (size_t i = 0; i < cl_.group_keys.size(); ++i) {
      if (!cl_.group_keys[i].as_var.empty()) {
        t = t.Bind(cl_.group_keys[i].as_var, g.key_values[i]);
      }
    }
    return t;
  }

  Result<bool> NextStreaming(Tuple* out) {
    while (true) {
      if (in_pos_ >= in_.size()) {
        ALDSP_ASSIGN_OR_RETURN(bool more, FetchInputBatch());
        if (!more) {
          if (current_.active) {
            *out = EmitGroup(current_);
            current_ = GroupAccumulator{};
            return true;
          }
          return false;
        }
      }
      size_t i = in_pos_++;
      if (!current_.active) {
        StartGroup(std::move(in_enc_[i]), std::move(in_keys_[i]));
        Accumulate(std::move(in_members_[i]));
        if (ctx()->stats != nullptr) ctx()->stats->streaming_groups += 1;
        continue;
      }
      if (in_enc_[i] == current_.key_enc) {
        Accumulate(std::move(in_members_[i]));
        continue;
      }
      // Key changed: emit the finished group and start the next one.
      Tuple finished = EmitGroup(current_);
      StartGroup(std::move(in_enc_[i]), std::move(in_keys_[i]));
      Accumulate(std::move(in_members_[i]));
      *out = std::move(finished);
      return true;
    }
  }

  void StartGroup(std::string enc, std::vector<Sequence> key_values) {
    current_ = GroupAccumulator{};
    current_.active = true;
    current_.key_enc = std::move(enc);
    current_.key_values = std::move(key_values);
    current_.member_values.resize(cl_.group_vars.size());
  }

  void Accumulate(std::vector<Sequence> members) {
    for (size_t i = 0; i < members.size(); ++i) {
      current_.bytes += xml::SequenceMemoryBytes(members[i]);
      xml::AppendSequence(current_.member_values[i], members[i]);
    }
    NoteOperatorBytes(static_cast<int64_t>(current_.bytes));
  }

  // Materializing fallback (paper §4.2: unclustered input requires full
  // materialization before grouping). Rows land in a TupleBuffer in the
  // optimizer-chosen representation; clustering happens via a key index,
  // and groups emit in first-appearance order — the same deterministic
  // order the relational engine's GROUP BY produces, so pushed-down and
  // mid-tier plans agree.
  Status MaterializeAndSort() {
    if (ctx()->stats != nullptr) ctx()->stats->group_sort_fallbacks += 1;
    size_t nkeys = cl_.group_keys.size();
    size_t nvars = cl_.group_vars.size();
    buffer_ = std::make_unique<TupleBuffer>(ctx()->materialize_repr,
                                            nkeys + nvars);
    std::unordered_map<std::string, size_t> index;
    while (true) {
      ALDSP_ASSIGN_OR_RETURN(bool more, FetchInputBatch());
      if (!more) break;
      size_t n = in_.size();
      for (size_t i = 0; i < n; ++i) {
        std::vector<Sequence> fields = std::move(in_keys_[i]);
        for (auto& m : in_members_[i]) fields.push_back(std::move(m));
        size_t row = buffer_->size();
        buffer_->Append(fields);
        auto it = index.find(in_enc_[i]);
        if (it == index.end()) {
          index.emplace(std::move(in_enc_[i]), group_rows_.size());
          group_rows_.push_back({row});
        } else {
          group_rows_[it->second].push_back(row);
        }
      }
      in_pos_ = n;
    }
    NoteOperatorBytes(static_cast<int64_t>(buffer_->MemoryBytes()));
    return Status::OK();
  }

  Result<bool> NextFromSorted(Tuple* out) {
    size_t nkeys = cl_.group_keys.size();
    size_t nvars = cl_.group_vars.size();
    if (group_pos_ >= group_rows_.size()) return false;
    const std::vector<size_t>& rows = group_rows_[group_pos_++];
    GroupAccumulator g;
    g.active = true;
    for (size_t k = 0; k < nkeys; ++k) {
      ALDSP_ASSIGN_OR_RETURN(Sequence v, buffer_->GetField(rows.front(), k));
      g.key_values.push_back(std::move(v));
    }
    g.member_values.resize(nvars);
    for (size_t row : rows) {
      for (size_t m = 0; m < nvars; ++m) {
        ALDSP_ASSIGN_OR_RETURN(Sequence v, buffer_->GetField(row, nkeys + m));
        xml::AppendSequence(g.member_values[m], v);
      }
    }
    *out = EmitGroup(g);
    return true;
  }

  const Clause& cl_;

  // Batched input state: the current batch plus its precomputed per-row
  // key encodings/values and member values.
  bool keys_kernel_ = false;
  TupleBatch in_;
  size_t in_pos_ = 0;
  bool input_done_ = false;
  std::vector<std::string> in_enc_;
  std::vector<std::vector<Sequence>> in_keys_;
  std::vector<std::vector<Sequence>> in_members_;
  std::vector<std::vector<Sequence>> key_cols_;

  // Streaming state.
  GroupAccumulator current_;

  // Materializing-fallback state.
  bool sorted_ready_ = false;
  std::unique_ptr<TupleBuffer> buffer_;
  std::vector<std::vector<size_t>> group_rows_;  // first-appearance order
  size_t group_pos_ = 0;
};

// ----- Order-by ----------------------------------------------------------

/// Order-by: materializes the input with its atomized sort keys, sorts
/// stably, then emits whole batches of sorted rows. Batch-native: input
/// arrives a batch at a time, and key expressions whose shape the kernel
/// covers evaluate in per-column loops instead of per-row interpreter
/// calls.
class OrderByOp final : public PhysicalOperator {
 public:
  OrderByOp(std::unique_ptr<PhysicalOperator> input, const Clause& cl,
            std::string label)
      : PhysicalOperator(std::move(input), std::move(label)), cl_(cl) {
    explain().batch = true;
  }

 protected:
  Status OpenImpl() override {
    keys_kernel_ = !cl_.order_keys.empty();
    for (const auto& ok : cl_.order_keys) {
      if (ok.expr == nullptr || !KernelSupports(*ok.expr)) {
        keys_kernel_ = false;
      }
    }
    return Status::OK();
  }

  Result<bool> NextBatchImpl(TupleBatch* out) override {
    if (!ready_) {
      ALDSP_RETURN_NOT_OK(Materialize());
      ready_ = true;
    }
    int target = batch_target();
    while (pos_ < rows_.size() && static_cast<int>(out->size()) < target) {
      out->PushRow(std::move(rows_[pos_].tuple));
      ++pos_;
    }
    return !out->empty();
  }

 private:
  struct SortRow {
    Tuple tuple;
    std::vector<Sequence> keys;  // atomized
  };

  Status Materialize() {
    size_t bytes = 0;
    size_t nk = cl_.order_keys.size();
    TupleBatch in;
    while (true) {
      ALDSP_ASSIGN_OR_RETURN(bool more, input()->NextBatch(&in));
      if (!more) break;
      size_t n = in.size();
      if (n == 0) continue;
      if (keys_kernel_) {
        key_cols_.resize(nk);
        for (size_t k = 0; k < nk; ++k) {
          ALDSP_RETURN_NOT_OK(
              KernelEvalRows(*cl_.order_keys[k].expr, in, &key_cols_[k]));
        }
      }
      for (size_t i = 0; i < n; ++i) {
        SortRow row;
        row.tuple = in.MaterializeRow(i);
        row.keys.reserve(nk);
        for (size_t k = 0; k < nk; ++k) {
          Sequence data;
          if (keys_kernel_) {
            data = xml::Atomize(key_cols_[k][i]);
          } else {
            ALDSP_ASSIGN_OR_RETURN(
                Sequence v, eval()->EvalExpr(*cl_.order_keys[k].expr, row.tuple));
            data = xml::Atomize(v);
          }
          bytes += xml::SequenceMemoryBytes(data);
          row.keys.push_back(std::move(data));
        }
        rows_.push_back(std::move(row));
      }
    }
    NoteOperatorBytes(static_cast<int64_t>(bytes));
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const SortRow& a, const SortRow& b) {
                       for (size_t i = 0; i < cl_.order_keys.size(); ++i) {
                         int c = OrderCompareKeys(a.keys[i], b.keys[i]);
                         if (c != 0) {
                           return cl_.order_keys[i].descending ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    return Status::OK();
  }

  const Clause& cl_;
  bool ready_ = false;
  bool keys_kernel_ = false;
  std::vector<SortRow> rows_;
  std::vector<std::vector<Sequence>> key_cols_;
  size_t pos_ = 0;
};

// ----- Return ------------------------------------------------------------

/// Evaluates the return expression per tuple and binds the resulting
/// sequence to kResultBinding; the tree driver delivers those sequences.
/// Batch-native: the result lands as a column on the input batch (the
/// drivers read it directly — the atomic layout is their fast path), via
/// the expression kernel when the return shape supports it.
class ReturnOp final : public PhysicalOperator {
 public:
  ReturnOp(std::unique_ptr<PhysicalOperator> input, const Expr* ret)
      : PhysicalOperator(std::move(input), "return"), ret_(ret) {
    explain().batch = true;
  }

 protected:
  Status OpenImpl() override {
    kernel_ = ret_ != nullptr && KernelSupports(*ret_);
    in_.Clear();
    in_pos_ = 0;
    input_done_ = false;
    kernel_vals_.clear();
    return Status::OK();
  }

  // Two production modes:
  //
  // Uncapped pulls (the materializing driver) take the eager columnar
  // path: the input batch lands directly in `out`, the result expression
  // is evaluated for the whole batch (one kernel dispatch, or one
  // materialized row per interpreter call), and the result column is
  // appended — no per-row tuple construction for kernel expressions.
  //
  // Capped pulls (the streaming driver asks for one row at a time)
  // buffer whole upstream batches — the pipeline below stays vectorized —
  // but evaluate the interpreted return expression only for rows actually
  // emitted this call, so each delivered item pays for exactly one result
  // expression (external calls included), preserving the incremental-
  // delivery contract. Kernel-evaluable expressions are pure, so those
  // are computed eagerly per buffered batch either way.
  Result<bool> NextBatchImpl(TupleBatch* out) override {
    size_t want = batch_target();
    if (in_pos_ >= in_.size() && !input_done_ &&
        batch_target() == batch_capacity()) {
      ALDSP_ASSIGN_OR_RETURN(bool more,
                             input()->NextBatch(out, batch_target()));
      if (!more) {
        input_done_ = true;
        return false;
      }
      out->Compact();
      size_t n = out->size();
      if (ret_ == nullptr) {
        vals_.assign(n, Sequence{});
      } else if (kernel_) {
        ALDSP_RETURN_NOT_OK(KernelEvalRows(*ret_, *out, &vals_));
      } else {
        vals_.resize(n);
        for (size_t i = 0; i < n; ++i) {
          Tuple t = out->MaterializeRow(i);
          ALDSP_ASSIGN_OR_RETURN(Sequence v, eval()->EvalExpr(*ret_, t));
          vals_[i] = std::move(v);
        }
      }
      BatchColumn* col = out->AddColumn(kResultBinding);
      for (size_t i = 0; i < n; ++i) col->AppendSeq(std::move(vals_[i]));
      return true;
    }
    vals_.clear();
    while (out->size() < want) {
      if (in_pos_ >= in_.size()) {
        if (input_done_) break;
        in_.Clear();
        in_pos_ = 0;
        ALDSP_ASSIGN_OR_RETURN(bool more, input()->NextBatch(&in_));
        if (!more) {
          input_done_ = true;
          break;
        }
        in_.Compact();
        if (kernel_) {
          ALDSP_RETURN_NOT_OK(KernelEvalRows(*ret_, in_, &kernel_vals_));
        }
        continue;
      }
      Tuple t = in_.MaterializeRow(in_pos_);
      Sequence v;
      if (ret_ == nullptr) {
        v = Sequence{};
      } else if (kernel_) {
        v = std::move(kernel_vals_[in_pos_]);
      } else {
        ALDSP_ASSIGN_OR_RETURN(v, eval()->EvalExpr(*ret_, t));
      }
      out->PushRow(std::move(t));
      vals_.push_back(std::move(v));
      ++in_pos_;
    }
    BatchColumn* col = out->AddColumn(kResultBinding);
    for (Sequence& v : vals_) col->AppendSeq(std::move(v));
    return !(out->empty() && input_done_);
  }

 private:
  const Expr* ret_;
  bool kernel_ = false;
  TupleBatch in_;
  size_t in_pos_ = 0;
  bool input_done_ = false;
  std::vector<Sequence> kernel_vals_;
  std::vector<Sequence> vals_;
};

JoinMethod ResolveJoinMethod(const Clause& cl) {
  JoinMethod m = cl.method;
  if (m == JoinMethod::kAuto) {
    m = cl.equi_keys.empty() ? JoinMethod::kNestedLoop
                             : JoinMethod::kIndexNestedLoop;
  }
  if ((m == JoinMethod::kPPkNestedLoop ||
       m == JoinMethod::kPPkIndexNestedLoop) &&
      (cl.ppk_fetch == nullptr || cl.equi_keys.empty())) {
    // PP-k requires a parameterized fetch plan; degrade gracefully.
    m = cl.equi_keys.empty() ? JoinMethod::kNestedLoop
                             : JoinMethod::kIndexNestedLoop;
  }
  return m;
}

}  // namespace

// ----- Lowering ----------------------------------------------------------

std::unique_ptr<PhysicalOperator> BuildPlan(const Expr& flwor) {
  return BuildPlan(flwor, BuildOptions{});
}

std::unique_ptr<PhysicalOperator> BuildPlan(const Expr& flwor,
                                            const BuildOptions& opts) {
  std::unique_ptr<PhysicalOperator> op = std::make_unique<SingletonSourceOp>();
  const bool parallel = opts.max_dop > 1;
  // Running estimate of the tuple stream flowing into the next clause,
  // from the optimizer's observed-cost annotations. The singleton source
  // emits exactly one tuple; an unknown estimate (-1) stays unknown and
  // never triggers an exchange.
  int64_t upstream_rows = 1;
  auto combine = [](int64_t a, int64_t b) -> int64_t {
    return (a >= 0 && b >= 0) ? a * b : -1;
  };
  auto crosses = [&](int64_t est) {
    return parallel && est >= 0 && est >= opts.parallel_row_threshold;
  };
  std::string dop_detail = "dop=" + std::to_string(opts.max_dop);
  for (size_t ci = 0; ci < flwor.clauses.size(); ++ci) {
    const Clause& cl = flwor.clauses[ci];
    switch (cl.kind) {
      case Clause::Kind::kFor: {
        std::string label = "for $" + cl.var;
        bool sql_region =
            cl.expr != nullptr && cl.expr->kind == ExprKind::kSqlQuery;
        std::string detail;
        if (!cl.positional_var.empty()) detail = "at $" + cl.positional_var;
        if (sql_region) detail += detail.empty() ? "sql-region" : " sql-region";
        // Parallelize across input tuples when the upstream stream is
        // known to be large; the leading for's input is the singleton,
        // so it always stays serial. SQL regions stay serial too (one
        // pushed statement — nothing to partition).
        if (!sql_region && crosses(upstream_rows)) {
          auto scan = std::make_unique<ParallelForScanOp>(
              std::move(op), cl, std::move(label), dop_detail, opts.max_dop,
              opts.exchange_chunk_size, opts.ordered);
          detail += detail.empty() ? dop_detail : " " + dop_detail;
          scan->explain().detail = std::move(detail);
          scan->explain().expr = cl.expr.get();
          op = std::move(scan);
        } else {
          std::unique_ptr<ForScanOp> scan;
          if (sql_region) {
            scan = std::make_unique<SqlRegionScanOp>(std::move(op), cl,
                                                     std::move(label));
          } else {
            scan = std::make_unique<ForScanOp>(std::move(op), cl,
                                               std::move(label));
          }
          scan->explain().detail = std::move(detail);
          scan->explain().expr = cl.expr.get();
          op = std::move(scan);
        }
        upstream_rows = combine(upstream_rows, cl.estimated_rows);
        break;
      }
      case Clause::Kind::kLet: {
        // A run of consecutive lets the optimizer marked as one parallel
        // group fans out as a single operator.
        if (parallel && cl.parallel_group >= 0) {
          std::vector<const Clause*> run;
          size_t cj = ci;
          while (cj < flwor.clauses.size() &&
                 flwor.clauses[cj].kind == Clause::Kind::kLet &&
                 flwor.clauses[cj].parallel_group == cl.parallel_group) {
            run.push_back(&flwor.clauses[cj]);
            ++cj;
          }
          if (run.size() >= 2) {
            std::string vars;
            for (const Clause* lc : run) {
              vars += vars.empty() ? "$" + lc->var : " $" + lc->var;
            }
            auto fan = std::make_unique<ParallelLetOp>(
                std::move(op), std::move(run), "let[parallel]",
                "n=" + std::to_string(cj - ci));
            fan->explain().detail = vars;
            fan->explain().expr = cl.expr.get();
            op = std::move(fan);
            ci = cj - 1;
            break;
          }
        }
        auto let = std::make_unique<LetBindOp>(std::move(op), cl,
                                               "let $" + cl.var);
        let->explain().expr = cl.expr.get();
        op = std::move(let);
        break;
      }
      case Clause::Kind::kWhere: {
        auto where = std::make_unique<FilterOp>(std::move(op), cl, "where");
        where->explain().expr = cl.expr.get();
        op = std::move(where);
        break;
      }
      case Clause::Kind::kJoin: {
        JoinMethod m = ResolveJoinMethod(cl);
        bool ppk = m == JoinMethod::kPPkNestedLoop ||
                   m == JoinMethod::kPPkIndexNestedLoop;
        std::string label = std::string("join[") + xquery::JoinMethodName(m) +
                            "] $" + cl.var;
        // The span detail is a compatibility surface (profiles assert
        // exactly "k=20"); EXPLAIN-only qualifiers go in explain().detail.
        std::string span_detail;
        if (ppk) {
          span_detail = "k=" + std::to_string(std::max(1, cl.ppk_block_size));
        }
        if (cl.left_outer) {
          span_detail += span_detail.empty() ? "left-outer" : " left-outer";
        }
        // NL/INL probes partition across worker threads when the probe
        // stream is known to be large; PP-k parallelizes internally via
        // its prefetch pipeline instead.
        bool partitioned = !ppk && crosses(upstream_rows);
        std::unique_ptr<PhysicalOperator> join_op;
        ExplainNode* explain = nullptr;
        if (partitioned) {
          std::string par_detail =
              span_detail.empty() ? dop_detail : dop_detail + " " + span_detail;
          auto join = std::make_unique<ParallelJoinProbeOp>(
              std::move(op), cl, m, std::move(label), std::move(par_detail),
              opts.max_dop, opts.exchange_chunk_size, opts.ordered);
          join->explain().detail = dop_detail;
          explain = &join->explain();
          join_op = std::move(join);
        } else {
          std::unique_ptr<JoinOpBase> join;
          switch (m) {
            case JoinMethod::kNestedLoop:
              join = std::make_unique<NestedLoopJoinOp>(
                  std::move(op), cl, m, std::move(label),
                  std::move(span_detail));
              break;
            case JoinMethod::kIndexNestedLoop:
              join = std::make_unique<IndexNLJoinOp>(
                  std::move(op), cl, m, std::move(label),
                  std::move(span_detail));
              break;
            default:
              join = std::make_unique<PPkJoinOp>(
                  std::move(op), cl, m, std::move(label),
                  std::move(span_detail));
              break;
          }
          explain = &join->explain();
          join_op = std::move(join);
        }
        if (ppk) {
          explain->detail +=
              explain->detail.empty() ? "prefetch" : " prefetch";
          explain->ppk = cl.ppk_fetch.get();
        }
        explain->expr = cl.expr.get();
        explain->condition = cl.condition.get();
        op = std::move(join_op);
        // An equi join on a key/foreign-key pair emits about one tuple
        // per right-side row, so a known annotation propagates; anything
        // unknown stays unknown.
        upstream_rows = upstream_rows >= 0 ? cl.estimated_rows : -1;
        break;
      }
      case Clause::Kind::kGroupBy: {
        op = std::make_unique<StreamGroupByOp>(
            std::move(op), cl,
            cl.pre_clustered ? "group-by[streaming]" : "group-by[sort]");
        upstream_rows = -1;
        break;
      }
      case Clause::Kind::kOrderBy: {
        op = std::make_unique<OrderByOp>(std::move(op), cl, "order-by");
        break;
      }
    }
  }
  const Expr* ret = flwor.children.empty() ? nullptr : flwor.children[0].get();
  auto root = std::make_unique<ReturnOp>(std::move(op), ret);
  root->explain().expr = ret;
  return root;
}

}  // namespace aldsp::runtime::physical
