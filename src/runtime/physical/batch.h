#ifndef ALDSP_RUNTIME_PHYSICAL_BATCH_H_
#define ALDSP_RUNTIME_PHYSICAL_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "runtime/tuple.h"
#include "xml/item.h"
#include "xquery/ast.h"

namespace aldsp::runtime::physical {

/// One variable bound across every row of a TupleBatch. Columns start in
/// columnar atomic layout (unboxed AtomicValues, one per row) and demote
/// themselves to the row-oriented Sequence fallback the first time a
/// value is a node, an empty sequence, or a multi-item sequence — XML
/// values don't flatten into fixed-width cells, so the fallback keeps
/// full XQuery semantics while typical relational-scan columns (ints,
/// strings from SQL regions, positional counters) stay columnar.
struct BatchColumn {
  enum class Layout { kUnset, kAtomic, kSeq };

  std::string name;
  Layout layout = Layout::kUnset;
  std::vector<xml::AtomicValue> atoms;  // columnar layout, one per row
  std::vector<xml::Sequence> seqs;      // fallback layout, one per row

  size_t rows() const {
    return layout == Layout::kAtomic ? atoms.size() : seqs.size();
  }
  bool atomic() const { return layout == Layout::kAtomic; }

  /// Appends one row holding a single item.
  void AppendItem(const xml::Item& item);
  /// Appends one row holding a single atomic value (stays columnar).
  void AppendAtomic(xml::AtomicValue v);
  /// Appends one row holding an arbitrary sequence.
  void AppendSeq(xml::Sequence value);
  /// The row's value as a sequence (physical row index).
  xml::Sequence Value(size_t row) const {
    if (layout == Layout::kAtomic) return xml::Sequence{xml::Item(atoms[row])};
    return seqs[row];
  }

 private:
  /// Converts accumulated atoms to the Sequence fallback.
  void Demote();
};

/// A batch of binding tuples flowing between physical operators
/// (target 1-4K rows): per-row base environments (cheap shared_ptr heads
/// of the immutable Tuple chain) plus zero or more columns layered on
/// top, and an optional selection vector so filters mark dropped rows
/// instead of copying survivors.
///
/// Two equivalent views coexist:
///  - columnar: operators that understand the layout read BatchColumn
///    storage directly (scan fills, filter kernels, the result column);
///  - row: MaterializeRow(i) binds the columns over the row's base and
///    yields the exact Tuple the row-at-a-time engine would have built,
///    which is what the compatibility shim and unconverted operators use.
///
/// Invariants: every column holds exactly `physical_size()` rows; the
/// selection vector lists physical indices in ascending order; columns
/// appended later shadow earlier columns and base bindings of the same
/// name (FindColumn searches newest-first). Appending a column requires
/// no selection (callers Compact() first) so column rows stay aligned
/// with physical rows.
class TupleBatch {
 public:
  TupleBatch() = default;

  /// Drops rows, columns and selection; keeps capacity for reuse.
  void Clear();

  // ----- building --------------------------------------------------------

  /// Appends a row whose environment is `base` (no column values yet —
  /// every column must receive a value for the row before reads).
  /// Returns the physical row index.
  size_t AddRow(Tuple base);

  /// Row-mode convenience: appends a fully-bound tuple as a column-less
  /// row (joins and shims produce these).
  void PushRow(Tuple full) { AddRow(std::move(full)); }

  /// Appends a column; returns a pointer stable until the next AddColumn
  /// or Clear is not guaranteed — use immediately while filling.
  BatchColumn* AddColumn(std::string name);

  // ----- selection -------------------------------------------------------

  bool has_selection() const { return has_sel_; }
  /// Restricts the visible rows to `sel` (ascending physical indices).
  void SetSelection(std::vector<uint32_t> sel);
  /// Rewrites storage to the selected rows and drops the selection.
  /// Cheap relative to re-deriving the dropped rows: survivors move as
  /// shared_ptr handles.
  void Compact();

  // ----- reading ---------------------------------------------------------

  /// Visible (selected) row count. Zero is legal mid-stream: a filter
  /// may select nothing from a batch and still not be at end-of-stream.
  size_t size() const { return has_sel_ ? sel_.size() : num_rows_; }
  bool empty() const { return size() == 0; }
  /// Rows ignoring the selection vector.
  size_t physical_size() const { return num_rows_; }
  /// Physical index of visible row `i`.
  size_t PhysicalIndex(size_t i) const {
    return has_sel_ ? static_cast<size_t>(sel_[i]) : i;
  }

  /// The row's base environment before columns (visible index).
  const Tuple& RowBase(size_t i) const { return bases_[PhysicalIndex(i)]; }

  /// Binds the row's column values over its base, oldest column first,
  /// producing the tuple the row engine would have flowed (visible index).
  Tuple MaterializeRow(size_t i) const;

  /// Innermost (newest) column named `name`, or nullptr.
  const BatchColumn* FindColumn(const std::string& name) const;

  /// The row's value for `name`: innermost column if any, else the row
  /// base binding, else nullptr-equivalent empty optional semantics via
  /// `found`. Visible index.
  const xml::Sequence* LookupRow(size_t i, const std::string& name,
                                 xml::Sequence* scratch) const;

  size_t column_count() const { return cols_.size(); }
  const BatchColumn& column(size_t c) const { return cols_[c]; }
  /// Mutable column access for fillers that add several columns before
  /// writing (AddColumn may reallocate earlier pointers).
  BatchColumn* column_ptr(size_t c) { return &cols_[c]; }

 private:
  std::vector<Tuple> bases_;  // one per physical row
  size_t num_rows_ = 0;
  std::vector<BatchColumn> cols_;
  std::vector<uint32_t> sel_;
  bool has_sel_ = false;
};

/// Batch-level expression kernel: evaluates the restricted expression
/// shapes that dominate scan/filter/projection work — variable
/// references, child/attribute path steps over them, and literals —
/// for every visible row of a batch without materializing row tuples.
/// Anything else reports unsupported and the caller falls back to the
/// interpreter over materialized rows, so kernel coverage is a pure
/// optimization with interpreter semantics (unbound-variable and
/// path-over-atomic errors match the interpreter's messages exactly).
bool KernelSupports(const xquery::Expr& e);

/// Evaluates `e` per visible row into `out` (resized to batch.size()).
/// Variables resolve against the batch's columns first (newest wins, the
/// shadowing order MaterializeRow would produce), then each row's base
/// environment chain.
Status KernelEvalRows(const xquery::Expr& e, const TupleBatch& batch,
                      std::vector<xml::Sequence>* out);

}  // namespace aldsp::runtime::physical

#endif  // ALDSP_RUNTIME_PHYSICAL_BATCH_H_
