#include "runtime/physical/batch.h"

#include <utility>

#include "xml/node.h"

namespace aldsp::runtime::physical {

using xml::Item;
using xml::Sequence;
using xquery::Expr;
using xquery::ExprKind;

// ----- BatchColumn -------------------------------------------------------

void BatchColumn::Demote() {
  seqs.reserve(atoms.size() + 1);
  for (auto& a : atoms) {
    seqs.emplace_back(Sequence{Item(std::move(a))});
  }
  atoms.clear();
  layout = Layout::kSeq;
}

void BatchColumn::AppendItem(const Item& item) {
  if (item.is_atomic() && layout != Layout::kSeq) {
    layout = Layout::kAtomic;
    atoms.push_back(item.atomic());
    return;
  }
  if (layout != Layout::kSeq) Demote();
  seqs.push_back(Sequence{item});
}

void BatchColumn::AppendAtomic(xml::AtomicValue v) {
  if (layout != Layout::kSeq) {
    layout = Layout::kAtomic;
    atoms.push_back(std::move(v));
    return;
  }
  seqs.push_back(Sequence{Item(std::move(v))});
}

void BatchColumn::AppendSeq(Sequence value) {
  if (value.size() == 1 && value.front().is_atomic() &&
      layout != Layout::kSeq) {
    layout = Layout::kAtomic;
    atoms.push_back(value.front().atomic());
    return;
  }
  if (layout != Layout::kSeq) Demote();
  seqs.push_back(std::move(value));
}

// ----- TupleBatch --------------------------------------------------------

void TupleBatch::Clear() {
  bases_.clear();
  num_rows_ = 0;
  cols_.clear();
  sel_.clear();
  has_sel_ = false;
}

size_t TupleBatch::AddRow(Tuple base) {
  bases_.push_back(std::move(base));
  return num_rows_++;
}

BatchColumn* TupleBatch::AddColumn(std::string name) {
  cols_.emplace_back();
  cols_.back().name = std::move(name);
  return &cols_.back();
}

void TupleBatch::SetSelection(std::vector<uint32_t> sel) {
  sel_ = std::move(sel);
  has_sel_ = true;
}

void TupleBatch::Compact() {
  if (!has_sel_) return;
  std::vector<Tuple> bases;
  bases.reserve(sel_.size());
  for (uint32_t r : sel_) bases.push_back(std::move(bases_[r]));
  bases_ = std::move(bases);
  for (auto& col : cols_) {
    if (col.layout == BatchColumn::Layout::kAtomic) {
      std::vector<xml::AtomicValue> atoms;
      atoms.reserve(sel_.size());
      for (uint32_t r : sel_) atoms.push_back(std::move(col.atoms[r]));
      col.atoms = std::move(atoms);
    } else if (col.layout == BatchColumn::Layout::kSeq) {
      std::vector<Sequence> seqs;
      seqs.reserve(sel_.size());
      for (uint32_t r : sel_) seqs.push_back(std::move(col.seqs[r]));
      col.seqs = std::move(seqs);
    }
  }
  num_rows_ = sel_.size();
  sel_.clear();
  has_sel_ = false;
}

Tuple TupleBatch::MaterializeRow(size_t i) const {
  size_t r = PhysicalIndex(i);
  Tuple t = bases_[r];
  for (const auto& col : cols_) {
    t = t.Bind(col.name, col.Value(r));
  }
  return t;
}

const BatchColumn* TupleBatch::FindColumn(const std::string& name) const {
  for (auto it = cols_.rbegin(); it != cols_.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

const Sequence* TupleBatch::LookupRow(size_t i, const std::string& name,
                                      Sequence* scratch) const {
  size_t r = PhysicalIndex(i);
  for (auto it = cols_.rbegin(); it != cols_.rend(); ++it) {
    if (it->name != name) continue;
    if (it->layout == BatchColumn::Layout::kAtomic) {
      *scratch = Sequence{Item(it->atoms[r])};
      return scratch;
    }
    return &it->seqs[r];
  }
  return bases_[r].Lookup(name);
}

// ----- Expression kernel -------------------------------------------------

bool KernelSupports(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kVarRef:
      return true;
    case ExprKind::kPathStep:
      return e.children.size() == 1 && e.children[0] != nullptr &&
             KernelSupports(*e.children[0]);
    default:
      return false;
  }
}

namespace {

Status KernelEvalVarRef(const Expr& e, const TupleBatch& batch,
                        std::vector<Sequence>* out) {
  size_t n = batch.size();
  // Resolve the name once per batch: innermost column wins, else the
  // row base chains (a shared-base binding resolves per row but the
  // Lookup is a short linear scan over the chain head).
  const BatchColumn* col = batch.FindColumn(e.var_name);
  if (col != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      (*out)[i] = col->Value(batch.PhysicalIndex(i));
    }
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    const Sequence* v = batch.RowBase(i).Lookup(e.var_name);
    if (v == nullptr) {
      return Status::RuntimeError("unbound variable $" + e.var_name);
    }
    (*out)[i] = *v;
  }
  return Status::OK();
}

// Mirrors the interpreter's EvalPathStep exactly, including the error on
// atomic input.
Status ApplyPathStep(const Expr& e, const Sequence& in, Sequence* out) {
  out->clear();
  for (const auto& item : in) {
    if (item.is_atomic()) {
      return Status::RuntimeError("path step '" + e.step_name +
                                  "' applied to an atomic value");
    }
    const xml::NodePtr& node = item.node();
    if (e.is_attribute_step) {
      xml::NodePtr attr = node->AttributeNamed(e.step_name);
      if (attr != nullptr) out->emplace_back(attr);
    } else {
      // Walk the child list directly instead of ChildrenNamed: the batch
      // kernel runs this once per row, and the intermediate vector the
      // convenience accessor returns is pure allocation overhead here.
      for (const auto& child : node->children()) {
        if (child->kind() == xml::NodeKind::kElement &&
            xml::NameMatches(child->name(), e.step_name)) {
          out->emplace_back(child);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status KernelEvalRows(const Expr& e, const TupleBatch& batch,
                      std::vector<Sequence>* out) {
  size_t n = batch.size();
  out->resize(n);
  switch (e.kind) {
    case ExprKind::kLiteral: {
      Sequence v{Item(e.literal)};
      for (size_t i = 0; i < n; ++i) (*out)[i] = v;
      return Status::OK();
    }
    case ExprKind::kVarRef:
      return KernelEvalVarRef(e, batch, out);
    case ExprKind::kPathStep: {
      const Expr& source = *e.children[0];
      if (source.kind == ExprKind::kVarRef) {
        // Fused step-over-variable, the dominant kernel shape: read the
        // stored sequence by pointer and write children straight into the
        // (capacity-reusing) output slot — no per-row copy of the source.
        const BatchColumn* col = batch.FindColumn(source.var_name);
        if (col != nullptr && col->atomic()) {
          if (n == 0) return Status::OK();
          return Status::RuntimeError("path step '" + e.step_name +
                                      "' applied to an atomic value");
        }
        for (size_t i = 0; i < n; ++i) {
          const Sequence* src;
          if (col != nullptr) {
            src = &col->seqs[batch.PhysicalIndex(i)];
          } else {
            src = batch.RowBase(i).Lookup(source.var_name);
            if (src == nullptr) {
              return Status::RuntimeError("unbound variable $" +
                                          source.var_name);
            }
          }
          ALDSP_RETURN_NOT_OK(ApplyPathStep(e, *src, &(*out)[i]));
        }
        return Status::OK();
      }
      ALDSP_RETURN_NOT_OK(KernelEvalRows(source, batch, out));
      Sequence stepped;
      for (size_t i = 0; i < n; ++i) {
        ALDSP_RETURN_NOT_OK(ApplyPathStep(e, (*out)[i], &stepped));
        (*out)[i] = std::move(stepped);
        stepped.clear();
      }
      return Status::OK();
    }
    default:
      return Status::RuntimeError("expression shape not kernel-evaluable");
  }
}

}  // namespace aldsp::runtime::physical
