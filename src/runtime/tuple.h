#ifndef ALDSP_RUNTIME_TUPLE_H_
#define ALDSP_RUNTIME_TUPLE_H_

#include <memory>
#include <string>

#include "xml/item.h"

namespace aldsp::runtime {

/// A binding tuple: an immutable environment mapping FLWOR variables to
/// item sequences. Binding returns a new tuple sharing the tail, so the
/// tuple streams flowing between operators are cheap to extend. (Tuples
/// are internal to the runtime and never XQuery-visible — paper §5.1.)
class Tuple {
 public:
  Tuple() = default;

  /// New tuple with `name` bound to `value`, shadowing earlier bindings.
  Tuple Bind(const std::string& name, xml::Sequence value) const {
    Tuple t;
    t.head_ = std::make_shared<Node>(Node{name, std::move(value), head_});
    return t;
  }

  /// Innermost binding of `name`, or nullptr.
  const xml::Sequence* Lookup(const std::string& name) const {
    for (const Node* n = head_.get(); n != nullptr; n = n->next.get()) {
      if (n->name == name) return &n->value;
    }
    return nullptr;
  }

  bool empty() const { return head_ == nullptr; }

 private:
  struct Node {
    std::string name;
    xml::Sequence value;
    std::shared_ptr<const Node> next;
  };
  std::shared_ptr<const Node> head_;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_TUPLE_H_
