#ifndef ALDSP_RUNTIME_TUPLE_REPR_H_
#define ALDSP_RUNTIME_TUPLE_REPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/item.h"
#include "xml/token.h"

namespace aldsp::runtime {

/// The three internal tuple representations of Fig. 4 (paper §5.1).
/// The optimizer picks one per materialization point based on usage:
///  - kStream: a flat token vector with (BeginTuple, FieldSeparator,
///    EndTuple) framing. Lowest memory; field access requires scanning
///    (skipping over earlier fields token by token).
///  - kSingleToken: one boxed token per tuple holding its fields; the
///    framed stream is re-extracted when content is needed. Cheap to
///    skip whole tuples, expensive to access content.
///  - kArray: one token (item sequence) per field. Highest memory, O(1)
///    access to every field — ideal for flat relational data where every
///    field is a single token.
enum class TupleRepr { kStream, kSingleToken, kArray };

const char* TupleReprName(TupleRepr r);

/// A materialized buffer of N-field tuples in one of the three
/// representations. Used by blocking operators (sort, group, PP-k block
/// assembly) and by the Fig. 4 reproduction benchmark.
class TupleBuffer {
 public:
  TupleBuffer(TupleRepr repr, size_t field_count);
  ~TupleBuffer();

  TupleRepr repr() const { return repr_; }
  size_t field_count() const { return field_count_; }
  size_t size() const { return tuple_count_; }

  /// Appends one tuple given its field sequences.
  void Append(const std::vector<xml::Sequence>& fields);

  /// Reads one field of one tuple. Cost depends on the representation:
  /// kArray is O(1); kStream scans from the start of the tuple's frame;
  /// kSingleToken unboxes the tuple then scans.
  Result<xml::Sequence> GetField(size_t row, size_t field) const;

  /// Reads a whole tuple.
  Result<std::vector<xml::Sequence>> GetTuple(size_t row) const;

  /// Approximate heap footprint — the memory axis of Fig. 4.
  size_t MemoryBytes() const;

 private:
  struct BoxedTupleBytes;  // one tuple's packed token bytes

  TupleRepr repr_;
  size_t field_count_;
  size_t tuple_count_ = 0;

  // kStream: one packed byte buffer holding every framed tuple. The
  // compact binary token encoding is what gives the stream
  // representation its low footprint; access decodes sequentially.
  std::string stream_bytes_;
  std::vector<size_t> tuple_offsets_;  // byte offset of each BeginTuple

  // kSingleToken: one boxed packed buffer per tuple (cheap to skip whole
  // tuples, content decoded on demand).
  std::vector<std::shared_ptr<BoxedTupleBytes>> boxed_;

  // kArray: materialized field sequences, row-major
  // (row * field_count + field); O(1) access, highest memory.
  std::vector<xml::Sequence> array_;
};

}  // namespace aldsp::runtime

#endif  // ALDSP_RUNTIME_TUPLE_REPR_H_
