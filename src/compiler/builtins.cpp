#include "compiler/builtins.h"

#include "xml/node.h"

namespace aldsp::compiler {

namespace {

struct Entry {
  const char* local;
  Builtin builtin;
  int min_args;
  int max_args;
  bool bea;  // lives in the fn-bea: namespace
};

constexpr Entry kEntries[] = {
    {"data", Builtin::kData, 1, 1, false},
    {"count", Builtin::kCount, 1, 1, false},
    {"sum", Builtin::kSum, 1, 1, false},
    {"avg", Builtin::kAvg, 1, 1, false},
    {"min", Builtin::kMin, 1, 1, false},
    {"max", Builtin::kMax, 1, 1, false},
    {"exists", Builtin::kExists, 1, 1, false},
    {"empty", Builtin::kEmpty, 1, 1, false},
    {"subsequence", Builtin::kSubsequence, 2, 3, false},
    {"concat", Builtin::kConcat, 1, 16, false},
    {"string", Builtin::kString, 1, 1, false},
    {"string-length", Builtin::kStringLength, 1, 1, false},
    {"upper-case", Builtin::kUpperCase, 1, 1, false},
    {"lower-case", Builtin::kLowerCase, 1, 1, false},
    {"substring", Builtin::kSubstring, 2, 3, false},
    {"contains", Builtin::kContains, 2, 2, false},
    {"starts-with", Builtin::kStartsWith, 2, 2, false},
    {"string-join", Builtin::kStringJoin, 2, 2, false},
    {"not", Builtin::kNot, 1, 1, false},
    {"true", Builtin::kTrue, 0, 0, false},
    {"false", Builtin::kFalse, 0, 0, false},
    {"distinct-values", Builtin::kDistinctValues, 1, 1, false},
    {"number", Builtin::kNumber, 1, 1, false},
    {"boolean", Builtin::kBoolean, 1, 1, false},
    {"abs", Builtin::kAbs, 1, 1, false},
    {"floor", Builtin::kFloor, 1, 1, false},
    {"ceiling", Builtin::kCeiling, 1, 1, false},
    {"round", Builtin::kRound, 1, 1, false},
    {"async", Builtin::kAsync, 1, 1, true},
    {"timeout", Builtin::kTimeout, 3, 3, true},
    {"fail-over", Builtin::kFailOver, 2, 2, true},
};

}  // namespace

Builtin LookupBuiltin(const std::string& name) {
  size_t colon = name.find(':');
  std::string prefix = colon == std::string::npos ? "" : name.substr(0, colon);
  std::string local = xml::LocalName(name);
  if (!prefix.empty() && prefix != "fn" && prefix != "fn-bea") {
    return Builtin::kUnknown;
  }
  for (const auto& e : kEntries) {
    if (local != e.local) continue;
    if (e.bea && prefix == "fn") continue;      // fn:async is not a thing
    if (!e.bea && prefix == "fn-bea") continue;
    return e.builtin;
  }
  return Builtin::kUnknown;
}

bool BuiltinArity(Builtin b, int* min_args, int* max_args) {
  for (const auto& e : kEntries) {
    if (e.builtin == b) {
      *min_args = e.min_args;
      *max_args = e.max_args;
      return true;
    }
  }
  return false;
}

const char* BuiltinName(Builtin b) {
  for (const auto& e : kEntries) {
    if (e.builtin == b) return e.local;
  }
  return "unknown";
}

}  // namespace aldsp::compiler
