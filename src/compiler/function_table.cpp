#include "compiler/function_table.h"

namespace aldsp::compiler {

Status FunctionTable::RegisterUser(UserFunction fn) {
  if (Exists(fn.name)) {
    return Status::AnalysisError("duplicate function: " + fn.name);
  }
  user_.push_back(std::move(fn));
  return Status::OK();
}

Status FunctionTable::RegisterExternal(ExternalFunction fn) {
  if (Exists(fn.name)) {
    return Status::AnalysisError("duplicate function: " + fn.name);
  }
  external_.push_back(std::move(fn));
  return Status::OK();
}

const UserFunction* FunctionTable::FindUser(const std::string& name) const {
  for (const auto& f : user_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

UserFunction* FunctionTable::FindUserMutable(const std::string& name) {
  for (auto& f : user_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const ExternalFunction* FunctionTable::FindExternal(
    const std::string& name) const {
  for (const auto& f : external_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool FunctionTable::Exists(const std::string& name) const {
  return FindUser(name) != nullptr || FindExternal(name) != nullptr;
}

Status FunctionTable::RegisterInverse(const std::string& fn_name,
                                      const std::string& inverse_name) {
  const ExternalFunction* fn = FindExternal(fn_name);
  const ExternalFunction* inv = FindExternal(inverse_name);
  if (fn == nullptr || inv == nullptr) {
    return Status::NotFound("inverse registration requires both functions: " +
                            fn_name + ", " + inverse_name);
  }
  if (fn->param_types.size() != 1 || inv->param_types.size() != 1) {
    return Status::InvalidArgument(
        "inverse functions must be single-argument: " + fn_name);
  }
  inverses_.emplace_back(fn_name, inverse_name);
  return Status::OK();
}

std::string FunctionTable::InverseOf(const std::string& fn_name) const {
  for (const auto& [fn, inv] : inverses_) {
    if (fn == fn_name) return inv;
  }
  return "";
}

}  // namespace aldsp::compiler
