#ifndef ALDSP_COMPILER_ANALYZER_H_
#define ALDSP_COMPILER_ANALYZER_H_

#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "common/result.h"
#include "compiler/function_table.h"
#include "xquery/ast.h"
#include "xsd/types.h"

namespace aldsp::compiler {

/// Resolves a source-level type reference against the schema registry.
/// element(E) resolves to the registered structural type when the schema
/// is known, otherwise to element(E, ANYTYPE); schema-element(E) errors
/// if E is not in scope (per the XQuery rules summarized in paper §3.1).
Result<xsd::SequenceType> ResolveTypeRef(const xquery::TypeRef& ref,
                                         const xsd::SchemaRegistry& schemas);

struct AnalyzeOptions {
  /// Design-time mode (paper §4.1): collect as many errors as possible,
  /// substituting error expressions; runtime mode fails on first error.
  bool recover = false;
};

/// A variable binding visible to an expression under analysis.
struct VarBinding {
  std::string name;
  xsd::SequenceType type;
};

/// The analysis phase of compilation (paper §4.1): normalization — making
/// implicit operations explicit (conditional constructors become ifs,
/// function names are resolved and arities checked) — followed by
/// optimistic structural type checking, annotating every node's
/// static_type and inserting runtime typematch operators where an
/// argument type merely intersects (rather than subtypes) the parameter.
class Analyzer {
 public:
  Analyzer(const FunctionTable* functions, const xsd::SchemaRegistry* schemas,
           DiagnosticBag* bag, AnalyzeOptions options = {})
      : functions_(functions),
        schemas_(schemas),
        bag_(bag),
        options_(options) {}

  /// Analyzes (and rewrites in place) an expression with the given
  /// variables in scope. Returns the first error in fail-fast mode.
  Status Analyze(xquery::ExprPtr& root, const std::vector<VarBinding>& env);

  /// Analyzes every function of a parsed module and registers the valid
  /// ones in `out`. In recovery mode invalid functions are registered
  /// with valid=false so their signatures remain usable (paper §4.1);
  /// in fail-fast mode the first broken function aborts.
  Status AnalyzeModule(const xquery::Module& module, FunctionTable* out);

 private:
  class Impl;

  const FunctionTable* functions_;
  const xsd::SchemaRegistry* schemas_;
  DiagnosticBag* bag_;
  AnalyzeOptions options_;
};

}  // namespace aldsp::compiler

#endif  // ALDSP_COMPILER_ANALYZER_H_
