#include "compiler/analyzer.h"

#include <algorithm>

#include "compiler/builtins.h"
#include "xml/node.h"

namespace aldsp::compiler {

using xquery::Clause;
using xquery::CloneExpr;
using xquery::Expr;
using xquery::ExprKind;
using xquery::ExprPtr;
using xquery::TypeRef;
using xsd::Occurrence;
using xsd::SequenceType;
using xsd::TypePtr;
using xsd::XType;

Result<SequenceType> ResolveTypeRef(const TypeRef& ref,
                                    const xsd::SchemaRegistry& schemas) {
  switch (ref.kind) {
    case TypeRef::Kind::kEmpty:
      return xsd::EmptySequenceType();
    case TypeRef::Kind::kAnyItem:
      return SequenceType{XType::AnyItem(), ref.occurrence};
    case TypeRef::Kind::kAnyNode:
      return SequenceType{XType::AnyNode(), ref.occurrence};
    case TypeRef::Kind::kAtomic: {
      std::string local = xml::LocalName(ref.name);
      xml::AtomicType at;
      if (local == "string") {
        at = xml::AtomicType::kString;
      } else if (local == "integer" || local == "int" || local == "long") {
        at = xml::AtomicType::kInteger;
      } else if (local == "decimal") {
        at = xml::AtomicType::kDecimal;
      } else if (local == "double" || local == "float") {
        at = xml::AtomicType::kDouble;
      } else if (local == "boolean") {
        at = xml::AtomicType::kBoolean;
      } else if (local == "dateTime") {
        at = xml::AtomicType::kDateTime;
      } else if (local == "untypedAtomic" || local == "anyAtomicType") {
        at = xml::AtomicType::kUntyped;
      } else {
        return Status::TypeError("unknown atomic type: " + ref.name);
      }
      return SequenceType{XType::Atomic(at), ref.occurrence};
    }
    case TypeRef::Kind::kElement: {
      TypePtr t = schemas.Lookup(ref.name);
      if (t == nullptr) t = XType::AnyElement(ref.name);
      return SequenceType{t, ref.occurrence};
    }
    case TypeRef::Kind::kSchemaElement: {
      TypePtr t = schemas.Lookup(ref.name);
      if (t == nullptr) {
        return Status::TypeError("schema-element(" + ref.name +
                                 ") not found in schema context");
      }
      return SequenceType{t, ref.occurrence};
    }
  }
  return Status::Internal("unhandled TypeRef kind");
}

namespace {

// Occurrence of the concatenation of two (non-empty-typed) sequences.
// Both sides can produce an item, so the upper bound always exceeds one;
// the lower bound is zero only if both sides allow empty.
Occurrence OccurrenceConcat(Occurrence a, Occurrence b) {
  auto low = [](Occurrence o) {
    return o == Occurrence::kOptional || o == Occurrence::kStar ? 0 : 1;
  };
  return low(a) + low(b) == 0 ? Occurrence::kStar : Occurrence::kPlus;
}

bool IsErrorType(const SequenceType& t) {
  return t.item != nullptr && t.item->kind() == XType::Kind::kError;
}

}  // namespace

class Analyzer::Impl {
 public:
  Impl(const FunctionTable* functions, const xsd::SchemaRegistry* schemas,
       DiagnosticBag* bag, AnalyzeOptions options)
      : functions_(functions),
        schemas_(schemas),
        bag_(bag),
        options_(options) {}

  Status Run(ExprPtr& root, const std::vector<VarBinding>& env) {
    env_ = env;
    first_error_ = Status::OK();
    Check(root);
    return options_.recover ? Status::OK() : first_error_;
  }

 private:
  // Records an error; in recovery mode replaces the node with an error
  // expression (keeping its operands) so analysis can continue.
  void ReportError(ExprPtr& e, StatusCode code, const std::string& message) {
    if (bag_ != nullptr) bag_->AddError(code, message, e->loc);
    if (first_error_.ok()) {
      std::string msg = message;
      if (e->loc.valid()) msg += " (at " + e->loc.ToString() + ")";
      first_error_ = Status(code, msg);
    }
    ExprPtr err = xquery::MakeError(message, e->children, e->loc);
    e = err;
  }

  const VarBinding* FindVar(const std::string& name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  }

  // ----- Normalization rewrites (top-down, before typing) --------------

  void Normalize(ExprPtr& e) {
    if (e->kind == ExprKind::kElementCtor && e->conditional) {
      // Paper §3.1: <E?>{c}</E>  ==  if (exists(c)) then <E>{c}</E> else ().
      std::vector<ExprPtr> value_parts;
      for (const auto& c : e->children) {
        if (c->kind != ExprKind::kAttributeCtor) {
          value_parts.push_back(CloneExpr(c));
        }
      }
      ExprPtr ctor = xquery::MakeElementCtor(e->ctor_name, e->children,
                                             /*conditional=*/false, e->loc);
      ExprPtr cond = xquery::MakeFunctionCall(
          "fn:exists", {xquery::MakeSequence(std::move(value_parts), e->loc)},
          e->loc);
      e = xquery::MakeIf(std::move(cond), std::move(ctor),
                         xquery::MakeEmptySequence(e->loc), e->loc);
      return;
    }
    if (e->kind == ExprKind::kAttributeCtor && e->conditional) {
      ExprPtr ctor = xquery::MakeAttributeCtor(e->ctor_name, e->children[0],
                                               /*conditional=*/false, e->loc);
      ExprPtr cond = xquery::MakeFunctionCall(
          "fn:exists", {CloneExpr(e->children[0])}, e->loc);
      e = xquery::MakeIf(std::move(cond), std::move(ctor),
                         xquery::MakeEmptySequence(e->loc), e->loc);
    }
  }

  // ----- Type checking (bottom-up) --------------------------------------

  void Check(ExprPtr& e) {
    Normalize(e);
    switch (e->kind) {
      case ExprKind::kLiteral:
        e->static_type = xsd::One(XType::Atomic(e->literal.type()));
        return;
      case ExprKind::kEmptySequence:
        e->static_type = xsd::EmptySequenceType();
        return;
      case ExprKind::kSequence: {
        SequenceType t = xsd::EmptySequenceType();
        for (auto& c : e->children) {
          Check(c);
          if (t.is_empty_sequence()) {
            t = c->static_type;
          } else if (!c->static_type.is_empty_sequence()) {
            SequenceType merged =
                xsd::CommonSupertype(t, c->static_type);
            merged.occurrence =
                OccurrenceConcat(t.occurrence, c->static_type.occurrence);
            t = merged;
          }
        }
        e->static_type = t;
        return;
      }
      case ExprKind::kVarRef: {
        const VarBinding* var = FindVar(e->var_name);
        if (var == nullptr) {
          ReportError(e, StatusCode::kAnalysisError,
                      "undefined variable $" + e->var_name);
          return;
        }
        e->static_type = var->type;
        return;
      }
      case ExprKind::kFLWOR:
        CheckFLWOR(e);
        return;
      case ExprKind::kPathStep:
        CheckPathStep(e);
        return;
      case ExprKind::kFilter:
        CheckFilter(e);
        return;
      case ExprKind::kElementCtor:
        CheckElementCtor(e);
        return;
      case ExprKind::kAttributeCtor: {
        Check(e->children[0]);
        xml::AtomicType at = xsd::AtomizedType(e->children[0]->static_type);
        e->static_type = xsd::One(XType::AttributeType(e->ctor_name, at));
        return;
      }
      case ExprKind::kIf: {
        Check(e->children[0]);
        Check(e->children[1]);
        Check(e->children[2]);
        e->static_type = xsd::CommonSupertype(e->children[1]->static_type,
                                              e->children[2]->static_type);
        return;
      }
      case ExprKind::kQuantified: {
        Check(e->children[0]);
        env_.push_back({e->var_name2,
                        {e->children[0]->static_type.item
                             ? e->children[0]->static_type.item
                             : XType::AnyItem(),
                         Occurrence::kOne}});
        Check(e->children[1]);
        env_.pop_back();
        e->static_type = xsd::One(XType::Atomic(xml::AtomicType::kBoolean));
        return;
      }
      case ExprKind::kComparison: {
        Check(e->children[0]);
        Check(e->children[1]);
        xml::AtomicType lt = xsd::AtomizedType(e->children[0]->static_type);
        xml::AtomicType rt = xsd::AtomizedType(e->children[1]->static_type);
        bool comparable =
            lt == rt || lt == xml::AtomicType::kUntyped ||
            rt == xml::AtomicType::kUntyped ||
            (xml::IsNumeric(lt) && xml::IsNumeric(rt));
        if (!comparable) {
          ReportError(e, StatusCode::kTypeError,
                      std::string("cannot compare ") + xml::AtomicTypeName(lt) +
                          " with " + xml::AtomicTypeName(rt));
          return;
        }
        Occurrence occ =
            (e->children[0]->static_type.allows_empty() ||
             e->children[1]->static_type.allows_empty())
                ? Occurrence::kOptional
                : Occurrence::kOne;
        if (e->general_comparison) occ = Occurrence::kOne;
        e->static_type = {XType::Atomic(xml::AtomicType::kBoolean), occ};
        return;
      }
      case ExprKind::kArith: {
        Check(e->children[0]);
        Check(e->children[1]);
        xml::AtomicType lt = xsd::AtomizedType(e->children[0]->static_type);
        xml::AtomicType rt = xsd::AtomizedType(e->children[1]->static_type);
        auto numeric_ok = [](xml::AtomicType t) {
          return xml::IsNumeric(t) || t == xml::AtomicType::kUntyped;
        };
        if (!numeric_ok(lt) || !numeric_ok(rt)) {
          ReportError(e, StatusCode::kTypeError,
                      std::string("arithmetic requires numeric operands, got ") +
                          xml::AtomicTypeName(lt) + " and " +
                          xml::AtomicTypeName(rt));
          return;
        }
        xml::AtomicType result;
        if (e->op == "div") {
          result = xml::AtomicType::kDouble;
        } else if (e->op == "idiv") {
          result = xml::AtomicType::kInteger;
        } else if (lt == xml::AtomicType::kDouble ||
                   rt == xml::AtomicType::kDouble ||
                   lt == xml::AtomicType::kUntyped ||
                   rt == xml::AtomicType::kUntyped) {
          result = xml::AtomicType::kDouble;
        } else if (lt == xml::AtomicType::kDecimal ||
                   rt == xml::AtomicType::kDecimal) {
          result = xml::AtomicType::kDecimal;
        } else {
          result = xml::AtomicType::kInteger;
        }
        Occurrence occ = (e->children[0]->static_type.allows_empty() ||
                          e->children[1]->static_type.allows_empty())
                             ? Occurrence::kOptional
                             : Occurrence::kOne;
        e->static_type = {XType::Atomic(result), occ};
        return;
      }
      case ExprKind::kLogical:
        Check(e->children[0]);
        Check(e->children[1]);
        e->static_type = xsd::One(XType::Atomic(xml::AtomicType::kBoolean));
        return;
      case ExprKind::kFunctionCall:
        CheckFunctionCall(e);
        return;
      case ExprKind::kCastAs: {
        Check(e->children[0]);
        auto target = ResolveTypeRef(e->type_ref, *schemas_);
        if (!target.ok()) {
          ReportError(e, StatusCode::kTypeError, target.status().message());
          return;
        }
        e->target_type = target.value();
        e->static_type = {e->target_type.item,
                          e->children[0]->static_type.allows_empty()
                              ? Occurrence::kOptional
                              : Occurrence::kOne};
        return;
      }
      case ExprKind::kInstanceOf:
      case ExprKind::kCastable: {
        Check(e->children[0]);
        auto target = ResolveTypeRef(e->type_ref, *schemas_);
        if (!target.ok()) {
          ReportError(e, StatusCode::kTypeError, target.status().message());
          return;
        }
        e->target_type = target.value();
        e->static_type = xsd::One(XType::Atomic(xml::AtomicType::kBoolean));
        return;
      }
      case ExprKind::kTypematch:
        Check(e->children[0]);
        e->static_type = e->target_type;
        return;
      case ExprKind::kSqlQuery: {
        for (auto& c : e->children) Check(c);
        if (e->sql) {
          // Structural row type from the pushed query's output columns;
          // every column is optional because NULL renders as a missing
          // element (paper §4.4).
          std::vector<xsd::ElementField> fields;
          for (const auto& col : e->sql->columns) {
            fields.push_back(
                {col.name,
                 xsd::Opt(XType::SimpleElement(col.name, col.type))});
          }
          e->static_type = xsd::Star(
              XType::ComplexElement(e->sql->row_name, std::move(fields)));
        } else {
          e->static_type = xsd::Star(XType::AnyElement("row"));
        }
        return;
      }
      case ExprKind::kCustomQuery: {
        for (auto& c : e->children) Check(c);
        const ExternalFunction* fn =
            e->custom ? functions_->FindExternal(e->custom->function)
                      : nullptr;
        // Filtering never adds items: the source function's type (made
        // optional-cardinality) bounds the result.
        if (fn != nullptr && !fn->return_type.is_empty_sequence()) {
          e->static_type = {fn->return_type.item,
                            xsd::MakeOptional(fn->return_type.occurrence)};
        } else {
          e->static_type = xsd::AnySequence();
        }
        return;
      }
      case ExprKind::kError:
        e->static_type = xsd::One(XType::Error(e->error_message));
        return;
    }
  }

  void CheckFLWOR(ExprPtr& e) {
    size_t outer_size = env_.size();
    Occurrence loop_occ = Occurrence::kOne;
    for (auto& cl : e->clauses) {
      switch (cl.kind) {
        case Clause::Kind::kFor:
        case Clause::Kind::kJoin: {
          Check(cl.expr);
          TypePtr item = cl.expr->static_type.item ? cl.expr->static_type.item
                                                   : XType::AnyItem();
          env_.push_back({cl.var, {item, Occurrence::kOne}});
          if (!cl.positional_var.empty()) {
            env_.push_back({cl.positional_var,
                            xsd::One(XType::Atomic(xml::AtomicType::kInteger))});
          }
          loop_occ =
              xsd::OccurrenceProduct(loop_occ, cl.expr->static_type.occurrence);
          if (cl.kind == Clause::Kind::kJoin) {
            if (cl.condition) Check(cl.condition);
            if (cl.left_outer) {
              // An unmatched left row binds the join variable to ().
              env_.back().type.occurrence = Occurrence::kOptional;
            }
          }
          break;
        }
        case Clause::Kind::kLet:
          Check(cl.expr);
          env_.push_back({cl.var, cl.expr->static_type});
          break;
        case Clause::Kind::kWhere:
          Check(cl.expr);
          loop_occ = xsd::MakeOptional(loop_occ);
          break;
        case Clause::Kind::kGroupBy: {
          // Validate regrouped variables and key expressions in the
          // pre-grouping scope.
          std::vector<VarBinding> post;
          for (auto& gv : cl.group_vars) {
            const VarBinding* in = FindVar(gv.in_var);
            if (in == nullptr) {
              if (bag_ != nullptr) {
                bag_->AddError(StatusCode::kAnalysisError,
                               "undefined grouping variable $" + gv.in_var,
                               e->loc);
              }
              if (first_error_.ok()) {
                first_error_ = Status::AnalysisError(
                    "undefined grouping variable $" + gv.in_var);
              }
              post.push_back({gv.out_var, xsd::AnySequence()});
              continue;
            }
            post.push_back(
                {gv.out_var,
                 {in->type.item ? in->type.item : XType::AnyItem(),
                  Occurrence::kStar}});
          }
          for (auto& gk : cl.group_keys) {
            Check(gk.expr);
            if (!gk.as_var.empty()) {
              post.push_back(
                  {gk.as_var,
                   xsd::Opt(XType::Atomic(xsd::AtomizedType(gk.expr->static_type)))});
            }
          }
          // Grouping removes the per-iteration bindings: only regrouped
          // variables and key bindings remain visible.
          env_.resize(outer_size);
          for (auto& b : post) env_.push_back(std::move(b));
          loop_occ = xsd::MakeOptional(loop_occ);
          break;
        }
        case Clause::Kind::kOrderBy:
          for (auto& ok : cl.order_keys) Check(ok.expr);
          break;
      }
    }
    Check(e->children[0]);
    const SequenceType& ret = e->children[0]->static_type;
    if (ret.is_empty_sequence()) {
      e->static_type = xsd::EmptySequenceType();
    } else {
      e->static_type = {ret.item,
                        xsd::OccurrenceProduct(loop_occ, ret.occurrence)};
    }
    env_.resize(outer_size);
  }

  void CheckPathStep(ExprPtr& e) {
    Check(e->children[0]);
    const SequenceType& in = e->children[0]->static_type;
    if (IsErrorType(in)) {
      e->static_type = in;
      return;
    }
    if (in.is_empty_sequence()) {
      e->static_type = xsd::EmptySequenceType();
      return;
    }
    const TypePtr& item = in.item;
    if (item->kind() == XType::Kind::kAtomic) {
      ReportError(e, StatusCode::kTypeError,
                  "path step '" + e->step_name + "' on atomic type " +
                      item->ToString());
      return;
    }
    if (item->kind() == XType::Kind::kElement && !item->has_any_content() &&
        !item->has_simple_content()) {
      // Structural typing: we statically know the content model.
      if (e->is_attribute_step) {
        const xsd::ElementField* attr = item->FindAttribute(e->step_name);
        if (attr == nullptr) {
          ReportError(e, StatusCode::kTypeError,
                      "no attribute @" + e->step_name + " in " +
                          item->ToString());
          return;
        }
        e->static_type = {attr->type.item,
                          xsd::OccurrenceProduct(in.occurrence,
                                                 attr->type.occurrence)};
        return;
      }
      const xsd::ElementField* field = item->FindField(e->step_name);
      if (field == nullptr) {
        ReportError(e, StatusCode::kTypeError,
                    "no child element <" + e->step_name + "> in " +
                        item->ToString());
        return;
      }
      e->static_type = {field->type.item,
                        xsd::OccurrenceProduct(in.occurrence,
                                               field->type.occurrence)};
      return;
    }
    if (item->kind() == XType::Kind::kElement && item->has_simple_content()) {
      ReportError(e, StatusCode::kTypeError,
                  "path step '" + e->step_name +
                      "' into simple-content element " + item->ToString());
      return;
    }
    // element(E, ANYTYPE), node(), item(): dynamically typed navigation.
    if (e->is_attribute_step) {
      e->static_type = xsd::Star(
          XType::AttributeType(e->step_name, xml::AtomicType::kUntyped));
    } else {
      e->static_type = xsd::Star(XType::AnyElement(e->step_name));
    }
  }

  void CheckFilter(ExprPtr& e) {
    Check(e->children[0]);
    const SequenceType& in = e->children[0]->static_type;
    TypePtr item = in.item ? in.item : XType::AnyItem();
    env_.push_back({".", {item, Occurrence::kOne}});
    Check(e->children[1]);
    env_.pop_back();
    e->static_type = {item, xsd::MakeOptional(in.is_empty_sequence()
                                                  ? Occurrence::kOptional
                                                  : in.occurrence)};
  }

  void CheckElementCtor(ExprPtr& e) {
    std::vector<xsd::ElementField> attrs;
    std::vector<xsd::ElementField> fields;
    bool has_atomic_content = false;
    bool opaque_content = false;
    xml::AtomicType single_atomic = xml::AtomicType::kUntyped;
    size_t content_children = 0;
    for (auto& c : e->children) {
      Check(c);
      const SequenceType& t = c->static_type;
      if (c->kind == ExprKind::kAttributeCtor) {
        attrs.push_back({c->ctor_name, t});
        continue;
      }
      ++content_children;
      if (t.is_empty_sequence()) continue;
      if (IsErrorType(t)) {
        opaque_content = true;
        continue;
      }
      TypePtr item = t.item;
      if (item->kind() == XType::Kind::kElement) {
        // Merge repeated names into a starred particle.
        bool merged = false;
        for (auto& f : fields) {
          if (xml::NameMatches(f.name, item->name())) {
            f.type.occurrence = Occurrence::kStar;
            merged = true;
            break;
          }
        }
        if (!merged) fields.push_back({item->name(), t});
      } else if (item->kind() == XType::Kind::kAtomic) {
        has_atomic_content = true;
        single_atomic = item->atomic_type();
      } else {
        opaque_content = true;  // node()/item(): content model unknown
      }
    }
    // An if/else of elements named differently, or mixed content, yields
    // an opaque ANYTYPE element; the common data-centric cases stay
    // precisely typed (the essence of structural typing, paper §3.1).
    if (opaque_content || (has_atomic_content && !fields.empty())) {
      e->static_type = xsd::One(XType::AnyElement(e->ctor_name));
      return;
    }
    if (fields.empty()) {
      if (has_atomic_content && content_children == 1) {
        e->static_type =
            xsd::One(XType::SimpleElement(e->ctor_name, single_atomic));
      } else if (has_atomic_content) {
        e->static_type = xsd::One(
            XType::SimpleElement(e->ctor_name, xml::AtomicType::kString));
      } else {
        e->static_type =
            xsd::One(XType::ComplexElement(e->ctor_name, {}, std::move(attrs)));
      }
      return;
    }
    e->static_type = xsd::One(
        XType::ComplexElement(e->ctor_name, std::move(fields), std::move(attrs)));
  }

  void CheckFunctionCall(ExprPtr& e) {
    for (auto& c : e->children) Check(c);
    Builtin b = LookupBuiltin(e->fn_name);
    if (b != Builtin::kUnknown) {
      int min_args, max_args;
      BuiltinArity(b, &min_args, &max_args);
      int n = static_cast<int>(e->children.size());
      if (n < min_args || n > max_args) {
        ReportError(e, StatusCode::kAnalysisError,
                    "wrong number of arguments to " + e->fn_name + ": " +
                        std::to_string(n));
        return;
      }
      e->static_type = InferBuiltinType(b, *e);
      return;
    }
    if (const UserFunction* fn = functions_->FindUser(e->fn_name)) {
      if (e->children.size() != fn->params.size()) {
        ReportError(e, StatusCode::kAnalysisError,
                    "wrong number of arguments to " + e->fn_name);
        return;
      }
      for (size_t i = 0; i < e->children.size(); ++i) {
        ApplyOptimisticRule(e, i, fn->params[i].type);
        if (e->kind == ExprKind::kError) return;
      }
      e->static_type = fn->return_type;
      return;
    }
    if (const ExternalFunction* fn = functions_->FindExternal(e->fn_name)) {
      if (e->children.size() != fn->param_types.size()) {
        ReportError(e, StatusCode::kAnalysisError,
                    "wrong number of arguments to " + e->fn_name);
        return;
      }
      for (size_t i = 0; i < e->children.size(); ++i) {
        ApplyOptimisticRule(e, i, fn->param_types[i]);
        if (e->kind == ExprKind::kError) return;
      }
      e->static_type = fn->return_type;
      return;
    }
    ReportError(e, StatusCode::kAnalysisError,
                "unknown function: " + e->fn_name);
  }

  // ALDSP's optimistic static typing rule (paper §4.1): the argument is
  // valid if its type intersects the parameter type; a typematch operator
  // enforces exact semantics at runtime unless the argument is already a
  // subtype.
  void ApplyOptimisticRule(ExprPtr& call, size_t arg_index,
                           const SequenceType& param_type) {
    ExprPtr& arg = call->children[arg_index];
    if (IsErrorType(arg->static_type)) return;
    // XQuery function conversion: when the expected type is atomic, node
    // arguments are implicitly atomized. Normalization makes the implicit
    // fn:data explicit (paper §3.3 step 3).
    if (!param_type.is_empty_sequence() && param_type.item &&
        param_type.item->kind() == XType::Kind::kAtomic &&
        arg->static_type.item &&
        arg->static_type.item->kind() != XType::Kind::kAtomic &&
        arg->static_type.item->kind() != XType::Kind::kError) {
      xml::AtomicType at_type = xsd::AtomizedType(arg->static_type);
      SequenceType data_type{XType::Atomic(at_type),
                             arg->static_type.occurrence};
      ExprPtr data = xquery::MakeFunctionCall("fn:data", {arg}, arg->loc);
      data->static_type = data_type;
      arg = data;
    }
    const SequenceType& at = arg->static_type;
    if (xsd::IsSubtype(at, param_type)) return;
    if (!xsd::Intersects(at, param_type)) {
      ReportError(call, StatusCode::kTypeError,
                  "argument " + std::to_string(arg_index + 1) + " of " +
                      call->fn_name + " has type " + at.ToString() +
                      ", incompatible with " + param_type.ToString());
      return;
    }
    ExprPtr tm = xquery::MakeTypematch(arg, param_type, arg->loc);
    tm->static_type = param_type;
    arg = tm;
  }

  SequenceType InferBuiltinType(Builtin b, const Expr& e) {
    auto arg_type = [&](size_t i) -> SequenceType {
      return i < e.children.size() ? e.children[i]->static_type
                                   : xsd::AnySequence();
    };
    using AT = xml::AtomicType;
    switch (b) {
      case Builtin::kData: {
        SequenceType in = arg_type(0);
        return {XType::Atomic(xsd::AtomizedType(in)),
                in.is_empty_sequence() ? Occurrence::kOptional : in.occurrence};
      }
      case Builtin::kCount:
      case Builtin::kStringLength:
        return xsd::One(XType::Atomic(AT::kInteger));
      case Builtin::kSum:
        return xsd::One(XType::Atomic(xsd::AtomizedType(arg_type(0)) == AT::kUntyped
                                          ? AT::kDouble
                                          : xsd::AtomizedType(arg_type(0))));
      case Builtin::kAvg:
        return xsd::Opt(XType::Atomic(AT::kDouble));
      case Builtin::kMin:
      case Builtin::kMax:
        return xsd::Opt(XType::Atomic(xsd::AtomizedType(arg_type(0))));
      case Builtin::kExists:
      case Builtin::kEmpty:
      case Builtin::kNot:
      case Builtin::kBoolean:
      case Builtin::kContains:
      case Builtin::kStartsWith:
      case Builtin::kTrue:
      case Builtin::kFalse:
        return xsd::One(XType::Atomic(AT::kBoolean));
      case Builtin::kSubsequence: {
        SequenceType in = arg_type(0);
        if (in.is_empty_sequence()) return in;
        return xsd::Star(in.item);
      }
      case Builtin::kConcat:
      case Builtin::kString:
      case Builtin::kUpperCase:
      case Builtin::kLowerCase:
      case Builtin::kSubstring:
      case Builtin::kStringJoin:
        return xsd::One(XType::Atomic(AT::kString));
      case Builtin::kDistinctValues:
        return xsd::Star(XType::Atomic(xsd::AtomizedType(arg_type(0))));
      case Builtin::kNumber:
        return xsd::One(XType::Atomic(AT::kDouble));
      case Builtin::kAbs:
      case Builtin::kFloor:
      case Builtin::kCeiling:
      case Builtin::kRound: {
        AT t = xsd::AtomizedType(arg_type(0));
        return {XType::Atomic(xml::IsNumeric(t) ? t : AT::kDouble),
                arg_type(0).allows_empty() ? Occurrence::kOptional
                                           : Occurrence::kOne};
      }
      case Builtin::kAsync:
        return arg_type(0);
      case Builtin::kFailOver:
        return xsd::CommonSupertype(arg_type(0), arg_type(1));
      case Builtin::kTimeout:
        return xsd::CommonSupertype(arg_type(0), arg_type(2));
      case Builtin::kUnknown:
        break;
    }
    return xsd::AnySequence();
  }

  const FunctionTable* functions_;
  const xsd::SchemaRegistry* schemas_;
  DiagnosticBag* bag_;
  AnalyzeOptions options_;
  std::vector<VarBinding> env_;
  Status first_error_;
};

Status Analyzer::Analyze(ExprPtr& root, const std::vector<VarBinding>& env) {
  Impl impl(functions_, schemas_, bag_, options_);
  return impl.Run(root, env);
}

Status Analyzer::AnalyzeModule(const xquery::Module& module,
                               FunctionTable* out) {
  // Pass 1: register all signatures so functions can call each other.
  for (const auto& fn : module.functions) {
    UserFunction uf;
    uf.name = fn.name;
    uf.pragma_kind = fn.PragmaKind();
    for (const auto& pragma : fn.pragmas) {
      if (pragma.name == "hint") {
        for (const auto& [key, value] : pragma.attrs) uf.hints[key] = value;
      } else if (pragma.name == "function") {
        const std::string* primary = pragma.Find("isPrimary");
        if (primary != nullptr && *primary == "true") uf.is_primary = true;
      }
    }
    for (const auto& p : fn.params) {
      auto t = ResolveTypeRef(p.type, *schemas_);
      if (!t.ok()) {
        if (bag_ != nullptr) {
          bag_->AddError(StatusCode::kTypeError, t.status().message(), fn.loc,
                         fn.name);
        }
        if (!options_.recover) return t.status();
        uf.params.push_back({p.name, xsd::AnySequence()});
        uf.valid = false;
        continue;
      }
      uf.params.push_back({p.name, t.value()});
    }
    auto rt = ResolveTypeRef(fn.return_type, *schemas_);
    if (!rt.ok()) {
      if (bag_ != nullptr) {
        bag_->AddError(StatusCode::kTypeError, rt.status().message(), fn.loc,
                       fn.name);
      }
      if (!options_.recover) return rt.status();
      uf.return_type = xsd::AnySequence();
      uf.valid = false;
    } else {
      uf.return_type = rt.value();
    }
    uf.body = fn.external ? nullptr : CloneExpr(fn.body);
    ALDSP_RETURN_NOT_OK(out->RegisterUser(std::move(uf)));
  }
  // Pass 2: analyze bodies against the completed table.
  for (const auto& fn : module.functions) {
    if (fn.external) continue;
    UserFunction* uf = out->FindUserMutable(fn.name);
    if (uf == nullptr || uf->body == nullptr) continue;
    if (uf->body->kind == ExprKind::kError) {
      uf->valid = false;
      continue;
    }
    std::vector<VarBinding> env;
    for (const auto& p : uf->params) env.push_back({p.name, p.type});
    size_t errors_before = bag_ != nullptr ? bag_->error_count() : 0;
    Impl impl(out, schemas_, bag_, options_);
    Status st = impl.Run(uf->body, env);
    if (!st.ok()) {
      if (!options_.recover) return st;
      uf->valid = false;
      continue;
    }
    if (bag_ != nullptr && bag_->error_count() > errors_before) {
      uf->valid = false;
      if (!options_.recover) return bag_->FirstError();
    }
  }
  return Status::OK();
}

}  // namespace aldsp::compiler
