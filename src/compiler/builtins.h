#ifndef ALDSP_COMPILER_BUILTINS_H_
#define ALDSP_COMPILER_BUILTINS_H_

#include <string>

namespace aldsp::compiler {

/// Built-in XQuery functions supported by the platform, including the
/// fn-bea:* extensions of paper §5.4/§5.6 (async, timeout, fail-over).
enum class Builtin {
  kUnknown = 0,
  kData,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kExists,
  kEmpty,
  kSubsequence,
  kConcat,
  kString,
  kStringLength,
  kUpperCase,
  kLowerCase,
  kSubstring,
  kContains,
  kStartsWith,
  kStringJoin,
  kNot,
  kTrue,
  kFalse,
  kDistinctValues,
  kNumber,
  kBoolean,
  kAbs,
  kFloor,
  kCeiling,
  kRound,
  kAsync,     // fn-bea:async
  kTimeout,   // fn-bea:timeout
  kFailOver,  // fn-bea:fail-over
};

/// Resolves a (possibly prefixed) function name to a builtin; accepts the
/// fn: prefix, the fn-bea: prefix for extensions, and unprefixed names.
Builtin LookupBuiltin(const std::string& name);

/// Expected argument count range; returns false if `name` is not builtin.
bool BuiltinArity(Builtin b, int* min_args, int* max_args);

const char* BuiltinName(Builtin b);

}  // namespace aldsp::compiler

#endif  // ALDSP_COMPILER_BUILTINS_H_
