#ifndef ALDSP_COMPILER_FUNCTION_TABLE_H_
#define ALDSP_COMPILER_FUNCTION_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xquery/ast.h"
#include "xsd/types.h"

namespace aldsp::compiler {

/// A user-defined XQuery function (a data service method) with resolved
/// types and an analyzed body. These are the view layers that the
/// optimizer unfolds (paper §4.2).
struct UserFunction {
  struct Parameter {
    std::string name;
    xsd::SequenceType type;
  };

  std::string name;
  std::vector<Parameter> params;
  xsd::SequenceType return_type;
  xquery::ExprPtr body;
  std::string pragma_kind;  // "read", "navigate", ... from the pragma
  /// Marked isPrimary="true" in its function pragma: the designated
  /// lineage provider of its data service (paper §6).
  bool is_primary = false;
  /// Declarative optimizer hints from `(::pragma hint k="v" ... ::)`
  /// (the §9 roadmap: hints "that can survive correctly through layers
  /// of views" — they attach to the function, so every query that
  /// unfolds it inherits them). Recognized keys: join_method
  /// (nl|inl|ppk-nl|ppk-inl), ppk_k (integer), no_pushdown_joins.
  std::map<std::string, std::string> hints;
  /// Functions whose analysis failed are retained for signature checking
  /// of other functions but are not executable (paper §4.1).
  bool valid = true;
};

/// An externally implemented function surfaced by a physical data
/// service. `properties` carries the pragma-captured metadata the
/// compiler and runtime need (paper §3.2): for relational sources the
/// source id and table name, key columns, vendor; for web services the
/// operation; for external (user) functions the registered callback id
/// and an optional inverse function.
struct ExternalFunction {
  std::string name;
  std::vector<xsd::SequenceType> param_types;
  xsd::SequenceType return_type;
  std::map<std::string, std::string> properties;

  std::string Property(const std::string& key) const {
    auto it = properties.find(key);
    return it == properties.end() ? "" : it->second;
  }
  /// Source kind: "relational", "webservice", "external", "file".
  std::string kind() const { return Property("kind"); }
  bool is_relational() const { return kind() == "relational"; }
};

/// The compile-time metadata registry: all callable functions (user views
/// and source-backed externals) by name.
class FunctionTable {
 public:
  Status RegisterUser(UserFunction fn);
  Status RegisterExternal(ExternalFunction fn);

  const UserFunction* FindUser(const std::string& name) const;
  UserFunction* FindUserMutable(const std::string& name);
  const ExternalFunction* FindExternal(const std::string& name) const;
  bool Exists(const std::string& name) const;

  const std::vector<UserFunction>& user_functions() const { return user_; }
  const std::vector<ExternalFunction>& external_functions() const {
    return external_;
  }

  /// Registers `inverse_name` as the inverse of external function
  /// `fn_name` (paper §4.5), enabling predicate rewrites and updates
  /// through value transformations. Both functions must already be
  /// registered and take exactly one argument.
  Status RegisterInverse(const std::string& fn_name,
                         const std::string& inverse_name);
  /// Name of the inverse of `fn_name`, or empty.
  std::string InverseOf(const std::string& fn_name) const;

 private:
  std::vector<UserFunction> user_;
  std::vector<ExternalFunction> external_;
  std::vector<std::pair<std::string, std::string>> inverses_;
};

}  // namespace aldsp::compiler

#endif  // ALDSP_COMPILER_FUNCTION_TABLE_H_
