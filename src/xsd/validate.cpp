#include "xsd/validate.h"

namespace aldsp::xsd {

using xml::AtomicType;
using xml::AtomicValue;
using xml::NodeKind;
using xml::NodePtr;
using xml::XNode;

namespace {

Result<NodePtr> ValidateElement(const XNode& node, const TypePtr& type) {
  if (node.kind() != NodeKind::kElement) {
    return Status::RuntimeError("expected an element for type " +
                                type->ToString());
  }
  if (!xml::NameMatches(node.name(), type->name())) {
    return Status::RuntimeError("element <" + node.name() +
                                "> does not match expected <" + type->name() +
                                ">");
  }
  NodePtr out = XNode::Element(node.name());
  // Attributes.
  for (const auto& decl : type->attributes()) {
    NodePtr attr = node.AttributeNamed(decl.name);
    if (attr == nullptr) {
      if (!decl.type.allows_empty()) {
        return Status::RuntimeError("missing required attribute @" + decl.name +
                                    " on <" + node.name() + ">");
      }
      continue;
    }
    AtomicType target = AtomizedType(decl.type);
    ALDSP_ASSIGN_OR_RETURN(AtomicValue typed, attr->value().CastTo(target));
    out->AddAttribute(XNode::Attribute(attr->name(), std::move(typed)));
  }
  if (type->has_any_content()) {
    for (const auto& c : node.children()) out->AddChild(c->Clone());
    return out;
  }
  if (type->has_simple_content()) {
    AtomicValue raw = node.TypedValue();
    ALDSP_ASSIGN_OR_RETURN(AtomicValue typed, raw.CastTo(type->atomic_type()));
    out->AddChild(XNode::Text(std::move(typed)));
    return out;
  }
  // Complex content: validate each declared particle in declaration order;
  // undeclared child elements are rejected (strict validation).
  for (const auto& field : type->fields()) {
    auto matches = node.ChildrenNamed(field.name);
    if (matches.empty() && !field.type.allows_empty()) {
      return Status::RuntimeError("missing required element <" + field.name +
                                  "> in <" + node.name() + ">");
    }
    if (matches.size() > 1 && !field.type.allows_many()) {
      return Status::RuntimeError("too many <" + field.name + "> in <" +
                                  node.name() + ">");
    }
    for (const auto& child : matches) {
      if (field.type.item && field.type.item->kind() == XType::Kind::kElement) {
        ALDSP_ASSIGN_OR_RETURN(NodePtr typed,
                               ValidateElement(*child, field.type.item));
        out->AddChild(std::move(typed));
      } else {
        out->AddChild(child->Clone());
      }
    }
  }
  for (const auto& child : node.children()) {
    if (child->kind() == NodeKind::kElement &&
        type->FindField(child->name()) == nullptr) {
      return Status::RuntimeError("undeclared element <" + child->name() +
                                  "> in <" + node.name() + ">");
    }
  }
  return out;
}

}  // namespace

Result<NodePtr> ValidateAndType(const XNode& node, const TypePtr& type) {
  if (!type || type->kind() != XType::Kind::kElement) {
    return Status::InvalidArgument("ValidateAndType requires an element type");
  }
  if (node.kind() == NodeKind::kDocument) {
    for (const auto& c : node.children()) {
      if (c->kind() == NodeKind::kElement) return ValidateElement(*c, type);
    }
    return Status::RuntimeError("document has no root element");
  }
  return ValidateElement(node, type);
}

Status CheckAgainst(const XNode& node, const TypePtr& type) {
  ALDSP_ASSIGN_OR_RETURN(NodePtr typed, ValidateAndType(node, type));
  (void)typed;
  return Status::OK();
}

TypePtr InferNodeType(const XNode& node) {
  switch (node.kind()) {
    case NodeKind::kText:
      return XType::Atomic(node.value().type());
    case NodeKind::kAttribute:
      return XType::AttributeType(node.name(), node.value().type());
    case NodeKind::kDocument:
      return XType::AnyNode();
    case NodeKind::kElement: {
      if (node.children().size() == 1 &&
          node.children()[0]->kind() == NodeKind::kText) {
        return XType::SimpleElement(node.name(),
                                    node.children()[0]->value().type());
      }
      std::vector<ElementField> fields;
      for (const auto& c : node.children()) {
        if (c->kind() != NodeKind::kElement) continue;
        TypePtr ct = InferNodeType(*c);
        // Merge repeated names to a starred particle.
        bool merged = false;
        for (auto& f : fields) {
          if (xml::NameMatches(f.name, c->name())) {
            f.type.occurrence = Occurrence::kStar;
            merged = true;
            break;
          }
        }
        if (!merged) fields.push_back({c->name(), One(ct)});
      }
      std::vector<ElementField> attrs;
      for (const auto& a : node.attributes()) {
        attrs.push_back({a->name(), One(XType::AttributeType(
                                        a->name(), a->value().type()))});
      }
      if (fields.empty() && node.children().empty()) {
        return XType::ComplexElement(node.name(), {}, std::move(attrs));
      }
      return XType::ComplexElement(node.name(), std::move(fields),
                                   std::move(attrs));
    }
  }
  return XType::AnyItem();
}

}  // namespace aldsp::xsd
