#include "xsd/types.h"

#include "xml/node.h"

namespace aldsp::xsd {

using xml::AtomicType;

std::string SequenceType::ToString() const {
  if (is_empty_sequence()) return "empty-sequence()";
  std::string s = item->ToString();
  switch (occurrence) {
    case Occurrence::kOne:
      break;
    case Occurrence::kOptional:
      s += "?";
      break;
    case Occurrence::kStar:
      s += "*";
      break;
    case Occurrence::kPlus:
      s += "+";
      break;
  }
  return s;
}

TypePtr XType::AnyItem() {
  static const TypePtr kInstance(new XType(Kind::kAnyItem));
  return kInstance;
}

TypePtr XType::AnyNode() {
  static const TypePtr kInstance(new XType(Kind::kAnyNode));
  return kInstance;
}

TypePtr XType::Atomic(AtomicType t) {
  auto* ty = new XType(Kind::kAtomic);
  ty->atomic_ = t;
  return TypePtr(ty);
}

TypePtr XType::SimpleElement(std::string name, AtomicType content) {
  auto* ty = new XType(Kind::kElement);
  ty->name_ = std::move(name);
  ty->atomic_ = content;
  ty->simple_content_ = true;
  return TypePtr(ty);
}

TypePtr XType::ComplexElement(std::string name, std::vector<ElementField> fields,
                              std::vector<ElementField> attributes) {
  auto* ty = new XType(Kind::kElement);
  ty->name_ = std::move(name);
  ty->fields_ = std::move(fields);
  ty->attributes_ = std::move(attributes);
  return TypePtr(ty);
}

TypePtr XType::AnyElement(std::string name) {
  auto* ty = new XType(Kind::kElement);
  ty->name_ = std::move(name);
  ty->any_content_ = true;
  return TypePtr(ty);
}

TypePtr XType::AttributeType(std::string name, AtomicType content) {
  auto* ty = new XType(Kind::kAttribute);
  ty->name_ = std::move(name);
  ty->atomic_ = content;
  return TypePtr(ty);
}

TypePtr XType::Error(std::string message) {
  auto* ty = new XType(Kind::kError);
  ty->name_ = std::move(message);
  return TypePtr(ty);
}

const ElementField* XType::FindField(const std::string& name) const {
  for (const auto& f : fields_) {
    if (xml::NameMatches(f.name, name)) return &f;
  }
  return nullptr;
}

const ElementField* XType::FindAttribute(const std::string& name) const {
  for (const auto& a : attributes_) {
    if (xml::NameMatches(a.name, name)) return &a;
  }
  return nullptr;
}

std::string XType::ToString() const {
  switch (kind_) {
    case Kind::kAnyItem:
      return "item()";
    case Kind::kAnyNode:
      return "node()";
    case Kind::kAtomic:
      return xml::AtomicTypeName(atomic_);
    case Kind::kElement: {
      if (any_content_) return "element(" + name_ + ", ANYTYPE)";
      if (simple_content_) {
        return "element(" + name_ + ", " + xml::AtomicTypeName(atomic_) + ")";
      }
      std::string s = "element(" + name_ + ", {";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) s += ", ";
        s += fields_[i].name + ": " + fields_[i].type.ToString();
      }
      s += "})";
      return s;
    }
    case Kind::kAttribute:
      return "attribute(" + name_ + ", " + xml::AtomicTypeName(atomic_) + ")";
    case Kind::kError:
      return "error(" + name_ + ")";
  }
  return "?";
}

SequenceType EmptySequenceType() { return {nullptr, Occurrence::kOptional}; }
SequenceType One(TypePtr t) { return {std::move(t), Occurrence::kOne}; }
SequenceType Opt(TypePtr t) { return {std::move(t), Occurrence::kOptional}; }
SequenceType Star(TypePtr t) { return {std::move(t), Occurrence::kStar}; }
SequenceType Plus(TypePtr t) { return {std::move(t), Occurrence::kPlus}; }
SequenceType AnySequence() { return Star(XType::AnyItem()); }

namespace {

bool AtomicSubtype(AtomicType sub, AtomicType super) {
  if (sub == super) return true;
  // integer <: decimal in the XDM numeric hierarchy; everything else is
  // unrelated at the atomic level in our subset.
  if (sub == AtomicType::kInteger && super == AtomicType::kDecimal) return true;
  return false;
}

bool AtomicIntersects(AtomicType a, AtomicType b) {
  if (a == b) return true;
  if (AtomicSubtype(a, b) || AtomicSubtype(b, a)) return true;
  // Untyped data can be cast toward any atomic type at runtime.
  if (a == AtomicType::kUntyped || b == AtomicType::kUntyped) return true;
  return false;
}

}  // namespace

bool IsItemSubtype(const TypePtr& sub, const TypePtr& super) {
  if (!sub || !super) return false;
  if (super->kind() == XType::Kind::kAnyItem) return true;
  if (sub->kind() == XType::Kind::kError || super->kind() == XType::Kind::kError) {
    return false;
  }
  switch (super->kind()) {
    case XType::Kind::kAnyNode:
      return sub->kind() == XType::Kind::kElement ||
             sub->kind() == XType::Kind::kAttribute ||
             sub->kind() == XType::Kind::kAnyNode;
    case XType::Kind::kAtomic:
      return sub->kind() == XType::Kind::kAtomic &&
             AtomicSubtype(sub->atomic_type(), super->atomic_type());
    case XType::Kind::kElement: {
      if (sub->kind() != XType::Kind::kElement) return false;
      if (!xml::NameMatches(sub->name(), super->name())) return false;
      if (super->has_any_content()) return true;  // element(E) accepts any E
      if (sub->has_any_content()) return false;
      if (super->has_simple_content()) {
        return sub->has_simple_content() &&
               AtomicSubtype(sub->atomic_type(), super->atomic_type());
      }
      if (sub->has_simple_content()) return false;
      // Structural: every particle of super must be matched by sub, with a
      // compatible (sub)type; sub may not add extra required particles.
      for (const auto& sf : super->fields()) {
        const ElementField* mf = sub->FindField(sf.name);
        if (mf == nullptr) {
          if (!sf.type.allows_empty()) return false;
          continue;
        }
        if (!IsSubtype(mf->type, sf.type)) return false;
      }
      for (const auto& f : sub->fields()) {
        if (super->FindField(f.name) == nullptr && !f.type.allows_empty()) {
          return false;
        }
      }
      for (const auto& sa : super->attributes()) {
        const ElementField* ma = sub->FindAttribute(sa.name);
        if (ma == nullptr) {
          if (!sa.type.allows_empty()) return false;
          continue;
        }
        if (!IsSubtype(ma->type, sa.type)) return false;
      }
      return true;
    }
    case XType::Kind::kAttribute:
      return sub->kind() == XType::Kind::kAttribute &&
             xml::NameMatches(sub->name(), super->name()) &&
             AtomicSubtype(sub->atomic_type(), super->atomic_type());
    case XType::Kind::kAnyItem:
    case XType::Kind::kError:
      break;
  }
  return false;
}

namespace {

bool OccurrenceContained(Occurrence sub, Occurrence super) {
  auto low = [](Occurrence o) {
    return o == Occurrence::kOptional || o == Occurrence::kStar ? 0 : 1;
  };
  auto high = [](Occurrence o) {
    return o == Occurrence::kStar || o == Occurrence::kPlus ? 2 : 1;
  };
  return low(sub) >= low(super) && high(sub) <= high(super);
}

}  // namespace

bool IsSubtype(const SequenceType& sub, const SequenceType& super) {
  if (sub.is_empty_sequence()) return super.allows_empty();
  if (super.is_empty_sequence()) return false;
  return OccurrenceContained(sub.occurrence, super.occurrence) &&
         IsItemSubtype(sub.item, super.item);
}

bool ItemIntersects(const TypePtr& a, const TypePtr& b) {
  if (!a || !b) return false;
  if (a->kind() == XType::Kind::kAnyItem || b->kind() == XType::Kind::kAnyItem) {
    return true;
  }
  if (a->kind() == XType::Kind::kError || b->kind() == XType::Kind::kError) {
    return false;
  }
  if (a->kind() == XType::Kind::kAnyNode) {
    return b->kind() == XType::Kind::kElement ||
           b->kind() == XType::Kind::kAttribute ||
           b->kind() == XType::Kind::kAnyNode;
  }
  if (b->kind() == XType::Kind::kAnyNode) return ItemIntersects(b, a);
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case XType::Kind::kAtomic:
      return AtomicIntersects(a->atomic_type(), b->atomic_type());
    case XType::Kind::kElement: {
      if (!xml::NameMatches(a->name(), b->name())) return false;
      if (a->has_any_content() || b->has_any_content()) return true;
      if (a->has_simple_content() != b->has_simple_content()) return false;
      if (a->has_simple_content()) {
        return AtomicIntersects(a->atomic_type(), b->atomic_type());
      }
      // Complex content: required particles on either side must intersect.
      for (const auto& f : a->fields()) {
        const ElementField* g = b->FindField(f.name);
        if (g == nullptr) {
          if (!f.type.allows_empty()) return false;
          continue;
        }
        if (!Intersects(f.type, g->type)) return false;
      }
      for (const auto& g : b->fields()) {
        if (a->FindField(g.name) == nullptr && !g.type.allows_empty()) {
          return false;
        }
      }
      return true;
    }
    case XType::Kind::kAttribute:
      return xml::NameMatches(a->name(), b->name()) &&
             AtomicIntersects(a->atomic_type(), b->atomic_type());
    default:
      return false;
  }
}

bool Intersects(const SequenceType& a, const SequenceType& b) {
  if (a.is_empty_sequence()) return b.allows_empty();
  if (b.is_empty_sequence()) return a.allows_empty();
  // Both allow empty => the empty sequence witnesses the intersection.
  if (a.allows_empty() && b.allows_empty()) return true;
  return ItemIntersects(a.item, b.item);
}

Occurrence OccurrenceUnion(Occurrence a, Occurrence b) {
  auto low = [](Occurrence o) {
    return o == Occurrence::kOptional || o == Occurrence::kStar ? 0 : 1;
  };
  auto high = [](Occurrence o) {
    return o == Occurrence::kStar || o == Occurrence::kPlus ? 2 : 1;
  };
  int lo = std::min(low(a), low(b));
  int hi = std::max(high(a), high(b));
  if (lo == 0) return hi == 2 ? Occurrence::kStar : Occurrence::kOptional;
  return hi == 2 ? Occurrence::kPlus : Occurrence::kOne;
}

Occurrence OccurrenceProduct(Occurrence a, Occurrence b) {
  auto low = [](Occurrence o) {
    return o == Occurrence::kOptional || o == Occurrence::kStar ? 0 : 1;
  };
  auto high = [](Occurrence o) {
    return o == Occurrence::kStar || o == Occurrence::kPlus ? 2 : 1;
  };
  int lo = low(a) * low(b);
  int hi = high(a) * high(b);
  if (lo == 0) return hi >= 2 ? Occurrence::kStar : Occurrence::kOptional;
  return hi >= 2 ? Occurrence::kPlus : Occurrence::kOne;
}

Occurrence MakeOptional(Occurrence o) {
  switch (o) {
    case Occurrence::kOne:
      return Occurrence::kOptional;
    case Occurrence::kPlus:
      return Occurrence::kStar;
    default:
      return o;
  }
}

SequenceType CommonSupertype(const SequenceType& a, const SequenceType& b) {
  if (a.is_empty_sequence() && b.is_empty_sequence()) return a;
  if (a.is_empty_sequence()) {
    return {b.item, MakeOptional(b.occurrence)};
  }
  if (b.is_empty_sequence()) {
    return {a.item, MakeOptional(a.occurrence)};
  }
  Occurrence occ = OccurrenceUnion(a.occurrence, b.occurrence);
  if (IsItemSubtype(a.item, b.item)) return {b.item, occ};
  if (IsItemSubtype(b.item, a.item)) return {a.item, occ};
  if (a.item->kind() == XType::Kind::kAtomic &&
      b.item->kind() == XType::Kind::kAtomic) {
    // Numeric promotion to decimal/double where sensible.
    xml::AtomicType at = a.item->atomic_type();
    xml::AtomicType bt = b.item->atomic_type();
    if (xml::IsNumeric(at) && xml::IsNumeric(bt)) {
      xml::AtomicType wide = (at == xml::AtomicType::kDouble ||
                              bt == xml::AtomicType::kDouble)
                                 ? xml::AtomicType::kDouble
                                 : xml::AtomicType::kDecimal;
      return {XType::Atomic(wide), occ};
    }
  }
  return {XType::AnyItem(), occ};
}

xml::AtomicType AtomizedType(const SequenceType& t) {
  if (t.is_empty_sequence() || !t.item) return xml::AtomicType::kUntyped;
  switch (t.item->kind()) {
    case XType::Kind::kAtomic:
      return t.item->atomic_type();
    case XType::Kind::kElement:
      if (t.item->has_simple_content()) return t.item->atomic_type();
      return xml::AtomicType::kUntyped;
    case XType::Kind::kAttribute:
      return t.item->atomic_type();
    default:
      return xml::AtomicType::kUntyped;
  }
}

void SchemaRegistry::Register(const std::string& name, TypePtr type) {
  for (auto& e : entries_) {
    if (e.first == name) {
      e.second = std::move(type);
      return;
    }
  }
  entries_.emplace_back(name, std::move(type));
}

TypePtr SchemaRegistry::Lookup(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.first == name || xml::LocalName(e.first) == xml::LocalName(name)) {
      return e.second;
    }
  }
  return nullptr;
}

}  // namespace aldsp::xsd
