#ifndef ALDSP_XSD_VALIDATE_H_
#define ALDSP_XSD_VALIDATE_H_

#include "common/result.h"
#include "xml/node.h"
#include "xsd/types.h"

namespace aldsp::xsd {

/// Validates an (untyped) node tree against an element type, producing a
/// typed copy: text content is cast to the declared atomic types, missing
/// optional particles are accepted, missing required particles or
/// uncastable values are errors. This is what the file and web-service
/// adaptors do at the ALDSP boundary (paper §5.3: "data coming from Web
/// services is validated according to the schema described in their WSDL
/// in order to create typed token streams").
Result<xml::NodePtr> ValidateAndType(const xml::XNode& node,
                                     const TypePtr& type);

/// Checks a (typed) node tree against a type without modifying it.
Status CheckAgainst(const xml::XNode& node, const TypePtr& type);

/// Infers the structural type of an existing typed node tree (used by
/// tests and by SDO ingestion).
TypePtr InferNodeType(const xml::XNode& node);

}  // namespace aldsp::xsd

#endif  // ALDSP_XSD_VALIDATE_H_
