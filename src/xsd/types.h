#ifndef ALDSP_XSD_TYPES_H_
#define ALDSP_XSD_TYPES_H_

#include <memory>
#include <string>
#include <vector>

#include "xml/value.h"

namespace aldsp::xsd {

class XType;
using TypePtr = std::shared_ptr<const XType>;

/// Occurrence indicator of a sequence type.
enum class Occurrence {
  kOne,       // exactly one
  kOptional,  // ? (zero or one)
  kStar,      // * (zero or more)
  kPlus,      // + (one or more)
};

/// A sequence type: item type + occurrence. kEmpty is encoded as a null
/// item type with occurrence kOptional ("empty-sequence()").
struct SequenceType {
  TypePtr item;  // null => empty-sequence()
  Occurrence occurrence = Occurrence::kOne;

  bool is_empty_sequence() const { return item == nullptr; }
  bool allows_empty() const {
    return is_empty_sequence() || occurrence == Occurrence::kOptional ||
           occurrence == Occurrence::kStar;
  }
  bool allows_many() const {
    return !is_empty_sequence() && (occurrence == Occurrence::kStar ||
                                    occurrence == Occurrence::kPlus);
  }
  std::string ToString() const;
};

/// A named child-element particle inside an element's content model.
struct ElementField {
  std::string name;
  SequenceType type;
};

/// Item types. ALDSP applies STRUCTURAL typing (paper §3.1): an element
/// type carries the structural type of its content, so constructing an
/// element around typed data and later navigating into it loses no type
/// information — the property that makes view unfolding effective.
class XType {
 public:
  enum class Kind {
    kAnyItem,     // item()
    kAnyNode,     // node()
    kAtomic,      // xs:string etc.
    kElement,     // element(NAME) with structural content
    kAttribute,   // attribute(NAME) with atomic content
    kError,       // type-check error placeholder (design-time recovery)
  };

  static TypePtr AnyItem();
  static TypePtr AnyNode();
  static TypePtr Atomic(xml::AtomicType t);
  /// Element with simple typed content (<CID>xs:string</CID>).
  static TypePtr SimpleElement(std::string name, xml::AtomicType content);
  /// Element with complex content: sequence of child-element particles.
  static TypePtr ComplexElement(std::string name,
                                std::vector<ElementField> fields,
                                std::vector<ElementField> attributes = {});
  /// Element with unconstrained content — element(NAME, ANYTYPE).
  static TypePtr AnyElement(std::string name);
  static TypePtr AttributeType(std::string name, xml::AtomicType content);
  static TypePtr Error(std::string message);

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  xml::AtomicType atomic_type() const { return atomic_; }
  bool has_simple_content() const { return simple_content_; }
  bool has_any_content() const { return any_content_; }
  const std::vector<ElementField>& fields() const { return fields_; }
  const std::vector<ElementField>& attributes() const { return attributes_; }
  const std::string& error_message() const { return name_; }

  /// Looks up a child particle by (local) name; nullptr if absent.
  const ElementField* FindField(const std::string& name) const;
  const ElementField* FindAttribute(const std::string& name) const;

  std::string ToString() const;

 private:
  explicit XType(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;  // element/attribute name, or error message
  xml::AtomicType atomic_ = xml::AtomicType::kUntyped;
  bool simple_content_ = false;
  bool any_content_ = false;
  std::vector<ElementField> fields_;
  std::vector<ElementField> attributes_;
};

/// Sequence-type helpers.
SequenceType EmptySequenceType();
SequenceType One(TypePtr t);
SequenceType Opt(TypePtr t);
SequenceType Star(TypePtr t);
SequenceType Plus(TypePtr t);

/// item()* — the maximally permissive type.
SequenceType AnySequence();

/// Subtype test on item types (structural for elements).
bool IsItemSubtype(const TypePtr& sub, const TypePtr& super);
/// Subtype test on sequence types (item subtype + occurrence containment).
bool IsSubtype(const SequenceType& sub, const SequenceType& super);

/// Non-empty intersection test used by ALDSP's optimistic static typing
/// rule (paper §4.1): f($x) is statically valid iff type($x) intersects
/// f's parameter type; a runtime typematch is inserted unless type($x) is
/// a proper subtype.
bool Intersects(const SequenceType& a, const SequenceType& b);
bool ItemIntersects(const TypePtr& a, const TypePtr& b);

/// Occurrence algebra used by type inference.
Occurrence OccurrenceUnion(Occurrence a, Occurrence b);
/// Occurrence of a `for`-body result iterated over a binding sequence.
Occurrence OccurrenceProduct(Occurrence a, Occurrence b);
/// Widens to include the empty sequence (e.g. result of a where clause).
Occurrence MakeOptional(Occurrence o);

/// Least common supertype of two sequence types (used for if/else and
/// sequence concatenation inference). Falls back to item()* on mismatch.
SequenceType CommonSupertype(const SequenceType& a, const SequenceType& b);

/// Atomization type: the atomic type obtained by fn:data on the given
/// sequence type (element simple content, attribute content, or the atomic
/// type itself); untypedAtomic if unknown.
xml::AtomicType AtomizedType(const SequenceType& t);

/// Named-shape registry: maps schema element names ("ns0:PROFILE") to
/// their (structural) element types. Used for data-service shapes.
class SchemaRegistry {
 public:
  void Register(const std::string& name, TypePtr type);
  TypePtr Lookup(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, TypePtr>> entries_;
};

}  // namespace aldsp::xsd

#endif  // ALDSP_XSD_TYPES_H_
