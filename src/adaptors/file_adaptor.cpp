#include "adaptors/file_adaptor.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xsd/validate.h"

namespace aldsp::adaptors {

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::SourceError("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

Status FileAdaptor::RegisterXmlContent(const std::string& function,
                                       const std::string& xml_text,
                                       const xsd::TypePtr& item_schema) {
  ALDSP_ASSIGN_OR_RETURN(xml::NodePtr root, xml::ParseXml(xml_text));
  xml::Sequence items;
  if (item_schema != nullptr &&
      xml::NameMatches(root->name(), item_schema->name())) {
    ALDSP_ASSIGN_OR_RETURN(xml::NodePtr typed,
                           xsd::ValidateAndType(*root, item_schema));
    items.emplace_back(std::move(typed));
  } else if (item_schema != nullptr) {
    for (const auto& child : root->children()) {
      if (child->kind() != xml::NodeKind::kElement) continue;
      ALDSP_ASSIGN_OR_RETURN(xml::NodePtr typed,
                             xsd::ValidateAndType(*child, item_schema));
      items.emplace_back(std::move(typed));
    }
  } else {
    items.emplace_back(std::move(root));
  }
  content_[function] = std::move(items);
  return Status::OK();
}

Status FileAdaptor::RegisterXmlFile(const std::string& function,
                                    const std::string& path,
                                    const xsd::TypePtr& item_schema) {
  ALDSP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return RegisterXmlContent(function, text, item_schema);
}

Status FileAdaptor::RegisterCsvContent(
    const std::string& function, const std::string& csv_text,
    const std::string& row_name,
    const std::vector<xml::AtomicType>& column_types) {
  std::vector<std::string> lines;
  for (auto& line : Split(csv_text, '\n')) {
    if (!Trim(line).empty()) lines.push_back(std::string(Trim(line)));
  }
  if (lines.empty()) {
    return Status::SourceError("CSV content has no header line");
  }
  std::vector<std::string> header = Split(lines[0], ',');
  if (header.size() != column_types.size()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns but " + std::to_string(column_types.size()) +
        " types were declared");
  }
  xml::Sequence items;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> fields = Split(lines[i], ',');
    if (fields.size() != header.size()) {
      return Status::SourceError("CSV record " + std::to_string(i) +
                                 " has wrong field count");
    }
    xml::NodePtr row = xml::XNode::Element(row_name);
    for (size_t c = 0; c < fields.size(); ++c) {
      std::string field = std::string(Trim(fields[c]));
      if (field.empty()) continue;  // empty field -> missing element
      ALDSP_ASSIGN_OR_RETURN(
          xml::AtomicValue typed,
          xml::AtomicValue::Untyped(field).CastTo(column_types[c]));
      row->AddChild(
          xml::XNode::TypedElement(std::string(Trim(header[c])), typed));
    }
    items.emplace_back(std::move(row));
  }
  content_[function] = std::move(items);
  return Status::OK();
}

Status FileAdaptor::RegisterCsvFile(
    const std::string& function, const std::string& path,
    const std::string& row_name,
    const std::vector<xml::AtomicType>& column_types) {
  ALDSP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return RegisterCsvContent(function, text, row_name, column_types);
}

Result<xml::Sequence> FileAdaptor::Invoke(
    const std::string& function, const std::vector<xml::Sequence>& args) {
  (void)args;
  auto it = content_.find(function);
  if (it == content_.end()) {
    return Status::NotFound("no file registered for function: " + function);
  }
  return it->second;
}

}  // namespace aldsp::adaptors
