#include "adaptors/webservice_adaptor.h"

#include <chrono>
#include <thread>

#include "xsd/validate.h"

namespace aldsp::adaptors {

void SimulatedWebService::RegisterOperation(const std::string& function,
                                            Handler handler,
                                            int64_t latency_millis,
                                            xsd::TypePtr result_schema) {
  std::lock_guard<std::mutex> lock(mutex_);
  operations_[function] = {std::move(handler), latency_millis,
                           std::move(result_schema)};
}

void SimulatedWebService::SetLatency(const std::string& function,
                                     int64_t latency_millis) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = operations_.find(function);
  if (it != operations_.end()) it->second.latency_millis = latency_millis;
}

Result<xml::Sequence> SimulatedWebService::Invoke(
    const std::string& function, const std::vector<xml::Sequence>& args) {
  Operation op;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = operations_.find(function);
    if (it == operations_.end()) {
      return Status::NotFound("web service " + source_id_ +
                              " has no operation " + function);
    }
    op = it->second;
  }
  invocations_ += 1;
  int expected = fail_next_.load();
  while (expected > 0) {
    if (fail_next_.compare_exchange_weak(expected, expected - 1)) {
      return Status::SourceError("web service " + source_id_ +
                                 " is unavailable");
    }
  }
  if (op.latency_millis > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(op.latency_millis));
  }
  ALDSP_ASSIGN_OR_RETURN(xml::Sequence result, op.handler(args));
  if (op.result_schema != nullptr) {
    xml::Sequence validated;
    for (const auto& item : result) {
      if (!item.is_node()) {
        return Status::SourceError("web service result is not an element");
      }
      ALDSP_ASSIGN_OR_RETURN(
          xml::NodePtr typed,
          xsd::ValidateAndType(*item.node(), op.result_schema));
      validated.emplace_back(std::move(typed));
    }
    return validated;
  }
  return result;
}

}  // namespace aldsp::adaptors
