#ifndef ALDSP_ADAPTORS_DIRECTORY_ADAPTOR_H_
#define ALDSP_ADAPTORS_DIRECTORY_ADAPTOR_H_

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "runtime/adaptor.h"

namespace aldsp::adaptors {

/// An LDAP-like directory source demonstrating the extensible pushdown
/// framework of the paper's §9 roadmap. Entries are flat attribute maps;
/// the source declares which comparison operators it can evaluate, and
/// the pushdown phase ships matching filter conjuncts to it so that only
/// matching entries cross the wire (`entries_shipped` vs a full scan).
class DirectoryAdaptor : public runtime::Adaptor {
 public:
  using Entry = std::map<std::string, xml::AtomicValue>;

  /// `pushable_ops`: operators this directory can evaluate natively
  /// (subset of eq, ne, lt, le, gt, ge). LDAP, for instance, has equality
  /// and ordering matches but no general inequality.
  DirectoryAdaptor(std::string source_id, std::string entry_name,
                   std::set<std::string> pushable_ops = {"eq", "le", "ge"})
      : source_id_(std::move(source_id)),
        entry_name_(std::move(entry_name)),
        pushable_ops_(std::move(pushable_ops)) {}

  const std::string& source_id() const override { return source_id_; }
  const std::set<std::string>& pushable_ops() const { return pushable_ops_; }

  void AddEntry(Entry entry);

  /// Unfiltered invocation: ships every entry (the fallback when nothing
  /// could be pushed).
  Result<xml::Sequence> Invoke(
      const std::string& function,
      const std::vector<xml::Sequence>& args) override;

  /// Pushed-filter invocation: evaluates the conjuncts natively.
  Result<xml::Sequence> InvokeFiltered(
      const xquery::CustomQuerySpec& spec,
      const std::vector<xml::AtomicValue>& params) override;

  int64_t entries_shipped() const { return entries_shipped_.load(); }
  int64_t invocations() const { return invocations_.load(); }
  int64_t filtered_invocations() const { return filtered_invocations_.load(); }
  void ResetStats() {
    entries_shipped_ = 0;
    invocations_ = 0;
    filtered_invocations_ = 0;
  }

 private:
  xml::Sequence ToItems(const std::vector<const Entry*>& entries);

  std::string source_id_;
  std::string entry_name_;
  std::set<std::string> pushable_ops_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::atomic<int64_t> entries_shipped_{0};
  std::atomic<int64_t> invocations_{0};
  std::atomic<int64_t> filtered_invocations_{0};
};

}  // namespace aldsp::adaptors

#endif  // ALDSP_ADAPTORS_DIRECTORY_ADAPTOR_H_
