#ifndef ALDSP_ADAPTORS_FILE_ADAPTOR_H_
#define ALDSP_ADAPTORS_FILE_ADAPTOR_H_

#include <map>
#include <string>
#include <vector>

#include "runtime/adaptor.h"
#include "xsd/types.h"

namespace aldsp::adaptors {

/// Adaptor for non-queryable file sources: XML documents and delimited
/// (CSV) files (paper §2.2/§5.3). The full content is loaded and —
/// because schemas are required at registration time — validated into
/// typed items. Functions are zero-argument and return the file content.
class FileAdaptor : public runtime::Adaptor {
 public:
  explicit FileAdaptor(std::string source_id)
      : source_id_(std::move(source_id)) {}

  const std::string& source_id() const override { return source_id_; }

  /// Registers an XML document from text. The document's root must match
  /// `item_schema` when its name does, otherwise each child of the root
  /// is validated against `item_schema` and the function returns the
  /// sequence of children (the common "list document" layout).
  Status RegisterXmlContent(const std::string& function,
                            const std::string& xml_text,
                            const xsd::TypePtr& item_schema);
  /// Same, reading from a file on disk.
  Status RegisterXmlFile(const std::string& function, const std::string& path,
                         const xsd::TypePtr& item_schema);

  /// Registers a CSV file (first line = header). Each record becomes a
  /// <row_name> element whose children are named by the header and typed
  /// by `column_types` (parallel to the header columns).
  Status RegisterCsvContent(const std::string& function,
                            const std::string& csv_text,
                            const std::string& row_name,
                            const std::vector<xml::AtomicType>& column_types);
  Status RegisterCsvFile(const std::string& function, const std::string& path,
                         const std::string& row_name,
                         const std::vector<xml::AtomicType>& column_types);

  Result<xml::Sequence> Invoke(
      const std::string& function,
      const std::vector<xml::Sequence>& args) override;

 private:
  std::string source_id_;
  std::map<std::string, xml::Sequence> content_;
};

}  // namespace aldsp::adaptors

#endif  // ALDSP_ADAPTORS_FILE_ADAPTOR_H_
