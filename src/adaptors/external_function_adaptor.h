#ifndef ALDSP_ADAPTORS_EXTERNAL_FUNCTION_ADAPTOR_H_
#define ALDSP_ADAPTORS_EXTERNAL_FUNCTION_ADAPTOR_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "runtime/adaptor.h"

namespace aldsp::adaptors {

/// Adaptor for registered native functions — the C++ equivalent of the
/// "externally provided Java functions" of paper §4.5 (e.g. int2date /
/// date2int). Handlers receive and return XQuery item sequences.
class ExternalFunctionAdaptor : public runtime::Adaptor {
 public:
  using Handler = std::function<Result<xml::Sequence>(
      const std::vector<xml::Sequence>& args)>;

  explicit ExternalFunctionAdaptor(std::string source_id)
      : source_id_(std::move(source_id)) {}

  const std::string& source_id() const override { return source_id_; }

  void Register(const std::string& function, Handler handler);

  Result<xml::Sequence> Invoke(
      const std::string& function,
      const std::vector<xml::Sequence>& args) override;

 private:
  std::string source_id_;
  mutable std::mutex mutex_;
  std::map<std::string, Handler> handlers_;
};

/// Convenience handlers for the paper's running transformation example:
/// int2date converts epoch seconds to xs:dateTime, date2int the reverse.
ExternalFunctionAdaptor::Handler MakeInt2DateHandler();
ExternalFunctionAdaptor::Handler MakeDate2IntHandler();

}  // namespace aldsp::adaptors

#endif  // ALDSP_ADAPTORS_EXTERNAL_FUNCTION_ADAPTOR_H_
