#include "adaptors/external_function_adaptor.h"

namespace aldsp::adaptors {

void ExternalFunctionAdaptor::Register(const std::string& function,
                                       Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[function] = std::move(handler);
}

Result<xml::Sequence> ExternalFunctionAdaptor::Invoke(
    const std::string& function, const std::vector<xml::Sequence>& args) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handlers_.find(function);
    if (it == handlers_.end()) {
      return Status::NotFound("no external function registered: " + function);
    }
    handler = it->second;
  }
  return handler(args);
}

namespace {

Result<xml::AtomicValue> SingleAtomic(const std::vector<xml::Sequence>& args) {
  if (args.size() != 1) {
    return Status::InvalidArgument("expected one argument");
  }
  xml::Sequence data = xml::Atomize(args[0]);
  if (data.size() != 1) {
    return Status::InvalidArgument("expected a single atomic value");
  }
  return data.front().atomic();
}

}  // namespace

ExternalFunctionAdaptor::Handler MakeInt2DateHandler() {
  return [](const std::vector<xml::Sequence>& args) -> Result<xml::Sequence> {
    ALDSP_ASSIGN_OR_RETURN(xml::AtomicValue v, SingleAtomic(args));
    ALDSP_ASSIGN_OR_RETURN(xml::AtomicValue secs,
                           v.CastTo(xml::AtomicType::kInteger));
    return xml::Sequence{
        xml::Item(xml::AtomicValue::DateTime(secs.AsInteger()))};
  };
}

ExternalFunctionAdaptor::Handler MakeDate2IntHandler() {
  return [](const std::vector<xml::Sequence>& args) -> Result<xml::Sequence> {
    ALDSP_ASSIGN_OR_RETURN(xml::AtomicValue v, SingleAtomic(args));
    ALDSP_ASSIGN_OR_RETURN(xml::AtomicValue dt,
                           v.CastTo(xml::AtomicType::kDateTime));
    return xml::Sequence{
        xml::Item(xml::AtomicValue::Integer(dt.AsDateTime()))};
  };
}

}  // namespace aldsp::adaptors
