#include "adaptors/relational_adaptor.h"

#include "runtime/evaluator.h"
#include "xml/node.h"

namespace aldsp::adaptors {

using relational::Cell;
using relational::SelectPtr;
using relational::SelectStmt;
using relational::SqlExpr;
using relational::TableDef;

Status RelationalAdaptor::RegisterTableFunction(const std::string& function,
                                                const std::string& table) {
  if (db_->catalog().FindTable(table) == nullptr) {
    return Status::NotFound("no such table: " + table);
  }
  table_fns_[function] = {table};
  return Status::OK();
}

Status RelationalAdaptor::RegisterNavigationFunction(
    const std::string& function, const std::string& table,
    const std::string& table_column, const std::string& arg_child) {
  const TableDef* def = db_->catalog().FindTable(table);
  if (def == nullptr) return Status::NotFound("no such table: " + table);
  if (def->ColumnIndex(table_column) < 0) {
    return Status::NotFound("no such column: " + table_column);
  }
  nav_fns_[function] = {table, table_column, arg_child};
  return Status::OK();
}

SelectPtr RelationalAdaptor::SelectAll(const TableDef& def,
                                       bool with_key_param,
                                       const std::string& key_column) const {
  auto s = std::make_shared<SelectStmt>();
  s->from = {def.name, nullptr, "t1"};
  for (const auto& col : def.columns) {
    s->items.push_back({SqlExpr::Column("t1", col.name), col.name});
  }
  if (with_key_param) {
    s->where = SqlExpr::Binary("=", SqlExpr::Column("t1", key_column),
                               SqlExpr::Param(0));
  }
  return s;
}

Result<xml::Sequence> RelationalAdaptor::Invoke(
    const std::string& function, const std::vector<xml::Sequence>& args) {
  auto tf = table_fns_.find(function);
  if (tf != table_fns_.end()) {
    const TableDef* def = db_->catalog().FindTable(tf->second.table);
    ALDSP_ASSIGN_OR_RETURN(relational::ResultSet rs,
                           db_->ExecuteSelect(*SelectAll(*def, false, "")));
    return runtime::RowsToItems(rs, def->name);
  }
  auto nf = nav_fns_.find(function);
  if (nf != nav_fns_.end()) {
    if (args.size() != 1 || args[0].empty() || !args[0].front().is_node()) {
      return Status::InvalidArgument(
          "navigation function " + function +
          " requires a single row-element argument");
    }
    const xml::NodePtr& row = args[0].front().node();
    xml::NodePtr key = row->FirstChildNamed(nf->second.arg_child);
    if (key == nullptr) return xml::Sequence{};  // NULL key: no related rows
    const TableDef* def = db_->catalog().FindTable(nf->second.table);
    ALDSP_ASSIGN_OR_RETURN(
        relational::ResultSet rs,
        db_->ExecuteSelect(*SelectAll(*def, true, nf->second.table_column),
                           {Cell::Of(key->TypedValue())}));
    return runtime::RowsToItems(rs, def->name);
  }
  return Status::NotFound("function not registered with adaptor " +
                          source_id_ + ": " + function);
}

}  // namespace aldsp::adaptors
