#ifndef ALDSP_ADAPTORS_RELATIONAL_ADAPTOR_H_
#define ALDSP_ADAPTORS_RELATIONAL_ADAPTOR_H_

#include <map>
#include <memory>
#include <string>

#include "relational/engine.h"
#include "runtime/adaptor.h"

namespace aldsp::adaptors {

/// Adaptor for a queryable relational source (paper §5.3). Each table of
/// the backing database is surfaced as a zero-argument function returning
/// row elements; foreign keys surface as one-argument navigation
/// functions that fetch the related rows for a given row element
/// (paper §2.1). Pushed-down SQL bypasses Invoke and executes through
/// database() directly.
class RelationalAdaptor : public runtime::Adaptor {
 public:
  RelationalAdaptor(std::string source_id,
                    std::shared_ptr<relational::Database> db)
      : source_id_(std::move(source_id)), db_(std::move(db)) {}

  const std::string& source_id() const override { return source_id_; }
  relational::Database* database() override { return db_.get(); }

  /// Maps `function` to SELECT * FROM `table`.
  Status RegisterTableFunction(const std::string& function,
                               const std::string& table);

  /// Maps `function($row)` to SELECT * FROM `table` WHERE `table_column`
  /// equals the value of the argument row's `arg_child` child element.
  Status RegisterNavigationFunction(const std::string& function,
                                    const std::string& table,
                                    const std::string& table_column,
                                    const std::string& arg_child);

  Result<xml::Sequence> Invoke(
      const std::string& function,
      const std::vector<xml::Sequence>& args) override;

 private:
  struct TableFn {
    std::string table;
  };
  struct NavFn {
    std::string table;
    std::string table_column;
    std::string arg_child;
  };

  relational::SelectPtr SelectAll(const relational::TableDef& def,
                                  bool with_key_param,
                                  const std::string& key_column) const;

  std::string source_id_;
  std::shared_ptr<relational::Database> db_;
  std::map<std::string, TableFn> table_fns_;
  std::map<std::string, NavFn> nav_fns_;
};

}  // namespace aldsp::adaptors

#endif  // ALDSP_ADAPTORS_RELATIONAL_ADAPTOR_H_
