#include "adaptors/directory_adaptor.h"

#include "xml/node.h"

namespace aldsp::adaptors {

void DirectoryAdaptor::AddEntry(Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(entry));
}

xml::Sequence DirectoryAdaptor::ToItems(
    const std::vector<const Entry*>& entries) {
  xml::Sequence out;
  out.reserve(entries.size());
  for (const Entry* entry : entries) {
    xml::NodePtr el = xml::XNode::Element(entry_name_);
    for (const auto& [attr, value] : *entry) {
      el->AddChild(xml::XNode::TypedElement(attr, value));
    }
    out.emplace_back(std::move(el));
  }
  entries_shipped_ += static_cast<int64_t>(entries.size());
  return out;
}

Result<xml::Sequence> DirectoryAdaptor::Invoke(
    const std::string& function, const std::vector<xml::Sequence>& args) {
  (void)function;
  (void)args;
  invocations_ += 1;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Entry*> all;
  for (const auto& e : entries_) all.push_back(&e);
  return ToItems(all);
}

Result<xml::Sequence> DirectoryAdaptor::InvokeFiltered(
    const xquery::CustomQuerySpec& spec,
    const std::vector<xml::AtomicValue>& params) {
  invocations_ += 1;
  filtered_invocations_ += 1;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Entry*> matches;
  for (const auto& entry : entries_) {
    bool ok = true;
    for (const auto& conjunct : spec.conjuncts) {
      if (pushable_ops_.count(conjunct.op) == 0) {
        return Status::InvalidArgument("operator not supported by source " +
                                       source_id_ + ": " + conjunct.op);
      }
      if (conjunct.param_index < 0 ||
          conjunct.param_index >= static_cast<int>(params.size())) {
        return Status::InvalidArgument("pushed filter parameter missing");
      }
      auto it = entry.find(conjunct.attribute);
      if (it == entry.end()) {
        ok = false;  // absent attribute matches nothing
        break;
      }
      auto cmp = it->second.Compare(params[conjunct.param_index]);
      if (!cmp.ok()) {
        ok = false;
        break;
      }
      int c = cmp.value();
      const std::string& op = conjunct.op;
      bool match = (op == "eq" && c == 0) || (op == "ne" && c != 0) ||
                   (op == "lt" && c < 0) || (op == "le" && c <= 0) ||
                   (op == "gt" && c > 0) || (op == "ge" && c >= 0);
      if (!match) {
        ok = false;
        break;
      }
    }
    if (ok) matches.push_back(&entry);
  }
  return ToItems(matches);
}

}  // namespace aldsp::adaptors
