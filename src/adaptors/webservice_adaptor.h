#ifndef ALDSP_ADAPTORS_WEBSERVICE_ADAPTOR_H_
#define ALDSP_ADAPTORS_WEBSERVICE_ADAPTOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "runtime/adaptor.h"
#include "xsd/types.h"

namespace aldsp::adaptors {

/// A simulated web service source. The paper's experiments depend on web
/// services being *slow* and *sometimes unavailable* (async §5.4,
/// fail-over §5.6, function cache §5.5); this adaptor makes latency and
/// failures injectable per operation while exercising the same adaptor
/// code path as a real document-style service: arguments and results are
/// schema-validated typed XML.
class SimulatedWebService : public runtime::Adaptor {
 public:
  using Handler = std::function<Result<xml::Sequence>(
      const std::vector<xml::Sequence>& args)>;

  explicit SimulatedWebService(std::string source_id)
      : source_id_(std::move(source_id)) {}

  const std::string& source_id() const override { return source_id_; }

  /// Registers a service operation. `latency_millis` is slept on every
  /// invocation (the simulated network + service time). If
  /// `result_schema` is non-null, results are validated and typed
  /// against it (paper §5.3: WSDL-schema validation on the way in).
  void RegisterOperation(const std::string& function, Handler handler,
                         int64_t latency_millis = 0,
                         xsd::TypePtr result_schema = nullptr);

  /// The next `n` invocations of any operation fail with SourceError.
  void FailNextCalls(int n) { fail_next_ = n; }
  /// Overrides latency for one operation (e.g. to simulate degradation).
  void SetLatency(const std::string& function, int64_t latency_millis);

  int64_t invocation_count() const { return invocations_.load(); }

  Result<xml::Sequence> Invoke(
      const std::string& function,
      const std::vector<xml::Sequence>& args) override;

 private:
  struct Operation {
    Handler handler;
    int64_t latency_millis;
    xsd::TypePtr result_schema;
  };

  std::string source_id_;
  mutable std::mutex mutex_;
  std::map<std::string, Operation> operations_;
  std::atomic<int> fail_next_{0};
  std::atomic<int64_t> invocations_{0};
};

}  // namespace aldsp::adaptors

#endif  // ALDSP_ADAPTORS_WEBSERVICE_ADAPTOR_H_
