#ifndef ALDSP_OBSERVABILITY_TIMELINE_H_
#define ALDSP_OBSERVABILITY_TIMELINE_H_

// Runtime-neutral timeline model. `runtime::QueryTrace::BuildTimeline()`
// converts a timeline-mode trace into these structs so the observability
// consumers (critical-path analyzer, Chrome trace exporter) can stay
// below the runtime layer in the link graph: aldsp_runtime depends on
// aldsp_observability, never the other way around.
//
// All timestamps are steady-clock microseconds relative to the trace
// origin (the moment the QueryTrace was constructed), so a timeline
// always starts near 0 and is directly usable as Chrome trace_event
// `ts` values.

#include <cstdint>
#include <string>
#include <vector>

namespace aldsp::observability {

/// One span on the timeline: an operator, FLWOR block or pool task.
struct TimelineSpan {
  int id = -1;
  int parent = -1;  ///< Parent span id, -1 for the root.
  std::string name;
  std::string detail;
  int lane = -1;  ///< Thread lane the span ran on (index into lanes).
  std::int64_t begin_micros = -1;
  std::int64_t end_micros = -1;
  /// Pool-task spans only: time spent queued before a worker (or an
  /// inline-stealing waiter) started running the task. -1 otherwise.
  std::int64_t queue_micros = -1;
  std::int64_t rows = 0;
  std::int64_t micros = 0;  ///< Cumulative self time (pre-timeline metric).
  std::int64_t bytes = 0;
  std::int64_t first_row_micros = -1;  ///< When the first row was produced.
  std::int64_t last_row_micros = -1;   ///< When the last row was produced.
};

/// One point or interval event: a source round trip, cache hit, task wait.
struct TimelineEvent {
  std::string name;    ///< Event kind name ("sql", "ppk-fetch", ...).
  std::string source;  ///< Data source id, empty for engine-local events.
  std::string detail;
  int span = -1;  ///< Enclosing span id at record time.
  int lane = -1;  ///< Thread lane the event was recorded on.
  /// Completion timestamp; the event covers [at - dur, at].
  std::int64_t at_micros = -1;
  std::int64_t dur_micros = 0;
  std::int64_t rows = 0;
  /// Relational source events split dur into the LatencyModel components:
  /// one round trip plus per-row transfer. roundtrip < 0 means the split
  /// is unknown and the whole duration counts as round trip.
  std::int64_t roundtrip_micros = -1;
  std::int64_t transfer_micros = 0;
  int ref_span = -1;     ///< Wait events: the task span being joined.
  bool is_source = false;  ///< A source round trip (sql/ppk/invoke/pushdown).
  bool is_wait = false;    ///< The recording thread blocked joining ref_span.
};

struct Timeline {
  int root = -1;  ///< Root span id (-1 when the trace recorded no spans).
  std::int64_t wall_micros = 0;  ///< Root span begin→end.
  std::vector<TimelineSpan> spans;
  std::vector<TimelineEvent> events;
  std::vector<std::string> lanes;  ///< Lane index → thread name.
};

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_TIMELINE_H_
