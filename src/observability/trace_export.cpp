#include "observability/trace_export.h"

#include <algorithm>
#include <cstdio>

#include "observability/json_util.h"

namespace aldsp::observability {
namespace {

void AppendInt(std::string* out, const char* key, std::int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key,
                static_cast<long long>(value));
  out->append(buf);
}

void AppendStr(std::string* out, const char* key, const std::string& value,
               size_t max_len = 200) {
  out->push_back('"');
  out->append(key);
  out->append("\":");
  if (value.size() <= max_len) {
    AppendJsonString(out, value);
  } else {
    AppendJsonString(out, value.substr(0, max_len) + "...");
  }
}

/// Opens one trace event with the common ph/pid/tid/name fields.
void BeginEvent(std::string* out, bool* first, const char* ph, int tid,
                const std::string& name) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("{\"ph\":\"");
  out->append(ph);
  out->append("\",\"pid\":1,");
  AppendInt(out, "tid", tid < 0 ? 0 : tid);
  out->push_back(',');
  AppendStr(out, "name", name);
}

}  // namespace

std::string ChromeTraceJson(const Timeline& timeline) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // Lane metadata: one named thread per engine lane, sorted so the
  // driving thread ("main") is on top in the Perfetto UI.
  BeginEvent(&out, &first, "M", 0, "process_name");
  out.append(",\"args\":{\"name\":\"aldsp query\"}}");
  for (size_t lane = 0; lane < timeline.lanes.size(); ++lane) {
    BeginEvent(&out, &first, "M", static_cast<int>(lane), "thread_name");
    out.append(",\"args\":{");
    AppendStr(&out, "name", timeline.lanes[lane]);
    out.append("}}");
    BeginEvent(&out, &first, "M", static_cast<int>(lane), "thread_sort_index");
    out.append(",\"args\":{");
    AppendInt(&out, "sort_index", static_cast<std::int64_t>(lane));
    out.append("}}");
  }

  std::int64_t window_end = timeline.wall_micros;
  for (const TimelineSpan& s : timeline.spans) {
    window_end = std::max(window_end, s.end_micros);
  }

  for (const TimelineSpan& s : timeline.spans) {
    std::int64_t begin = std::max<std::int64_t>(s.begin_micros, 0);
    std::int64_t end = s.end_micros >= begin ? s.end_micros
                                             : std::max(begin, window_end);
    BeginEvent(&out, &first, "X", s.lane, s.name);
    out.push_back(',');
    AppendInt(&out, "ts", begin);
    out.push_back(',');
    AppendInt(&out, "dur", end - begin);
    out.append(",\"args\":{");
    AppendInt(&out, "span", s.id);
    out.push_back(',');
    AppendInt(&out, "rows", s.rows);
    out.push_back(',');
    AppendInt(&out, "self_micros", s.micros);
    if (s.bytes > 0) {
      out.push_back(',');
      AppendInt(&out, "bytes", s.bytes);
    }
    if (s.queue_micros >= 0) {
      out.push_back(',');
      AppendInt(&out, "queue_micros", s.queue_micros);
    }
    if (s.first_row_micros >= 0) {
      out.push_back(',');
      AppendInt(&out, "first_row_ts", s.first_row_micros);
      out.push_back(',');
      AppendInt(&out, "last_row_ts", s.last_row_micros);
    }
    if (!s.detail.empty()) {
      out.push_back(',');
      AppendStr(&out, "detail", s.detail);
    }
    out.append("}}");

    // Queue-wait decomposition: a nested slice covering the time the
    // task sat in the pool queue before a thread picked it up.
    if (s.queue_micros > 0) {
      BeginEvent(&out, &first, "X", s.lane, s.name + " [queued]");
      out.append(",\"cat\":\"queue\",");
      AppendInt(&out, "ts", begin);
      out.push_back(',');
      AppendInt(&out, "dur", std::min(s.queue_micros, end - begin));
      out.append(",\"args\":{");
      AppendInt(&out, "span", s.id);
      out.append("}}");
    }
  }

  for (const TimelineEvent& e : timeline.events) {
    std::int64_t at = std::max<std::int64_t>(e.at_micros, 0);
    std::int64_t dur = std::max<std::int64_t>(e.dur_micros, 0);
    std::string name = e.name;
    if (!e.source.empty()) name += "[" + e.source + "]";
    const char* cat =
        e.is_wait ? "wait" : (e.is_source ? "source" : "event");
    if (dur > 0) {
      BeginEvent(&out, &first, "X", e.lane, name);
      out.append(",\"cat\":\"");
      out.append(cat);
      out.append("\",");
      AppendInt(&out, "ts", at - dur);
      out.push_back(',');
      AppendInt(&out, "dur", dur);
    } else {
      BeginEvent(&out, &first, "i", e.lane, name);
      out.append(",\"cat\":\"");
      out.append(cat);
      out.append("\",\"s\":\"t\",");
      AppendInt(&out, "ts", at);
      out.push_back(',');
      AppendInt(&out, "dur", 0);
    }
    out.append(",\"args\":{");
    AppendInt(&out, "span", e.span);
    out.push_back(',');
    AppendInt(&out, "rows", e.rows);
    if (e.roundtrip_micros >= 0) {
      out.push_back(',');
      AppendInt(&out, "roundtrip_micros", e.roundtrip_micros);
      out.push_back(',');
      AppendInt(&out, "transfer_micros", e.transfer_micros);
    }
    if (e.ref_span >= 0) {
      out.push_back(',');
      AppendInt(&out, "awaited_span", e.ref_span);
    }
    if (!e.detail.empty()) {
      out.push_back(',');
      AppendStr(&out, "detail", e.detail);
    }
    out.append("}}");
  }

  out.append("\n]}");
  return out;
}

}  // namespace aldsp::observability
