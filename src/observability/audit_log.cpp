#include "observability/audit_log.h"

#include <cstdio>

#include "observability/json_util.h"

namespace aldsp::observability {

int64_t ExecutionAuditLog::Append(AuditRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.seq = next_seq_++;
  int64_t seq = record.seq;
  if (sink_ != nullptr) sink_->Append(record);
  if (capacity_ == 0) return seq;
  if (ring_.size() >= capacity_) ring_.pop_front();
  ring_.push_back(std::move(record));
  return seq;
}

std::vector<AuditRecord> ExecutionAuditLog::Records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<AuditRecord>(ring_.begin(), ring_.end());
}

int64_t ExecutionAuditLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

void ExecutionAuditLog::SetSink(AuditSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

void ExecutionAuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
}

uint64_t ExecutionAuditLog::HashQuery(std::string_view text) {
  // FNV-1a 64-bit.
  uint64_t hash = 14695981039346656037ull;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string ExecutionAuditLog::RecordJson(const AuditRecord& r) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%lld,\"query_hash\":\"%016llx\","
                "\"fingerprint\":\"%llu\","
                "\"statement_fingerprint\":\"%llu\",",
                static_cast<long long>(r.seq),
                static_cast<unsigned long long>(r.query_hash),
                static_cast<unsigned long long>(r.fingerprint),
                static_cast<unsigned long long>(r.statement_fingerprint));
  out += buf;
  out += "\"query_head\":";
  AppendJsonString(&out, r.query_head);
  out += ",\"principal\":";
  AppendJsonString(&out, r.principal);
  out += ",\"outcome\":";
  AppendJsonString(&out, r.outcome);
  out += ",\"sources\":[";
  for (size_t i = 0; i < r.sources.size(); ++i) {
    if (i != 0) out += ",";
    AppendJsonString(&out, r.sources[i]);
  }
  out += "]";
  std::snprintf(
      buf, sizeof(buf),
      ",\"sql_pushdowns\":%lld,\"rows_returned\":%lld,"
      "\"bytes_returned\":%lld,\"wall_micros\":%lld,"
      "\"compile_micros\":%lld,\"plan_cache_hit\":%s,"
      "\"function_cache_hits\":%lld,\"function_cache_misses\":%lld,"
      "\"timeouts\":%lld,\"failovers\":%lld,\"security_denials\":%lld}",
      static_cast<long long>(r.sql_pushdowns),
      static_cast<long long>(r.rows_returned),
      static_cast<long long>(r.bytes_returned),
      static_cast<long long>(r.wall_micros),
      static_cast<long long>(r.compile_micros),
      r.plan_cache_hit ? "true" : "false",
      static_cast<long long>(r.function_cache_hits),
      static_cast<long long>(r.function_cache_misses),
      static_cast<long long>(r.timeouts),
      static_cast<long long>(r.failovers),
      static_cast<long long>(r.security_denials));
  out += buf;
  return out;
}

std::string ExecutionAuditLog::RenderJsonl(
    const std::vector<AuditRecord>& records) {
  std::string out;
  for (const AuditRecord& r : records) {
    out += RecordJson(r);
    out += "\n";
  }
  return out;
}

}  // namespace aldsp::observability
