#ifndef ALDSP_OBSERVABILITY_PLAN_HISTORY_H_
#define ALDSP_OBSERVABILITY_PLAN_HISTORY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "observability/histogram.h"

namespace aldsp::observability {

/// Why a compile produced a new plan version for a known statement.
enum class CompileTrigger : int {
  kColdCompile = 0,        // first compile of this statement
  kCacheEviction,          // recompile, advice inputs unchanged
  kCostModelAdviceChange,  // recompile after the ObservedCostModel's
                           // advice-relevant inputs changed
};

const char* CompileTriggerName(CompileTrigger t);

/// One plan version of a statement: the plan fingerprint the optimizer
/// produced, why it was produced, when it was active, and the latency
/// baseline accumulated while it ran. The EXPLAIN snapshot is retained
/// so a regression report can show what actually changed.
struct PlanVersion {
  uint64_t plan_fingerprint = 0;
  CompileTrigger trigger = CompileTrigger::kColdCompile;
  int64_t first_seen_micros = 0;  // wall-clock epoch micros at compile
  int64_t last_seen_micros = 0;   // last compile or execution
  int64_t compiles = 1;           // recompiles landing on this same shape
  int64_t calls = 0;              // executions recorded against it
  LatencyHistogram wall;          // per-version latency baseline
  std::string advice_snapshot;    // discretized cost-model inputs at compile
  std::string explain_text;       // rendered EXPLAIN at compile time
  bool regressed = false;         // sentinel already fired for this version
};

/// Bounded, oldest-first ring of plan versions for one statement.
struct StatementHistory {
  uint64_t statement_fingerprint = 0;
  std::string query_head;
  int64_t plan_changes = 0;  // version transitions, including rolled-off ones
  std::vector<PlanVersion> versions;
};

/// Emitted when a new plan version's latency baseline breaches the prior
/// version's. `explain_diff` is filled by the server (which owns the
/// EXPLAIN diff renderer) before the event is published back into the
/// history's regression ring.
struct PlanRegressionEvent {
  int64_t seq = 0;  // assigned by PublishRegression
  uint64_t statement_fingerprint = 0;
  std::string query_head;
  uint64_t regressed_plan_fingerprint = 0;
  uint64_t baseline_plan_fingerprint = 0;
  CompileTrigger trigger = CompileTrigger::kColdCompile;  // of the new plan
  int64_t regressed_calls = 0;
  int64_t baseline_calls = 0;
  int64_t regressed_mean_micros = 0;
  int64_t baseline_mean_micros = 0;
  int64_t regressed_p95_micros = 0;  // bucket-upper estimates
  int64_t baseline_p95_micros = 0;
  double ratio = 0.0;  // worst of mean / p95 ratios that tripped the check
  std::string regressed_explain;
  std::string baseline_explain;
  std::string explain_diff;  // structural EXPLAIN diff (server-rendered)
};

struct PlanHistoryOptions {
  size_t max_statements = 256;
  size_t max_versions_per_statement = 8;
  /// Calls a new version and its predecessor must each accumulate before
  /// the sentinel compares baselines.
  int64_t sentinel_min_calls = 8;
  /// Breach threshold: new mean >= ratio * old mean, or new p95-upper >=
  /// ratio * old p95-upper.
  double sentinel_ratio = 1.5;
  size_t max_regressions = 64;
};

/// Plan lifecycle plane: per-statement bounded rings of plan versions with
/// compile-trigger attribution, per-version latency baselines, and a
/// regression sentinel. PlanFingerprint hashes the plan *shape*, so when
/// the ObservedCostModel flips a plan the cumulative stats would silently
/// fork without this map from statement identity to its plan versions.
///
/// The sentinel protocol is split so this library stays independent of
/// the server's EXPLAIN renderer: RecordExecution returns a breach event
/// carrying both versions' EXPLAIN snapshots; the caller renders the diff
/// and hands the completed event back via PublishRegression.
class PlanHistory {
 public:
  explicit PlanHistory(PlanHistoryOptions options = {})
      : options_(options) {}

  /// Records a compile of `statement_fp` that produced `plan_fp`. The
  /// trigger is attributed internally: unknown statement -> cold compile;
  /// known statement with a new plan fingerprint -> cost-model-advice
  /// change when `advice_snapshot` differs from the previous version's,
  /// cache eviction otherwise. A recompile landing on the latest
  /// version's fingerprint only touches that version.
  void RecordCompile(uint64_t statement_fp, uint64_t plan_fp,
                     const std::string& query_head,
                     const std::string& advice_snapshot,
                     const std::string& explain_text);

  /// Records one finished execution against the statement's matching plan
  /// version. When the latest version and its predecessor both carry at
  /// least sentinel_min_calls calls and the latest breaches the ratio,
  /// returns the (un-published) regression event exactly once per
  /// version; the caller should render the EXPLAIN diff and call
  /// PublishRegression.
  std::optional<PlanRegressionEvent> RecordExecution(uint64_t statement_fp,
                                                     uint64_t plan_fp,
                                                     int64_t wall_micros);

  /// Appends a completed regression event to the bounded ring and assigns
  /// its sequence number. Returns the assigned sequence.
  int64_t PublishRegression(PlanRegressionEvent event);

  std::optional<StatementHistory> Statement(uint64_t statement_fp) const;
  /// All tracked statements, ordered by descending plan_changes then
  /// statement fingerprint (the statements that flip most float up).
  std::vector<StatementHistory> Snapshot() const;
  std::vector<PlanRegressionEvent> Regressions() const;

  int64_t statement_count() const;
  int64_t statement_evictions() const;
  int64_t plan_changes_total() const;
  int64_t regressions_total() const;

  void Reset();

  /// statement_fp == 0 renders every tracked statement.
  std::string RenderHistoryText(uint64_t statement_fp) const;
  std::string RenderHistoryJson(uint64_t statement_fp) const;
  std::string RenderRegressionsText() const;
  std::string RenderRegressionsJson() const;

 private:
  StatementHistory* FindOrCreateLocked(uint64_t statement_fp,
                                       const std::string& query_head);

  const PlanHistoryOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, StatementHistory> statements_;
  std::deque<PlanRegressionEvent> regressions_;
  int64_t statement_evictions_ = 0;
  int64_t plan_changes_total_ = 0;
  int64_t next_regression_seq_ = 0;
};

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_PLAN_HISTORY_H_
