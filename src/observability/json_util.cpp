#include "observability/json_util.h"

#include <cstdio>

namespace aldsp::observability {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace aldsp::observability
