#include "observability/plan_history.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "observability/json_util.h"

namespace aldsp::observability {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

int64_t LastSeen(const StatementHistory& s) {
  return s.versions.empty() ? 0 : s.versions.back().last_seen_micros;
}

}  // namespace

const char* CompileTriggerName(CompileTrigger t) {
  switch (t) {
    case CompileTrigger::kColdCompile:
      return "cold compile";
    case CompileTrigger::kCacheEviction:
      return "cache eviction";
    case CompileTrigger::kCostModelAdviceChange:
      return "cost-model-advice change";
  }
  return "unknown";
}

StatementHistory* PlanHistory::FindOrCreateLocked(
    uint64_t statement_fp, const std::string& query_head) {
  auto it = statements_.find(statement_fp);
  if (it != statements_.end()) return &it->second;
  if (statements_.size() >= options_.max_statements) {
    // Evict the statement that has gone longest without a compile or an
    // execution — lifecycle history is only useful for live statements.
    auto victim = statements_.begin();
    for (auto jt = statements_.begin(); jt != statements_.end(); ++jt) {
      if (LastSeen(jt->second) < LastSeen(victim->second)) victim = jt;
    }
    statements_.erase(victim);
    ++statement_evictions_;
  }
  StatementHistory fresh;
  fresh.statement_fingerprint = statement_fp;
  fresh.query_head = query_head;
  return &statements_.emplace(statement_fp, std::move(fresh)).first->second;
}

void PlanHistory::RecordCompile(uint64_t statement_fp, uint64_t plan_fp,
                                const std::string& query_head,
                                const std::string& advice_snapshot,
                                const std::string& explain_text) {
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  StatementHistory* s = FindOrCreateLocked(statement_fp, query_head);
  if (!s->versions.empty() &&
      s->versions.back().plan_fingerprint == plan_fp) {
    // Recompile landed on the same shape (e.g. eviction with unchanged
    // advice): touch the version, no transition.
    PlanVersion& latest = s->versions.back();
    ++latest.compiles;
    latest.last_seen_micros = now;
    latest.advice_snapshot = advice_snapshot;
    return;
  }
  PlanVersion v;
  v.plan_fingerprint = plan_fp;
  v.first_seen_micros = now;
  v.last_seen_micros = now;
  v.advice_snapshot = advice_snapshot;
  v.explain_text = explain_text;
  if (s->versions.empty()) {
    v.trigger = CompileTrigger::kColdCompile;
  } else {
    // New shape for a known statement: attribute to the cost model when
    // its advice-relevant inputs changed since the previous compile,
    // otherwise to a plan-cache eviction.
    v.trigger = (s->versions.back().advice_snapshot != advice_snapshot)
                    ? CompileTrigger::kCostModelAdviceChange
                    : CompileTrigger::kCacheEviction;
    ++s->plan_changes;
    ++plan_changes_total_;
  }
  if (s->versions.size() >= options_.max_versions_per_statement) {
    s->versions.erase(s->versions.begin());
  }
  s->versions.push_back(std::move(v));
}

std::optional<PlanRegressionEvent> PlanHistory::RecordExecution(
    uint64_t statement_fp, uint64_t plan_fp, int64_t wall_micros) {
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = statements_.find(statement_fp);
  if (it == statements_.end()) return std::nullopt;
  StatementHistory& s = it->second;
  // Executions almost always run the latest version; search from the back
  // (an older version can still drain during a concurrent flip).
  PlanVersion* v = nullptr;
  for (auto rit = s.versions.rbegin(); rit != s.versions.rend(); ++rit) {
    if (rit->plan_fingerprint == plan_fp) {
      v = &*rit;
      break;
    }
  }
  if (v == nullptr) return std::nullopt;
  ++v->calls;
  v->last_seen_micros = now;
  v->wall.Record(wall_micros);

  // Sentinel: only the latest version is compared, against its immediate
  // predecessor, and it fires at most once per version.
  if (options_.sentinel_min_calls <= 0) return std::nullopt;
  if (s.versions.size() < 2) return std::nullopt;
  PlanVersion& latest = s.versions.back();
  if (v != &latest || latest.regressed) return std::nullopt;
  const PlanVersion& prior = s.versions[s.versions.size() - 2];
  if (latest.calls < options_.sentinel_min_calls ||
      prior.calls < options_.sentinel_min_calls) {
    return std::nullopt;
  }
  const double mean_ratio =
      prior.wall.MeanMicros() > 0.0
          ? latest.wall.MeanMicros() / prior.wall.MeanMicros()
          : 0.0;
  const double p95_ratio =
      prior.wall.P95UpperMicros() > 0
          ? static_cast<double>(latest.wall.P95UpperMicros()) /
                static_cast<double>(prior.wall.P95UpperMicros())
          : 0.0;
  const double worst = std::max(mean_ratio, p95_ratio);
  if (worst < options_.sentinel_ratio) return std::nullopt;

  latest.regressed = true;
  PlanRegressionEvent ev;
  ev.statement_fingerprint = s.statement_fingerprint;
  ev.query_head = s.query_head;
  ev.regressed_plan_fingerprint = latest.plan_fingerprint;
  ev.baseline_plan_fingerprint = prior.plan_fingerprint;
  ev.trigger = latest.trigger;
  ev.regressed_calls = latest.calls;
  ev.baseline_calls = prior.calls;
  ev.regressed_mean_micros = static_cast<int64_t>(latest.wall.MeanMicros());
  ev.baseline_mean_micros = static_cast<int64_t>(prior.wall.MeanMicros());
  ev.regressed_p95_micros = latest.wall.P95UpperMicros();
  ev.baseline_p95_micros = prior.wall.P95UpperMicros();
  ev.ratio = worst;
  ev.regressed_explain = latest.explain_text;
  ev.baseline_explain = prior.explain_text;
  return ev;
}

int64_t PlanHistory::PublishRegression(PlanRegressionEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_regression_seq_++;
  int64_t seq = event.seq;
  if (regressions_.size() >= options_.max_regressions) {
    regressions_.pop_front();
  }
  regressions_.push_back(std::move(event));
  return seq;
}

std::optional<StatementHistory> PlanHistory::Statement(
    uint64_t statement_fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = statements_.find(statement_fp);
  if (it == statements_.end()) return std::nullopt;
  return it->second;
}

std::vector<StatementHistory> PlanHistory::Snapshot() const {
  std::vector<StatementHistory> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(statements_.size());
    for (const auto& [fp, s] : statements_) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const StatementHistory& a, const StatementHistory& b) {
              if (a.plan_changes != b.plan_changes) {
                return a.plan_changes > b.plan_changes;
              }
              return a.statement_fingerprint < b.statement_fingerprint;
            });
  return out;
}

std::vector<PlanRegressionEvent> PlanHistory::Regressions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<PlanRegressionEvent>(regressions_.begin(),
                                          regressions_.end());
}

int64_t PlanHistory::statement_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(statements_.size());
}

int64_t PlanHistory::statement_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statement_evictions_;
}

int64_t PlanHistory::plan_changes_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_changes_total_;
}

int64_t PlanHistory::regressions_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_regression_seq_;
}

void PlanHistory::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  statements_.clear();
  regressions_.clear();
  statement_evictions_ = 0;
  plan_changes_total_ = 0;
}

namespace {

void AppendVersionText(std::string* out, const PlanVersion& v, int index) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "    v%d plan_fp=%llu trigger=\"%s\" compiles=%lld "
                "calls=%lld mean_ms=%.2f p95_ms<=%.1f%s\n",
                index, static_cast<unsigned long long>(v.plan_fingerprint),
                CompileTriggerName(v.trigger),
                static_cast<long long>(v.compiles),
                static_cast<long long>(v.calls), v.wall.MeanMicros() / 1000.0,
                v.wall.P95UpperMicros() / 1000.0,
                v.regressed ? " REGRESSED" : "");
  *out += line;
}

void AppendStatementText(std::string* out, const StatementHistory& s) {
  *out += "  stmt_fp=" + std::to_string(s.statement_fingerprint);
  *out += " plan_changes=" + std::to_string(s.plan_changes);
  *out += " versions=" + std::to_string(s.versions.size());
  *out += "  " + s.query_head + "\n";
  int index = 0;
  for (const auto& v : s.versions) AppendVersionText(out, v, ++index);
}

void AppendStatementJson(std::string* out, const StatementHistory& s) {
  *out += "{\"statement_fingerprint\":\"" +
          std::to_string(s.statement_fingerprint) + "\"";
  *out += ",\"query_head\":";
  AppendJsonString(out, s.query_head);
  *out += ",\"plan_changes\":" + std::to_string(s.plan_changes);
  *out += ",\"versions\":[";
  bool first = true;
  for (const auto& v : s.versions) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"plan_fingerprint\":\"" +
            std::to_string(v.plan_fingerprint) + "\"";
    *out += ",\"trigger\":";
    AppendJsonString(out, CompileTriggerName(v.trigger));
    *out += ",\"first_seen_micros\":" + std::to_string(v.first_seen_micros);
    *out += ",\"last_seen_micros\":" + std::to_string(v.last_seen_micros);
    *out += ",\"compiles\":" + std::to_string(v.compiles);
    *out += ",\"calls\":" + std::to_string(v.calls);
    *out += ",\"mean_wall_micros\":" +
            std::to_string(static_cast<int64_t>(v.wall.MeanMicros()));
    *out += ",\"p95_wall_micros_upper\":" +
            std::to_string(v.wall.P95UpperMicros());
    *out += ",\"regressed\":";
    *out += v.regressed ? "true" : "false";
    *out += ",\"explain\":";
    AppendJsonString(out, v.explain_text);
    *out += "}";
  }
  *out += "]}";
}

}  // namespace

std::string PlanHistory::RenderHistoryText(uint64_t statement_fp) const {
  if (statement_fp != 0) {
    auto s = Statement(statement_fp);
    if (!s.has_value()) {
      return "plan history: statement " + std::to_string(statement_fp) +
             " not tracked\n";
    }
    std::string out = "plan history (1 statement)\n";
    AppendStatementText(&out, *s);
    return out;
  }
  auto all = Snapshot();
  std::string out =
      "plan history (" + std::to_string(all.size()) + " statements)\n";
  for (const auto& s : all) AppendStatementText(&out, s);
  return out;
}

std::string PlanHistory::RenderHistoryJson(uint64_t statement_fp) const {
  std::string out = "{\"statement_count\":" + std::to_string(statement_count());
  out += ",\"statement_evictions\":" + std::to_string(statement_evictions());
  out += ",\"plan_changes_total\":" + std::to_string(plan_changes_total());
  out += ",\"statements\":[";
  if (statement_fp != 0) {
    auto s = Statement(statement_fp);
    if (s.has_value()) AppendStatementJson(&out, *s);
  } else {
    bool first = true;
    for (const auto& s : Snapshot()) {
      if (!first) out += ",";
      first = false;
      AppendStatementJson(&out, s);
    }
  }
  out += "]}";
  return out;
}

std::string PlanHistory::RenderRegressionsText() const {
  auto events = Regressions();
  std::string out =
      "plan regressions: " + std::to_string(regressions_total()) +
      " total, " + std::to_string(events.size()) + " retained\n";
  for (const auto& e : events) {
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "  [%lld] stmt_fp=%llu plan_fp %llu -> %llu trigger=\"%s\" "
        "ratio=%.2fx mean_ms %.2f -> %.2f p95_ms <=%.1f -> <=%.1f\n",
        static_cast<long long>(e.seq),
        static_cast<unsigned long long>(e.statement_fingerprint),
        static_cast<unsigned long long>(e.baseline_plan_fingerprint),
        static_cast<unsigned long long>(e.regressed_plan_fingerprint),
        CompileTriggerName(e.trigger), e.ratio,
        e.baseline_mean_micros / 1000.0, e.regressed_mean_micros / 1000.0,
        e.baseline_p95_micros / 1000.0, e.regressed_p95_micros / 1000.0);
    out += line;
    out += "      " + e.query_head + "\n";
    if (!e.explain_diff.empty()) {
      // Indent the diff under the event line.
      size_t start = 0;
      while (start < e.explain_diff.size()) {
        size_t end = e.explain_diff.find('\n', start);
        if (end == std::string::npos) end = e.explain_diff.size();
        out += "      " + e.explain_diff.substr(start, end - start) + "\n";
        start = end + 1;
      }
    }
  }
  return out;
}

std::string PlanHistory::RenderRegressionsJson() const {
  auto events = Regressions();
  std::string out =
      "{\"regressions_total\":" + std::to_string(regressions_total());
  out += ",\"regressions\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"statement_fingerprint\":\"" +
           std::to_string(e.statement_fingerprint) + "\"";
    out += ",\"query_head\":";
    AppendJsonString(&out, e.query_head);
    out += ",\"baseline_plan_fingerprint\":\"" +
           std::to_string(e.baseline_plan_fingerprint) + "\"";
    out += ",\"regressed_plan_fingerprint\":\"" +
           std::to_string(e.regressed_plan_fingerprint) + "\"";
    out += ",\"trigger\":";
    AppendJsonString(&out, CompileTriggerName(e.trigger));
    out += ",\"baseline_calls\":" + std::to_string(e.baseline_calls);
    out += ",\"regressed_calls\":" + std::to_string(e.regressed_calls);
    out += ",\"baseline_mean_micros\":" +
           std::to_string(e.baseline_mean_micros);
    out += ",\"regressed_mean_micros\":" +
           std::to_string(e.regressed_mean_micros);
    out += ",\"baseline_p95_micros\":" + std::to_string(e.baseline_p95_micros);
    out += ",\"regressed_p95_micros\":" +
           std::to_string(e.regressed_p95_micros);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f", e.ratio);
    out += ",\"ratio\":" + std::string(ratio);
    out += ",\"explain_diff\":";
    AppendJsonString(&out, e.explain_diff);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace aldsp::observability
