#include "observability/rolling_window.h"

namespace aldsp::observability {

void RollingWindow::Record(int64_t value_micros, int64_t now_micros) {
  int64_t epoch = now_micros / kSlotMicros;
  Slot& slot = slots_[epoch % kSlots];
  if (slot.epoch != epoch) {
    slot.epoch = epoch;
    slot.hist.Reset();
  }
  slot.hist.Record(value_micros);
  total_.Record(value_micros);
}

RollingWindow::Snapshot RollingWindow::GetSnapshot(int64_t now_micros) const {
  int64_t epoch = now_micros / kSlotMicros;
  // A slot is inside the last minute if its start is newer than
  // now - 60s, i.e. its epoch is within the last six slot widths.
  int64_t minute_floor = epoch - (kMinuteMicros / kSlotMicros) + 1;
  int64_t window_floor = epoch - kSlots + 1;
  Snapshot snap;
  for (const Slot& slot : slots_) {
    if (slot.epoch < window_floor || slot.epoch > epoch) continue;
    snap.last_5m.Merge(slot.hist);
    if (slot.epoch >= minute_floor) snap.last_1m.Merge(slot.hist);
  }
  snap.total = total_;
  return snap;
}

void RollingCounter::Add(int64_t delta, int64_t now_micros) {
  int64_t epoch = now_micros / RollingWindow::kSlotMicros;
  Slot& slot = slots_[epoch % RollingWindow::kSlots];
  if (slot.epoch != epoch) {
    slot.epoch = epoch;
    slot.sum = 0;
  }
  slot.sum += delta;
  total_ += delta;
}

RollingCounter::Snapshot RollingCounter::GetSnapshot(int64_t now_micros) const {
  int64_t epoch = now_micros / RollingWindow::kSlotMicros;
  int64_t minute_floor =
      epoch - (RollingWindow::kMinuteMicros / RollingWindow::kSlotMicros) + 1;
  int64_t window_floor = epoch - RollingWindow::kSlots + 1;
  Snapshot snap;
  for (const Slot& slot : slots_) {
    if (slot.epoch < window_floor || slot.epoch > epoch) continue;
    snap.last_5m += slot.sum;
    if (slot.epoch >= minute_floor) snap.last_1m += slot.sum;
  }
  snap.total = total_;
  return snap;
}

}  // namespace aldsp::observability
