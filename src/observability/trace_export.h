#ifndef ALDSP_OBSERVABILITY_TRACE_EXPORT_H_
#define ALDSP_OBSERVABILITY_TRACE_EXPORT_H_

// Chrome/Perfetto trace_event exporter. Converts a query timeline into
// the JSON object format understood by chrome://tracing and
// ui.perfetto.dev: one process, one lane (tid) per engine thread,
// complete ("X") slices for spans and interval events, instant ("i")
// marks for zero-duration events, and "M" metadata naming the lanes.
// Timestamps are the timeline's origin-relative microseconds, which is
// exactly trace_event's native `ts` unit.

#include <string>

#include "observability/timeline.h"

namespace aldsp::observability {

/// Renders `timeline` as a self-contained Chrome trace_event JSON
/// document: {"displayTimeUnit":"ms","traceEvents":[...]}.
std::string ChromeTraceJson(const Timeline& timeline);

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_TRACE_EXPORT_H_
