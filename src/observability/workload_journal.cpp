#include "observability/workload_journal.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "observability/json_util.h"

namespace aldsp::observability {

int64_t WorkloadJournal::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t WorkloadJournal::Append(WorkloadJournalEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t now = NowMicros();
  if (epoch_micros_ < 0) epoch_micros_ = now;
  entry.seq = next_seq_++;
  entry.offset_micros = now - epoch_micros_;
  int64_t seq = entry.seq;
  if (capacity_ == 0) return seq;
  if (ring_.size() >= capacity_) ring_.pop_front();
  ring_.push_back(std::move(entry));
  return seq;
}

std::vector<WorkloadJournalEntry> WorkloadJournal::Records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<WorkloadJournalEntry>(ring_.begin(), ring_.end());
}

int64_t WorkloadJournal::total_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

void WorkloadJournal::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  epoch_micros_ = -1;
}

std::string WorkloadJournal::EntryJson(const WorkloadJournalEntry& e) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%lld,\"offset_micros\":%lld,"
                "\"statement_fingerprint\":\"%llu\","
                "\"plan_fingerprint\":\"%llu\",",
                static_cast<long long>(e.seq),
                static_cast<long long>(e.offset_micros),
                static_cast<unsigned long long>(e.statement_fingerprint),
                static_cast<unsigned long long>(e.plan_fingerprint));
  out += buf;
  out += "\"text\":";
  AppendJsonString(&out, e.text);
  out += ",\"principal\":";
  AppendJsonString(&out, e.principal);
  out += ",\"outcome\":";
  AppendJsonString(&out, e.outcome);
  std::snprintf(buf, sizeof(buf),
                ",\"wall_micros\":%lld,\"rows\":%lld,\"peak_bytes\":%lld}",
                static_cast<long long>(e.wall_micros),
                static_cast<long long>(e.rows),
                static_cast<long long>(e.peak_bytes));
  out += buf;
  return out;
}

std::string WorkloadJournal::RenderJsonl(
    const std::vector<WorkloadJournalEntry>& entries) {
  std::string out;
  for (const WorkloadJournalEntry& e : entries) {
    out += EntryJson(e);
    out += "\n";
  }
  return out;
}

namespace {

/// Minimal parser for the flat JSON objects EntryJson emits: string,
/// integer and quoted-integer values only, no nesting. Returns false on
/// malformed input; unknown keys are skipped so the format can grow.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view line) : s_(line) {}

  bool ParseObject(WorkloadJournalEntry* out) {
    SkipWs();
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key, sval;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '"') {
        if (!ParseString(&sval)) return false;
        Assign(*out, key, sval, /*quoted=*/true);
      } else {
        size_t start = pos_;
        while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}') ++pos_;
        sval = std::string(s_.substr(start, pos_ - start));
        Assign(*out, key, sval, /*quoted=*/false);
      }
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      return Consume('}');
    }
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The escaper only emits \u00XX for control characters, so a
          // one-byte reconstruction round-trips our own exports.
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  static void Assign(WorkloadJournalEntry& e, const std::string& key,
                     const std::string& val, bool quoted) {
    auto as_i64 = [&]() { return std::strtoll(val.c_str(), nullptr, 10); };
    auto as_u64 = [&]() { return std::strtoull(val.c_str(), nullptr, 10); };
    if (key == "seq") e.seq = as_i64();
    else if (key == "offset_micros") e.offset_micros = as_i64();
    else if (key == "statement_fingerprint") e.statement_fingerprint = as_u64();
    else if (key == "plan_fingerprint") e.plan_fingerprint = as_u64();
    else if (key == "text" && quoted) e.text = val;
    else if (key == "principal" && quoted) e.principal = val;
    else if (key == "outcome" && quoted) e.outcome = val;
    else if (key == "wall_micros") e.wall_micros = as_i64();
    else if (key == "rows") e.rows = as_i64();
    else if (key == "peak_bytes") e.peak_bytes = as_i64();
    // Unknown keys: skipped.
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<WorkloadJournalEntry>> WorkloadJournal::ParseJsonl(
    const std::string& jsonl) {
  std::vector<WorkloadJournalEntry> out;
  size_t line_no = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    std::string_view line(jsonl.data() + start, end - start);
    start = end + 1;
    ++line_no;
    // Skip blank lines so a trailing newline or hand-edited file imports.
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;
    WorkloadJournalEntry entry;
    FlatJsonParser parser(line);
    if (!parser.ParseObject(&entry)) {
      return Status::InvalidArgument("workload journal import: malformed line " +
                                     std::to_string(line_no));
    }
    if (entry.text.empty()) {
      return Status::InvalidArgument(
          "workload journal import: line " + std::to_string(line_no) +
          " has no statement text");
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::string WorkloadJournal::RenderText(
    const std::vector<WorkloadJournalEntry>& entries) {
  std::ostringstream os;
  os << "workload journal: " << entries.size() << " entr"
     << (entries.size() == 1 ? "y" : "ies") << "\n";
  for (const WorkloadJournalEntry& e : entries) {
    os << "  #" << e.seq << " +" << e.offset_micros / 1000 << "ms"
       << " stmt_fp=" << e.statement_fingerprint
       << " plan_fp=" << e.plan_fingerprint
       << " tenant=" << (e.principal.empty() ? "(anonymous)" : e.principal)
       << " " << e.outcome << " wall=" << e.wall_micros << "us rows=" << e.rows;
    if (e.peak_bytes > 0) os << " peak_bytes=" << e.peak_bytes;
    std::string head = e.text.substr(0, 72);
    for (char& c : head) {
      if (c == '\n' || c == '\t') c = ' ';
    }
    os << "  " << head << "\n";
  }
  return os.str();
}

std::string WorkloadJournal::RenderJson(
    const std::vector<WorkloadJournalEntry>& entries, int64_t total_appended,
    size_t capacity) {
  std::string out = "{\"total_appended\":" + std::to_string(total_appended);
  out += ",\"capacity\":" + std::to_string(capacity);
  out += ",\"retained\":" + std::to_string(entries.size());
  out += ",\"entries\":[";
  bool first = true;
  for (const WorkloadJournalEntry& e : entries) {
    if (!first) out += ",";
    first = false;
    out += EntryJson(e);
  }
  out += "]}";
  return out;
}

}  // namespace aldsp::observability
