#include "observability/query_registry.h"

#include <algorithm>
#include <chrono>

#include "observability/json_util.h"

namespace aldsp::observability {

namespace {
int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kCompiling:
      return "compiling";
    case QueryPhase::kQueued:
      return "queued";
    case QueryPhase::kExecuting:
      return "executing";
    case QueryPhase::kSecurityFilter:
      return "security-filter";
    case QueryPhase::kFinishing:
      return "finishing";
  }
  return "unknown";
}

std::shared_ptr<QueryControl> QueryRegistry::Register(
    uint64_t fingerprint, uint64_t statement_fingerprint,
    const std::string& tenant, const std::string& query_head) {
  auto ctl = std::make_shared<QueryControl>();
  ctl->query_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ctl->fingerprint = fingerprint;
  ctl->statement_fingerprint = statement_fingerprint;
  ctl->tenant = tenant;
  ctl->query_head = query_head;
  ctl->start_micros = NowMicros();
  total_started_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  live_[ctl->query_id] = ctl;
  peak_live_ = std::max(peak_live_, static_cast<int64_t>(live_.size()));
  TenantGauge& gauge = tenants_[ctl->tenant];
  ++gauge.in_flight;
  gauge.peak_in_flight = std::max(gauge.peak_in_flight, gauge.in_flight);
  return ctl;
}

void QueryRegistry::Unregister(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(query_id);
  if (it == live_.end()) return;
  auto tenant_it = tenants_.find(it->second->tenant);
  if (tenant_it != tenants_.end() && tenant_it->second.in_flight > 0) {
    --tenant_it->second.in_flight;
  }
  live_.erase(it);
}

bool QueryRegistry::Cancel(uint64_t query_id) {
  std::shared_ptr<QueryControl> ctl;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(query_id);
    if (it == live_.end()) return false;
    ctl = it->second;
  }
  ctl->cancelled.store(true, std::memory_order_relaxed);
  total_cancels_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<LiveQueryInfo> QueryRegistry::Snapshot() const {
  std::vector<std::shared_ptr<QueryControl>> blocks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocks.reserve(live_.size());
    for (const auto& [id, ctl] : live_) blocks.push_back(ctl);
  }
  const int64_t now = NowMicros();
  std::vector<LiveQueryInfo> out;
  out.reserve(blocks.size());
  for (const auto& ctl : blocks) {
    LiveQueryInfo info;
    info.query_id = ctl->query_id;
    info.fingerprint = ctl->fingerprint;
    info.statement_fingerprint = ctl->statement_fingerprint;
    info.tenant = ctl->tenant;
    info.query_head = ctl->query_head;
    info.start_micros = ctl->start_micros;
    info.elapsed_micros = std::max<int64_t>(0, now - ctl->start_micros);
    info.phase =
        static_cast<QueryPhase>(ctl->phase.load(std::memory_order_relaxed));
    info.rows_produced = ctl->rows_produced.load(std::memory_order_relaxed);
    info.peak_bytes = ctl->peak_bytes.load(std::memory_order_relaxed);
    info.memory_budget_bytes =
        ctl->memory_budget_bytes.load(std::memory_order_relaxed);
    info.budget_breached =
        ctl->budget_breached.load(std::memory_order_relaxed);
    info.cancel_requested = ctl->cancelled.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const LiveQueryInfo& a, const LiveQueryInfo& b) {
              return a.query_id < b.query_id;
            });
  return out;
}

int64_t QueryRegistry::live_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(live_.size());
}

int64_t QueryRegistry::peak_live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_live_;
}

std::map<std::string, QueryRegistry::TenantGauge> QueryRegistry::TenantGauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_;
}

std::string QueryRegistry::RenderText() const {
  auto live = Snapshot();
  std::string out = "live queries: " + std::to_string(live.size()) + "\n";
  for (const auto& q : live) {
    out += "  #" + std::to_string(q.query_id);
    out += " stmt_fp=" + std::to_string(q.statement_fingerprint);
    out += " plan_fp=" + std::to_string(q.fingerprint);
    out += " tenant=" + q.tenant;
    out += " phase=" + std::string(QueryPhaseName(q.phase));
    out += " rows=" + std::to_string(q.rows_produced);
    out += " peak_bytes=" + std::to_string(q.peak_bytes);
    if (q.memory_budget_bytes > 0) {
      out += " budget_bytes=" + std::to_string(q.memory_budget_bytes);
    }
    out += " elapsed_ms=" + std::to_string(q.elapsed_micros / 1000);
    if (q.budget_breached) out += " BUDGET-BREACHED";
    if (q.cancel_requested) out += " CANCELLING";
    out += "  " + q.query_head + "\n";
  }
  return out;
}

std::string QueryRegistry::RenderJson() const {
  auto live = Snapshot();
  std::string out = "{\"live_count\":" + std::to_string(live.size());
  out += ",\"total_started\":" + std::to_string(total_started());
  out += ",\"total_cancel_requests\":" + std::to_string(total_cancel_requests());
  out += ",\"queries\":[";
  bool first = true;
  for (const auto& q : live) {
    if (!first) out += ",";
    first = false;
    out += "{\"query_id\":" + std::to_string(q.query_id);
    out += ",\"fingerprint\":\"" + std::to_string(q.fingerprint) + "\"";
    out += ",\"statement_fingerprint\":\"" +
           std::to_string(q.statement_fingerprint) + "\"";
    out += ",\"tenant\":";
    AppendJsonString(&out, q.tenant);
    out += ",\"query_head\":";
    AppendJsonString(&out, q.query_head);
    out += ",\"phase\":";
    AppendJsonString(&out, QueryPhaseName(q.phase));
    out += ",\"elapsed_micros\":" + std::to_string(q.elapsed_micros);
    out += ",\"rows_produced\":" + std::to_string(q.rows_produced);
    out += ",\"peak_bytes\":" + std::to_string(q.peak_bytes);
    out += ",\"memory_budget_bytes\":" + std::to_string(q.memory_budget_bytes);
    out += ",\"budget_breached\":";
    out += q.budget_breached ? "true" : "false";
    out += ",\"cancel_requested\":";
    out += q.cancel_requested ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace aldsp::observability
