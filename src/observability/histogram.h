#ifndef ALDSP_OBSERVABILITY_HISTOGRAM_H_
#define ALDSP_OBSERVABILITY_HISTOGRAM_H_

#include <cstdint>

namespace aldsp::observability {

/// Fixed log-scale latency histogram (bucket bounds in microseconds:
/// 100us, 1ms, 10ms, 100ms, 1s, 10s, +inf). Fixed buckets keep
/// recording allocation-free and make snapshots mergeable across
/// rolling-window slots and across servers.
struct LatencyHistogram {
  static constexpr int kBuckets = 7;
  static const int64_t kUpperMicros[kBuckets - 1];
  static const char* BucketLabel(int i);

  int64_t counts[kBuckets] = {};
  int64_t count = 0;
  int64_t sum_micros = 0;
  int64_t min_micros = 0;
  int64_t max_micros = 0;

  void Record(int64_t micros);
  void Merge(const LatencyHistogram& other);
  /// Conservative percentile estimate for quantile `q` in (0, 1]: the
  /// upper bound of the bucket holding the ceil(q*count)-th sample,
  /// clamped to the observed max (exact for the overflow bucket and
  /// single-sample histograms). 0 when empty.
  int64_t PercentileUpperMicros(double q) const;
  /// Conservative p95 estimate (PercentileUpperMicros(0.95)).
  int64_t P95UpperMicros() const;
  void Reset() { *this = LatencyHistogram{}; }
  double MeanMicros() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_micros) /
                            static_cast<double>(count);
  }
};

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_HISTOGRAM_H_
