#include "observability/slow_query_log.h"

#include <cstdio>

#include "observability/json_util.h"

namespace aldsp::observability {

bool SlowQueryLog::IsPromoted(uint64_t hash) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return promoted_.count(hash) != 0;
}

void SlowQueryLog::Promote(uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (promoted_.size() >= kMaxPromoted && promoted_.count(hash) == 0) return;
  promoted_.insert(hash);
}

int64_t SlowQueryLog::Append(SlowQueryRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.seq = next_seq_++;
  int64_t seq = record.seq;
  if (capacity_ == 0) return seq;
  if (ring_.size() >= capacity_) ring_.pop_front();
  ring_.push_back(std::move(record));
  return seq;
}

std::vector<SlowQueryRecord> SlowQueryLog::Records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SlowQueryRecord>(ring_.begin(), ring_.end());
}

int64_t SlowQueryLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  promoted_.clear();
}

std::string SlowQueryLog::RecordJson(const SlowQueryRecord& r) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%lld,\"query_hash\":\"%016llx\","
                "\"fingerprint\":\"%llu\","
                "\"statement_fingerprint\":\"%llu\",",
                static_cast<long long>(r.seq),
                static_cast<unsigned long long>(r.query_hash),
                static_cast<unsigned long long>(r.fingerprint),
                static_cast<unsigned long long>(r.statement_fingerprint));
  out += buf;
  out += "\"query_head\":";
  AppendJsonString(&out, r.query_head);
  std::snprintf(buf, sizeof(buf),
                ",\"wall_micros\":%lld,\"threshold_micros\":%lld,"
                "\"full_trace\":%s,",
                static_cast<long long>(r.wall_micros),
                static_cast<long long>(r.threshold_micros),
                r.full_trace ? "true" : "false");
  out += buf;
  out += "\"profile_json\":";
  // profile_json is already JSON (or empty); embed as-is when present.
  out += r.profile_json.empty() ? "null" : r.profile_json;
  out += ",\"trace_json\":";
  out += r.trace_json.empty() ? "null" : r.trace_json;
  out += ",\"profile_text\":";
  AppendJsonString(&out, r.profile_text);
  out += "}";
  return out;
}

std::string SlowQueryLog::RenderJson(
    const std::vector<SlowQueryRecord>& records) {
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i != 0) out += ",";
    out += RecordJson(records[i]);
  }
  out += "]";
  return out;
}

}  // namespace aldsp::observability
