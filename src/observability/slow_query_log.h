#ifndef ALDSP_OBSERVABILITY_SLOW_QUERY_LOG_H_
#define ALDSP_OBSERVABILITY_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace aldsp::observability {

/// One retained slow execution. The first slow run of a query executes
/// under the cheap always-on counters trace, so its record carries the
/// counter summary only (`full_trace == false`) and promotes the query
/// hash; later runs of a promoted hash execute under a full trace whose
/// rendered profile is persisted here. Profiles are stored as rendered
/// strings so this library stays independent of the runtime trace types.
struct SlowQueryRecord {
  int64_t seq = 0;
  uint64_t query_hash = 0;
  /// Plan fingerprint (literal-stripped plan shape) and statement
  /// fingerprint (literal-stripped pre-optimization AST), so slow captures
  /// join against both the cumulative per-statement statistics and the
  /// plan-version history.
  uint64_t fingerprint = 0;
  uint64_t statement_fingerprint = 0;
  std::string query_head;
  int64_t wall_micros = 0;
  int64_t threshold_micros = 0;
  bool full_trace = false;
  std::string profile_text;  // rendered profile / counter summary
  std::string profile_json;
  std::string trace_json;  // Chrome trace_event JSON (timeline runs only)
};

/// Bounded ring of slow executions plus the promotion set that upgrades
/// repeat offenders from counters to full tracing.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 64) : capacity_(capacity) {}

  /// True if `hash` has already been seen slow (next execution should
  /// run with a full trace).
  bool IsPromoted(uint64_t hash) const;
  void Promote(uint64_t hash);

  /// Assigns the record's sequence number and appends, evicting the
  /// oldest record when full.
  int64_t Append(SlowQueryRecord record);

  std::vector<SlowQueryRecord> Records() const;
  int64_t total_appended() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  static std::string RecordJson(const SlowQueryRecord& record);
  static std::string RenderJson(const std::vector<SlowQueryRecord>& records);

 private:
  // Promotion set cap: a rogue workload of unique slow queries must not
  // grow memory without bound; past the cap new hashes stay unpromoted
  // (counter-level records are still appended).
  static constexpr size_t kMaxPromoted = 256;

  size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SlowQueryRecord> ring_;
  std::unordered_set<uint64_t> promoted_;
  int64_t next_seq_ = 0;
};

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_SLOW_QUERY_LOG_H_
