#include "observability/stat_statements.h"

#include <algorithm>
#include <cstdio>

#include "observability/json_util.h"

namespace aldsp::observability {

int64_t StatementStats::P95WallMicrosEstimate() const {
  return wall.P95UpperMicros();
}

void StatStatements::Record(const StatementSample& sample) {
  // Key on statement identity so the cumulative history survives plan
  // flips; samples predating the split (statement_fingerprint == 0) key
  // on the plan fingerprint as before.
  const uint64_t key = sample.statement_fingerprint != 0
                           ? sample.statement_fingerprint
                           : sample.fingerprint;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(key);
  if (it == stats_.end()) {
    if (stats_.size() >= max_entries_) {
      // Evict the entry with the least cumulative wall time.
      auto victim = stats_.begin();
      for (auto jt = stats_.begin(); jt != stats_.end(); ++jt) {
        if (jt->second.total_wall_micros < victim->second.total_wall_micros) {
          victim = jt;
        }
      }
      stats_.erase(victim);
      ++evictions_;
    }
    StatementStats fresh;
    fresh.fingerprint = sample.fingerprint;
    fresh.statement_fingerprint = sample.statement_fingerprint;
    fresh.query_head = sample.query_head;
    it = stats_.emplace(key, std::move(fresh)).first;
  }
  StatementStats& s = it->second;
  s.fingerprint = sample.fingerprint;  // track the latest plan version
  ++s.calls;
  if (sample.error) ++s.errors;
  if (sample.cancelled) ++s.cancels;
  if (sample.shed) ++s.sheds;
  s.total_wall_micros += sample.wall_micros;
  s.wall.Record(sample.wall_micros);
  s.rows_returned += sample.rows_returned;
  s.max_peak_bytes = std::max(s.max_peak_bytes, sample.peak_bytes);
  s.source_wait_micros += sample.source_wait_micros;
  s.compute_micros += sample.compute_micros;
  s.queue_wait_micros += sample.queue_wait_micros;
  if (sample.plan_cache_hit) {
    ++s.plan_cache_hits;
  } else {
    ++s.plan_cache_misses;
  }
  s.function_cache_hits += sample.function_cache_hits;
  s.function_cache_misses += sample.function_cache_misses;
}

int64_t StatStatements::MeanWallMicrosFor(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(key);
  if (it == stats_.end() || it->second.wall.count == 0) return -1;
  return static_cast<int64_t>(it->second.MeanWallMicros());
}

void StatStatements::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
  evictions_ = 0;
}

std::vector<StatementStats> StatStatements::TopK(int top_k) const {
  std::vector<StatementStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(stats_.size());
    for (const auto& [fp, s] : stats_) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const StatementStats& a, const StatementStats& b) {
              if (a.total_wall_micros != b.total_wall_micros) {
                return a.total_wall_micros > b.total_wall_micros;
              }
              return a.fingerprint < b.fingerprint;
            });
  if (top_k > 0 && out.size() > static_cast<size_t>(top_k)) {
    out.resize(static_cast<size_t>(top_k));
  }
  return out;
}

int64_t StatStatements::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(stats_.size());
}

int64_t StatStatements::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::string StatStatements::RenderText(int top_k) const {
  auto top = TopK(top_k);
  std::string out =
      "statement statistics (top " + std::to_string(top.size()) + ")\n";
  int rank = 0;
  for (const auto& s : top) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  [%d] stmt_fp=%llu plan_fp=%llu calls=%lld errors=%lld "
                  "cancels=%lld sheds=%lld "
                  "total_ms=%.1f mean_ms=%.2f p95_ms<=%.1f rows=%lld "
                  "peak_bytes=%lld\n",
                  ++rank,
                  static_cast<unsigned long long>(s.statement_fingerprint),
                  static_cast<unsigned long long>(s.fingerprint),
                  static_cast<long long>(s.calls),
                  static_cast<long long>(s.errors),
                  static_cast<long long>(s.cancels),
                  static_cast<long long>(s.sheds),
                  s.total_wall_micros / 1000.0, s.MeanWallMicros() / 1000.0,
                  s.P95WallMicrosEstimate() / 1000.0,
                  static_cast<long long>(s.rows_returned),
                  static_cast<long long>(s.max_peak_bytes));
    out += line;
    std::snprintf(line, sizeof(line),
                  "      source_ms=%.1f compute_ms=%.1f queue_ms=%.1f "
                  "plan_cache=%lld/%lld fn_cache=%lld/%lld\n",
                  s.source_wait_micros / 1000.0, s.compute_micros / 1000.0,
                  s.queue_wait_micros / 1000.0,
                  static_cast<long long>(s.plan_cache_hits),
                  static_cast<long long>(s.plan_cache_hits +
                                         s.plan_cache_misses),
                  static_cast<long long>(s.function_cache_hits),
                  static_cast<long long>(s.function_cache_hits +
                                         s.function_cache_misses));
    out += line;
    out += "      " + s.query_head + "\n";
  }
  return out;
}

std::string StatStatements::RenderJson(int top_k) const {
  auto top = TopK(top_k);
  std::string out = "{\"entry_count\":" + std::to_string(entry_count());
  out += ",\"evictions\":" + std::to_string(evictions());
  out += ",\"statements\":[";
  bool first = true;
  for (const auto& s : top) {
    if (!first) out += ",";
    first = false;
    out += "{\"fingerprint\":\"" + std::to_string(s.fingerprint) + "\"";
    out += ",\"statement_fingerprint\":\"" +
           std::to_string(s.statement_fingerprint) + "\"";
    out += ",\"query_head\":";
    AppendJsonString(&out, s.query_head);
    out += ",\"calls\":" + std::to_string(s.calls);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"cancels\":" + std::to_string(s.cancels);
    out += ",\"sheds\":" + std::to_string(s.sheds);
    out += ",\"total_wall_micros\":" + std::to_string(s.total_wall_micros);
    out += ",\"mean_wall_micros\":" +
           std::to_string(static_cast<int64_t>(s.MeanWallMicros()));
    out += ",\"p95_wall_micros_upper\":" +
           std::to_string(s.P95WallMicrosEstimate());
    out += ",\"rows_returned\":" + std::to_string(s.rows_returned);
    out += ",\"max_peak_bytes\":" + std::to_string(s.max_peak_bytes);
    out += ",\"source_wait_micros\":" + std::to_string(s.source_wait_micros);
    out += ",\"compute_micros\":" + std::to_string(s.compute_micros);
    out += ",\"queue_wait_micros\":" + std::to_string(s.queue_wait_micros);
    out += ",\"plan_cache_hits\":" + std::to_string(s.plan_cache_hits);
    out += ",\"plan_cache_misses\":" + std::to_string(s.plan_cache_misses);
    out += ",\"function_cache_hits\":" + std::to_string(s.function_cache_hits);
    out += ",\"function_cache_misses\":" +
           std::to_string(s.function_cache_misses);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace aldsp::observability
