#include "observability/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "observability/json_util.h"

namespace aldsp::observability {
namespace {

// Half-open-free interval arithmetic on closed [lo, hi] microsecond
// ranges, kept as sorted disjoint vectors. Inputs are tiny (one entry
// per stall or source event), so O(n log n) merges are plenty.
using Interval = std::pair<std::int64_t, std::int64_t>;
using Intervals = std::vector<Interval>;

Intervals Normalize(Intervals v) {
  Intervals out;
  std::sort(v.begin(), v.end());
  for (const Interval& iv : v) {
    if (iv.second <= iv.first) continue;
    if (!out.empty() && iv.first <= out.back().second) {
      out.back().second = std::max(out.back().second, iv.second);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

std::int64_t Length(const Intervals& v) {
  std::int64_t total = 0;
  for (const Interval& iv : v) total += iv.second - iv.first;
  return total;
}

/// a ∖ b; both must be normalized.
Intervals Subtract(const Intervals& a, const Intervals& b) {
  Intervals out;
  size_t j = 0;
  for (Interval iv : a) {
    while (j < b.size() && b[j].second <= iv.first) ++j;
    std::int64_t lo = iv.first;
    for (size_t k = j; k < b.size() && b[k].first < iv.second; ++k) {
      if (b[k].first > lo) out.emplace_back(lo, b[k].first);
      lo = std::max(lo, b[k].second);
    }
    if (lo < iv.second) out.emplace_back(lo, iv.second);
  }
  return out;
}

/// a ∩ b; both must be normalized.
Intervals Intersect(const Intervals& a, const Intervals& b) {
  Intervals out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    std::int64_t lo = std::max(a[i].first, b[j].first);
    std::int64_t hi = std::min(a[i].second, b[j].second);
    if (lo < hi) out.emplace_back(lo, hi);
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

Intervals ClipToWindow(Interval iv, Interval window) {
  iv.first = std::max(iv.first, window.first);
  iv.second = std::min(iv.second, window.second);
  if (iv.second <= iv.first) return {};
  return {iv};
}

Interval EventInterval(const TimelineEvent& e) {
  std::int64_t at = std::max<std::int64_t>(e.at_micros, 0);
  std::int64_t dur = std::max<std::int64_t>(e.dur_micros, 0);
  return {at - dur, at};
}

/// True when `span` is `ancestor` or a descendant of it.
bool Under(const Timeline& t, int span, int ancestor) {
  for (int depth = 0; span >= 0 && depth < 1024; ++depth) {
    if (span == ancestor) return true;
    if (span >= static_cast<int>(t.spans.size())) return false;
    span = t.spans[static_cast<size_t>(span)].parent;
  }
  return false;
}

void AppendMicros(std::string* out, const char* key, std::int64_t value,
                  std::int64_t wall) {
  char buf[128];
  double pct = wall > 0 ? 100.0 * static_cast<double>(value) /
                              static_cast<double>(wall)
                        : 0.0;
  std::snprintf(buf, sizeof(buf), "  %-12s %10lld us  (%5.1f%%)\n", key,
                static_cast<long long>(value), pct);
  out->append(buf);
}

}  // namespace

double CriticalPathReport::coverage_pct() const {
  if (wall_micros <= 0) return 100.0;
  return 100.0 * static_cast<double>(accounted_micros()) /
         static_cast<double>(wall_micros);
}

CriticalPathReport AnalyzeCriticalPath(const Timeline& timeline) {
  CriticalPathReport report;
  if (timeline.root < 0 ||
      timeline.root >= static_cast<int>(timeline.spans.size())) {
    return report;
  }
  const TimelineSpan& root = timeline.spans[static_cast<size_t>(timeline.root)];
  std::int64_t window_end = root.end_micros;
  for (const TimelineSpan& s : timeline.spans) {
    window_end = std::max(window_end, s.end_micros);
  }
  for (const TimelineEvent& e : timeline.events) {
    window_end = std::max(window_end, e.at_micros);
  }
  Interval window{std::max<std::int64_t>(root.begin_micros, 0),
                  root.end_micros >= 0 ? root.end_micros : window_end};
  if (window.second <= window.first) return report;
  report.wall_micros = window.second - window.first;
  const int driving = root.lane;

  // 1. Stalls: wait events on the driving lane, attributed innermost
  //    first so a nested stall (an inline-stolen task waiting on its own
  //    sub-task) never double-counts an instant.
  struct Stall {
    Interval iv;
    int task = -1;
  };
  std::vector<Stall> stalls;
  for (const TimelineEvent& e : timeline.events) {
    if (!e.is_wait || e.lane != driving) continue;
    Intervals clipped = ClipToWindow(EventInterval(e), window);
    if (clipped.empty()) continue;
    stalls.push_back({clipped.front(), e.ref_span});
  }
  std::sort(stalls.begin(), stalls.end(), [](const Stall& a, const Stall& b) {
    return (a.iv.second - a.iv.first) < (b.iv.second - b.iv.first);
  });

  // Source intervals grouped per task span, used both to attribute the
  // source part of a stall and to compute prefetch-hidden time.
  std::int64_t stall_source_total = 0;
  Intervals attributed;
  for (const Stall& stall : stalls) {
    Intervals excl = Subtract(Normalize({stall.iv}), attributed);
    attributed = Normalize([&] {
      Intervals merged = attributed;
      merged.push_back(stall.iv);
      return merged;
    }());
    if (excl.empty()) continue;
    std::int64_t remaining = Length(excl);
    if (stall.task >= 0 &&
        stall.task < static_cast<int>(timeline.spans.size())) {
      const TimelineSpan& task = timeline.spans[static_cast<size_t>(stall.task)];
      // Queue-wait part: the task had not started running yet.
      if (task.begin_micros >= 0 && task.queue_micros > 0) {
        Intervals queue = Intersect(
            excl, {{task.begin_micros, task.begin_micros + task.queue_micros}});
        std::int64_t q = std::min(Length(queue), remaining);
        report.queue_wait_micros += q;
        remaining -= q;
      }
      // Source part: round trips recorded under the awaited task.
      Intervals task_sources;
      for (const TimelineEvent& e : timeline.events) {
        if (!e.is_source || !Under(timeline, e.span, stall.task)) continue;
        task_sources.push_back(EventInterval(e));
      }
      task_sources = Normalize(std::move(task_sources));
      Intervals src_overlap = Intersect(excl, task_sources);
      std::int64_t s = std::min(Length(src_overlap), remaining);
      report.source_wait_micros += s;
      stall_source_total += s;
      remaining -= s;
      if (s > 0) {
        // Per-source attribution of the same overlap.
        for (const TimelineEvent& e : timeline.events) {
          if (!e.is_source || !Under(timeline, e.span, stall.task)) continue;
          std::int64_t part = Length(
              Intersect(excl, Normalize({EventInterval(e)})));
          if (part > 0) report.source_wait_by_source[e.source] += part;
        }
      }
      // Run part: the task was executing mid-tier work.
      std::int64_t run_begin =
          task.begin_micros + std::max<std::int64_t>(task.queue_micros, 0);
      std::int64_t run_end =
          task.end_micros >= 0 ? task.end_micros : window.second;
      if (task.begin_micros >= 0 && run_end > run_begin) {
        Intervals run =
            Subtract(Intersect(excl, {{run_begin, run_end}}), task_sources);
        std::int64_t r = std::min(Length(run), remaining);
        report.compute_micros += r;
        remaining -= r;
      }
    }
    report.other_micros += remaining;
  }

  // 2. Inline source waits on the driving lane (outside any stall). A
  //    running `claimed` set — attributed stalls plus inline intervals
  //    already counted — keeps virtual-latency overlaps single-counted.
  std::int64_t inline_src = 0;
  Intervals claimed = attributed;
  for (const TimelineEvent& e : timeline.events) {
    if (!e.is_source || e.lane != driving) continue;
    Intervals clipped = ClipToWindow(EventInterval(e), window);
    Intervals fresh = Subtract(clipped, claimed);
    if (fresh.empty()) continue;
    std::int64_t part = Length(fresh);
    inline_src += part;
    report.source_wait_by_source[e.source] += part;
    for (const Interval& iv : fresh) claimed.push_back(iv);
    claimed = Normalize(std::move(claimed));
  }
  report.source_wait_micros += inline_src;

  // 3. Everything else on the driving lane is mid-tier compute.
  std::int64_t stall_total = Length(attributed);
  std::int64_t compute_main = report.wall_micros - stall_total - inline_src;
  report.compute_micros += std::max<std::int64_t>(compute_main, 0);

  // 4. Prefetch-hidden time: source work on other lanes that did not
  //    stall the driving thread (overlapped with its compute).
  std::int64_t off_lane_source = 0;
  for (const TimelineEvent& e : timeline.events) {
    if (!e.is_source || e.lane == driving) continue;
    off_lane_source += std::max<std::int64_t>(e.dur_micros, 0);
  }
  report.prefetch_hidden_micros =
      std::max<std::int64_t>(off_lane_source - stall_source_total, 0);
  return report;
}

std::string RenderCriticalPathText(const CriticalPathReport& report) {
  std::string out = "=== critical path ===\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  wall         %10lld us\n",
                static_cast<long long>(report.wall_micros));
  out += buf;
  AppendMicros(&out, "source-wait", report.source_wait_micros,
               report.wall_micros);
  AppendMicros(&out, "compute", report.compute_micros, report.wall_micros);
  AppendMicros(&out, "queue-wait", report.queue_wait_micros,
               report.wall_micros);
  AppendMicros(&out, "other", report.other_micros, report.wall_micros);
  std::snprintf(buf, sizeof(buf),
                "  prefetch-hidden %7lld us (overlapped, not additive)\n",
                static_cast<long long>(report.prefetch_hidden_micros));
  out += buf;
  for (const auto& [source, micros] : report.source_wait_by_source) {
    std::snprintf(buf, sizeof(buf), "    - wait on %s: %lld us\n",
                  source.c_str(), static_cast<long long>(micros));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  accounted    %10lld us  (%5.1f%%)\n",
                static_cast<long long>(report.accounted_micros()),
                report.coverage_pct());
  out += buf;
  return out;
}

std::string RenderCriticalPathJson(const CriticalPathReport& report) {
  std::string out = "{";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"wall_micros\":%lld,\"source_wait_micros\":%lld,"
      "\"compute_micros\":%lld,\"queue_wait_micros\":%lld,"
      "\"other_micros\":%lld,\"prefetch_hidden_micros\":%lld,"
      "\"accounted_micros\":%lld,\"coverage_pct\":%.2f,",
      static_cast<long long>(report.wall_micros),
      static_cast<long long>(report.source_wait_micros),
      static_cast<long long>(report.compute_micros),
      static_cast<long long>(report.queue_wait_micros),
      static_cast<long long>(report.other_micros),
      static_cast<long long>(report.prefetch_hidden_micros),
      static_cast<long long>(report.accounted_micros()),
      report.coverage_pct());
  out += buf;
  out += "\"source_wait_by_source\":{";
  bool first = true;
  for (const auto& [source, micros] : report.source_wait_by_source) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, source);
    std::snprintf(buf, sizeof(buf), ":%lld", static_cast<long long>(micros));
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace aldsp::observability
