#ifndef ALDSP_OBSERVABILITY_QUERY_REGISTRY_H_
#define ALDSP_OBSERVABILITY_QUERY_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace aldsp::observability {

/// Execution phases a query moves through. Stored as an int in QueryControl
/// so phase transitions are a single relaxed store.
enum class QueryPhase : int {
  kCompiling = 0,
  /// Waiting in an admission-control lane for a concurrency slot. Queued
  /// queries are registered (visible in LiveQueries*, cancellable) before
  /// they hold any execution resources.
  kQueued,
  kExecuting,
  kSecurityFilter,
  kFinishing,
};

const char* QueryPhaseName(QueryPhase phase);

/// Shared control block for one in-flight query. The server hands a pointer
/// to this block to the runtime via RuntimeContext::exec; physical operators
/// poll `cancelled` at the top of Next() and pool workers poll it per tuple,
/// so a CancelQuery() call propagates cooperatively within one scheduling
/// quantum. All fields are atomics: writers are the evaluator / operator
/// threads, readers are registry snapshots taken from other threads.
///
/// Lifetime: the registry and the executing query both hold shared_ptr
/// references, so a snapshot or a cancel can never race with teardown.
struct QueryControl {
  uint64_t query_id = 0;
  uint64_t fingerprint = 0;            // plan fingerprint
  uint64_t statement_fingerprint = 0;  // statement identity (0 if unknown)
  std::string tenant;        // principal user, "(anonymous)" if none
  std::string query_head;    // first ~120 chars of the statement text
  int64_t start_micros = 0;  // wall-clock epoch micros at registration

  std::atomic<bool> cancelled{false};
  std::atomic<int> phase{static_cast<int>(QueryPhase::kCompiling)};
  std::atomic<int64_t> rows_produced{0};
  std::atomic<int64_t> peak_bytes{0};
  /// Per-query memory budget in bytes (0 = unlimited), set by the server
  /// at admission. NotePeakBytes flips `budget_breached` when the peak
  /// crosses it; the runtime's cancellation funnel turns that flag into a
  /// kResourceExhausted failure at the next cooperative poll, so a breach
  /// fails fast instead of letting the operator keep materializing.
  std::atomic<int64_t> memory_budget_bytes{0};
  std::atomic<bool> budget_breached{false};

  bool IsCancelled() const {
    return cancelled.load(std::memory_order_relaxed);
  }
  bool BudgetBreached() const {
    return budget_breached.load(std::memory_order_relaxed);
  }
  void SetMemoryBudget(int64_t bytes) {
    memory_budget_bytes.store(bytes, std::memory_order_relaxed);
  }
  void SetPhase(QueryPhase p) {
    phase.store(static_cast<int>(p), std::memory_order_relaxed);
  }
  void AddRows(int64_t n) {
    rows_produced.fetch_add(n, std::memory_order_relaxed);
  }
  /// CAS-max, mirroring RuntimeStats::NotePeakBytes; also trips the
  /// budget-breached flag when a budget is set and exceeded.
  void NotePeakBytes(int64_t bytes) {
    int64_t prev = peak_bytes.load(std::memory_order_relaxed);
    while (bytes > prev && !peak_bytes.compare_exchange_weak(
                               prev, bytes, std::memory_order_relaxed)) {
    }
    const int64_t budget = memory_budget_bytes.load(std::memory_order_relaxed);
    if (budget > 0 && bytes > budget) {
      budget_breached.store(true, std::memory_order_relaxed);
    }
  }
};

/// Point-in-time copy of one live query, safe to render after the query
/// finished.
struct LiveQueryInfo {
  uint64_t query_id = 0;
  uint64_t fingerprint = 0;
  uint64_t statement_fingerprint = 0;
  std::string tenant;
  std::string query_head;
  int64_t start_micros = 0;
  int64_t elapsed_micros = 0;
  QueryPhase phase = QueryPhase::kCompiling;
  int64_t rows_produced = 0;
  int64_t peak_bytes = 0;
  int64_t memory_budget_bytes = 0;  // 0 = unlimited
  bool budget_breached = false;
  bool cancel_requested = false;
};

/// Registry of in-flight queries. Register/Unregister bracket every observed
/// Execute* on the server; Cancel flips the cooperative flag on the matching
/// control block. The map is tiny (bounded by concurrent queries), so a
/// plain mutex is fine — the hot path per query is two map operations total.
class QueryRegistry {
 public:
  /// Creates and registers a control block; assigns a fresh query id.
  /// `fingerprint` is the plan fingerprint, `statement_fingerprint` the
  /// statement identity (0 when the caller predates the split).
  std::shared_ptr<QueryControl> Register(uint64_t fingerprint,
                                         uint64_t statement_fingerprint,
                                         const std::string& tenant,
                                         const std::string& query_head);
  void Unregister(uint64_t query_id);

  /// Requests cooperative cancellation. Returns false if the id is not
  /// (or no longer) in flight.
  bool Cancel(uint64_t query_id);

  std::vector<LiveQueryInfo> Snapshot() const;

  std::string RenderText() const;
  std::string RenderJson() const;

  /// Cumulative totals since construction.
  int64_t total_started() const {
    return total_started_.load(std::memory_order_relaxed);
  }
  int64_t total_cancel_requests() const {
    return total_cancels_.load(std::memory_order_relaxed);
  }
  int64_t live_count() const;
  /// High-water mark of concurrently live queries (server-wide).
  int64_t peak_live() const;

  /// Concurrency attribution per tenant: how many of its queries are in
  /// flight right now and the most that ever were at once. Entries stay
  /// after the tenant goes idle so the peak remains visible (the
  /// admission-control plane will key quotas off exactly these gauges).
  struct TenantGauge {
    int64_t in_flight = 0;
    int64_t peak_in_flight = 0;
  };
  std::map<std::string, TenantGauge> TenantGauges() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<QueryControl>> live_;
  std::map<std::string, TenantGauge> tenants_;
  int64_t peak_live_ = 0;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> total_started_{0};
  std::atomic<int64_t> total_cancels_{0};
};

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_QUERY_REGISTRY_H_
