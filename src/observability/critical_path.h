#ifndef ALDSP_OBSERVABILITY_CRITICAL_PATH_H_
#define ALDSP_OBSERVABILITY_CRITICAL_PATH_H_

// Critical-path analysis over a query timeline (paper §9: "instrumenting
// the system"). Walks the span DAG — including the cross-thread edges a
// pool-task span creates at its launch point — and attributes the query's
// wall-clock time on the driving thread to exclusive buckets:
//
//   source_wait  blocked on a data-source round trip (inline, or inside
//                an awaited task),
//   queue_wait   blocked on a task that was still sitting in the worker
//                pool queue,
//   compute      mid-tier work: evaluator/operator CPU plus awaited task
//                run time that was not itself source wait,
//   other        residual stall time (scheduling gaps, cv latency).
//
// The four buckets partition the root span's wall time, so they sum to
// it by construction. prefetch_hidden_micros is reported separately and
// is NOT additive: it is source time spent on worker lanes that did not
// stall the driving thread (PP-k block overlap working as designed).

#include <cstdint>
#include <map>
#include <string>

#include "observability/timeline.h"

namespace aldsp::observability {

struct CriticalPathReport {
  std::int64_t wall_micros = 0;
  std::int64_t source_wait_micros = 0;
  std::int64_t compute_micros = 0;
  std::int64_t queue_wait_micros = 0;
  std::int64_t other_micros = 0;
  /// Source time overlapped with driving-thread compute (not additive).
  std::int64_t prefetch_hidden_micros = 0;
  /// source_wait_micros broken down by data source id.
  std::map<std::string, std::int64_t> source_wait_by_source;

  std::int64_t accounted_micros() const {
    return source_wait_micros + compute_micros + queue_wait_micros +
           other_micros;
  }
  /// accounted / wall as a percentage (100 when wall is 0).
  double coverage_pct() const;
};

/// Attributes `timeline.wall_micros` to the buckets above.
CriticalPathReport AnalyzeCriticalPath(const Timeline& timeline);

/// EXPLAIN ANALYZE-style rendering, one bucket per line.
std::string RenderCriticalPathText(const CriticalPathReport& report);

/// The same report as a JSON object.
std::string RenderCriticalPathJson(const CriticalPathReport& report);

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_CRITICAL_PATH_H_
