#ifndef ALDSP_OBSERVABILITY_AUDIT_LOG_H_
#define ALDSP_OBSERVABILITY_AUDIT_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aldsp::observability {

/// One record per query execution, mirroring the per-service invocation
/// audits the ALDSP console surfaces. Kept JSONL-serializable and flat
/// so a sink can ship records to external collectors unchanged.
struct AuditRecord {
  int64_t seq = 0;            // assigned by the log, monotonically increasing
  uint64_t query_hash = 0;    // FNV-1a of the full query text
  uint64_t fingerprint = 0;   // plan fingerprint (0 if compile failed)
  uint64_t statement_fingerprint = 0;  // statement identity (0 if unknown)
  std::string query_head;     // leading fragment of the text for readability
  std::string principal;
  std::string outcome;        // "ok" or the failing status code name
  std::vector<std::string> sources;  // data services touched, sorted unique
  int64_t sql_pushdowns = 0;
  int64_t rows_returned = 0;
  int64_t bytes_returned = 0;
  int64_t wall_micros = 0;
  int64_t compile_micros = 0;  // 0 on plan-cache hit
  bool plan_cache_hit = false;
  int64_t function_cache_hits = 0;
  int64_t function_cache_misses = 0;
  int64_t timeouts = 0;
  int64_t failovers = 0;
  int64_t security_denials = 0;  // elements redacted by access control
};

/// Receives every record as it is appended (under the log's lock; keep
/// implementations cheap or hand off to a queue).
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void Append(const AuditRecord& record) = 0;
};

/// Bounded ring of the most recent execution audit records. Appends are
/// O(1) and lock-scoped so the hot path stays cheap; the full history
/// count survives eviction via `total_appended`.
class ExecutionAuditLog {
 public:
  explicit ExecutionAuditLog(size_t capacity = 1024) : capacity_(capacity) {}

  /// Assigns the record's sequence number and appends, evicting the
  /// oldest record when full. Returns the assigned sequence number.
  int64_t Append(AuditRecord record);

  /// Oldest-to-newest copy of the retained records.
  std::vector<AuditRecord> Records() const;
  int64_t total_appended() const;
  size_t capacity() const { return capacity_; }

  void SetSink(AuditSink* sink);
  void Clear();

  static uint64_t HashQuery(std::string_view text);
  static std::string RecordJson(const AuditRecord& record);
  /// One JSON object per line, oldest first.
  static std::string RenderJsonl(const std::vector<AuditRecord>& records);

 private:
  size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<AuditRecord> ring_;
  int64_t next_seq_ = 0;
  AuditSink* sink_ = nullptr;
};

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_AUDIT_LOG_H_
