#ifndef ALDSP_OBSERVABILITY_WORKLOAD_JOURNAL_H_
#define ALDSP_OBSERVABILITY_WORKLOAD_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace aldsp::observability {

/// One captured server execution: everything a replay driver needs to
/// re-issue the statement against a live server and compare the result
/// against the capture. `text` is the verbatim statement (replay needs
/// it to hit the same plan-cache entry); identity is carried by the two
/// fingerprints (literal-stripped statement hash + optimized-plan hash)
/// so the replay can verify it compiled the *same statement into the
/// same plan shape* rather than diffing query strings.
struct WorkloadJournalEntry {
  int64_t seq = 0;            // assigned by the journal
  /// Arrival offset from the journal epoch (micros). An open-loop replay
  /// re-issues the statement at `offset_micros / speed` after its own
  /// epoch, reproducing the captured arrival process.
  int64_t offset_micros = 0;
  uint64_t statement_fingerprint = 0;
  uint64_t plan_fingerprint = 0;
  std::string text;       // verbatim statement text
  std::string principal;  // tenant attribution ("" = anonymous)
  std::string outcome;    // "ok" or the failing status code name
  int64_t wall_micros = 0;
  int64_t rows = 0;
  int64_t peak_bytes = 0;
};

/// Bounded ring of captured executions (the workload capture plane).
/// Appends are a short mutex hold — one struct move, no rendering — so
/// the capture cost on the Execute hot path stays within the counters
/// overhead budget; all rendering happens against a snapshot copy.
///
/// The epoch is the steady-clock instant of the first append after
/// construction or Clear(), so offsets start near zero and survive a
/// JSONL round trip unchanged.
class WorkloadJournal {
 public:
  explicit WorkloadJournal(size_t capacity = 4096) : capacity_(capacity) {}

  /// Stamps `entry.seq` and `entry.offset_micros` (now - epoch) and
  /// appends, evicting the oldest entry when full. Returns the sequence.
  int64_t Append(WorkloadJournalEntry entry);

  /// Oldest-to-newest copy of the retained entries.
  std::vector<WorkloadJournalEntry> Records() const;
  int64_t total_appended() const;
  size_t capacity() const { return capacity_; }

  /// Drops all entries and re-arms the epoch for a fresh capture.
  void Clear();

  static std::string EntryJson(const WorkloadJournalEntry& entry);
  /// One JSON object per line, oldest first — the export format.
  static std::string RenderJsonl(const std::vector<WorkloadJournalEntry>& entries);
  /// Parses a RenderJsonl export back into entries (the import side of
  /// the capture -> export -> import -> replay round trip). Unknown keys
  /// are ignored; a malformed line fails the whole import.
  static Result<std::vector<WorkloadJournalEntry>> ParseJsonl(
      const std::string& jsonl);

  static std::string RenderText(const std::vector<WorkloadJournalEntry>& entries);
  /// JSON document: {"entries":[...],"total_appended":N,...}.
  static std::string RenderJson(const std::vector<WorkloadJournalEntry>& entries,
                                int64_t total_appended, size_t capacity);

 private:
  int64_t NowMicros() const;

  size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<WorkloadJournalEntry> ring_;
  int64_t next_seq_ = 0;
  int64_t epoch_micros_ = -1;  // armed on first append
};

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_WORKLOAD_JOURNAL_H_
