#include "observability/replay.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>

#include "observability/json_util.h"

namespace aldsp::observability {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One replayed execution, accumulated per worker then merged.
struct Sample {
  size_t entry_index = 0;
  int64_t latency_micros = 0;
  bool ok = false;
  bool shed = false;
  bool statement_mismatch = false;
  bool plan_change = false;
};

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

}  // namespace

ReplayDriver::ReplayDriver(std::vector<WorkloadJournalEntry> entries,
                           ReplayExecutor executor)
    : entries_(std::move(entries)), executor_(std::move(executor)) {}

ReplayReport ReplayDriver::Run(const ReplayOptions& options) const {
  ReplayReport report;
  if (entries_.empty() || !executor_) return report;

  const bool open_loop = options.mode == ReplayOptions::Mode::kOpenLoop;
  const double speed = options.speed > 0 ? options.speed : 1.0;
  const int clients = std::max(1, options.clients);
  const int64_t total_ops =
      open_loop ? static_cast<int64_t>(entries_.size())
                : (options.total_ops > 0
                       ? options.total_ops
                       : static_cast<int64_t>(entries_.size()));

  // Open loop replays the capture's arrival process, so entries must be
  // issued in offset order regardless of journal order after an import.
  std::vector<size_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (open_loop) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return entries_[a].offset_micros < entries_[b].offset_micros;
    });
  }

  std::atomic<int64_t> cursor{0};
  std::vector<std::vector<Sample>> worker_samples(
      static_cast<size_t>(clients));
  const int64_t epoch = SteadyNowMicros();

  auto worker = [&](int worker_index) {
    std::vector<Sample>& local = worker_samples[static_cast<size_t>(worker_index)];
    while (true) {
      const int64_t op = cursor.fetch_add(1, std::memory_order_relaxed);
      if (op >= total_ops) return;
      const size_t idx = order[static_cast<size_t>(op) % order.size()];
      const WorkloadJournalEntry& entry = entries_[idx];
      if (open_loop) {
        // Issue at the captured arrival offset, scaled. When every
        // worker is busy the op starts late and the extra wait is
        // charged to its latency below — the open-loop convention.
        const int64_t due =
            epoch + static_cast<int64_t>(
                        static_cast<double>(entry.offset_micros) / speed);
        const int64_t now = SteadyNowMicros();
        if (due > now) {
          std::this_thread::sleep_for(std::chrono::microseconds(due - now));
        }
      } else if (options.think_micros > 0 && !local.empty()) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options.think_micros));
      }
      Sample s;
      s.entry_index = idx;
      const int64_t t0 = SteadyNowMicros();
      ReplayExecution exec = executor_(entry);
      s.latency_micros = SteadyNowMicros() - t0;
      s.ok = exec.ok;
      s.shed = exec.shed;
      s.statement_mismatch = entry.statement_fingerprint != 0 &&
                             exec.statement_fingerprint != 0 &&
                             exec.statement_fingerprint !=
                                 entry.statement_fingerprint;
      s.plan_change = !s.statement_mismatch && entry.plan_fingerprint != 0 &&
                      exec.plan_fingerprint != 0 &&
                      exec.plan_fingerprint != entry.plan_fingerprint;
      local.push_back(s);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) threads.emplace_back(worker, i);
  for (std::thread& t : threads) t.join();
  report.wall_micros = std::max<int64_t>(1, SteadyNowMicros() - epoch);

  // Merge worker-local samples into the overall and per-statement views.
  struct StatementAgg {
    std::string query_head;
    int64_t captured_calls = 0;
    int64_t captured_wall = 0;
    int64_t replayed_calls = 0;
    int64_t replayed_wall = 0;
    int64_t errors = 0;
    int64_t sheds = 0;
    int64_t mismatches = 0;
    int64_t plan_changes = 0;
  };
  std::map<uint64_t, StatementAgg> per_statement;
  for (const WorkloadJournalEntry& e : entries_) {
    StatementAgg& agg = per_statement[e.statement_fingerprint];
    if (agg.query_head.empty()) agg.query_head = e.text.substr(0, 96);
    ++agg.captured_calls;
    agg.captured_wall += e.wall_micros;
  }
  std::vector<int64_t> latencies;
  int64_t latency_sum = 0;
  for (const auto& local : worker_samples) {
    for (const Sample& s : local) {
      ++report.ops;
      if (s.shed) {
        ++report.sheds;
      } else if (!s.ok) {
        ++report.errors;
      }
      if (s.statement_mismatch) ++report.fingerprint_mismatches;
      if (s.plan_change) ++report.plan_changes;
      latencies.push_back(s.latency_micros);
      latency_sum += s.latency_micros;
      StatementAgg& agg =
          per_statement[entries_[s.entry_index].statement_fingerprint];
      ++agg.replayed_calls;
      agg.replayed_wall += s.latency_micros;
      if (s.shed) {
        ++agg.sheds;
      } else if (!s.ok) {
        ++agg.errors;
      }
      if (s.statement_mismatch) ++agg.mismatches;
      if (s.plan_change) ++agg.plan_changes;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_micros = Percentile(latencies, 0.50);
  report.p95_micros = Percentile(latencies, 0.95);
  report.p99_micros = Percentile(latencies, 0.99);
  report.p999_micros = Percentile(latencies, 0.999);
  report.max_micros = latencies.empty() ? 0 : latencies.back();
  report.mean_micros =
      report.ops == 0 ? 0 : latency_sum / std::max<int64_t>(1, report.ops);
  report.throughput_qps = 1e6 * static_cast<double>(report.ops) /
                          static_cast<double>(report.wall_micros);

  for (const auto& [fp, agg] : per_statement) {
    ReplayStatementReport s;
    s.statement_fingerprint = fp;
    s.query_head = agg.query_head;
    s.captured_calls = agg.captured_calls;
    s.replayed_calls = agg.replayed_calls;
    s.captured_mean_micros =
        agg.captured_calls == 0 ? 0 : agg.captured_wall / agg.captured_calls;
    s.replayed_mean_micros =
        agg.replayed_calls == 0 ? 0 : agg.replayed_wall / agg.replayed_calls;
    if (s.captured_mean_micros > 0 && s.replayed_calls > 0) {
      s.ratio = static_cast<double>(s.replayed_mean_micros) /
                static_cast<double>(s.captured_mean_micros);
    }
    // Same gate shape as the plan-history sentinel: enough calls on both
    // sides, and the replayed mean breaching ratio * captured mean.
    s.regressed = options.min_calls > 0 &&
                  s.captured_calls >= options.min_calls &&
                  s.replayed_calls >= options.min_calls &&
                  s.ratio >= options.ratio;
    s.errors = agg.errors;
    s.sheds = agg.sheds;
    s.fingerprint_mismatches = agg.mismatches;
    s.plan_changes = agg.plan_changes;
    report.statements.push_back(std::move(s));
  }
  std::sort(report.statements.begin(), report.statements.end(),
            [](const ReplayStatementReport& a, const ReplayStatementReport& b) {
              if (a.regressed != b.regressed) return a.regressed;
              if (a.ratio != b.ratio) return a.ratio > b.ratio;
              return a.statement_fingerprint < b.statement_fingerprint;
            });
  return report;
}

std::string ReplayReport::RenderText() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "replay: %lld ops in %.1fms  %.1f qps  errors=%lld"
                " sheds=%lld stmt_mismatches=%lld plan_changes=%lld\n",
                static_cast<long long>(ops),
                static_cast<double>(wall_micros) / 1000.0, throughput_qps,
                static_cast<long long>(errors),
                static_cast<long long>(sheds),
                static_cast<long long>(fingerprint_mismatches),
                static_cast<long long>(plan_changes));
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "latency us: mean=%lld p50=%lld p95=%lld p99=%lld "
                "p999=%lld max=%lld\n",
                static_cast<long long>(mean_micros),
                static_cast<long long>(p50_micros),
                static_cast<long long>(p95_micros),
                static_cast<long long>(p99_micros),
                static_cast<long long>(p999_micros),
                static_cast<long long>(max_micros));
  os << buf;
  os << "per-statement vs captured baseline:\n";
  for (const ReplayStatementReport& s : statements) {
    std::snprintf(buf, sizeof(buf),
                  "  stmt_fp=%llu calls %lld->%lld mean %lldus->%lldus"
                  " (%.2fx)%s%s\n",
                  static_cast<unsigned long long>(s.statement_fingerprint),
                  static_cast<long long>(s.captured_calls),
                  static_cast<long long>(s.replayed_calls),
                  static_cast<long long>(s.captured_mean_micros),
                  static_cast<long long>(s.replayed_mean_micros), s.ratio,
                  s.regressed ? " REGRESSED" : "",
                  s.fingerprint_mismatches > 0 ? " FINGERPRINT-MISMATCH" : "");
    os << buf;
    os << "    " << s.query_head << "\n";
  }
  return os.str();
}

std::string ReplayReport::RenderJson() const {
  std::string out = "{\"ops\":" + std::to_string(ops);
  out += ",\"errors\":" + std::to_string(errors);
  out += ",\"sheds\":" + std::to_string(sheds);
  out += ",\"fingerprint_mismatches\":" + std::to_string(fingerprint_mismatches);
  out += ",\"plan_changes\":" + std::to_string(plan_changes);
  out += ",\"wall_micros\":" + std::to_string(wall_micros);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"throughput_qps\":%.2f", throughput_qps);
  out += buf;
  out += ",\"mean_micros\":" + std::to_string(mean_micros);
  out += ",\"p50_micros\":" + std::to_string(p50_micros);
  out += ",\"p95_micros\":" + std::to_string(p95_micros);
  out += ",\"p99_micros\":" + std::to_string(p99_micros);
  out += ",\"p999_micros\":" + std::to_string(p999_micros);
  out += ",\"max_micros\":" + std::to_string(max_micros);
  out += ",\"statements\":[";
  bool first = true;
  for (const ReplayStatementReport& s : statements) {
    if (!first) out += ",";
    first = false;
    out += "{\"statement_fingerprint\":\"" +
           std::to_string(s.statement_fingerprint) + "\"";
    out += ",\"query_head\":";
    AppendJsonString(&out, s.query_head);
    out += ",\"captured_calls\":" + std::to_string(s.captured_calls);
    out += ",\"replayed_calls\":" + std::to_string(s.replayed_calls);
    out += ",\"captured_mean_micros\":" + std::to_string(s.captured_mean_micros);
    out += ",\"replayed_mean_micros\":" + std::to_string(s.replayed_mean_micros);
    std::snprintf(buf, sizeof(buf), ",\"ratio\":%.3f", s.ratio);
    out += buf;
    out += ",\"regressed\":";
    out += s.regressed ? "true" : "false";
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"sheds\":" + std::to_string(s.sheds);
    out += ",\"fingerprint_mismatches\":" +
           std::to_string(s.fingerprint_mismatches);
    out += ",\"plan_changes\":" + std::to_string(s.plan_changes);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace aldsp::observability
