#include "observability/histogram.h"

namespace aldsp::observability {

const int64_t LatencyHistogram::kUpperMicros[] = {
    100, 1000, 10000, 100000, 1000000, 10000000};

const char* LatencyHistogram::BucketLabel(int i) {
  static const char* kLabels[kBuckets] = {
      "le_100us", "le_1ms", "le_10ms", "le_100ms",
      "le_1s",    "le_10s", "inf"};
  return (i >= 0 && i < kBuckets) ? kLabels[i] : "?";
}

void LatencyHistogram::Record(int64_t micros) {
  int bucket = kBuckets - 1;
  for (int i = 0; i < kBuckets - 1; ++i) {
    if (micros <= kUpperMicros[i]) {
      bucket = i;
      break;
    }
  }
  counts[bucket] += 1;
  if (count == 0 || micros < min_micros) min_micros = micros;
  if (micros > max_micros) max_micros = micros;
  count += 1;
  sum_micros += micros;
}

int64_t LatencyHistogram::P95UpperMicros() const {
  return PercentileUpperMicros(0.95);
}

int64_t LatencyHistogram::PercentileUpperMicros(double q) const {
  if (count == 0 || q <= 0.0) return 0;
  if (q > 1.0) q = 1.0;
  // ceil(q * count), 1-based, computed in integers to keep the rank exact
  // for the permille quantiles the admission plane reports.
  const int64_t permille = static_cast<int64_t>(q * 1000.0 + 0.5);
  const int64_t rank = (count * permille + 999) / 1000;
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      int64_t upper = (i < kBuckets - 1) ? kUpperMicros[i] : max_micros;
      return upper < max_micros ? upper : max_micros;
    }
  }
  return max_micros;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count == 0) return;
  for (int i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
  if (count == 0 || other.min_micros < min_micros) min_micros = other.min_micros;
  if (other.max_micros > max_micros) max_micros = other.max_micros;
  count += other.count;
  sum_micros += other.sum_micros;
}

}  // namespace aldsp::observability
