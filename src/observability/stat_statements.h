#ifndef ALDSP_OBSERVABILITY_STAT_STATEMENTS_H_
#define ALDSP_OBSERVABILITY_STAT_STATEMENTS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "observability/histogram.h"

namespace aldsp::observability {

/// Resource deltas for one finished execution, fed into the per-fingerprint
/// accumulator and the per-tenant rolling windows.
struct StatementSample {
  uint64_t fingerprint = 0;  // plan fingerprint (current plan version)
  /// Statement identity (literal-stripped pre-optimization AST hash).
  /// Cumulative stats key on this when set, so the history of a statement
  /// no longer forks when the cost model flips its plan; 0 falls back to
  /// keying on the plan fingerprint (legacy samples).
  uint64_t statement_fingerprint = 0;
  std::string query_head;  // stored on first sight of a fingerprint
  bool error = false;
  bool cancelled = false;
  /// Refused by admission control or stopped by a memory-budget breach
  /// (StatusCode::kResourceExhausted). Counted separately from errors so
  /// shed load under overload does not read as a correctness problem.
  bool shed = false;
  int64_t wall_micros = 0;
  int64_t rows_returned = 0;
  int64_t peak_bytes = 0;
  // Wall-time split. Exact when the execution ran with a timeline trace
  // (critical-path attribution); estimated from the O(1) event tallies in
  // counters mode (queue_wait is then 0 — kTaskWait spans need timelines).
  int64_t source_wait_micros = 0;
  int64_t compute_micros = 0;
  int64_t queue_wait_micros = 0;
  bool plan_cache_hit = false;
  int64_t function_cache_hits = 0;
  int64_t function_cache_misses = 0;
};

/// Cumulative per-statement statistics (pg_stat_statements-style).
/// `fingerprint` tracks the most recently seen *plan* version for the
/// statement; the map key is the statement fingerprint when available.
struct StatementStats {
  uint64_t fingerprint = 0;            // latest plan fingerprint seen
  uint64_t statement_fingerprint = 0;  // identity (0 for legacy samples)
  std::string query_head;
  int64_t calls = 0;
  int64_t errors = 0;
  int64_t cancels = 0;
  int64_t sheds = 0;  // kResourceExhausted outcomes (admission / budget)
  int64_t total_wall_micros = 0;
  LatencyHistogram wall;  // mean + bucket-estimated p95
  int64_t rows_returned = 0;
  int64_t max_peak_bytes = 0;
  int64_t source_wait_micros = 0;
  int64_t compute_micros = 0;
  int64_t queue_wait_micros = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t function_cache_hits = 0;
  int64_t function_cache_misses = 0;

  double MeanWallMicros() const { return wall.MeanMicros(); }
  /// Upper bound of the histogram bucket containing the 95th percentile —
  /// the fixed-bucket histogram cannot produce an exact quantile.
  int64_t P95WallMicrosEstimate() const;
};

/// Bounded map of per-fingerprint cumulative stats. When full, recording a
/// new fingerprint evicts the entry with the smallest total wall time — the
/// statements that dominate the server are exactly the ones we must keep.
class StatStatements {
 public:
  static constexpr size_t kDefaultMaxEntries = 512;

  explicit StatStatements(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  void Record(const StatementSample& sample);
  void Reset();

  /// Mean wall micros of the entry keyed by `key` (statement fingerprint,
  /// or plan fingerprint for legacy samples), or -1 when unknown. The
  /// admission controller's cost-estimate lookup: one map find under the
  /// mutex, cheap enough for the execute front door.
  int64_t MeanWallMicrosFor(uint64_t key) const;

  /// Entries ordered by descending total wall time; top_k <= 0 returns all.
  std::vector<StatementStats> TopK(int top_k) const;
  int64_t entry_count() const;
  int64_t evictions() const;

  std::string RenderText(int top_k) const;
  std::string RenderJson(int top_k) const;

 private:
  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, StatementStats> stats_;
  int64_t evictions_ = 0;
};

}  // namespace aldsp::observability

#endif  // ALDSP_OBSERVABILITY_STAT_STATEMENTS_H_
